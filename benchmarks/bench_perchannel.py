"""Ablation: per-tensor (paper) vs per-channel weight scales under QAVAT.

Per-channel quantization is the standard refinement over the paper's
per-tensor MMSE scales; it costs a digital multiplier per crossbar column
group.  This bench trains QAVAT both ways at a low weight bitwidth and
compares clean and robust accuracy, plus the pure quantization MSE of the
trained weights — separating the representation benefit (MSE) from the
robustness interaction.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import bench_scale, spec_from, write_result
from repro.datasets.loaders import batch_source
from repro.eval.robustness import evaluate_clean, evaluate_robustness
from repro.experiments.configs import dataset_for, model_for
from repro.experiments.tables import format_table
from repro.quant.perchannel import per_channel_quantization_mse
from repro.quant.ptq import quantized_layers
from repro.quant.qconfig import QConfig
from repro.quant.scaling import mmse_scale, quantization_mse
from repro.training.baselines import train_qavat

SIGMA = 0.3
NOTATION = "A4W2"


def _weight_mse(model, per_channel: bool) -> float:
    errors = []
    for _, layer in quantized_layers(model):
        w = layer.weight.data
        if per_channel:
            errors.append(per_channel_quantization_mse(w, layer.weight_spec))
        else:
            scale = mmse_scale(w, layer.weight_spec)
            errors.append(quantization_mse(w, scale, layer.weight_spec))
    return float(np.mean(errors))


def _run_perchannel() -> str:
    scale = bench_scale()
    spec = spec_from(SIGMA, 0.0, "weight-proportional")
    rows = []
    for per_channel in (False, True):
        train, test = dataset_for("mnist", scale)
        model = model_for("lenet5", "mnist", scale, seed=41)
        qconfig = QConfig.from_notation(NOTATION, per_channel_weights=per_channel)
        train_qavat(
            model,
            batch_source(train, scale.batch_size, seed=0),
            qconfig,
            spec,
            epochs=scale.train_epochs,
            lr=scale.lr,
            float_pretrain_epochs=scale.float_pretrain_epochs,
        )
        clean = evaluate_clean(model, test)
        robust = evaluate_robustness(model, test, spec, num_chips=scale.num_chips)
        rows.append(
            [
                "per-channel" if per_channel else "per-tensor",
                100 * clean,
                100 * robust.mean,
                _weight_mse(model, per_channel),
            ]
        )
    return format_table(
        ["weight scales", "clean %", "robust %", "weight MSE"],
        rows,
        title=(
            f"Per-tensor (paper) vs per-channel weight scales "
            f"(LeNet/{NOTATION}, sigma_W={SIGMA})"
        ),
    )


def test_perchannel(benchmark):
    text = benchmark.pedantic(_run_perchannel, rounds=1, iterations=1)
    write_result("perchannel", text)
    lines = {line.split()[0]: line.split() for line in text.splitlines() if "per-" in line}
    # Per-channel never hurts representation: lower or equal weight MSE.
    assert float(lines["per-channel"][-1]) <= float(lines["per-tensor"][-1]) + 1e-9
