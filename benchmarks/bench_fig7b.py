"""Fig. 7b: self-tuning design space — GTM cell count and LTM columns.

Paper setting: ResNet-18, mixed-type variation, layer-fixed variance.
Accuracy improves with the number of GTM cells (diminishing returns;
larger sigma needs more cells before the curve flattens), and more LTM
columns help chiefly at the highest variance (sigma = 0.5).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import bench_scale, resnet_workload, spec_from, trained, write_result
from repro.eval.robustness import evaluate_robustness
from repro.experiments.tables import format_series
from repro.selftuning import SelfTuningConfig, attach_self_tuning, detach_self_tuning

GTM_CELLS = (10, 100, 1000, 10_000, 100_000)
LTM_COLUMNS = (1, 16)
SIGMA_TOTALS = (0.1, 0.5)
VARIANCE_MODEL = "layer-fixed"


def _run_fig7b() -> str:
    scale = bench_scale()
    model_name, workload = resnet_workload()
    blocks = []
    for sigma_tot in SIGMA_TOTALS:
        sigma_each = sigma_tot / np.sqrt(2.0)
        model, test = trained(
            "qavat", model_name, workload, "A4W2", sigma_each, 0.0, VARIANCE_MODEL
        )
        eval_spec = spec_from(sigma_each, sigma_each, VARIANCE_MODEL)
        series: dict[str, list[float]] = {}
        for columns in LTM_COLUMNS:
            accs = []
            for cells in GTM_CELLS:
                attach_self_tuning(
                    model,
                    SelfTuningConfig(kind="layer", gtm_cells=cells, ltm_columns=columns),
                )
                accs.append(
                    100
                    * evaluate_robustness(
                        model, test, eval_spec, num_chips=scale.num_chips, seed=42
                    ).mean
                )
            series[f"LTM={columns}"] = accs
        detach_self_tuning(model)
        blocks.append(
            format_series(
                "gtm_cells",
                [f"1e{int(np.log10(c))}" for c in GTM_CELLS],
                series,
                title=(
                    f"Fig. 7b ST sizing, sigma_tot={sigma_tot} — "
                    f"{model_name}/{workload}, scale={scale.name}"
                ),
            )
        )
    blocks.append(
        "paper shape: accuracy rises with GTM cells then saturates; extra LTM "
        "columns matter most at sigma=0.5."
    )
    return "\n\n".join(blocks)


def test_fig7b(benchmark):
    text = benchmark.pedantic(_run_fig7b, rounds=1, iterations=1)
    write_result("fig7b", text)
    assert "gtm_cells" in text
