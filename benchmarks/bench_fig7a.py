"""Fig. 7a: impact of multi-sampling on QAVAT quality.

Paper setting: VGG-11, within-chip variation, A8W4 and A4W2, sigma in
{0.3, 0.5}; accuracy improves by ~0.9% (sigma 0.3) to ~1.3% (sigma 0.5)
as the number of variation samples per step grows, saturating around 5.

Default scale uses LeNet-5 (n multiplies training cost) at sigma = 0.5,
where the effect is largest.
"""

from __future__ import annotations

from benchmarks.conftest import bench_scale, spec_from, trained, write_result
from repro.eval.robustness import evaluate_robustness
from repro.experiments.tables import format_series

SAMPLE_COUNTS = (1, 4, 8)
NOTATIONS = ("A4W2", "A8W4")
SIGMA = 0.5
VARIANCE_MODEL = "layer-fixed"


def _workload() -> tuple[str, str]:
    if bench_scale().name == "paper":
        return "vgg11", "cifar10"
    return "lenet5", "mnist"


def _run_fig7a() -> str:
    scale = bench_scale()
    model_name, workload = _workload()
    eval_spec = spec_from(SIGMA, 0.0, VARIANCE_MODEL)
    series: dict[str, list[float]] = {}
    for notation in NOTATIONS:
        accs = []
        for n in SAMPLE_COUNTS:
            model, test = trained(
                "qavat",
                model_name,
                workload,
                notation,
                SIGMA,
                0.0,
                VARIANCE_MODEL,
                n_variation_samples=n,
            )
            accs.append(
                100
                * evaluate_robustness(
                    model, test, eval_spec, num_chips=scale.num_chips, seed=42
                ).mean
            )
        series[notation] = accs
    text = format_series(
        "n_samples",
        list(SAMPLE_COUNTS),
        series,
        title=(
            f"Fig. 7a multi-sampling (sigma={SIGMA}, {VARIANCE_MODEL}, "
            f"{model_name}/{workload}) — scale={scale.name}"
        ),
    )
    text += (
        "\npaper shape: accuracy rises with n and saturates around 5 samples "
        "(~+1.3% at sigma=0.5 on VGG-11)."
    )
    return text


def test_fig7a(benchmark):
    text = benchmark.pedantic(_run_fig7a, rounds=1, iterations=1)
    write_result("fig7a", text)
    assert "n_samples" in text
