"""Table II: self-tuning for A8W4 models, weight-proportional variance.

Paper reference (mean accuracy, %; mixed-type variation):

                      VGG-11                ResNet-18
    sigma_tot      0.1    0.3    0.5     0.1    0.3    0.5
    QAVAT          88.59  70.75  54.70   67.19  36.58  19.89
    QAVAT+ST       90.05  88.09  81.90   75.35  73.39  66.58
    QAVAT+WrongST  44.70  23.06  17.33   14.32  5.26   3.78

Default scale runs the VGG-11 column (the ResNet column joins at
REPRO_BENCH_SCALE=paper via bench_fig6's machinery).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import bench_scale, spec_from, trained, write_result
from repro.eval.robustness import evaluate_robustness
from repro.experiments.tables import format_table
from repro.selftuning import SelfTuningConfig, attach_self_tuning, detach_self_tuning

SIGMA_TOTALS = (0.1, 0.3, 0.5)
PAPER_VGG = {
    "QAVAT": (88.59, 70.75, 54.70),
    "QAVAT+ST": (90.05, 88.09, 81.90),
    "QAVAT+WrongST": (44.70, 23.06, 17.33),
}


def _run_table2() -> str:
    scale = bench_scale()
    model_name, workload = ("vgg11", "cifar10")
    variance_model = "weight-proportional"
    measured: dict[str, list[float]] = {"QAVAT": [], "QAVAT+ST": [], "QAVAT+WrongST": []}
    for sigma_tot in SIGMA_TOTALS:
        sigma_each = sigma_tot / np.sqrt(2.0)
        model, test = trained(
            "qavat", model_name, workload, "A8W4", sigma_each, 0.0, variance_model
        )
        eval_spec = spec_from(sigma_each, sigma_each, variance_model)

        def mean_acc():
            return (
                100
                * evaluate_robustness(
                    model, test, eval_spec, num_chips=scale.num_chips, seed=42
                ).mean
            )

        detach_self_tuning(model)
        measured["QAVAT"].append(mean_acc())
        attach_self_tuning(model, SelfTuningConfig(kind="global", gtm_cells=1000))
        measured["QAVAT+ST"].append(mean_acc())
        attach_self_tuning(model, SelfTuningConfig(kind="layer", gtm_cells=1000))
        measured["QAVAT+WrongST"].append(mean_acc())
        detach_self_tuning(model)
    rows = []
    for condition in measured:
        rows.append(
            [condition]
            + [f"{v:.2f}" for v in measured[condition]]
            + [f"{v:.2f}" for v in PAPER_VGG[condition]]
        )
    return format_table(
        ["condition", "s=0.1", "s=0.3", "s=0.5", "paper 0.1", "paper 0.3", "paper 0.5"],
        rows,
        title=(
            f"Table II (A8W4 VGG-11, mixed-type, weight-proportional) — "
            f"scale={scale.name}"
        ),
    )


def test_table2(benchmark):
    text = benchmark.pedantic(_run_table2, rounds=1, iterations=1)
    write_result("table2", text)
    assert "QAVAT+ST" in text
