"""Fig. 5: QAVAT under within-chip-only vs mixed-type variation.

Paper setting: ResNet-18/CIFAR-100, QAVAT trained per sigma, evaluated
under (1) within-chip variation only and (2) mixed-type variation
(sigma_B = sigma_W, same sigma_tot).  On both variance models, mixed-type
degradation is far more destructive — training alone cannot absorb the
correlated component.  At sigma_tot = 0.5 the paper reports ~54% accuracy
loss for ResNet-18.

The QAVAT models are trained against within-chip variation at the same
sigma_tot, exactly as in the paper's deployment flow.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import bench_scale, spec_from, trained, write_result
from repro.eval.robustness import evaluate_robustness
from repro.experiments.tables import format_series

SIGMAS = (0.1, 0.3, 0.5)
VARIANCE_MODELS = ("weight-proportional", "layer-fixed")


def _workload() -> tuple[str, str]:
    if bench_scale().name == "paper":
        return "resnet18", "cifar100"
    return "lenet5", "mnist"


def _run_fig5() -> str:
    scale = bench_scale()
    model_name, workload = _workload()
    blocks = []
    for variance_model in VARIANCE_MODELS:
        series: dict[str, list[float]] = {"within-chip": [], "mixed-type": []}
        for sigma_tot in SIGMAS:
            model, test = trained(
                "qavat", model_name, workload, "A4W2", sigma_tot, 0.0, variance_model
            )
            within = spec_from(sigma_tot, 0.0, variance_model)
            sigma_each = sigma_tot / np.sqrt(2.0)
            mixed = spec_from(sigma_each, sigma_each, variance_model)
            series["within-chip"].append(
                100
                * evaluate_robustness(
                    model, test, within, num_chips=scale.num_chips, seed=42
                ).mean
            )
            series["mixed-type"].append(
                100
                * evaluate_robustness(
                    model, test, mixed, num_chips=scale.num_chips, seed=42
                ).mean
            )
        blocks.append(
            format_series(
                "sigma_tot",
                list(SIGMAS),
                series,
                title=(
                    f"Fig. 5 QAVAT, {variance_model} — {model_name}/{workload}, "
                    f"scale={scale.name}"
                ),
            )
        )
    blocks.append(
        "paper shape: mixed-type curves fall far below within-chip curves "
        "(ResNet-18 loses ~54% at sigma_tot=0.5, weight-proportional)"
    )
    return "\n\n".join(blocks)


def test_fig5(benchmark):
    text = benchmark.pedantic(_run_fig5, rounds=1, iterations=1)
    write_result("fig5", text)
    assert "mixed-type" in text
