"""Fig. 4: accuracy vs sigma_W for QAVAT / QAT / PTQ-VAT (four panels).

Paper setting: ResNet-18 on CIFAR-100, within-chip variation, panels
(A4W2, A8W4) x (weight-proportional, layer-fixed), sigma_W in 0.1..0.5.
Paper shape: QAVAT stays nearly flat; QAT collapses at high sigma
(hardest under layer-fixed, e.g. panel (c): QAT ~13% at sigma 0.5 while
QAVAT holds ~49%); PTQ-VAT is far below both at A4W2.

Default scale runs the panels on LeNet-5/synthetic-MNIST (fast, same
mechanism); REPRO_BENCH_SCALE=paper restores ResNet-18/CIFAR-100.
"""

from __future__ import annotations

from benchmarks.conftest import bench_scale, spec_from, trained, write_result
from repro.eval.robustness import evaluate_robustness
from repro.experiments.tables import format_series

SIGMAS = (0.1, 0.3, 0.5)
METHODS = ("qavat", "qat", "ptq-vat")
PANELS = [
    ("a", "A4W2", "weight-proportional"),
    ("b", "A8W4", "weight-proportional"),
    ("c", "A4W2", "layer-fixed"),
    ("d", "A8W4", "layer-fixed"),
]

# Paper curves for panel (c) (ResNet-18, A4W2, layer-fixed), read off Fig. 4.
PAPER_PANEL_C = {
    "qavat": [67.0, 62.0, 57.0, 53.0, 49.3],
    "qat": [66.7, 55.0, 40.0, 25.0, 13.6],
    "ptq-vat": [47.2, 25.0, 10.0, 4.0, 2.1],
}


def _workload() -> tuple[str, str]:
    if bench_scale().name == "paper":
        return "resnet18", "cifar100"
    return "lenet5", "mnist"


def _run_panel(notation: str, variance_model: str) -> dict[str, list[float]]:
    scale = bench_scale()
    model_name, workload = _workload()
    series: dict[str, list[float]] = {m: [] for m in METHODS}
    for sigma in SIGMAS:
        eval_spec = spec_from(sigma, 0.0, variance_model)
        for method in METHODS:
            model, test = trained(
                method, model_name, workload, notation, sigma, 0.0, variance_model
            )
            result = evaluate_robustness(
                model, test, eval_spec, num_chips=scale.num_chips, seed=42
            )
            series[method].append(100 * result.mean)
    return series


def _run_fig4() -> str:
    model_name, workload = _workload()
    blocks = []
    for panel, notation, variance_model in PANELS:
        series = _run_panel(notation, variance_model)
        blocks.append(
            format_series(
                "sigma",
                list(SIGMAS),
                series,
                title=(
                    f"Fig. 4({panel}) {notation}, {variance_model} — "
                    f"{model_name}/{workload}, scale={bench_scale().name}"
                ),
            )
        )
    blocks.append(
        "paper reference, panel (c) at sigma 0.1..0.5: "
        + "; ".join(f"{m}={v}" for m, v in PAPER_PANEL_C.items())
    )
    return "\n\n".join(blocks)


def test_fig4(benchmark):
    text = benchmark.pedantic(_run_fig4, rounds=1, iterations=1)
    write_result("fig4", text)
    assert "Fig. 4(d)" in text
