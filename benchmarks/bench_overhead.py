"""Sec. III-B overhead numbers: ST area and compute cost.

Paper reference:
* LTM area per 512x512 array: 0.2% at LTM=1, 3.1% at LTM=16.
* GTM area: negligible (1e5 cells is < 0.1% of demonstrated PIM chips).
* ST compute on ResNet-18 with 1e5 GTM cells: ~0.3% (LTM=1), ~2.2% (LTM=8),
  ~4.4% (LTM=16).  Our accounting also counts the digital correction
  arithmetic, so measured ratios run ~2-3x higher; the shape (sub-percent
  at LTM=1, linear growth in columns) is the reproduced claim.

This bench uses the full-width ResNet-18 — the FLOPs trace needs only one
forward pass.
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.experiments.tables import format_table
from repro.models import build_model
from repro.quant import QConfig, convert_to_quantized
from repro.selftuning.overhead import (
    area_overhead,
    gtm_area_overhead,
    model_flops,
    tuning_flops,
)

PAPER_AREA = {1: 0.2, 16: 3.1}
PAPER_FLOPS = {1: 0.3, 8: 2.2, 16: 4.4}


def _run_overhead() -> str:
    model = build_model("resnet18")
    convert_to_quantized(model, QConfig(quantize_activations=False))
    base = model_flops(model, (3, 32, 32))  # one traced forward, reused below
    area_rows = [
        [columns, 100 * area_overhead(columns), PAPER_AREA.get(columns, "-")]
        for columns in (1, 8, 16)
    ]
    flops_rows = [
        [
            columns,
            100 * tuning_flops(model, gtm_cells=100_000, ltm_columns=columns) / base,
            PAPER_FLOPS.get(columns, "-"),
        ]
        for columns in (1, 8, 16)
    ]
    gtm_pct = 100 * gtm_area_overhead(100_000, 400 * 512 * 512)
    parts = [
        format_table(
            ["LTM columns", "area overhead %", "paper %"],
            area_rows,
            title="ST area overhead per 512x512 array",
        ),
        format_table(
            ["LTM columns", "FLOPs overhead %", "paper %"],
            flops_rows,
            title=(
                f"ST compute overhead on ResNet-18 (base {base / 1e9:.2f} GFLOPs, "
                "1e5 GTM cells; ours counts digital correction ops too)"
            ),
        ),
        f"GTM area on a 400-array chip: {gtm_pct:.4f}% (paper: < 0.1%)",
    ]
    return "\n\n".join(parts)


def test_overhead(benchmark):
    text = benchmark.pedantic(_run_overhead, rounds=1, iterations=1)
    write_result("overhead", text)
    assert "area overhead" in text
