"""Ablation: QAVAT vs the Noisy-Machines distillation baseline (ref [16]).

The paper lists distillation-based noise injection (Zhou et al.) among the
prior implicit-robustification methods it improves on.  This bench trains,
at each sigma:

* QAT (variability-oblivious),
* Noisy-Machines: naive single-sample injection + knowledge distillation
  from a clean float teacher,
* QAVAT (reparameterized injection, no teacher),

and compares mean robust accuracy under within-chip variation.  Expected
shape: distillation beats plain QAT at high sigma (its claim), QAVAT at
least matches distillation without needing a teacher.
"""

from __future__ import annotations

from benchmarks.conftest import bench_scale, spec_from, trained, write_result
from repro.datasets.loaders import batch_source
from repro.eval.robustness import evaluate_robustness
from repro.experiments.configs import dataset_for, model_for
from repro.experiments.tables import format_series
from repro.quant.qconfig import QConfig
from repro.training.baselines import _float_pretrain
from repro.training.distill import train_distilled
from repro.experiments.tables import format_table

SIGMAS = (0.3, 0.5)
NOTATION = "A4W2"
VARIANCE_MODEL = "weight-proportional"


def _train_noisy_machines(sigma: float):
    """Float teacher -> distilled quantized noisy student."""
    scale = bench_scale()
    train, test = dataset_for("mnist", scale)
    teacher = model_for("lenet5", "mnist", scale, seed=21)
    source = batch_source(train, scale.batch_size, seed=5)
    _float_pretrain(
        teacher, source, scale.float_pretrain_epochs + scale.train_epochs, scale.lr
    )
    student = model_for("lenet5", "mnist", scale, seed=22)
    _float_pretrain(student, source, scale.float_pretrain_epochs, scale.lr)
    spec = spec_from(sigma, 0.0, VARIANCE_MODEL)
    train_distilled(
        student,
        teacher,
        source,
        QConfig.from_notation(NOTATION),
        spec,
        epochs=scale.train_epochs,
        lr=scale.lr,
    )
    return student, test


def _run_distillation() -> str:
    scale = bench_scale()
    series = {"QAT": [], "NoisyMachines-KD": [], "QAVAT": []}
    for sigma in SIGMAS:
        spec = spec_from(sigma, 0.0, VARIANCE_MODEL)
        qat_model, test = trained(
            "qat", "lenet5", "mnist", NOTATION, sigma, 0.0, VARIANCE_MODEL
        )
        series["QAT"].append(
            100 * evaluate_robustness(qat_model, test, spec, num_chips=scale.num_chips).mean
        )
        kd_model, test = _train_noisy_machines(sigma)
        series["NoisyMachines-KD"].append(
            100 * evaluate_robustness(kd_model, test, spec, num_chips=scale.num_chips).mean
        )
        qavat_model, test = trained(
            "qavat", "lenet5", "mnist", NOTATION, sigma, 0.0, VARIANCE_MODEL
        )
        series["QAVAT"].append(
            100 * evaluate_robustness(qavat_model, test, spec, num_chips=scale.num_chips).mean
        )
    return format_series(
        "sigma",
        SIGMAS,
        series,
        title=(
            f"QAVAT vs Noisy-Machines distillation vs QAT "
            f"(LeNet/{NOTATION}, within-chip {VARIANCE_MODEL}, mean acc %)"
        ),
    )


def test_distillation_baseline(benchmark):
    text = benchmark.pedantic(_run_distillation, rounds=1, iterations=1)
    write_result("distillation", text)
    # QAVAT should at least roughly match the distillation baseline at the
    # highest sigma (within a few points at bench scale).
    last = text.strip().splitlines()[-1].split()
    qavat, kd = float(last[-1]), float(last[-2])
    assert qavat >= kd - 10.0
