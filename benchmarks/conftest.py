"""Benchmark fixtures: scale selection and a shared trained-model cache.

Every benchmark reproduces one table or figure of the paper.  Set
``REPRO_BENCH_SCALE`` to ``tiny`` (default), ``small``, or ``paper`` to
trade fidelity for wall-clock; absolute accuracies differ from the paper
(synthetic data, scaled models — see DESIGN.md) but each bench prints the
paper's reference values next to the measured ones so the reproduced
*shape* is visible.

Training is the dominant cost, and several benches share trained models
(e.g. Fig. 6 and Table II reuse the QAVAT models of Fig. 5), so trained
models are cached per-session keyed by their full configuration.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.configs import EXPERIMENT_SCALES, MethodConfig
from repro.experiments.runner import train_method
from repro.quant.qconfig import QConfig
from repro.variability.models import variance_model_by_name
from repro.variability.sampler import VariabilitySpec

_MODEL_CACHE: dict[tuple, tuple] = {}


def bench_scale():
    """The scale selected for this run (env: REPRO_BENCH_SCALE)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "tiny")
    if name not in EXPERIMENT_SCALES:
        raise KeyError(f"REPRO_BENCH_SCALE must be one of {sorted(EXPERIMENT_SCALES)}")
    return EXPERIMENT_SCALES[name]


def spec_from(sigma_within: float, sigma_between: float, variance_model: str) -> VariabilitySpec:
    """Build a spec from plain hashable values (cache-key friendly)."""
    return VariabilitySpec(sigma_within, sigma_between, variance_model_by_name(variance_model))


def trained(
    method: str,
    model_name: str,
    workload: str,
    notation: str,
    sigma_within: float,
    sigma_between: float,
    variance_model: str,
    n_variation_samples: int = 2,
    seed: int = 0,
):
    """Train (or fetch from cache) one model; returns (model, test_dataset)."""
    scale = bench_scale()
    key = (
        scale.name,
        method,
        model_name,
        workload,
        notation,
        round(sigma_within, 6),
        round(sigma_between, 6),
        variance_model,
        n_variation_samples,
        seed,
    )
    if key not in _MODEL_CACHE:
        spec = spec_from(sigma_within, sigma_between, variance_model)
        _MODEL_CACHE[key] = train_method(
            method,
            model_name,
            workload,
            QConfig.from_notation(notation),
            spec,
            scale,
            MethodConfig(n_variation_samples=n_variation_samples, seed=seed),
        )
    return _MODEL_CACHE[key]


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


def resnet_workload() -> tuple[str, str]:
    """(model, dataset) used for the paper's ResNet-18/CIFAR-100 figures.

    At tiny/small scale the 100-class workload has too few samples per class
    to train on CPU, so a half-depth residual net on the 10-class dataset
    stands in; ``REPRO_BENCH_SCALE=paper`` restores the faithful pairing.
    """
    if bench_scale().name == "paper":
        return "resnet18", "cifar100"
    return "resnet10-mini", "cifar10"


def write_result(name: str, text: str) -> None:
    """Persist a bench's table next to the benchmarks (pytest captures stdout)."""
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    with open(os.path.join(results_dir, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")
    print(text)
