"""Cost-model bench: PIM vs digital energy, and self-tuning energy overhead.

Grounds the paper's motivation (analog PIM's energy advantage, ref [1]) and
its Sec. III-B overhead accounting in the event-based cost model of
:mod:`repro.pim.energy`.  Absolute numbers depend on the per-event
constants; the reproduced claims are the *ratios*: PIM beats digital MACs
at realistic DAC widths, and self-tuning adds percent-level energy.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import write_result
from repro.experiments.tables import format_table
from repro.models import build_model
from repro.pim.energy import (
    PimCostEstimator,
    digital_baseline_cost,
    geometries_from_model,
)
from repro.quant import QConfig, calibrate_model, convert_to_quantized


def _vgg_geometries():
    rng = np.random.default_rng(0)
    model = build_model("vgg11")
    model = convert_to_quantized(model, QConfig.from_notation("A8W4"))
    calibrate_model(model, [rng.normal(size=(2, 3, 32, 32))])
    return geometries_from_model(model, (3, 32, 32))


def _run_energy() -> str:
    geometries = _vgg_geometries()
    digital = digital_baseline_cost(geometries)

    pim_rows = []
    for label, kwargs in (
        ("8-bit DAC, 4-bit cells", dict(input_cycles=1, weight_slices=1)),
        ("bit-serial DAC", dict(input_cycles=8, weight_slices=1)),
        ("bit-serial, 2-bit cells", dict(input_cycles=8, weight_slices=2)),
    ):
        report = PimCostEstimator(**kwargs).model_cost(geometries)
        pim_rows.append(
            [label, report.energy_uj, digital.energy_pj / report.energy_pj]
        )

    estimator = PimCostEstimator(input_cycles=8, weight_slices=1)
    base = estimator.model_cost(geometries)
    st_rows = []
    for gtm_cells, ltm_columns in ((1_000, 1), (100_000, 1), (100_000, 8), (100_000, 16)):
        tuning = estimator.self_tuning_cost(geometries, gtm_cells, ltm_columns)
        st_rows.append(
            [gtm_cells, ltm_columns, tuning.energy_pj / 1000,
             100 * tuning.energy_pj / base.energy_pj]
        )

    parts = [
        format_table(
            ["PIM configuration", "energy uJ", "digital/PIM ratio"],
            pim_rows,
            title=(
                f"VGG-11 inference energy (digital MAC baseline "
                f"{digital.energy_uj:.1f} uJ)"
            ),
        ),
        format_table(
            ["GTM cells", "LTM cols", "ST energy nJ", "% of base"],
            st_rows,
            title="Self-tuning energy increment (VGG-11, bit-serial base)",
        ),
    ]
    return "\n\n".join(parts)


def test_energy(benchmark):
    text = benchmark.pedantic(_run_energy, rounds=1, iterations=1)
    write_result("energy", text)
    assert "digital/PIM ratio" in text
    # The default LTM=1 deployment must stay at percent-level energy cost.
    ltm1 = [
        line.split()
        for line in text.splitlines()
        if line.split()[:2] == ["100000", "1"]
    ]
    assert ltm1 and float(ltm1[0][-1]) < 5.0
