"""Microbenchmarks of the PIM crossbar substrate itself.

Not a paper table — these time the simulation machinery (array MVM,
differential mapping, chip deployment) and verify the ideal-chip path
stays exactly equal to the fake-quant path while being benchmarked.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.pim import ADC, CrossbarArray, PimChip
from repro.quant import QConfig, QuantLinear
from repro.variability.sampler import VariabilitySpec


def _deployed_chip(rng):
    layer = QuantLinear(512, 128, QConfig(activation_bits=8, weight_bits=4))
    layer.weight.data = rng.normal(size=(128, 512)) * 0.1
    layer.refresh_weight_scale()
    layer.set_activation_scale(0.02)
    chip = PimChip(VariabilitySpec.null(), array_rows=256, array_cols=128, seed=0)
    mapped = chip.deploy_linear(layer, "fc")
    return layer, mapped


def test_crossbar_mvm_throughput(benchmark):
    rng = np.random.default_rng(0)
    array = CrossbarArray(512, 512, adc=ADC(ideal=True))
    array.program(rng.uniform(0, 1, size=(512, 512)))
    x = rng.integers(-127, 128, size=(32, 512)).astype(float)
    benchmark(array.mvm, x)


def test_chip_linear_inference(benchmark):
    rng = np.random.default_rng(1)
    layer, mapped = _deployed_chip(rng)
    x = rng.normal(size=(32, 512)) * 0.3
    result = benchmark(mapped.forward, x)
    with no_grad():
        expected = layer(Tensor(x)).data
    assert np.allclose(result, expected, atol=1e-9)


def test_fake_quant_inference(benchmark):
    rng = np.random.default_rng(1)
    layer, _ = _deployed_chip(rng)
    x = Tensor(rng.normal(size=(32, 512)) * 0.3)

    def forward():
        with no_grad():
            return layer(x).data

    benchmark(forward)
