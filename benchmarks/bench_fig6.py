"""Fig. 6: self-tuning under mixed-type variation (A4W2).

Paper setting: A4W2 ResNet-18/CIFAR-100, mixed-type variation
(sigma_B = sigma_W), sigma_tot in {0.1, 0.3, 0.5}.  Three conditions per
variance model: QAVAT alone, QAVAT + matching ST, QAVAT + the *wrong* ST.
Paper shape: QAVAT+ST nearly flat near the clean accuracy; QAVAT alone
collapses with sigma; wrong ST is worse than no ST at all.

Per the paper's deployment flow, QAVAT is trained with within-chip
variation only (sigma_W = sigma_tot / sqrt(2), matching the deployment
mix), then the tuning modules are appended without retraining.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import bench_scale, resnet_workload, spec_from, trained, write_result
from repro.eval.robustness import evaluate_robustness
from repro.experiments.tables import format_series
from repro.selftuning import SelfTuningConfig, attach_self_tuning, correct_kind_for, detach_self_tuning

SIGMA_TOTALS = (0.1, 0.3, 0.5)
VARIANCE_MODELS = ("weight-proportional", "layer-fixed")
WRONG = {"global": "layer", "layer": "global"}


def _st_config(kind: str, sigma_tot: float, variance_model: str) -> SelfTuningConfig:
    # Paper defaults: 1e3 GTM cells, 1 LTM column; the hardest layer-fixed
    # settings (sigma 0.3, 0.5) use 1e5 cells and 16 columns.
    if variance_model == "layer-fixed" and sigma_tot >= 0.3:
        return SelfTuningConfig(kind=kind, gtm_cells=100_000, ltm_columns=16)
    return SelfTuningConfig(kind=kind, gtm_cells=1000, ltm_columns=1)


def run_st_comparison(notation: str, variance_models=VARIANCE_MODELS) -> str:
    scale = bench_scale()
    model_name, workload = resnet_workload() if notation == "A4W2" else resnet_workload()
    blocks = []
    for variance_model in variance_models:
        right_kind = correct_kind_for(variance_model)
        series: dict[str, list[float]] = {"QAVAT": [], "QAVAT+ST": [], "QAVAT+WrongST": []}
        for sigma_tot in SIGMA_TOTALS:
            sigma_each = sigma_tot / np.sqrt(2.0)
            model, test = trained(
                "qavat", model_name, workload, notation, sigma_each, 0.0, variance_model
            )
            eval_spec = spec_from(sigma_each, sigma_each, variance_model)

            def mean_acc():
                return (
                    100
                    * evaluate_robustness(
                        model, test, eval_spec, num_chips=scale.num_chips, seed=42
                    ).mean
                )

            detach_self_tuning(model)
            series["QAVAT"].append(mean_acc())
            attach_self_tuning(model, _st_config(right_kind, sigma_tot, variance_model))
            series["QAVAT+ST"].append(mean_acc())
            attach_self_tuning(model, _st_config(WRONG[right_kind], sigma_tot, variance_model))
            series["QAVAT+WrongST"].append(mean_acc())
            detach_self_tuning(model)
        blocks.append(
            format_series(
                "sigma_tot",
                list(SIGMA_TOTALS),
                series,
                title=(
                    f"Fig. 6 {notation}, {variance_model} (mixed-type) — "
                    f"{model_name}/{workload}, scale={scale.name}"
                ),
            )
        )
    return "\n\n".join(blocks)


def test_fig6(benchmark):
    text = benchmark.pedantic(lambda: run_st_comparison("A4W2"), rounds=1, iterations=1)
    text += (
        "\n\npaper shape (A4W2 ResNet-18): ST holds accuracy nearly flat; "
        "QAVAT alone collapses; wrong ST is destructive (< QAVAT alone)."
    )
    write_result("fig6", text)
    assert "QAVAT+WrongST" in text
