"""Table I: QAVAT vs QAT vs PTQ-VAT at the lowest/highest variability.

Paper setting: within-chip variability only, layer-fixed variance,
sigma in {0.1, 0.5}.  Paper reference values (mean accuracy, %):

    model      A/W  | s=0.1: VAT    QAT    QAVAT | s=0.5: VAT    QAT    QAVAT
    ResNet-18  4/2  |        47.18  66.65  67.08 |        2.08   13.58  49.28
    ResNet-18  8/4  |        73.71  74.00  74.61 |        19.05  8.37   65.70
    VGG-11     4/2  |        53.76  87.10  87.21 |        29.72  68.36  79.65
    VGG-11     8/4  |        88.91  88.42  89.00 |        77.70  37.88  83.09
    LeNet-5    2/2  |        62.75  98.21  98.33 |        53.82  90.03  96.38

The shape to reproduce: QAVAT >= QAT >> PTQ-VAT at low sigma, and QAVAT
clearly ahead of both at sigma = 0.5.
"""

from __future__ import annotations

import os

from benchmarks.conftest import bench_scale, spec_from, trained, write_result
from repro.eval.robustness import evaluate_robustness
from repro.experiments.tables import format_table

PAPER = {
    ("lenet5", "A2W2", 0.1): {"ptq-vat": 62.75, "qat": 98.21, "qavat": 98.33},
    ("lenet5", "A2W2", 0.5): {"ptq-vat": 53.82, "qat": 90.03, "qavat": 96.38},
    ("vgg11", "A4W2", 0.1): {"ptq-vat": 53.76, "qat": 87.10, "qavat": 87.21},
    ("vgg11", "A4W2", 0.5): {"ptq-vat": 29.72, "qat": 68.36, "qavat": 79.65},
    ("vgg11", "A8W4", 0.1): {"ptq-vat": 88.91, "qat": 88.42, "qavat": 89.00},
    ("vgg11", "A8W4", 0.5): {"ptq-vat": 77.70, "qat": 37.88, "qavat": 83.09},
}

DEFAULT_ROWS = [("lenet5", "mnist", "A2W2"), ("vgg11", "cifar10", "A4W2")]
FULL_ROWS = DEFAULT_ROWS + [("vgg11", "cifar10", "A8W4")]

VARIANCE_MODEL = "layer-fixed"
SIGMAS = (0.1, 0.5)
METHODS = ("ptq-vat", "qat", "qavat")


def _run_table1() -> str:
    scale = bench_scale()
    rows_cfg = FULL_ROWS if os.environ.get("REPRO_BENCH_FULL") else DEFAULT_ROWS
    rows = []
    for model_name, workload, notation in rows_cfg:
        for sigma in SIGMAS:
            eval_spec = spec_from(sigma, 0.0, VARIANCE_MODEL)
            row = [model_name, notation, sigma]
            for method in METHODS:
                model, test = trained(
                    method, model_name, workload, notation, sigma, 0.0, VARIANCE_MODEL
                )
                result = evaluate_robustness(
                    model, test, eval_spec, num_chips=scale.num_chips, seed=42
                )
                row.append(100 * result.mean)
            paper = PAPER.get((model_name, notation, sigma), {})
            row.append(
                "/".join(f"{paper.get(m, float('nan')):.1f}" for m in METHODS)
                if paper
                else "-"
            )
            rows.append(row)
    return format_table(
        ["model", "A/W", "sigma", "PTQ-VAT", "QAT", "QAVAT", "paper(V/Q/QV)"],
        rows,
        title=f"Table I (within-chip, layer-fixed variance) — scale={scale.name}",
    )


def test_table1(benchmark):
    text = benchmark.pedantic(_run_table1, rounds=1, iterations=1)
    write_result("table1", text)
    assert "QAVAT" in text
