"""Footnote-2 extension: self-tuning compensates temperature drift / aging.

Not a numbered figure in the paper, but a claim it makes in Sec. III-B
footnote 2: the self-tuning architecture "can be generalized to compensate
for any correlated weight variation, e.g., due to temperature drifts or
aging".  This bench quantifies that generalization:

* a QAVAT model (trained against within-chip variation) is deployed on a
  chip whose correlated epsilon drifts with operating time (OU temperature
  process + log-time aging);
* mean accuracy over the timeline is compared for three GTM re-measurement
  policies: never (deployment-time measurement only), periodic, and every
  inference.

Expected shape: never << periodic <= every; the stale policy decays toward
chance as the drift escapes the deployment-time estimate.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import bench_scale, spec_from, trained, write_result
from repro.experiments.tables import format_table
from repro.pim.drift import AgingDrift, DriftingChip, TemperatureDrift
from repro.selftuning import (
    DriftCompensator,
    SelfTuningConfig,
    attach_self_tuning,
    detach_self_tuning,
    run_drift_timeline,
)
from repro.variability.sampler import VariabilitySampler

SIGMA_WITHIN = 0.3
POLICIES = ("never", "periodic", "every")


class _CombinedDrift:
    def __init__(self) -> None:
        self.temperature = TemperatureDrift(theta=0.05, sigma=0.1, amplitude=0.12, period=24.0)
        self.aging = AgingDrift(nu=0.04, t0=1.0)

    def reset(self) -> None:
        self.temperature.reset()

    def epsilon_at(self, time: float, rng: np.random.Generator) -> float:
        return self.temperature.epsilon_at(time, rng) + self.aging.epsilon_at(time, rng)


def _run_drift() -> str:
    scale = bench_scale()
    model, test = trained(
        "qavat", "lenet5", "mnist", "A4W2", SIGMA_WITHIN, 0.0, "weight-proportional"
    )
    spec = spec_from(SIGMA_WITHIN, 0.0, "weight-proportional")
    times = np.linspace(0.0, 48.0, 9)
    attach_self_tuning(model, SelfTuningConfig(kind="global", gtm_cells=10_000))

    num_chips = max(scale.num_chips // 10, 3)
    mean_by_policy: dict[str, float] = {}
    final_by_policy: dict[str, float] = {}
    for policy in POLICIES:
        means, finals = [], []
        for chip_index in range(num_chips):
            base = VariabilitySampler(spec, seed=1000 + chip_index).sample_chip()
            chip = DriftingChip(base, _CombinedDrift(), seed=chip_index)
            compensator = DriftCompensator(policy=policy, period=8.0)
            timeline = run_drift_timeline(model, test, chip, spec, times, compensator)
            accuracies = [accuracy for _, _, accuracy in timeline]
            means.append(float(np.mean(accuracies)))
            finals.append(accuracies[-1])
        mean_by_policy[policy] = 100 * float(np.mean(means))
        final_by_policy[policy] = 100 * float(np.mean(finals))
    detach_self_tuning(model)

    rows = [
        [policy, mean_by_policy[policy], final_by_policy[policy]]
        for policy in POLICIES
    ]
    return format_table(
        ["re-measurement policy", "mean acc % (0-48h)", "final acc % (48h)"],
        rows,
        title=(
            "Self-tuning under temperature drift + aging "
            f"(sigma_W={SIGMA_WITHIN}, {num_chips} chips; footnote-2 extension)"
        ),
    )


def test_drift_compensation(benchmark):
    text = benchmark.pedantic(_run_drift, rounds=1, iterations=1)
    write_result("drift", text)
    lines = [line for line in text.splitlines() if line and line[0] in "nep"]
    values = {line.split()[0]: float(line.split()[-2]) for line in lines}
    # Fresh measurements must beat the stale deployment-time estimate.
    assert values["every"] > values["never"]
