"""Serving-engine benchmark: batched fleet throughput vs sequential.

Not a paper table — this benchmarks the :mod:`repro.serve` subsystem on a
LeNet-class workload (pool of 4 chips, batch 32) and enforces the two
serving guarantees:

* dynamic micro-batching beats sequential per-request inference by >= 3x
  on the same workload and fleet;
* a fixed seed reproduces identical per-request outputs across two runs.

Run under pytest for the full benchmark harness::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -q

or directly for the fast smoke entrypoint (no pytest-benchmark timing,
just the speedup/determinism checks and a throughput line)::

    PYTHONPATH=src python benchmarks/bench_serving.py

``--smoke`` shrinks the fleet and the request stream (and relaxes the
speedup floor to 2x, since a 2-chip fleet amortizes less) so the CI perf
canary finishes in well under a minute.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

if __name__ == "__main__":  # smoke entrypoint works without PYTHONPATH=src
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
    )

from repro.datasets.loaders import batch_iterator
from repro.datasets.synthetic import synthetic_mnist
from repro.models import build_model
from repro.nn import init
from repro.quant.calibration import calibrate_model
from repro.quant.ptq import convert_to_quantized
from repro.quant.qconfig import QConfig
from repro.serve import (
    FaultInjector,
    FaultPlan,
    InferenceEngine,
    ReplayTrace,
    ServeConfig,
    UniformTrace,
)
from repro.variability.models import WeightProportionalVariance
from repro.variability.sampler import VariabilitySpec

NUM_CHIPS = 4
MAX_BATCH = 32
REQUESTS = 128
CHAOS_CHIPS = 16
GOODPUT_FLOOR = 0.95


def _serving_workload(requests: int = REQUESTS):
    """A calibrated LeNet-class model + request stream (no training needed:
    throughput does not depend on how good the weights are)."""
    init.seed(0)
    train, test = synthetic_mnist(train_per_class=16, test_per_class=8)
    model = build_model("lenet5-mini")
    convert_to_quantized(model, QConfig.from_notation("A4W2"))
    calibrate_model(model, batch_iterator(train, 32, shuffle=False), max_batches=4)
    model.eval()
    spec = VariabilitySpec.mixed(0.3 / np.sqrt(2.0), WeightProportionalVariance())
    workload = np.concatenate([test.images] * (1 + (requests - 1) // len(test)))[:requests]
    ids = [f"r{i:05d}" for i in range(requests)]
    return model, spec, workload, ids


def _engine(model, spec, max_batch: int, max_wait: int, seed: int = 0,
            num_chips: int = NUM_CHIPS, backend: str = "fake-quant",
            fused: bool = True):
    engine = InferenceEngine(
        model,
        spec,
        num_chips=num_chips,
        config=ServeConfig(
            max_batch=max_batch, max_wait=max_wait, seed=seed, backend=backend,
            fused=fused,
        ),
    )
    engine.warm_up()  # programming cost stays out of the serving measurement
    return engine


def _timed_run(engine, workload, ids) -> float:
    started = time.perf_counter()
    engine.run(workload, ids=ids)
    return time.perf_counter() - started


def _best_timed(build_engine, workload, ids, repeats: int = 3):
    """Best-of-N wall time over fresh engines (one-core CI boxes are noisy;
    the perf canary gates on a 20% drop, so single-shot jitter must not
    trip it).  Returns ``(best_seconds, last_engine)``."""
    best = None
    engine = None
    for _ in range(max(1, repeats)):
        engine = build_engine()
        elapsed = _timed_run(engine, workload, ids)
        best = elapsed if best is None else min(best, elapsed)
    return best, engine


def test_batched_beats_sequential_3x():
    """Acceptance: batched fleet throughput >= 3x sequential per-request.

    The baseline is per-request dispatch *by definition*, so it runs with
    ``fused=False`` — otherwise every single-request batch of the tick
    would be stacked into one fused group and the baseline would stop
    being sequential at all.
    """
    model, spec, workload, ids = _serving_workload()
    sequential = _timed_run(
        _engine(model, spec, 1, 0, fused=False), workload, ids
    )
    batched = _timed_run(_engine(model, spec, MAX_BATCH, 4), workload, ids)
    speedup = sequential / batched
    print(f"\nsequential {REQUESTS / sequential:.0f} sps, "
          f"batched {REQUESTS / batched:.0f} sps, speedup {speedup:.2f}x")
    assert speedup >= 3.0, f"batched speedup {speedup:.2f}x below the 3x floor"


def test_fixed_seed_reproduces_outputs():
    """Acceptance: same seed + same requests => identical outputs, twice."""
    model, spec, workload, ids = _serving_workload()
    first = _engine(model, spec, MAX_BATCH, 4, seed=3).run(workload, ids=ids)
    second = _engine(model, spec, MAX_BATCH, 4, seed=3).run(workload, ids=ids)
    assert all(np.array_equal(first[rid], second[rid]) for rid in ids)


def _chaos_run(model, spec, workload, ids, trace, seed: int = 0,
               num_chips: int = CHAOS_CHIPS, backend: str = "fake-quant"):
    """One chaos serving session under the default fault mix."""
    engine = _engine(model, spec, MAX_BATCH, 4, seed=seed,
                     num_chips=num_chips, backend=backend)
    FaultInjector(engine, FaultPlan(seed=seed)).install()
    started = time.perf_counter()
    outputs = engine.run_trace(workload, trace, ids=ids)
    return engine, outputs, time.perf_counter() - started


def test_chaos_goodput_floor():
    """Acceptance: the default fault mix (1 death, 2 stuck-at maps, 5%
    transients) on a 16-chip fleet never crashes the engine and serves
    >= 95% of requests; the rest carry dead-letter records."""
    model, spec, workload, ids = _serving_workload()
    trace = ReplayTrace.from_trace(UniformTrace(rate=8.0), len(ids))
    engine, outputs, _ = _chaos_run(model, spec, workload, ids, trace)
    goodput = engine.telemetry.goodput
    assert len(outputs) + len(engine.dead_letters) == len(ids)
    assert goodput >= GOODPUT_FLOOR, f"goodput {goodput:.3f} below floor"
    for letter in engine.dead_letters.values():
        assert letter.reason in ("retries-exhausted", "timeout")


def test_chaos_run_is_bit_reproducible():
    """Acceptance: same (engine seed, fault seed, trace) => identical fault
    schedule, dead-letter set, and served outputs."""
    model, spec, workload, ids = _serving_workload()
    trace = ReplayTrace.from_trace(UniformTrace(rate=8.0), len(ids))
    first, out_a, _ = _chaos_run(model, spec, workload, ids, trace, seed=3)
    second, out_b, _ = _chaos_run(model, spec, workload, ids, trace, seed=3)
    assert first.faults.schedule == second.faults.schedule
    assert set(first.dead_letters) == set(second.dead_letters)
    assert set(out_a) == set(out_b)
    assert all(np.array_equal(out_a[rid], out_b[rid]) for rid in out_a)


def test_batched_engine_throughput(benchmark):
    """Steady-state batched serving rate (pytest-benchmark timing)."""
    model, spec, workload, ids = _serving_workload()
    engine = _engine(model, spec, MAX_BATCH, 4)

    def serve():
        return engine.run(workload, ids=ids)

    benchmark(serve)


def test_sequential_engine_throughput(benchmark):
    """The per-request baseline the batched path is measured against
    (``fused=False``: see :func:`test_batched_beats_sequential_3x`)."""
    model, spec, workload, ids = _serving_workload()
    engine = _engine(model, spec, 1, 0, fused=False)
    benchmark(lambda: engine.run(workload, ids=ids))


def main(argv=None) -> int:
    """Fast smoke entrypoint: speedup + fused parity without pytest."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI perf canary: 2 chips, 96 requests, 2x speedup floor",
    )
    parser.add_argument(
        "--backend",
        choices=("fake-quant", "circuit"),
        default="fake-quant",
        help="chip-programming fidelity the fleet serves through",
    )
    parser.add_argument(
        "--bench-json",
        default="BENCH_serving.json",
        metavar="PATH",
        help="perf-trajectory file appended via repro.obs.BenchRecorder "
        "(empty string disables)",
    )
    args = parser.parse_args(argv)
    num_chips = 2 if args.smoke else NUM_CHIPS
    # Enough requests that several full batches become due on one tick —
    # otherwise the fused cross-chip path never has a group to stack; the
    # smaller smoke batch gives the group more batches to amortize over.
    requests = 96 if args.smoke else REQUESTS
    max_batch = 16 if args.smoke else MAX_BATCH
    # The circuit path pays per-tile DAC/MVM/ADC modelling, so batching
    # amortizes python overhead less; it still must win, just by less.
    floor = 1.2 if args.backend == "circuit" else (2.0 if args.smoke else 3.0)
    model, spec, workload, ids = _serving_workload(requests)
    sequential = _timed_run(
        _engine(model, spec, 1, 0, num_chips=num_chips, backend=args.backend,
                fused=False),
        workload, ids,
    )
    unfused, _ = _best_timed(
        lambda: _engine(model, spec, max_batch, 4, num_chips=num_chips,
                        backend=args.backend, fused=False),
        workload, ids,
    )
    batched, engine = _best_timed(
        lambda: _engine(model, spec, max_batch, 4, num_chips=num_chips,
                        backend=args.backend),
        workload, ids,
    )
    speedup = sequential / batched
    fused_speedup = unfused / batched
    # Parity doubles as the reproducibility check: a fused and an unfused
    # engine at the same seed must serve bit-identical outputs and land on
    # the same telemetry digest.
    fused_run = _engine(
        model, spec, max_batch, 4, seed=3, num_chips=num_chips,
        backend=args.backend,
    )
    unfused_run = _engine(
        model, spec, max_batch, 4, seed=3, num_chips=num_chips,
        backend=args.backend, fused=False,
    )
    first = fused_run.run(workload, ids=ids)
    second = unfused_run.run(workload, ids=ids)
    reproducible = all(np.array_equal(first[rid], second[rid]) for rid in ids)
    parity = fused_run.telemetry.digest() == unfused_run.telemetry.digest()
    report = engine.telemetry.report()
    latency = report["latency"]
    fused_stats = report["fused"]
    print(f"fleet: {num_chips} chips, {requests} requests, max_batch={max_batch}, "
          f"backend={args.backend}")
    print(f"sequential: {requests / sequential:8.1f} samples/s")
    print(f"unfused:    {requests / unfused:8.1f} samples/s")
    print(f"fused:      {requests / batched:8.1f} samples/s   "
          f"{speedup:.2f}x vs sequential, {fused_speedup:.2f}x vs unfused")
    print(f"fused groups: {fused_stats['groups']} "
          f"({fused_stats['batches']} batches, "
          f"{fused_stats['fallback_batches']} fallbacks)")
    print(f"request latency ms: p50 {1e3 * latency['p50']:.2f}  "
          f"p95 {1e3 * latency['p95']:.2f}  p99 {1e3 * latency['p99']:.2f}")
    breakdown = engine.obs.recorder.breakdown()
    for name in sorted(breakdown, key=lambda n: -breakdown[n]["total_s"]):
        stats = breakdown[name]
        print(f"  {name:<16s} x{stats['count']:<4d} "
              f"total {1e3 * stats['total_s']:8.2f} ms  "
              f"mean {1e3 * stats['mean_s']:.3f} ms")
    print(f"fused/unfused output parity: {'ok' if reproducible else 'FAILED'}")
    print(f"fused/unfused digest parity: {'ok' if parity else 'FAILED'}")
    ok = speedup >= floor and reproducible and parity
    if args.bench_json:
        from repro.obs import BenchRecorder

        def scale(fused: bool) -> dict:
            return {
                "model": "lenet5-mini",
                "notation": "A4W2",
                "backend": args.backend,
                "num_chips": num_chips,
                "max_batch": max_batch,
                "requests": requests,
                "smoke": bool(args.smoke),
                "fused": bool(fused),
                **engine.policy.describe(),
            }

        common = {
            "sequential_sps": requests / sequential,
            "latency_p50_ms": 1e3 * latency["p50"],
            "latency_p95_ms": 1e3 * latency["p95"],
            "latency_p99_ms": 1e3 * latency["p99"],
            "occupancy": report["occupancy_mean"],
            "cache_hit_rate": report.get("cache", {}).get("hit_rate", 0.0),
            "energy_uj_per_request": report["energy_uj"]["per_request"],
            "reproducible": bool(reproducible and parity),
        }
        recorder = BenchRecorder(args.bench_json, bench="serving")
        # Both dispatch paths get their own trajectory lineage (the
        # regression gate compares whole scale dicts), so a fused-path
        # win can never mask an unfused-path regression or vice versa.
        recorder.record(
            {
                **common,
                "throughput_sps": requests / unfused,
                "speedup": float(sequential / unfused),
            },
            scale=scale(fused=False),
        )
        recorder.record(
            {
                **common,
                "throughput_sps": requests / batched,
                "speedup": float(speedup),
                "fused_speedup": float(fused_speedup),
                "fused_groups": int(fused_stats["groups"]),
                "fused_batches": int(fused_stats["batches"]),
            },
            scale=scale(fused=True),
        )
        print(f"bench trajectory: {args.bench_json} "
              f"({len(recorder.runs())} runs)")
    print("smoke: " + ("PASS" if ok else "FAIL"))
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
