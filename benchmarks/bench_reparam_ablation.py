"""Ablation: reparameterized (unbiased, Eq. 2) vs naive (biased, Eq. 1) injection.

The paper argues (footnote 1: no prior VAT work had described the need for
reparameterization) that sampling noise numerically and adding it to the
weights yields a biased gradient estimator, because the dependence of the
noise distribution on the weights is invisible to backprop.  This bench
trains QAVAT twice under weight-proportional variance — the model where the
two estimators differ — with identical budgets and compares robustness.
"""

from __future__ import annotations

from benchmarks.conftest import bench_scale, spec_from, write_result
from repro.datasets.loaders import batch_source
from repro.eval.robustness import evaluate_robustness
from repro.experiments.configs import MethodConfig, dataset_for, model_for
from repro.experiments.tables import format_table
from repro.quant.qconfig import QConfig
from repro.training.baselines import train_qavat

SIGMA = 0.5
VARIANCE_MODEL = "weight-proportional"


def _train(mode: str, seed: int):
    scale = bench_scale()
    train, test = dataset_for("mnist", scale)
    model = model_for("lenet5", "mnist", scale, seed=seed)
    spec = spec_from(SIGMA, 0.0, VARIANCE_MODEL)
    train_qavat(
        model,
        batch_source(train, scale.batch_size, seed=seed),
        QConfig.from_notation("A4W2"),
        spec,
        epochs=scale.train_epochs,
        lr=scale.lr,
        n_variation_samples=2,
        float_pretrain_epochs=scale.float_pretrain_epochs,
        injection_mode=mode,
    )
    return model, test


def _run_ablation() -> str:
    scale = bench_scale()
    eval_spec = spec_from(SIGMA, 0.0, VARIANCE_MODEL)
    rows = []
    for mode in ("reparameterized", "naive"):
        # Single tiny-scale runs are seed-sensitive; average a few.
        means, stds = [], []
        for seed in (1, 2, 3):
            model, test = _train(mode, seed)
            result = evaluate_robustness(
                model, test, eval_spec, num_chips=scale.num_chips, seed=42
            )
            means.append(100 * result.mean)
            stds.append(100 * result.std)
        rows.append([mode, sum(means) / len(means), sum(stds) / len(stds)])
    return format_table(
        ["injection mode", "mean acc %", "std %"],
        rows,
        title=(
            f"Eq. 1 vs Eq. 2 ablation (sigma={SIGMA}, {VARIANCE_MODEL}, "
            f"LeNet-5) — scale={scale.name}"
        ),
    )


def test_reparam_ablation(benchmark):
    text = benchmark.pedantic(_run_ablation, rounds=1, iterations=1)
    write_result("reparam_ablation", text)
    assert "reparameterized" in text
