"""Ablation: activation-scale calibrators (minmax vs percentile vs KL).

The paper fixes activation scales with a moving-average min-max calibrator
(Sec. II-A).  Percentile and KL (entropy) calibration clip activation
outliers, trading clipping error against resolution.  This bench runs QAVAT
with each calibrator at one within-chip sigma and compares clean and robust
accuracy — quantifying how much the paper's simple choice leaves on the
table (typically: little, which supports the paper's design decision).
"""

from __future__ import annotations

from benchmarks.conftest import bench_scale, spec_from, write_result
from repro.datasets.loaders import batch_source
from repro.eval.robustness import evaluate_clean, evaluate_robustness
from repro.experiments.configs import dataset_for, model_for
from repro.experiments.tables import format_table
from repro.quant.qconfig import QConfig
from repro.training.baselines import train_qavat

SIGMA = 0.3
NOTATION = "A4W2"
CALIBRATORS = ("minmax", "percentile", "kl")


def _run_calibrators() -> str:
    scale = bench_scale()
    spec = spec_from(SIGMA, 0.0, "weight-proportional")
    rows = []
    for calibrator in CALIBRATORS:
        cleans, robusts = [], []
        # Tiny-scale runs are seed-sensitive; average a couple of seeds.
        for seed in (31, 32):
            train, test = dataset_for("mnist", scale)
            model = model_for("lenet5", "mnist", scale, seed=seed)
            qconfig = QConfig.from_notation(NOTATION, calibrator=calibrator)
            train_qavat(
                model,
                batch_source(train, scale.batch_size, seed=seed),
                qconfig,
                spec,
                epochs=scale.train_epochs,
                lr=scale.lr,
                float_pretrain_epochs=scale.float_pretrain_epochs,
            )
            cleans.append(evaluate_clean(model, test))
            robusts.append(
                evaluate_robustness(model, test, spec, num_chips=scale.num_chips).mean
            )
        rows.append(
            [calibrator, 100 * sum(cleans) / len(cleans), 100 * sum(robusts) / len(robusts)]
        )
    return format_table(
        ["calibrator", "clean %", "robust %"],
        rows,
        title=(
            f"Activation calibrator ablation (LeNet/{NOTATION}, "
            f"sigma_W={SIGMA}; paper uses minmax)"
        ),
    )


def test_calibrators(benchmark):
    text = benchmark.pedantic(_run_calibrators, rounds=1, iterations=1)
    write_result("calibrators", text)
    values = {
        line.split()[0]: float(line.split()[-1])
        for line in text.splitlines()
        if line.split() and line.split()[0] in CALIBRATORS
    }
    # All calibrators should produce usable models (well above chance).
    assert min(values.values()) > 30.0
