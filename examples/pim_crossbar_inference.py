"""Run a quantized layer through the circuit-level crossbar substrate.

Shows the correspondence between the two fidelities the library offers:

* the fast "fake-quant" path used during training, and
* the PIM chip path: integer codes -> DAC -> differential crossbar tiles ->
  ADC -> digital rescale.

With an ideal ADC and no variation the two agree bit-exactly; the example
then degrades the ADC and adds fabrication variation, and finally reads
eps_B off the chip with a physically simulated GTM column (Fig. 3).

Run:  python examples/pim_crossbar_inference.py
"""

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.pim import ADC, PimChip
from repro.quant import QConfig, QuantLinear
from repro.variability import VariabilitySpec, WeightProportionalVariance


def main() -> None:
    rng = np.random.default_rng(0)
    layer = QuantLinear(256, 64, QConfig(activation_bits=4, weight_bits=2))
    layer.weight.data = rng.normal(size=(64, 256)) * 0.1
    layer.refresh_weight_scale()
    layer.set_activation_scale(0.02)
    x = rng.normal(size=(8, 256)) * 0.1

    with no_grad():
        fake_quant = layer(Tensor(x)).data

    # Ideal chip: 128x128 arrays, differential columns, perfect ADC.
    chip = PimChip(VariabilitySpec.null(), array_rows=128, array_cols=128, seed=0)
    mapped = chip.deploy_linear(layer, "fc")
    ideal = mapped.forward(x)
    print(f"layer tiled onto {mapped.array_count} crossbar arrays")
    print(f"ideal chip vs fake-quant max |diff|:    {np.abs(ideal - fake_quant).max():.2e}")

    # Coarse ADC: bounded quantization error appears.
    coarse = PimChip(
        VariabilitySpec.null(),
        array_rows=128,
        array_cols=128,
        adc=ADC(bits=8, full_scale=256.0),
        seed=0,
    )
    noisy_adc = coarse.deploy_linear(layer, "fc").forward(x)
    print(f"8-bit ADC   vs fake-quant max |diff|:    {np.abs(noisy_adc - fake_quant).max():.2e}")

    # Fabrication variation: mixed-type, weight-proportional.
    spec = VariabilitySpec.mixed(0.2, WeightProportionalVariance())
    varied_chip = PimChip(spec, array_rows=128, array_cols=128, seed=7)
    varied = varied_chip.deploy_linear(layer, "fc").forward(x)
    print(f"varied chip vs fake-quant max |diff|:    {np.abs(varied - fake_quant).max():.2e}")
    print(f"true eps_B of this chip:                 {varied_chip.variation.eps_between:+.4f}")

    # Measure eps_B with a physical GTM column.
    for cells in (100, 10_000, 1_000_000):
        estimate = varied_chip.gtm_read(num_cells=cells)
        print(f"GTM estimate with {cells:>9,} cells:       {estimate:+.4f}")


if __name__ == "__main__":
    main()
