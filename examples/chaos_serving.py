"""Chaos serving: a 16-chip fleet under live faults, end to end.

``examples/lifecycle_serving.py`` covers graceful aging; this example
covers the ungraceful failures a real analog PIM deployment eats — and
the machinery that turns them into degraded service instead of crashes:

1. calibrate a LeNet-class model and stand up a 16-chip fleet with the
   full fault-tolerance stack on (retry + hedging, health state machine,
   spare provisioning);
2. install a seeded :class:`~repro.serve.FaultInjector` with the default
   chaos mix — one hard chip death, two stuck-at degradations applied
   through the chip backend, 5% transient dispatch errors, plus a dash
   of latency spikes;
3. replay a bursty trace; watch the schedule fire, retries absorb
   transients, the dead chip get quarantine-free retirement and a fresh
   deterministic spare (``chipNN+1``), and anything unservable land in
   dead-letter records rather than exceptions;
4. print the fault section of the telemetry report — goodput, fault
   counts by kind/chip, health transitions, replacements — and re-run
   the identical scenario to show it is bit-reproducible.

Run:  python examples/chaos_serving.py
"""

import numpy as np

from repro.datasets.loaders import batch_iterator
from repro.datasets.synthetic import synthetic_mnist
from repro.models import build_model
from repro.nn import init
from repro.quant import QConfig, calibrate_model, convert_to_quantized
from repro.serve import (
    BurstyTrace,
    FaultInjector,
    FaultPlan,
    HealthConfig,
    InferenceEngine,
    ReplayTrace,
    RetryPolicy,
    ServeConfig,
)
from repro.variability import FaultSpec, VariabilitySpec, WeightProportionalVariance

NUM_CHIPS = 16
REQUESTS = 192


def build_engine(model, spec, seed=7):
    engine = InferenceEngine(
        model,
        spec,
        num_chips=NUM_CHIPS,
        config=ServeConfig(
            max_batch=16,
            max_wait=2,
            policy="least-loaded",
            seed=seed,
            retry=RetryPolicy(max_attempts=4, hedge=True, timeout_ticks=64),
            health=HealthConfig(replace_retired=True),
        ),
    )
    engine.warm_up()
    return engine


def chaos_run(model, spec, workload, ids, trace, fault_seed=0):
    engine = build_engine(model, spec)
    injector = FaultInjector(
        engine,
        FaultPlan(
            seed=fault_seed,
            deaths=1,
            stuck_chips=2,
            stuck=FaultSpec(0.02, 0.01),
            transient_rate=0.05,
            latency_rate=0.02,
            horizon=16,
        ),
    )
    schedule = injector.install()
    outputs = engine.run_trace(workload, trace, ids=ids)
    return engine, schedule, outputs


def main() -> None:
    train, test = synthetic_mnist(train_per_class=16, test_per_class=8)
    init.seed(1)
    model = build_model("lenet5-mini")
    convert_to_quantized(model, QConfig.from_notation("A4W2"))
    calibrate_model(model, batch_iterator(train, 32, shuffle=False), max_batches=4)
    model.eval()

    spec = VariabilitySpec.mixed(0.2, WeightProportionalVariance())
    reps = 1 + (REQUESTS - 1) // len(test)
    workload = np.concatenate([test.images] * reps)[:REQUESTS]
    ids = [f"r{i:05d}" for i in range(REQUESTS)]
    # Pin arrival ticks so two runs see the same traffic, fault for fault.
    trace = ReplayTrace.from_trace(
        BurstyTrace(rate=2.0, burst_rate=24.0, period=16, duty=0.25, seed=3),
        REQUESTS,
    )

    print(f"{NUM_CHIPS}-chip fleet, {REQUESTS} requests, default chaos mix")
    engine, schedule, outputs = chaos_run(model, spec, workload, ids, trace)

    print("\nfault schedule (compiled at install, fired on tick):")
    for event in schedule:
        print(f"  t={event.tick:<3d} {event.kind:<9s} {event.chip_id}")

    faults = engine.telemetry.report()["faults"]
    served = [rid for rid in ids if rid in outputs]
    print(f"\nserved {len(served)}/{REQUESTS}  goodput {faults['goodput']:.3f}  "
          f"retries {faults['retries']}  hedges {faults['hedges']}")
    print(f"faults by kind: {faults['by_kind']}")
    for letter in engine.dead_letters.values():
        print(f"  dead letter {letter.id}: {letter.reason} "
              f"(last cause {letter.cause}, {letter.attempts} attempts)")
    for move in faults["replacements"]:
        print(f"  replacement t={move['time']:.0f}: "
              f"{move['old']} -> {move['new']}")
    print("health transitions:")
    for hop in faults["health_transitions"]:
        print(f"  t={hop['tick']:<3d} {hop['chip']:<10s} "
              f"{hop['source']} -> {hop['target']}  ({hop['reason']})")
    print("end-of-run health: " + "  ".join(
        f"{state}={len(cids)}" for state, cids in engine.health.summary().items()))

    # Same engine seed + fault seed + trace => the same run, bit for bit.
    engine2, schedule2, outputs2 = chaos_run(model, spec, workload, ids, trace)
    identical = (
        schedule == schedule2
        and set(engine.dead_letters) == set(engine2.dead_letters)
        and set(outputs) == set(outputs2)
        and all(np.array_equal(outputs[rid], outputs2[rid]) for rid in outputs)
    )
    print(f"\nre-run with identical seeds: "
          f"{'bit-identical' if identical else 'DIVERGED'}")

    print("\ntakeaway: faults stop being exceptional — deaths retire into "
          "deterministic spares, stuck cells stay stuck through reprogramming, "
          "transients are retried and hedged away, and whatever cannot be "
          "served is a recorded dead letter, not a crash.")


if __name__ == "__main__":
    main()
