"""Quickstart: train a variability-robust quantized model in ~30 seconds.

Walks the full QAVAT pipeline on a small LeNet-5:

1. build a model and a synthetic MNIST-like dataset;
2. train with QAVAT (A4W2 quantization + within-chip noise injection);
3. Monte-Carlo evaluate robustness the way the paper does — many sampled
   "chips", mean accuracy across them.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    QConfig,
    VariabilitySpec,
    evaluate_clean,
    evaluate_robustness,
    train_qavat,
)
from repro.datasets import batch_source, synthetic_mnist
from repro.models import build_model
from repro.nn import init
from repro.variability import LayerFixedVariance


def main() -> None:
    # Synthetic stand-in for MNIST (no network access in this environment).
    train, test = synthetic_mnist(train_per_class=32, test_per_class=8)
    print(f"dataset: {len(train)} train / {len(test)} test, shape {train.sample_shape}")

    init.seed(1)
    model = build_model("lenet5-mini")
    print(f"model: LeNet-5 (mini), {model.num_parameters():,} parameters")

    # The paper's hardest Scenario-1 setting: sigma_W = 0.5, layer-fixed.
    spec = VariabilitySpec.within_only(0.5, LayerFixedVariance())
    qconfig = QConfig.from_notation("A4W2")  # 4-bit activations, ternary weights

    print("training QAVAT (float pretrain -> quantize+calibrate -> Algorithm 1)...")
    train_qavat(
        model,
        batch_source(train, batch_size=32, seed=0),
        qconfig,
        spec,
        epochs=12,
        lr=0.02,
        float_pretrain_epochs=6,
        n_variation_samples=4,  # multi-sampling (Fig. 7a)
    )

    clean = evaluate_clean(model, test)
    robust = evaluate_robustness(model, test, spec, num_chips=20)
    print(f"clean accuracy:          {100 * clean:.1f}%")
    print(f"mean accuracy over {len(robust.accuracies)} chips: {100 * robust.mean:.1f}% "
          f"(std {100 * robust.std:.1f}%, worst {100 * robust.worst:.1f}%)")
    if robust.mean > 0.8:
        print("the model survives sigma=0.5 within-chip variation — QAVAT works.")


if __name__ == "__main__":
    main()
