"""Serving circuit-level chips: one fleet, two programming fidelities.

Until the ``repro.backends`` redesign, the serving engine could only
dispatch to fake-quant model replicas; the circuit-level
:class:`~repro.pim.chip.PimChip` path (DAC -> differential crossbar MVM ->
ADC) was reachable from experiments but not from the fleet.  This example
serves the *same trained model on the same sampled chips* through both
backends and shows what the unified API buys:

1. train QAVAT, calibrate, and stand up a fleet with
   ``ServeConfig(backend="fake-quant")`` — the fast training-fidelity path;
2. stand up the identical fleet with a configured
   :class:`~repro.backends.CircuitBackend` — every chip is now a tiled
   crossbar ``PimChip`` behind an ideal ADC, programmed from the *same*
   per-layer epsilon draws, so served predictions agree;
3. tighten the ADC to a realistic resolution and watch served accuracy
   absorb the quantization of the readout chain — a design-space question
   the fake-quant path cannot even ask;
4. read per-batch energy off the telemetry (the circuit backend prices
   batches with its own array geometry) and dispatch with the
   ``energy-aware`` policy.

Run:  python examples/circuit_serving.py
"""

import os
import sys

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro import QConfig, VariabilitySpec, train_qavat
from repro.backends import CircuitBackend
from repro.datasets import batch_source, synthetic_mnist
from repro.eval.metrics import top1_accuracy
from repro.models import build_model
from repro.nn import init
from repro.pim.converters import ADC
from repro.serve import InferenceEngine, ServeConfig, UniformTrace
from repro.variability import WeightProportionalVariance

REQUESTS = 96
NUM_CHIPS = 2


def main() -> None:
    train, test = synthetic_mnist(train_per_class=32, test_per_class=8)

    init.seed(1)
    model = build_model("lenet5-mini")
    train_spec = VariabilitySpec.within_only(0.3, WeightProportionalVariance())
    train_qavat(
        model,
        batch_source(train, 32, seed=0),
        QConfig.from_notation("A4W2"),
        train_spec,
        epochs=10,
        lr=0.02,
        float_pretrain_epochs=5,
        n_variation_samples=4,
    )
    model.eval()

    eval_spec = VariabilitySpec.mixed(
        0.3 / np.sqrt(2.0), WeightProportionalVariance()
    )
    workload = np.concatenate([test.images] * (1 + REQUESTS // len(test)))[:REQUESTS]
    labels = np.concatenate([test.labels] * (1 + REQUESTS // len(test)))[:REQUESTS]
    ids = [f"r{i:04d}" for i in range(REQUESTS)]

    backends = [
        ("fake-quant", "fake-quant"),
        ("circuit / ideal ADC", CircuitBackend(array_rows=128, array_cols=128)),
        (
            "circuit / 10-bit ADC",
            CircuitBackend(
                array_rows=128, array_cols=128, adc=ADC(bits=10, full_scale=2000.0)
            ),
        ),
    ]

    print(f"serving {REQUESTS} requests on {NUM_CHIPS} sampled chips per backend\n")
    outputs_by_label = {}
    for label, backend in backends:
        engine = InferenceEngine(
            model,
            eval_spec,
            num_chips=NUM_CHIPS,
            config=ServeConfig(
                max_batch=16, max_wait=2, policy="energy-aware", seed=9, backend=backend
            ),
        )
        engine.warm_up()
        engine.probe_fleet(test)
        outputs = engine.run_trace(workload, UniformTrace(rate=8), ids=ids)
        logits = np.stack([outputs[rid] for rid in ids])
        outputs_by_label[label] = logits
        telemetry = engine.telemetry
        described = engine.programmed_for(engine.fleet[0]).describe()
        arrays = described.get("arrays", "-")
        print(f"  {label:20s} accuracy {100 * top1_accuracy(logits, labels):5.1f}%  "
              f"arrays/chip {arrays!s:>3}  "
              f"energy {telemetry.total_energy_uj:7.1f} uJ "
              f"({telemetry.energy_per_request_uj:.2f} uJ/request)")

    ideal = outputs_by_label["circuit / ideal ADC"]
    fake = outputs_by_label["fake-quant"]
    agreement = (ideal.argmax(axis=1) == fake.argmax(axis=1)).mean()
    drift = np.abs(ideal - fake).max()
    print(f"\n  ideal-ADC circuit vs fake-quant: {100 * agreement:.1f}% identical "
          f"predictions, max |logit diff| {drift:.2e}")

    print("\ntakeaway: one ChipBackend protocol lets the same serving stack "
          "dispatch to fake-quant replicas for speed, to circuit-level chips "
          "for fidelity (they realize the same physical chip — predictions "
          "match under an ideal ADC), and to degraded design points (coarse "
          "ADCs, small arrays) to price accuracy against energy per request.")


if __name__ == "__main__":
    main()
