"""Manufacturing-facing analysis: chip-to-chip accuracy distribution & yield.

The paper reports mean accuracy over 2000 sampled chips; a fab cares about
the whole distribution — what fraction of parts meets spec (parametric
yield), how bad the tail is, and how both move with self-tuning.  This
example trains one QAVAT model, deploys it under mixed-type variation, and
prints:

* accuracy quantiles and a 95% CI on the mean;
* parametric yield against a sweep of accuracy specs, with and without
  the GTM self-tuning correction;
* the conditional accuracy-vs-eps_B profile (the Sec. III-A mechanism:
  chips in the eps_B tails are the failing ones).

Run:  python examples/yield_analysis.py
"""

import numpy as np

from repro import QConfig, VariabilitySpec, evaluate_clean, evaluate_robustness, train_qavat
from repro.datasets import batch_source, synthetic_mnist
from repro.eval.statistics import (
    accuracy_quantiles,
    epsilon_profile,
    mean_confidence_interval,
    parametric_yield,
)
from repro.models import build_model
from repro.nn import init
from repro.selftuning import SelfTuningConfig, attach_self_tuning, detach_self_tuning
from repro.variability import WeightProportionalVariance

SIGMA_TOTAL = 0.4
NUM_CHIPS = 120


def main() -> None:
    train, test = synthetic_mnist(train_per_class=32, test_per_class=8)
    variance_model = WeightProportionalVariance()
    sigma_each = SIGMA_TOTAL / np.sqrt(2.0)

    init.seed(3)
    model = build_model("lenet5-mini")
    train_spec = VariabilitySpec.within_only(sigma_each, variance_model)
    train_qavat(
        model,
        batch_source(train, 32, seed=0),
        QConfig.from_notation("A4W2"),
        train_spec,
        epochs=10,
        lr=0.02,
        float_pretrain_epochs=5,
    )
    print(f"clean accuracy: {100 * evaluate_clean(model, test):.1f}%\n")

    deploy_spec = VariabilitySpec.mixed(sigma_each, variance_model)
    bare = evaluate_robustness(model, test, deploy_spec, num_chips=NUM_CHIPS, seed=7)
    attach_self_tuning(model, SelfTuningConfig(kind="global", gtm_cells=10_000))
    tuned = evaluate_robustness(model, test, deploy_spec, num_chips=NUM_CHIPS, seed=7)
    detach_self_tuning(model)

    for label, result in (("no self-tuning", bare), ("with GTM self-tuning", tuned)):
        low, high = mean_confidence_interval(result)
        quantiles = accuracy_quantiles(result, (0.05, 0.5, 0.95))
        print(
            f"{label}: mean {100 * result.mean:.1f}% "
            f"(95% CI [{100 * low:.1f}, {100 * high:.1f}]), "
            f"p05 {100 * quantiles[0.05]:.1f}%, median {100 * quantiles[0.5]:.1f}%, "
            f"p95 {100 * quantiles[0.95]:.1f}%"
        )

    print("\nparametric yield vs accuracy spec:")
    print(f"{'spec %':>7} {'yield (bare) %':>15} {'yield (tuned) %':>16}")
    for spec in (0.5, 0.6, 0.7, 0.8, 0.9):
        print(
            f"{100 * spec:>7.0f} {100 * parametric_yield(bare, spec):>15.1f} "
            f"{100 * parametric_yield(tuned, spec):>16.1f}"
        )

    print("\naccuracy vs sampled eps_B (bare deployment):")
    for row in epsilon_profile(bare, bins=6):
        bar = "#" * int(40 * row["mean_accuracy"])
        print(
            f"  eps_B in [{row['eps_low']:+.2f}, {row['eps_high']:+.2f}): "
            f"{100 * row['mean_accuracy']:5.1f}%  {bar}"
        )


if __name__ == "__main__":
    main()
