"""Scenario 2 end-to-end: why self-tuning exists, and how to deploy it.

Reproduces the paper's Sec. III/IV-B story:

1. train QAVAT against *within-chip* variation only (the paper's deployment
   flow — the tuning modules are appended after training, no retraining);
2. deploy onto chips that also carry *between-chip* variation (mixed-type):
   accuracy collapses even though training handled within-chip noise;
3. attach the matching self-tuning architecture (GTM+LTM for layer-fixed
   variance): accuracy recovers to near-clean;
4. attach the WRONG self-tuning kind: worse than no tuning at all (Fig. 6).

Run:  python examples/deploy_self_tuning.py
"""

import numpy as np

from repro import QConfig, VariabilitySpec, evaluate_clean, evaluate_robustness, train_qavat
from repro.datasets import batch_source, synthetic_mnist
from repro.models import build_model
from repro.nn import init
from repro.selftuning import SelfTuningConfig, attach_self_tuning, detach_self_tuning
from repro.variability import LayerFixedVariance

SIGMA_TOTAL = 0.5


def main() -> None:
    train, test = synthetic_mnist(train_per_class=32, test_per_class=8)
    variance_model = LayerFixedVariance()
    sigma_each = SIGMA_TOTAL / np.sqrt(2.0)  # equal within/between components

    # Step 1: QAVAT against within-chip variation only.
    init.seed(1)
    model = build_model("lenet5-mini")
    train_spec = VariabilitySpec.within_only(sigma_each, variance_model)
    train_qavat(
        model,
        batch_source(train, 32, seed=0),
        QConfig.from_notation("A4W2"),
        train_spec,
        epochs=12,
        lr=0.02,
        float_pretrain_epochs=6,
        n_variation_samples=4,
    )
    clean = evaluate_clean(model, test)
    print(f"clean accuracy:                      {100 * clean:.1f}%")

    # Step 2: the fab also has between-chip variation -> mixed-type.
    deploy_spec = VariabilitySpec.mixed(sigma_each, variance_model)
    bare = evaluate_robustness(model, test, deploy_spec, num_chips=25)
    print(f"deployed, no self-tuning:            {100 * bare.mean:.1f}%  "
          f"(accuracy loss {100 * (clean - bare.mean):.1f}%)")

    # Step 3: append the matching ST (layer-fixed variance needs GTM+LTM).
    attach_self_tuning(model, SelfTuningConfig(kind="layer", gtm_cells=1000, ltm_columns=1))
    tuned = evaluate_robustness(model, test, deploy_spec, num_chips=25)
    print(f"deployed with GTM+LTM self-tuning:   {100 * tuned.mean:.1f}%  "
          f"(accuracy loss {100 * (clean - tuned.mean):.1f}%)")

    # Step 4: the wrong ST kind (GTM-only divide) is destructive here.
    attach_self_tuning(model, SelfTuningConfig(kind="global", gtm_cells=1000))
    wrong = evaluate_robustness(model, test, deploy_spec, num_chips=25)
    print(f"deployed with the WRONG self-tuning: {100 * wrong.mean:.1f}%")
    detach_self_tuning(model)

    print("\npaper claim check: matching ST cuts the loss to near-clean, while the "
          "wrong ST kind forfeits nearly all of that recovery (Fig. 6 shows it can "
          "even fall below no tuning at all).")


if __name__ == "__main__":
    main()
