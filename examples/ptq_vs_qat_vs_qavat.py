"""Three ways to produce a deployable quantized model, compared head-to-head.

Trains the same architecture with the same budget three ways:

* PTQ-VAT — prior practice: float variability-aware training, then
  post-training quantization (MMSE weight scales + min-max calibration);
* QAT — variability-oblivious quantization-aware training;
* QAVAT — the paper's joint algorithm.

and evaluates all three across a sigma sweep, printing the Table-I-style
ordering.  The expected shape: PTQ-VAT is crippled at low bitwidths; QAT
matches QAVAT only while sigma is small; QAVAT dominates as sigma grows.

Run:  python examples/ptq_vs_qat_vs_qavat.py
"""

from repro import QConfig, VariabilitySpec, evaluate_robustness
from repro.datasets import batch_source, synthetic_mnist
from repro.experiments.tables import format_series
from repro.models import build_model
from repro.nn import init
from repro.training import train_ptq_vat, train_qat, train_qavat
from repro.variability import LayerFixedVariance

SIGMAS = (0.1, 0.3, 0.5)
QC = QConfig.from_notation("A4W2")


def fresh_model():
    init.seed(1)
    return build_model("lenet5-mini")


def main() -> None:
    train, test = synthetic_mnist(train_per_class=32, test_per_class=8)
    series = {"qavat": [], "qat": [], "ptq-vat": []}

    # QAT is variability-oblivious: one model serves every sigma.
    qat_model = train_qat(
        fresh_model(), batch_source(train, 32, seed=0), QC,
        epochs=12, lr=0.02, float_pretrain_epochs=6,
    )

    for sigma in SIGMAS:
        spec = VariabilitySpec.within_only(sigma, LayerFixedVariance())
        qavat_model = train_qavat(
            fresh_model(), batch_source(train, 32, seed=0), QC, spec,
            epochs=12, lr=0.02, float_pretrain_epochs=6, n_variation_samples=4,
        )
        ptq_model = train_ptq_vat(
            fresh_model(), batch_source(train, 32, seed=0), QC, spec,
            epochs=18, lr=0.02,
        )
        for name, model in [("qavat", qavat_model), ("qat", qat_model), ("ptq-vat", ptq_model)]:
            result = evaluate_robustness(model, test, spec, num_chips=20)
            series[name].append(100 * result.mean)

    print(
        format_series(
            "sigma",
            list(SIGMAS),
            series,
            title="Mean accuracy under within-chip layer-fixed variation (A4W2 LeNet-5)",
        )
    )
    print("\nexpected ordering at sigma=0.5: QAVAT > QAT >> PTQ-VAT (paper Table I).")


if __name__ == "__main__":
    main()
