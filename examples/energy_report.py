"""Energy / latency / area report for a PIM deployment of LeNet-5.

Uses the event-based cost model (:mod:`repro.pim.energy`) to put physical
units on the paper's architecture decisions:

* analog PIM versus a digital MAC datapath (the paper's motivation, ref [1]);
* the cost of input bit-serialization and weight slicing;
* the incremental cost of self-tuning (GTM + LTM columns), in pJ and as a
  fraction — the Sec. III-B overhead story, in energy rather than FLOPs.

Run:  python examples/energy_report.py
"""

import numpy as np

from repro.models import build_model
from repro.pim.energy import (
    PimCostEstimator,
    digital_baseline_cost,
    geometries_from_model,
)
from repro.quant import QConfig, calibrate_model, convert_to_quantized


def main() -> None:
    rng = np.random.default_rng(0)
    model = build_model("lenet5")
    model = convert_to_quantized(model, QConfig.from_notation("A8W4"))
    calibrate_model(model, [rng.normal(size=(8, 1, 28, 28))])
    geometries = geometries_from_model(model, (1, 28, 28))
    print("LeNet-5 MVM workload:")
    for geometry in geometries:
        print(
            f"  {geometry.name:<12} {geometry.d_in:>5} x {geometry.d_out:<5} "
            f"x {geometry.mvm_count} positions"
        )

    digital = digital_baseline_cost(geometries)
    print(f"\ndigital MAC baseline: {digital.energy_uj * 1000:.2f} nJ / inference")

    print(f"\n{'config':<34} {'energy nJ':>10} {'latency us':>11} {'vs digital':>11}")
    configs = {
        "A8W4, 8-bit DAC, 1 slice": dict(input_cycles=1, weight_slices=1),
        "A8W4, bit-serial DAC": dict(input_cycles=8, weight_slices=1),
        "A8W4, bit-serial + 2-bit cells": dict(input_cycles=8, weight_slices=2),
    }
    for label, kwargs in configs.items():
        estimator = PimCostEstimator(**kwargs)
        report = estimator.model_cost(geometries)
        ratio = digital.energy_pj / report.energy_pj
        print(
            f"{label:<34} {report.energy_pj / 1000:>10.2f} "
            f"{report.latency_ns / 1000:>11.2f} {ratio:>10.1f}x"
        )

    # LTM cost is per-column, so its relative overhead scales with 1/d_out;
    # LeNet's 6-channel first conv makes it look expensive.  The paper's
    # percentages assume 512-wide arrays — VGG-11 is the better stand-in.
    vgg = build_model("vgg11")
    vgg = convert_to_quantized(vgg, QConfig.from_notation("A8W4"))
    calibrate_model(vgg, [rng.normal(size=(2, 3, 32, 32))])
    vgg_geometries = geometries_from_model(vgg, (3, 32, 32))
    estimator = PimCostEstimator(input_cycles=8, weight_slices=1)
    base = estimator.model_cost(vgg_geometries)
    print(f"\nself-tuning increment on VGG-11 (base {base.energy_uj:.2f} uJ):")
    for gtm_cells, ltm_columns in ((1_000, 1), (100_000, 1), (100_000, 16)):
        tuning = estimator.self_tuning_cost(vgg_geometries, gtm_cells, ltm_columns)
        print(
            f"  GTM={gtm_cells:>6}, LTM={ltm_columns:>2}: "
            f"+{tuning.energy_pj / 1000:.1f} nJ "
            f"({100 * tuning.energy_pj / base.energy_pj:.2f}% of base)"
        )


if __name__ == "__main__":
    main()
