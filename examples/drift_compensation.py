"""Self-tuning against temperature drift and aging (paper footnote 2).

The paper's self-tuning modules correct *fabrication-time* between-chip
variation, but footnote 2 observes they generalize to any correlated weight
variation, "e.g., due to temperature drifts or aging".  This example
demonstrates exactly that:

1. train QAVAT against within-chip variation;
2. deploy on a chip whose correlated epsilon drifts over operating time
   (an Ornstein-Uhlenbeck temperature process plus log-time aging decay);
3. trace test accuracy along the timeline under three GTM re-measurement
   policies: never (deployment-time measurement only), periodic, and every
   inference.

Stale measurements decay with the drift; periodic re-measurement tracks it.

Run:  python examples/drift_compensation.py
"""

import numpy as np

from repro import QConfig, VariabilitySpec, evaluate_clean, train_qavat
from repro.datasets import batch_source, synthetic_mnist
from repro.models import build_model
from repro.nn import init
from repro.pim.drift import AgingDrift, DriftingChip, TemperatureDrift
from repro.selftuning import (
    DriftCompensator,
    SelfTuningConfig,
    attach_self_tuning,
    run_drift_timeline,
)
from repro.variability import WeightProportionalVariance
from repro.variability.sampler import VariabilitySampler

SIGMA_WITHIN = 0.3
TIMES = np.linspace(0.0, 48.0, 13)  # two simulated days, 4-hour steps


class CombinedDrift:
    """Temperature OU process on top of monotone aging decay."""

    def __init__(self) -> None:
        self.temperature = TemperatureDrift(theta=0.05, sigma=0.12, amplitude=0.15, period=24.0)
        self.aging = AgingDrift(nu=0.04, t0=1.0)

    def reset(self) -> None:
        self.temperature.reset()

    def epsilon_at(self, time: float, rng: np.random.Generator) -> float:
        return self.temperature.epsilon_at(time, rng) + self.aging.epsilon_at(time, rng)


def main() -> None:
    train, test = synthetic_mnist(train_per_class=32, test_per_class=8)
    variance_model = WeightProportionalVariance()

    init.seed(7)
    model = build_model("lenet5-mini")
    spec = VariabilitySpec.within_only(SIGMA_WITHIN, variance_model)
    train_qavat(
        model,
        batch_source(train, 32, seed=0),
        QConfig.from_notation("A4W2"),
        spec,
        epochs=10,
        lr=0.02,
        float_pretrain_epochs=5,
    )
    print(f"clean accuracy: {100 * evaluate_clean(model, test):.1f}%\n")

    attach_self_tuning(model, SelfTuningConfig(kind="global", gtm_cells=10_000))
    policies = {
        "never (deploy-time only)": DriftCompensator(policy="never"),
        "periodic (every 8h)": DriftCompensator(policy="periodic", period=8.0),
        "every inference": DriftCompensator(policy="every"),
    }

    print(f"{'time':>6} {'eps_B':>8} " + " ".join(f"{name:>24}" for name in policies))
    timelines = {}
    for name, compensator in policies.items():
        base = VariabilitySampler(spec, seed=123).sample_chip()
        chip = DriftingChip(base, CombinedDrift(), seed=9)
        timelines[name] = run_drift_timeline(
            model, test, chip, spec, TIMES, compensator
        )

    reference = next(iter(timelines.values()))
    for index, (time, eps_b, _) in enumerate(reference):
        row = f"{time:6.1f} {eps_b:+8.3f} "
        row += " ".join(
            f"{100 * timelines[name][index][2]:>23.1f}%" for name in policies
        )
        print(row)

    final = {name: timeline[-1][2] for name, timeline in timelines.items()}
    print(
        f"\nfinal accuracy after {TIMES[-1]:.0f}h: stale "
        f"{100 * final['never (deploy-time only)']:.1f}% vs refreshed "
        f"{100 * final['every inference']:.1f}%"
    )


if __name__ == "__main__":
    main()
