"""Compare memory-cell technologies as deployment targets for one model.

The paper treats variability abstractly (sigma_W, sigma_B); real devices
ground those numbers: RRAM multi-level cells show weight-proportional
programming error, Flash program/verify leaves a near-uniform residual
(layer-fixed-like), MRAM is binary.  This example:

1. quantizes a trained model for each technology's bits-per-cell budget;
2. measures the conductance-domain error each device introduces when
   programming a real weight matrix (snapping + write noise);
3. maps each device's programming sigma onto the paper's variability model
   and evaluates end-to-end robust accuracy — showing which technology
   needs QAVAT the most, and how self-tuning changes the picture.

Run:  python examples/device_technology_comparison.py
"""

import numpy as np

from repro import QConfig, VariabilitySpec, evaluate_clean, evaluate_robustness, train_qavat
from repro.datasets import batch_source, synthetic_mnist
from repro.models import build_model
from repro.nn import init
from repro.pim.devices import device_by_name
from repro.variability.models import variance_model_by_name

TECHNOLOGIES = ("ideal", "flash", "rram", "mram")


def conductance_error_report(rng: np.random.Generator) -> None:
    """Device-level view: programming error on one 64x64 weight tile."""
    weights = rng.normal(size=(64, 64))
    targets = np.abs(weights) / np.abs(weights).max()  # normalized conductances
    print("programming error per technology (64x64 tile, relative RMS):")
    for name in TECHNOLOGIES:
        device = device_by_name(name)
        programmed = device.program(targets, rng)
        rms = float(np.sqrt(np.mean((programmed - targets) ** 2)))
        print(
            f"  {name:>5}: {device.num_levels:3d} levels/cell, "
            f"write-noise sigma {device.sigma_program:.3f} "
            f"({device.variance_model_name}), rms error {rms:.4f}"
        )
    print()


def accuracy_report() -> None:
    """Network-level view: robust accuracy per technology, with QAVAT."""
    train, test = synthetic_mnist(train_per_class=32, test_per_class=8)
    print(f"{'device':>6} {'W bits':>6} {'sigma':>6} {'variance model':>20} "
          f"{'clean %':>8} {'robust %':>9}")
    for name in TECHNOLOGIES:
        device = device_by_name(name)
        weight_bits = min(device.bits_per_cell + 1, 4)  # signed grid per cell
        if weight_bits < 2:
            weight_bits = 2  # MRAM: differential pair of binary cells
        sigma = max(device.effective_sigma(), 1e-9)
        variance_model = variance_model_by_name(device.variance_model_name)
        spec = VariabilitySpec.within_only(sigma, variance_model)

        init.seed(11)
        model = build_model("lenet5-mini")
        train_qavat(
            model,
            batch_source(train, 32, seed=0),
            QConfig(activation_bits=4, weight_bits=weight_bits),
            spec,
            epochs=8,
            lr=0.02,
            float_pretrain_epochs=5,
        )
        clean = evaluate_clean(model, test)
        robust = evaluate_robustness(model, test, spec, num_chips=20)
        print(
            f"{name:>6} {weight_bits:>6} {sigma:>6.3f} "
            f"{device.variance_model_name:>20} {100 * clean:>8.1f} "
            f"{100 * robust.mean:>9.1f}"
        )


def main() -> None:
    rng = np.random.default_rng(0)
    conductance_error_report(rng)
    accuracy_report()


if __name__ == "__main__":
    main()
