"""Design-space exploration of self-tuning sizing (Fig. 7b style).

Sweeps the two ST sizing knobs on one trained model:

* GTM cells — reduces the variance of the eps_B estimate (1/sqrt(n));
* LTM columns — reduces the variance of the per-layer input-sum estimate.

For each point the script reports mean accuracy plus the area/compute cost
from :mod:`repro.selftuning.overhead`, so the size-quality trade-off the
paper discusses is directly visible.

Run:  python examples/design_space_exploration.py
"""

import numpy as np

from repro import QConfig, VariabilitySpec, evaluate_robustness, train_qavat
from repro.datasets import batch_source, synthetic_mnist
from repro.experiments.tables import format_table
from repro.models import build_model
from repro.nn import init
from repro.selftuning import (
    SelfTuningConfig,
    area_overhead,
    attach_self_tuning,
    detach_self_tuning,
)
from repro.variability import LayerFixedVariance

SIGMA_TOTAL = 0.5
GTM_SWEEP = (10, 1000, 100_000)
LTM_SWEEP = (1, 4, 16)


def main() -> None:
    train, test = synthetic_mnist(train_per_class=32, test_per_class=8)
    variance_model = LayerFixedVariance()
    sigma_each = SIGMA_TOTAL / np.sqrt(2.0)

    init.seed(1)
    model = build_model("lenet5-mini")
    train_qavat(
        model,
        batch_source(train, 32, seed=0),
        QConfig.from_notation("A4W2"),
        VariabilitySpec.within_only(sigma_each, variance_model),
        epochs=12,
        lr=0.02,
        float_pretrain_epochs=6,
        n_variation_samples=4,
    )
    deploy_spec = VariabilitySpec.mixed(sigma_each, variance_model)

    rows = []
    for gtm_cells in GTM_SWEEP:
        for ltm_columns in LTM_SWEEP:
            attach_self_tuning(
                model,
                SelfTuningConfig(kind="layer", gtm_cells=gtm_cells, ltm_columns=ltm_columns),
            )
            result = evaluate_robustness(model, test, deploy_spec, num_chips=20)
            rows.append(
                [
                    f"1e{int(np.log10(gtm_cells))}",
                    ltm_columns,
                    100 * result.mean,
                    100 * result.std,
                    100 * area_overhead(ltm_columns),
                ]
            )
    detach_self_tuning(model)
    print(
        format_table(
            ["GTM cells", "LTM cols", "mean acc %", "std %", "LTM area %/array"],
            rows,
            title=f"ST design space (sigma_tot={SIGMA_TOTAL}, layer-fixed, mixed-type)",
        )
    )
    print("\nexpected shape: accuracy rises with both knobs with diminishing "
          "returns; area cost rises linearly with LTM columns.")


if __name__ == "__main__":
    main()
