"""Fleet serving end-to-end: batched inference across self-tuned chips.

The deployment story of the paper is per-chip self-tuning: every
fabricated chip carries its own sampled variation, so real traffic is
answered by a *fleet* of non-identical accelerators.  This example builds
that fleet with :mod:`repro.serve`:

1. train QAVAT against within-chip variation and calibrate, as usual;
2. stand up an :class:`~repro.serve.InferenceEngine` over a pool of
   mixed-variation chips, each programmed once (deep-copied model +
   injected variation + GTM/LTM self-tuning) into an LRU mapping cache;
3. probe per-chip calibration quality, then serve the same request
   stream under each scheduling policy and compare chip load/telemetry;
4. shrink the mapping cache below the fleet size to watch reprogramming
   (cache misses/evictions) appear in the stats.

Run:  python examples/serving_fleet.py
"""

import time

import numpy as np

from repro import QConfig, VariabilitySpec, evaluate_clean, train_qavat
from repro.datasets import batch_source, synthetic_mnist
from repro.eval.metrics import top1_accuracy
from repro.models import build_model
from repro.nn import init
from repro.selftuning import SelfTuningConfig
from repro.serve import InferenceEngine, ServeConfig
from repro.variability import LayerFixedVariance

SIGMA_TOTAL = 0.5
NUM_CHIPS = 4
REQUESTS = 160


def main() -> None:
    train, test = synthetic_mnist(train_per_class=32, test_per_class=8)
    variance_model = LayerFixedVariance()
    sigma_each = SIGMA_TOTAL / np.sqrt(2.0)

    # Step 1: the usual single-model pipeline — QAVAT against within-chip
    # variation; deployment adds the between-chip component.
    init.seed(1)
    model = build_model("lenet5-mini")
    train_spec = VariabilitySpec.within_only(sigma_each, variance_model)
    train_qavat(
        model,
        batch_source(train, 32, seed=0),
        QConfig.from_notation("A4W2"),
        train_spec,
        epochs=10,
        lr=0.02,
        float_pretrain_epochs=5,
        n_variation_samples=4,
    )
    model.eval()
    print(f"clean accuracy: {100 * evaluate_clean(model, test):.1f}%")

    deploy_spec = VariabilitySpec.mixed(sigma_each, variance_model)
    workload = np.concatenate([test.images] * (1 + (REQUESTS - 1) // len(test)))[:REQUESTS]
    labels = np.concatenate([test.labels] * (1 + (REQUESTS - 1) // len(test)))[:REQUESTS]
    ids = [f"r{i:05d}" for i in range(REQUESTS)]

    # Steps 2-3: one engine per scheduling policy, same fleet seed — the
    # chips are identical across engines, only dispatch differs.
    print(f"\nfleet of {NUM_CHIPS} chips, {REQUESTS} requests, batch<=32:")
    for policy in ("round-robin", "least-loaded", "accuracy-weighted"):
        engine = InferenceEngine(
            model,
            deploy_spec,
            num_chips=NUM_CHIPS,
            config=ServeConfig(
                max_batch=32,
                max_wait=2,
                policy=policy,
                seed=7,
                self_tuning=SelfTuningConfig(kind="layer"),
            ),
        )
        qualities = engine.probe_fleet(test, k=1)
        started = time.perf_counter()
        outputs = engine.run(workload, ids=ids)
        seconds = time.perf_counter() - started
        logits = np.stack([outputs[rid] for rid in ids])
        accuracy = top1_accuracy(logits, labels)
        load = "  ".join(
            f"{cid}={n}" for cid, n in sorted(engine.telemetry.per_chip_samples.items())
        )
        print(f"\n  policy={policy}")
        print(f"    chip quality: " + "  ".join(
            f"{cid}={100 * q:.0f}%" for cid, q in sorted(qualities.items())))
        print(f"    chip load:    {load}")
        print(f"    fleet accuracy {100 * accuracy:.1f}%  "
              f"throughput {REQUESTS / seconds:.0f} req/s  "
              f"queue ticks p-max {engine.telemetry.queue_ticks.max:.0f}")

    # Step 4: a cache smaller than the fleet forces reprogramming.
    engine = InferenceEngine(
        model,
        deploy_spec,
        num_chips=NUM_CHIPS,
        config=ServeConfig(max_batch=16, max_wait=1, cache_capacity=2, seed=7),
    )
    engine.run(workload, ids=ids)
    stats = engine.cache.stats
    print(f"\ncache capacity 2 vs fleet of {NUM_CHIPS}: "
          f"hits={stats.hits} misses={stats.misses} evictions={stats.evictions} "
          f"(reprogram cost {1e3 * stats.program_seconds:.1f} ms)")
    print("\ntakeaway: batching + a mapping cache turn the per-chip self-tuning "
          "story into a serving system — chips are programmed once, requests are "
          "fused into crossbar-friendly batches, and scheduling decides which "
          "(non-identical) chip answers.")


if __name__ == "__main__":
    main()
