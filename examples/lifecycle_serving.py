"""Drift-aware fleet serving: chips age, get probed, and recalibrate live.

``examples/serving_fleet.py`` stops at a static fleet; this example runs the
full lifecycle story the paper's footnote 2 points at — conductance drift as
just another correlated variation that self-tuning (plus reprogramming)
chases over a chip's service life:

1. train QAVAT and calibrate as usual;
2. stand up a *mixed-technology* fleet (noisy multi-level RRAM next to
   tighter Flash — each technology sampled from the variability spec its
   device physics implies);
3. wrap the fleet in a :class:`~repro.serve.ChipLifecycle`: every tick of
   serving advances a virtual aging clock, a quality monitor probes each
   chip against its time-zero accuracy, and chips that sag below the floor
   are recalibrated — cells rewritten, GTM re-measured, and only that
   chip's cached mapping invalidated;
4. replay the same bursty arrival trace under round-robin and drift-aware
   scheduling and compare end-of-trace accuracy;
5. dump the drift-aware run's span timeline (``lifecycle_trace.jsonl``)
   and print the per-stage breakdown — where a request's time actually
   went, probes and recalibrations included.

Run:  python examples/lifecycle_serving.py
"""

import numpy as np

from repro import QConfig, VariabilitySpec, evaluate_clean, train_qavat
from repro.datasets import batch_source, synthetic_mnist
from repro.eval.metrics import top1_accuracy
from repro.models import build_model
from repro.nn import init
from repro.serve import (
    BurstyTrace,
    ChipLifecycle,
    FleetSpec,
    InferenceEngine,
    LifecycleConfig,
    ServeConfig,
)
from repro.variability import WeightProportionalVariance

REQUESTS = 160
SIGMA_TRAIN = 0.3


def main() -> None:
    train, test = synthetic_mnist(train_per_class=32, test_per_class=8)

    init.seed(1)
    model = build_model("lenet5-mini")
    train_spec = VariabilitySpec.within_only(SIGMA_TRAIN, WeightProportionalVariance())
    train_qavat(
        model,
        batch_source(train, 32, seed=0),
        QConfig.from_notation("A4W2"),
        train_spec,
        epochs=10,
        lr=0.02,
        float_pretrain_epochs=5,
        n_variation_samples=4,
    )
    model.eval()
    print(f"clean accuracy: {100 * evaluate_clean(model, test):.1f}%")

    fleet = FleetSpec.parse("rram:2,flash:2")
    reps = 1 + (REQUESTS - 1) // len(test)
    workload = np.concatenate([test.images] * reps)[:REQUESTS]
    labels = np.concatenate([test.labels] * reps)[:REQUESTS]
    ids = [f"r{i:05d}" for i in range(REQUESTS)]
    trace = BurstyTrace(rate=1.0, burst_rate=16.0, period=16, duty=0.25, seed=3)

    print(f"\nmixed fleet ({fleet.num_chips} chips), {REQUESTS} requests, "
          "bursty arrivals, aging drift:")
    for policy in ("round-robin", "drift-aware"):
        engine = InferenceEngine(
            model,
            VariabilitySpec.null(),  # per-technology specs come from the fleet
            config=ServeConfig(max_batch=16, max_wait=2, policy=policy, seed=7),
            fleet_spec=fleet,
        )
        lifecycle = ChipLifecycle(
            engine,
            test,
            LifecycleConfig(nu=0.1, probe_every=5.0, accuracy_floor=0.9, seed=7),
        )
        baseline = lifecycle.install()
        outputs = engine.run_trace(workload, trace, ids=ids, lifecycle=lifecycle)
        logits = np.stack([outputs[rid] for rid in ids])
        correct = logits.argmax(axis=1) == labels
        tail = REQUESTS // 4
        print(f"\n  policy={policy}")
        print("    t=0 quality:  " + "  ".join(
            f"{cid}={100 * q:.0f}%" for cid, q in sorted(baseline.items())))
        print("    chip load:    " + "  ".join(
            f"{cid}={n}"
            for cid, n in sorted(engine.telemetry.per_chip_samples.items())))
        print(f"    recalibrations: {len(lifecycle.events)} "
              + " ".join(f"[t={e.time:.0f} {e.chip_id} "
                         f"{100 * e.quality_before:.0f}->{100 * e.quality_after:.0f}%]"
                         for e in lifecycle.events))
        print(f"    served accuracy {100 * top1_accuracy(logits, labels):.1f}%  "
              f"end-of-trace {100 * correct[-tail:].mean():.1f}%  "
              f"cache invalidations {engine.cache.stats.invalidations}")
        latency = engine.telemetry.request_seconds
        print(f"    request latency ms: p50 {1e3 * latency.quantile(0.5):.2f}  "
              f"p95 {1e3 * latency.quantile(0.95):.2f}  "
              f"p99 {1e3 * latency.quantile(0.99):.2f}")
        last_engine = engine

    # The span timeline of the drift-aware run: every enqueue, batch cut,
    # dispatch, forward, probe, and recalibration as one JSONL record.
    recorder = last_engine.obs.recorder
    written = recorder.export_jsonl("lifecycle_trace.jsonl")
    print(f"\nspan timeline: {written} spans -> lifecycle_trace.jsonl "
          f"(dropped {recorder.dropped})")
    print("per-stage breakdown (drift-aware run):")
    breakdown = recorder.breakdown()
    for name in sorted(breakdown, key=lambda n: -breakdown[n]["total_s"]):
        stats = breakdown[name]
        print(f"    {name:<22s} x{stats['count']:<5d} "
              f"total {1e3 * stats['total_s']:8.2f} ms  "
              f"mean {1e3 * stats['mean_s']:7.3f} ms")

    print("\ntakeaway: the lifecycle layer turns drift from a plotted curve "
          "into an operational event stream — quality sags, a probe catches it, "
          "recalibration rewrites one chip and surgically replaces its cached "
          "mapping, and drift-aware scheduling keeps traffic on trustworthy "
          "chips in between.")


if __name__ == "__main__":
    main()
