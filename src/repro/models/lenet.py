"""LeNet-5 for 28x28 grayscale inputs (the paper's MNIST model)."""

from __future__ import annotations

from repro import nn


def _scaled(channels: int, multiplier: float) -> int:
    return max(1, int(round(channels * multiplier)))


class LeNet5(nn.Module):
    """Classic LeNet-5 with ReLU activations.

    ``width_multiplier`` scales every channel/feature count so that the same
    topology can be trained quickly on CPU (used by tests and benches at
    multipliers < 1; the paper configuration is multiplier 1).
    """

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 1,
        width_multiplier: float = 1.0,
    ) -> None:
        super().__init__()
        c1 = _scaled(6, width_multiplier)
        c2 = _scaled(16, width_multiplier)
        f1 = _scaled(120, width_multiplier)
        f2 = _scaled(84, width_multiplier)
        self.features = nn.Sequential(
            nn.Conv2d(in_channels, c1, 5, padding=2),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.Conv2d(c1, c2, 5),
            nn.ReLU(),
            nn.MaxPool2d(2),
        )
        self.classifier = nn.Sequential(
            nn.Flatten(),
            nn.Linear(c2 * 5 * 5, f1),
            nn.ReLU(),
            nn.Linear(f1, f2),
            nn.ReLU(),
            nn.Linear(f2, num_classes),
        )
        self.input_shape = (in_channels, 28, 28)
        self.num_classes = num_classes

    def forward(self, x):
        return self.classifier(self.features(x))
