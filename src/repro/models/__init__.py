"""The three paper models (LeNet-5, VGG-11, ResNet-18) and scaled variants."""

from repro.models.lenet import LeNet5
from repro.models.vgg import VGG11
from repro.models.resnet import BasicBlock, ResNet, ResNet18
from repro.models.registry import build_model, list_models, register_model

__all__ = [
    "LeNet5",
    "VGG11",
    "ResNet",
    "ResNet18",
    "BasicBlock",
    "build_model",
    "list_models",
    "register_model",
]
