"""Model registry mapping paper names to constructors.

The ``*-mini`` variants keep each architecture's topology (depth, residual
structure, BN placement) but shrink widths so CPU training finishes in
seconds; they are what the test suite and default benchmark configurations
use.  The full-size paper models are registered under their plain names.
"""

from __future__ import annotations

from typing import Callable

from repro.models.lenet import LeNet5
from repro.models.resnet import ResNet, ResNet18
from repro.models.vgg import VGG11

_REGISTRY: dict[str, Callable] = {}


def register_model(name: str):
    """Decorator/registration helper for model factory functions."""

    def wrap(factory: Callable) -> Callable:
        if name in _REGISTRY:
            raise ValueError(f"model {name!r} already registered")
        _REGISTRY[name] = factory
        return factory

    return wrap


def build_model(name: str, **overrides):
    """Instantiate a registered model by name."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {sorted(_REGISTRY)}")
    return _REGISTRY[name](**overrides)


def list_models() -> list[str]:
    """Names of all registered models."""
    return sorted(_REGISTRY)


@register_model("lenet5")
def _lenet5(**kw):
    return LeNet5(**kw)


@register_model("lenet5-mini")
def _lenet5_mini(**kw):
    kw.setdefault("width_multiplier", 0.5)
    return LeNet5(**kw)


@register_model("vgg11")
def _vgg11(**kw):
    return VGG11(**kw)


@register_model("vgg11-mini")
def _vgg11_mini(**kw):
    kw.setdefault("width_multiplier", 0.125)
    return VGG11(**kw)


@register_model("resnet18")
def _resnet18(**kw):
    return ResNet18(**kw)


@register_model("resnet18-mini")
def _resnet18_mini(**kw):
    kw.setdefault("width_multiplier", 0.125)
    return ResNet18(**kw)


@register_model("resnet10-mini")
def _resnet10_mini(**kw):
    """Half-depth residual net for the fastest integration tests."""
    kw.setdefault("width_multiplier", 0.125)
    kw.setdefault("blocks_per_stage", (1, 1, 1, 1))
    return ResNet(**kw)
