"""ResNet-18 (CIFAR variant) — the paper's CIFAR-100 model."""

from __future__ import annotations

from repro import nn


def _scaled(channels: int, multiplier: float) -> int:
    return max(1, int(round(channels * multiplier)))


class BasicBlock(nn.Module):
    """Two 3x3 convolutions with identity (or 1x1 projection) shortcut."""

    expansion = 1

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1) -> None:
        super().__init__()
        self.conv1 = nn.Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, bias=False)
        self.bn1 = nn.BatchNorm2d(out_channels)
        self.conv2 = nn.Conv2d(out_channels, out_channels, 3, stride=1, padding=1, bias=False)
        self.bn2 = nn.BatchNorm2d(out_channels)
        self.relu = nn.ReLU()
        if stride != 1 or in_channels != out_channels:
            self.shortcut = nn.Sequential(
                nn.Conv2d(in_channels, out_channels, 1, stride=stride, bias=False),
                nn.BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = None

    def forward(self, x):
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        identity = x if self.shortcut is None else self.shortcut(x)
        return self.relu(out + identity)


class ResNet(nn.Module):
    """CIFAR-style ResNet: 3x3 stem (no 7x7/stem pooling), 4 stages."""

    def __init__(
        self,
        blocks_per_stage: tuple[int, int, int, int] = (2, 2, 2, 2),
        num_classes: int = 100,
        in_channels: int = 3,
        width_multiplier: float = 1.0,
    ) -> None:
        super().__init__()
        widths = [_scaled(c, width_multiplier) for c in (64, 128, 256, 512)]
        self.stem = nn.Sequential(
            nn.Conv2d(in_channels, widths[0], 3, padding=1, bias=False),
            nn.BatchNorm2d(widths[0]),
            nn.ReLU(),
        )
        stages = []
        channels = widths[0]
        for stage_index, (width, blocks) in enumerate(zip(widths, blocks_per_stage)):
            stride = 1 if stage_index == 0 else 2
            for block_index in range(blocks):
                stages.append(
                    BasicBlock(channels, width, stride=stride if block_index == 0 else 1)
                )
                channels = width
        self.stages = nn.Sequential(*stages)
        self.head = nn.Sequential(
            nn.GlobalAvgPool2d(),
            nn.Linear(channels, num_classes),
        )
        self.input_shape = (in_channels, 32, 32)
        self.num_classes = num_classes

    def forward(self, x):
        return self.head(self.stages(self.stem(x)))


def ResNet18(
    num_classes: int = 100,
    in_channels: int = 3,
    width_multiplier: float = 1.0,
) -> ResNet:
    """The 18-layer configuration used in the paper (2-2-2-2 basic blocks)."""
    return ResNet(
        blocks_per_stage=(2, 2, 2, 2),
        num_classes=num_classes,
        in_channels=in_channels,
        width_multiplier=width_multiplier,
    )
