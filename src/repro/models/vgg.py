"""VGG-11 (configuration A) with batch normalization, for 32x32 inputs."""

from __future__ import annotations

from repro import nn

# Standard VGG-11 feature configuration; "M" is a 2x2 max pool.
VGG11_CONFIG = (64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M")


def _scaled(channels: int, multiplier: float) -> int:
    return max(1, int(round(channels * multiplier)))


class VGG11(nn.Module):
    """VGG-11 with BN, adapted to CIFAR-style 32x32 inputs.

    After five pools a 32x32 input collapses to 1x1, so the classifier is a
    single linear layer (the common CIFAR adaptation).  ``width_multiplier``
    scales all channel counts for CPU-scale experiments.
    """

    def __init__(
        self,
        num_classes: int = 10,
        in_channels: int = 3,
        width_multiplier: float = 1.0,
        batch_norm: bool = True,
    ) -> None:
        super().__init__()
        layers: list[nn.Module] = []
        channels = in_channels
        for item in VGG11_CONFIG:
            if item == "M":
                layers.append(nn.MaxPool2d(2))
                continue
            out_channels = _scaled(int(item), width_multiplier)
            layers.append(nn.Conv2d(channels, out_channels, 3, padding=1, bias=not batch_norm))
            if batch_norm:
                layers.append(nn.BatchNorm2d(out_channels))
            layers.append(nn.ReLU())
            channels = out_channels
        self.features = nn.Sequential(*layers)
        self.classifier = nn.Sequential(
            nn.Flatten(),
            nn.Linear(channels, num_classes),
        )
        self.input_shape = (in_channels, 32, 32)
        self.num_classes = num_classes

    def forward(self, x):
        return self.classifier(self.features(x))
