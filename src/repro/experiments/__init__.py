"""Experiment harness: named configurations for every paper table/figure."""

from repro.experiments.configs import (
    EXPERIMENT_SCALES,
    ExperimentScale,
    MethodConfig,
    dataset_for,
    model_for,
)
from repro.experiments.runner import (
    MethodResult,
    run_method,
    run_method_suite,
    train_method,
)
from repro.experiments.tables import format_table, format_series
from repro.experiments.store import ResultStore

__all__ = [
    "ExperimentScale",
    "EXPERIMENT_SCALES",
    "MethodConfig",
    "dataset_for",
    "model_for",
    "MethodResult",
    "train_method",
    "run_method",
    "run_method_suite",
    "format_table",
    "format_series",
    "ResultStore",
]
