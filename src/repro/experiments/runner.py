"""Experiment runner: train a method, evaluate its robustness, report rows."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backends import ChipBackend, make_backend
from repro.datasets.loaders import batch_source
from repro.eval.robustness import RobustnessResult, evaluate_clean, evaluate_robustness
from repro.experiments.configs import (
    ExperimentScale,
    MethodConfig,
    dataset_for,
    model_for,
)
from repro.quant.qconfig import QConfig
from repro.selftuning.tuner import SelfTuningConfig
from repro.selftuning.wrap import attach_self_tuning, detach_self_tuning
from repro.training.baselines import train_ptq_vat, train_qat, train_qavat
from repro.variability.sampler import VariabilitySpec

METHODS = ("qavat", "qat", "ptq-vat")


@dataclass
class MethodResult:
    """One table cell: a trained model's robustness under an eval spec."""

    method: str
    model_name: str
    notation: str
    train_spec: VariabilitySpec
    eval_spec: VariabilitySpec
    clean_accuracy: float
    robustness: RobustnessResult
    extras: dict = field(default_factory=dict)

    @property
    def mean_accuracy(self) -> float:
        return self.robustness.mean


def train_method(
    method: str,
    model_name: str,
    workload: str,
    qconfig: QConfig,
    train_spec: VariabilitySpec,
    scale: ExperimentScale,
    method_config: MethodConfig = MethodConfig(),
):
    """Train one (method, workload, spec) combination; returns (model, test set)."""
    if method not in METHODS:
        raise ValueError(f"method must be one of {METHODS}, got {method!r}")
    train, test = dataset_for(workload, scale)
    model = model_for(model_name, workload, scale, seed=1 + method_config.seed)
    source = batch_source(train, scale.batch_size, seed=method_config.seed)
    if method == "qavat":
        train_qavat(
            model,
            source,
            qconfig,
            train_spec,
            epochs=scale.train_epochs,
            lr=scale.lr,
            n_variation_samples=method_config.n_variation_samples,
            float_pretrain_epochs=scale.float_pretrain_epochs,
            injection_mode=method_config.injection_mode,
            seed=method_config.seed,
        )
    elif method == "qat":
        train_qat(
            model,
            source,
            qconfig,
            epochs=scale.train_epochs,
            lr=scale.lr,
            float_pretrain_epochs=scale.float_pretrain_epochs,
            seed=method_config.seed,
        )
    else:  # ptq-vat: float VAT for the whole budget, then PTQ.
        train_ptq_vat(
            model,
            source,
            qconfig,
            train_spec,
            epochs=scale.float_pretrain_epochs + scale.train_epochs,
            lr=scale.lr,
            seed=method_config.seed,
        )
    return model, test


def run_method(
    method: str,
    model_name: str,
    workload: str,
    qconfig: QConfig,
    train_spec: VariabilitySpec,
    eval_spec: VariabilitySpec,
    scale: ExperimentScale,
    method_config: MethodConfig = MethodConfig(),
    self_tuning: SelfTuningConfig | None = None,
    backend: str | ChipBackend | None = "fake-quant",
) -> MethodResult:
    """Train + Monte-Carlo evaluate one method; optionally with self-tuning.

    Evaluation programs each Monte-Carlo chip through ``backend`` — the
    same :class:`repro.backends.ChipBackend` objects the serving engine
    uses, so experiment numbers and served numbers cannot drift apart.
    The default fake-quant backend is bit-identical to the historical
    in-place injection path; pass ``"circuit"`` to score the method on
    crossbar-level hardware, or ``None`` for the legacy in-place path.
    """
    model, test = train_method(
        method, model_name, workload, qconfig, train_spec, scale, method_config
    )
    chip_backend = make_backend(backend) if backend is not None else None
    if chip_backend is None and self_tuning is not None:
        attach_self_tuning(model, self_tuning)
    clean = evaluate_clean(model, test, batch_size=scale.batch_size)
    robustness = evaluate_robustness(
        model,
        test,
        eval_spec,
        num_chips=scale.num_chips,
        batch_size=scale.batch_size,
        seed=4321 + method_config.seed,
        backend=chip_backend,
        self_tuning=self_tuning,
    )
    if chip_backend is None and self_tuning is not None:
        detach_self_tuning(model)
    return MethodResult(
        method=method,
        model_name=model_name,
        notation=qconfig.notation,
        train_spec=train_spec,
        eval_spec=eval_spec,
        clean_accuracy=clean,
        robustness=robustness,
        extras={"backend": chip_backend.name if chip_backend is not None else "in-place"},
    )


def run_method_suite(
    methods,
    model_name: str,
    workload: str,
    qconfig: QConfig,
    train_spec: VariabilitySpec,
    eval_spec: VariabilitySpec,
    scale: ExperimentScale,
    method_config: MethodConfig = MethodConfig(),
    backend: str | ChipBackend | None = "fake-quant",
) -> dict[str, MethodResult]:
    """Run several methods on the same workload/spec (one table column)."""
    return {
        method: run_method(
            method,
            model_name,
            workload,
            qconfig,
            train_spec,
            eval_spec,
            scale,
            method_config,
            backend=backend,
        )
        for method in methods
    }
