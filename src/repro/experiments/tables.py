"""Plain-text table/series formatting for benchmark output."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str | None = None,
) -> str:
    """Render figure data: one row per x value, one column per curve."""
    headers = [x_label] + list(series)
    rows = [
        [x] + [series[name][i] for name in series] for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
