"""Experiment configuration: scales, model/dataset pairing, method settings.

The paper's three workloads map onto synthetic stand-ins (see DESIGN.md):

* LeNet-5 / MNIST      -> ``lenet5`` on ``synthetic_mnist``
* VGG-11 / CIFAR-10    -> ``vgg11`` on ``synthetic_cifar10``
* ResNet-18 / CIFAR-100 -> ``resnet18`` on ``synthetic_cifar100``

Three scales trade fidelity for wall-clock: ``tiny`` (CI/test), ``small``
(the default for benchmarks, minutes on CPU) and ``paper`` (full-width
models, large Monte Carlo populations — hours).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.synthetic import (
    ArrayDataset,
    synthetic_cifar10,
    synthetic_cifar100,
    synthetic_mnist,
)
from repro.models.registry import build_model
from repro.nn import init


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that shrink the paper protocol onto a CPU budget."""

    name: str
    width_multiplier: float
    train_per_class: int
    test_per_class: int
    float_pretrain_epochs: int
    train_epochs: int
    batch_size: int
    num_chips: int
    lr: float = 0.02


EXPERIMENT_SCALES: dict[str, ExperimentScale] = {
    "tiny": ExperimentScale(
        name="tiny",
        width_multiplier=0.125,
        train_per_class=24,
        test_per_class=8,
        float_pretrain_epochs=6,
        train_epochs=10,
        batch_size=32,
        num_chips=10,
    ),
    "small": ExperimentScale(
        name="small",
        width_multiplier=0.25,
        train_per_class=32,
        test_per_class=10,
        float_pretrain_epochs=6,
        train_epochs=20,
        batch_size=32,
        num_chips=25,
    ),
    "paper": ExperimentScale(
        name="paper",
        width_multiplier=1.0,
        train_per_class=256,
        test_per_class=64,
        float_pretrain_epochs=30,
        train_epochs=100,
        batch_size=128,
        num_chips=2000,
        lr=0.05,
    ),
}

# The paper's model/dataset pairings, keyed by the model family name.
WORKLOADS = {
    "lenet5": ("lenet5", "mnist"),
    "vgg11": ("vgg11", "cifar10"),
    "resnet18": ("resnet18", "cifar100"),
}


@dataclass(frozen=True)
class MethodConfig:
    """Per-method training hyperparameters layered on a scale."""

    n_variation_samples: int = 1
    injection_mode: str = "reparameterized"
    seed: int = 0


def dataset_for(workload: str, scale: ExperimentScale) -> tuple[ArrayDataset, ArrayDataset]:
    """(train, test) synthetic datasets for a workload at a scale."""
    makers = {
        "mnist": synthetic_mnist,
        "cifar10": synthetic_cifar10,
        "cifar100": synthetic_cifar100,
    }
    if workload not in makers:
        raise KeyError(f"unknown workload {workload!r}")
    per_class_train = scale.train_per_class
    per_class_test = scale.test_per_class
    if workload == "cifar100":
        # Keep total sample counts comparable across workloads.
        per_class_train = max(2, per_class_train // 8)
        per_class_test = max(1, per_class_test // 8)
    return makers[workload](per_class_train, per_class_test)


# LeNet-5 is already tiny; shrinking it below half width leaves single-channel
# convolutions that cannot learn the task.  Floors keep each family usable.
_WIDTH_FLOORS = {"lenet5": 0.5, "vgg11": 0.125, "resnet18": 0.125}


def model_for(model_name: str, workload: str, scale: ExperimentScale, seed: int = 1):
    """Deterministically initialized model sized for the scale."""
    num_classes = {"mnist": 10, "cifar10": 10, "cifar100": 100}[workload]
    in_channels = 1 if workload == "mnist" else 3
    width = max(scale.width_multiplier, _WIDTH_FLOORS.get(model_name, 0.125))
    init.seed(seed)
    return build_model(
        model_name,
        num_classes=num_classes,
        in_channels=in_channels,
        width_multiplier=width,
    )
