"""Command-line interface: train/evaluate paper configurations.

Examples::

    python -m repro.experiments list
    python -m repro.experiments run --method qavat --model lenet5 \\
        --notation A4W2 --sigma 0.3 --scenario within --scale tiny
    python -m repro.experiments run --method qavat --model vgg11 \\
        --notation A8W4 --sigma 0.3 --scenario mixed --self-tuning global
    python -m repro.experiments compare --model lenet5 --notation A2W2 \\
        --sigma 0.5 --scenario within
    python -m repro.experiments serve-bench --model lenet5 --num-chips 4 \\
        --max-batch 32 --policy least-loaded --skip-training
    python -m repro.experiments serve-bench --drift --policy accuracy-weighted \\
        --fleet rram:2,flash:2 --trace bursty --skip-training
    python -m repro.experiments serve-bench --backend circuit --num-chips 2 \\
        --requests 48 --skip-training
    python -m repro.experiments serve-bench --chaos --num-chips 16 \\
        --requests 256 --skip-training
    python -m repro.experiments serve-bench --slo --slo-ticks 12 \\
        --policy latency-aware --requests 128 --skip-training
    python -m repro.experiments lifetime-bench --fleet rram:2,flash:2 \\
        --requests 192 --skip-training

``run`` trains one method and prints the Monte Carlo robustness summary;
``compare`` runs QAVAT vs QAT vs PTQ-VAT on one configuration (one column
of Table I); ``serve-bench`` drives a simulated chip fleet through the
:mod:`repro.serve` engine and reports batched-vs-sequential throughput —
with ``--drift`` the fleet ages under a drift process and the chosen
policy is raced against round-robin on end-of-trace accuracy, and with
``--chaos`` a deterministic fault schedule (chip deaths, stuck-at maps,
transient errors) hits the fleet mid-trace and the bench reports goodput
under faults plus a bit-reproducibility check, and with ``--slo`` every
request carries a deadline and policies race on SLO attainment under a
reproducibility + violation-ceiling gate;
``lifetime-bench`` runs the full lifecycle story (drift, probes,
recalibrations) across several policies and prints the drift/recovery
curves.  Results are also appended as JSON under ``--results-dir``.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.backends import BACKENDS
from repro.eval.statistics import summarize
from repro.experiments.configs import EXPERIMENT_SCALES, MethodConfig, WORKLOADS
from repro.experiments.runner import METHODS, run_method
from repro.experiments.store import ResultStore
from repro.experiments.tables import format_table
from repro.quant.qconfig import QConfig
from repro.selftuning.tuner import SelfTuningConfig
from repro.serve.scheduler import POLICIES as SERVE_POLICIES
from repro.variability.models import variance_model_by_name
from repro.variability.sampler import VariabilitySpec


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {number}")
    return number


def _nonnegative_int(value: str) -> int:
    number = int(value)
    if number < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {number}")
    return number


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Train and evaluate QAVAT / QAT / PTQ-VAT configurations.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list models, scales, methods, scenarios")

    for name in ("run", "compare", "sweep"):
        helps = {
            "run": "train one method",
            "compare": "run all three methods on one configuration",
            "sweep": "one method across a sigma sweep (one figure panel)",
        }
        sub = commands.add_parser(name, help=helps[name])
        if name in ("run", "sweep"):
            sub.add_argument("--method", choices=METHODS, default="qavat")
        if name == "sweep":
            sub.add_argument(
                "--sigmas",
                type=float,
                nargs="+",
                default=[0.1, 0.3, 0.5],
                help="sigma_tot values to sweep",
            )
        sub.add_argument("--model", choices=sorted(WORKLOADS), default="lenet5")
        sub.add_argument("--notation", default="A4W2", help="AxWy bit widths")
        sub.add_argument("--sigma", type=float, default=0.3, help="sigma_tot")
        sub.add_argument(
            "--scenario",
            choices=("within", "mixed"),
            default="within",
            help="within-chip only, or equal within+between (paper Sec. IV)",
        )
        sub.add_argument(
            "--variance-model",
            choices=("weight-proportional", "layer-fixed"),
            default="weight-proportional",
        )
        sub.add_argument("--scale", choices=sorted(EXPERIMENT_SCALES), default="tiny")
        sub.add_argument("--samples", type=int, default=1, help="variation samples/step")
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument(
            "--self-tuning",
            choices=("none", "global", "layer"),
            default="none",
            help="attach a self-tuning architecture before evaluation",
        )
        sub.add_argument("--gtm-cells", type=int, default=1000)
        sub.add_argument("--ltm-columns", type=int, default=1)
        sub.add_argument(
            "--backend",
            choices=sorted(BACKENDS),
            default="fake-quant",
            help="chip-programming fidelity for the Monte Carlo evaluation "
            "(fake-quant replicas, or circuit-level PimChips)",
        )
        sub.add_argument("--results-dir", default="results")
        sub.add_argument(
            "--accuracy-spec",
            type=float,
            default=0.5,
            help="accuracy floor for the parametric-yield summary",
        )

    def add_serving_args(sub, default_policy: str) -> None:
        sub.add_argument("--model", choices=sorted(WORKLOADS), default="lenet5")
        sub.add_argument("--notation", default="A4W2", help="AxWy bit widths")
        sub.add_argument("--sigma", type=float, default=0.3, help="sigma_tot")
        sub.add_argument("--scenario", choices=("within", "mixed"), default="mixed")
        sub.add_argument(
            "--variance-model",
            choices=("weight-proportional", "layer-fixed"),
            default="weight-proportional",
        )
        sub.add_argument("--scale", choices=sorted(EXPERIMENT_SCALES), default="tiny")
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument(
            "--skip-training",
            action="store_true",
            help="calibrate an untrained model (throughput-only runs, seconds not minutes)",
        )
        sub.add_argument(
            "--self-tuning",
            choices=("none", "global", "layer"),
            default="none",
            help="attach self-tuning to every programmed chip mapping",
        )
        sub.add_argument("--gtm-cells", type=int, default=1000)
        sub.add_argument("--ltm-columns", type=int, default=1)
        sub.add_argument(
            "--backend",
            choices=sorted(BACKENDS),
            default="fake-quant",
            help="how fleet chips are realized: fake-quant replicas or "
            "circuit-level PimChips (DAC -> crossbar MVM -> ADC)",
        )
        sub.add_argument("--num-chips", type=_positive_int, default=4)
        sub.add_argument(
            "--fused",
            action=argparse.BooleanOptionalAction,
            default=True,
            help="batched cross-chip dispatch (bit-identical to per-chip "
            "dispatch; --no-fused is a debugging/parity aid)",
        )
        sub.add_argument(
            "--policy", choices=sorted(SERVE_POLICIES), default=default_policy
        )
        sub.add_argument("--max-batch", type=_positive_int, default=32)
        sub.add_argument(
            "--max-wait", type=_nonnegative_int, default=4,
            help="batching deadline, ticks",
        )
        sub.add_argument("--requests", type=_positive_int, default=256)
        sub.add_argument(
            "--cache-capacity",
            type=_positive_int,
            default=None,
            help="resident mappings bound (default: the whole fleet)",
        )
        sub.add_argument(
            "--shards",
            type=_nonnegative_int,
            default=0,
            help="shard the fleet across this many worker processes "
            "(0 = in-process serial; outputs and telemetry digests are "
            "bit-identical either way)",
        )
        sub.add_argument(
            "--max-resident-chips",
            type=_positive_int,
            default=None,
            metavar="N",
            help="LRU spill bound on realized chips (lazy fleets re-realize "
            "evicted chips deterministically from their seeds; default: unbounded)",
        )
        sub.add_argument(
            "--probe-k", type=_positive_int, default=1, help="top-k of the quality probe"
        )
        sub.add_argument(
            "--fleet",
            default=None,
            help="mixed-technology fleet, e.g. 'rram:2,flash:2' "
            "(overrides --num-chips/--sigma/--variance-model)",
        )
        sub.add_argument(
            "--trace",
            choices=("uniform", "poisson", "bursty"),
            default=None,
            help="arrival trace feeding the micro-batcher (default: all at tick 0)",
        )
        sub.add_argument(
            "--trace-rate", type=float, default=8.0, help="mean arrivals per tick"
        )
        sub.add_argument(
            "--drift-kind", choices=("aging", "temperature"), default="aging"
        )
        sub.add_argument(
            "--drift-nu", type=float, default=0.1, help="aging drift coefficient"
        )
        sub.add_argument(
            "--probe-every", type=float, default=8.0,
            help="virtual time between quality probes",
        )
        sub.add_argument(
            "--accuracy-floor", type=float, default=0.85,
            help="recalibrate when quality falls below floor x t=0 quality",
        )
        sub.add_argument(
            "--dt", type=float, default=1.0, help="virtual drift time per tick"
        )
        sub.add_argument("--results-dir", default="results")
        sub.add_argument(
            "--bench-json",
            default=None,
            metavar="PATH",
            help="append this run to a schema-versioned perf-trajectory file "
            "(e.g. BENCH_serving.json); see repro.obs.BenchRecorder",
        )

    serve = commands.add_parser(
        "serve-bench",
        help="benchmark batched fleet serving against sequential inference",
    )
    add_serving_args(serve, default_policy="round-robin")
    serve.add_argument(
        "--drift",
        action="store_true",
        help="age the fleet while it serves; race --policy against round-robin "
        "on end-of-trace accuracy (implies --fleet rram:2,flash:2 and "
        "--trace uniform unless given)",
    )
    serve.add_argument(
        "--chaos",
        action="store_true",
        help="inject a deterministic fault schedule (chip deaths, stuck-at "
        "maps, transient errors) while serving and report goodput under "
        "faults; the run is executed twice to assert bit-reproducibility",
    )
    serve.add_argument(
        "--fault-seed", type=int, default=0,
        help="seed of the chaos schedule and hazard stream (--chaos)",
    )
    serve.add_argument(
        "--transient-rate", type=float, default=0.05,
        help="per-dispatch-attempt transient failure probability (--chaos)",
    )
    serve.add_argument(
        "--latency-rate", type=float, default=0.0,
        help="per-dispatch-attempt latency-spike probability (--chaos)",
    )
    serve.add_argument(
        "--deaths", type=_nonnegative_int, default=1,
        help="hard chip deaths scheduled over the fault horizon (--chaos)",
    )
    serve.add_argument(
        "--stuck-chips", type=_nonnegative_int, default=2,
        help="chips receiving a stuck-at fault map (--chaos)",
    )
    serve.add_argument(
        "--fault-horizon", type=_positive_int, default=16,
        help="ticks over which scheduled fault events land (--chaos)",
    )
    serve.add_argument(
        "--goodput-floor", type=float, default=0.95,
        help="exit non-zero when served/(served+dead-lettered) falls below "
        "this fraction (--chaos)",
    )
    serve.add_argument(
        "--slo",
        action="store_true",
        help="deadline-bearing workload: every request carries an "
        "arrival+--slo-ticks deadline; races --policy against "
        "latency-aware and round-robin on SLO attainment, runs the best "
        "policy twice to assert bit-reproducibility, and gates on "
        "--slo-ceiling",
    )
    serve.add_argument(
        "--slo-ticks", type=_positive_int, default=12,
        help="per-request deadline budget in ticks from arrival (--slo)",
    )
    serve.add_argument(
        "--slo-ceiling", type=float, default=0.15,
        help="exit non-zero when the best policy's SLO-violation fraction "
        "exceeds this ceiling (--slo)",
    )

    lifetime = commands.add_parser(
        "lifetime-bench",
        help="drift/probe/recalibrate lifecycle across scheduling policies",
    )
    add_serving_args(lifetime, default_policy="drift-aware")
    lifetime.add_argument(
        "--policies",
        nargs="+",
        choices=sorted(SERVE_POLICIES),
        default=["round-robin", "accuracy-weighted", "drift-aware"],
        help="policies to race over the same drifting fleet",
    )
    return parser


def _specs(args) -> tuple[VariabilitySpec, VariabilitySpec]:
    """(train_spec, eval_spec) for the chosen scenario.

    Training always sees within-chip variation only (the paper's deployment
    flow); the mixed scenario adds the correlated component at eval time.
    """
    variance_model = variance_model_by_name(args.variance_model)
    if args.scenario == "within":
        train = VariabilitySpec.within_only(args.sigma, variance_model)
        return train, train
    sigma_each = args.sigma / np.sqrt(2.0)
    train = VariabilitySpec.within_only(sigma_each, variance_model)
    return train, VariabilitySpec.mixed(sigma_each, variance_model)


def _self_tuning(args) -> SelfTuningConfig | None:
    if args.self_tuning == "none":
        return None
    if getattr(args, "backend", "fake-quant") == "circuit":
        raise SystemExit(
            "error: --self-tuning is not available on --backend circuit yet "
            "(the circuit backend has no GTM/LTM columns); "
            "use --backend fake-quant for self-tuned fleets"
        )
    return SelfTuningConfig(
        kind=args.self_tuning,
        gtm_cells=args.gtm_cells,
        ltm_columns=args.ltm_columns,
    )


def _result_row(method: str, result, args) -> list:
    summary = summarize(result.robustness, accuracy_spec=args.accuracy_spec)
    return [
        method,
        100 * result.clean_accuracy,
        100 * summary["mean"],
        100 * summary["p05"],
        100 * summary["worst"],
        100 * summary["yield_at_spec"],
    ]


def _record(result, args, method: str) -> dict:
    summary = summarize(result.robustness, accuracy_spec=args.accuracy_spec)
    return {
        "method": method,
        "model": args.model,
        "notation": args.notation,
        "sigma": args.sigma,
        "scenario": args.scenario,
        "variance_model": args.variance_model,
        "scale": args.scale,
        "self_tuning": args.self_tuning,
        "backend": getattr(args, "backend", "fake-quant"),
        "clean_accuracy": result.clean_accuracy,
        "summary": summary,
        "accuracies": result.robustness.accuracies,
    }


def _run_one(args, method: str):
    model_name, workload = WORKLOADS[args.model]
    train_spec, eval_spec = _specs(args)
    return run_method(
        method,
        model_name,
        workload,
        QConfig.from_notation(args.notation),
        train_spec,
        eval_spec,
        EXPERIMENT_SCALES[args.scale],
        MethodConfig(n_variation_samples=args.samples, seed=args.seed),
        self_tuning=_self_tuning(args),
        backend=args.backend,
    )


def _cmd_list() -> int:
    print("models:    " + ", ".join(sorted(WORKLOADS)))
    print("methods:   " + ", ".join(METHODS))
    print("scales:    " + ", ".join(sorted(EXPERIMENT_SCALES)))
    print("scenarios: within (Sec. IV-A), mixed (Sec. IV-B)")
    print("variance:  weight-proportional, layer-fixed")
    print("policies:  " + ", ".join(sorted(SERVE_POLICIES)) + " (serve-bench)")
    print("backends:  " + ", ".join(sorted(BACKENDS)) + " (chip programming)")
    return 0


_HEADERS = ["method", "clean %", "mean %", "p05 %", "worst %", "yield %"]


def _cmd_run(args) -> int:
    result = _run_one(args, args.method)
    print(
        format_table(
            _HEADERS,
            [_result_row(args.method, result, args)],
            title=(
                f"{args.model}/{args.notation} sigma={args.sigma} "
                f"{args.scenario} ({args.variance_model}), scale={args.scale}"
            ),
        )
    )
    store = ResultStore(args.results_dir)
    path = store.save(f"run-{args.method}-{args.model}", _record(result, args, args.method))
    print(f"\nsaved: {path}")
    return 0


def _cmd_compare(args) -> int:
    rows = []
    store = ResultStore(args.results_dir)
    for method in METHODS:
        result = _run_one(args, method)
        rows.append(_result_row(method, result, args))
        store.save(f"compare-{method}-{args.model}", _record(result, args, method))
    print(
        format_table(
            _HEADERS,
            rows,
            title=(
                f"{args.model}/{args.notation} sigma={args.sigma} "
                f"{args.scenario} ({args.variance_model}), scale={args.scale}"
            ),
        )
    )
    return 0


def _cmd_sweep(args) -> int:
    rows = []
    store = ResultStore(args.results_dir)
    for sigma in args.sigmas:
        args.sigma = sigma
        result = _run_one(args, args.method)
        rows.append([sigma] + _result_row(args.method, result, args)[1:])
        store.save(
            f"sweep-{args.method}-{args.model}", _record(result, args, args.method)
        )
    print(
        format_table(
            ["sigma"] + _HEADERS[1:],
            rows,
            title=(
                f"{args.method} sweep: {args.model}/{args.notation} "
                f"{args.scenario} ({args.variance_model}), scale={args.scale}"
            ),
        )
    )
    return 0


def _serve_model(args):
    """The calibrated quantized model + test set the fleet will serve."""
    from repro.datasets.loaders import batch_iterator
    from repro.experiments.configs import dataset_for, model_for
    from repro.experiments.runner import train_method
    from repro.quant.calibration import calibrate_model
    from repro.quant.ptq import convert_to_quantized

    model_name, workload = WORKLOADS[args.model]
    scale = EXPERIMENT_SCALES[args.scale]
    train_spec, eval_spec = _specs(args)
    if args.skip_training:
        train, test = dataset_for(workload, scale)
        model = model_for(model_name, workload, scale, seed=1 + args.seed)
        convert_to_quantized(model, QConfig.from_notation(args.notation))
        calibrate_model(model, batch_iterator(train, scale.batch_size, shuffle=False),
                        max_batches=4)
    else:
        model, test = train_method(
            "qavat",
            model_name,
            workload,
            QConfig.from_notation(args.notation),
            train_spec,
            scale,
            MethodConfig(seed=args.seed),
        )
    model.eval()
    return model, test, eval_spec


def _fleet_spec(args, require: bool = False):
    """The mixed-technology fleet spec, or None for a homogeneous fleet."""
    from repro.serve import FleetSpec

    text = args.fleet
    if text is None and require:
        text = "rram:2,flash:2"
    if text is None:
        return None
    try:
        return FleetSpec.parse(text, scenario=args.scenario)
    except (KeyError, ValueError) as error:
        raise SystemExit(
            f"error: invalid --fleet {text!r}: {error} "
            "(expected e.g. 'rram:2,flash:2' or 'rram:4@0.5')"
        ) from None


def _cli_trace(args, default: str = "uniform"):
    from repro.serve import BurstyTrace, PoissonTrace, UniformTrace

    name = args.trace or default
    rate = args.trace_rate
    if name == "uniform":
        return UniformTrace(rate=rate)
    if name == "poisson":
        return PoissonTrace(rate=rate, seed=args.seed)
    # Same mean rate as the others: hot quarter at 4x, quiet rest near zero.
    return BurstyTrace(
        rate=rate / 16.0, burst_rate=4.0 * rate, period=16, duty=0.25, seed=args.seed
    )


def _lifecycle_config(args):
    from repro.serve import LifecycleConfig

    return LifecycleConfig(
        drift=args.drift_kind,
        nu=args.drift_nu,
        dt=args.dt,
        probe_every=args.probe_every,
        probe_k=args.probe_k,
        accuracy_floor=args.accuracy_floor,
        seed=args.seed,
    )


def _serving_workload(args, test):
    reps = 1 + (args.requests - 1) // len(test)
    workload = np.concatenate([test.images] * reps)[: args.requests]
    labels = np.concatenate([test.labels] * reps)[: args.requests]
    ids = [f"r{i:06d}" for i in range(args.requests)]
    return workload, labels, ids


def _drift_serving_run(model, test, eval_spec, args, policy: str) -> dict:
    """One drifting serving session under ``policy``; returns run artifacts.

    Every run shares the engine/lifecycle seeds, so the fleet, the drift
    paths, and the probe/recalibration schedule are identical across
    policies — only dispatch (and therefore served accuracy) differs.
    """
    from repro.serve import ChipLifecycle, InferenceEngine, ReplayTrace, ServeConfig

    config = ServeConfig(
        max_batch=args.max_batch,
        max_wait=args.max_wait,
        policy=policy,
        cache_capacity=args.cache_capacity,
        seed=args.seed,
        self_tuning=_self_tuning(args),
        backend=args.backend,
        fused=args.fused,
        shards=args.shards,
        max_resident_chips=args.max_resident_chips,
    )
    engine = InferenceEngine(
        model, eval_spec, args.num_chips, config,
        fleet_spec=_fleet_spec(args, require=True),
    )
    lifecycle = ChipLifecycle(engine, test, _lifecycle_config(args))
    lifecycle.install()
    workload, labels, ids = _serving_workload(args, test)
    # Freeze the arrival schedule into a replay trace: the lifetime bench
    # is defined over a pinned request timeline, so sharded and serial
    # runs (and reruns) replay the exact same arrivals.
    trace = ReplayTrace.from_trace(_cli_trace(args), args.requests)
    started = time.perf_counter()
    outputs = engine.run_trace(workload, trace, ids=ids, lifecycle=lifecycle)
    seconds = time.perf_counter() - started
    engine.close()
    logits = np.stack([outputs[rid] for rid in ids])
    correct = logits.argmax(axis=1) == labels
    # "End of trace" = the second half of the request stream: long enough to
    # span several batches and probe rounds, late enough that drift has bitten.
    tail = max(1, args.requests // 2)
    return {
        "policy": policy,
        "engine": engine,
        "lifecycle": lifecycle,
        "accuracy": float(correct.mean()),
        "end_accuracy": float(correct[-tail:].mean()),
        "recalibrations": len(lifecycle.events),
        "seconds": seconds,
    }


def _print_quality_timeline(engine, max_chips: int = 16) -> None:
    """Drift/recovery curves: probed accuracy per chip over virtual time.

    One column per chip only works for fleets a terminal can hold; past
    ``max_chips`` the table collapses to fleet-wide quantiles per probe
    round (the thousand-chip regime of ``--fleet rram:500,flash:500``).
    """
    series = engine.telemetry.quality_series
    if not series:
        return
    chips = sorted(series)
    if len(chips) > max_chips:
        times = sorted({time for chip in chips for time, _ in series[chip]})
        rows = []
        for probe_time in times:
            values = [
                100 * qualities[-1]
                for chip in chips
                if (qualities := [q for t, q in series[chip] if t == probe_time])
            ]
            rows.append([
                f"{probe_time:.0f}", len(values),
                f"{np.percentile(values, 10):.1f}", f"{np.median(values):.1f}",
                f"{np.percentile(values, 90):.1f}", f"{min(values):.1f}",
            ])
        print(format_table(
            ["t", "probed", "p10", "median", "p90", "min"], rows,
            title=f"probed accuracy over time (%, fleet of {len(chips)})",
        ))
        events = engine.telemetry.recalibration_events
        if events:
            print(f"recalibration events: {len(events)}")
        return
    times = sorted({time for chip in chips for time, _ in series[chip]})
    rows = []
    for probe_time in times:
        row = [f"{probe_time:.0f}"]
        for chip in chips:
            # Last probe at this time wins: a recalibration probe at the same
            # timestamp overwrites the triggering (degraded) probe.
            values = [q for t, q in series[chip] if t == probe_time]
            row.append(f"{100 * values[-1]:.1f}" if values else "-")
        rows.append(row)
    print(format_table(["t"] + chips, rows, title="probed accuracy over time (%)"))
    events = engine.telemetry.recalibration_events
    if events:
        print("recalibration events: " + "  ".join(
            f"t={event_time:.0f}:{chip}" for event_time, chip in events
        ))


def _drift_record(args, runs: list[dict]) -> dict:
    return {
        "model": args.model,
        "notation": args.notation,
        "backend": args.backend,
        "fleet": args.fleet or "rram:2,flash:2",
        "trace": args.trace or "uniform",
        "trace_rate": args.trace_rate,
        "drift_kind": args.drift_kind,
        "drift_nu": args.drift_nu,
        "probe_every": args.probe_every,
        "accuracy_floor": args.accuracy_floor,
        "requests": args.requests,
        "seed": args.seed,
        "policies": [
            {
                "policy": run["policy"],
                "accuracy": run["accuracy"],
                "end_accuracy": run["end_accuracy"],
                "recalibrations": run["recalibrations"],
                "seconds": run["seconds"],
                "telemetry": run["engine"].telemetry.report(),
                "cache": run["engine"].cache.stats.as_dict(),
            }
            for run in runs
        ],
    }


def _print_span_breakdown(engine, title: str = "per-stage span breakdown") -> None:
    """Where serving wall time went, stage by stage (tracing spans)."""
    breakdown = engine.obs.recorder.breakdown()
    if not breakdown:
        return
    rows = [
        [name, stats["count"], f"{1e3 * stats['total_s']:.2f}",
         f"{1e3 * stats['mean_s']:.3f}", f"{1e3 * stats['max_s']:.3f}"]
        for name, stats in sorted(
            breakdown.items(), key=lambda item: -item[1]["total_s"]
        )
    ]
    print(format_table(
        ["stage", "count", "total ms", "mean ms", "max ms"], rows, title=title
    ))


def _bench_metrics(engine, seconds: float) -> dict:
    """The BENCH-file metric block for one serving run."""
    report = engine.telemetry.report()
    latency = report["latency"]
    return {
        "throughput_sps": report["requests"] / seconds if seconds > 0 else 0.0,
        "latency_p50_ms": 1e3 * latency["p50"],
        "latency_p95_ms": 1e3 * latency["p95"],
        "latency_p99_ms": 1e3 * latency["p99"],
        "occupancy": report["occupancy_mean"],
        "cache_hit_rate": report.get("cache", {}).get("hit_rate", 0.0),
        "energy_uj_per_request": report["energy_uj"]["per_request"],
    }


def _bench_scale(args, engine) -> dict:
    """The BENCH-file scale block: what workload the metrics measured."""
    return {
        "model": args.model,
        "notation": args.notation,
        "backend": args.backend,
        "num_chips": args.num_chips,
        "fleet": args.fleet,
        "max_batch": args.max_batch,
        "max_wait": args.max_wait,
        "requests": args.requests,
        "trace": args.trace,
        "seed": args.seed,
        "fused": bool(getattr(args, "fused", True)),
        "shards": int(getattr(args, "shards", 0) or 0),
        "max_resident_chips": getattr(args, "max_resident_chips", None),
        **engine.policy.describe(),
    }


def _record_bench(args, bench: str, metrics: dict, scale: dict) -> None:
    if not args.bench_json:
        return
    from repro.obs import BenchRecorder

    recorder = BenchRecorder(args.bench_json, bench=bench)
    run = recorder.record(metrics, scale=scale)
    print(
        f"bench trajectory: {args.bench_json} "
        f"({len(recorder.runs())} runs, sha {run['git_sha'][:12]})"
    )


def _cmd_serve_bench_drift(args) -> int:
    model, test, eval_spec = _serve_model(args)
    policies = list(dict.fromkeys([args.policy, "drift-aware", "round-robin"]))
    runs = [_drift_serving_run(model, test, eval_spec, args, p) for p in policies]
    rows = [
        [run["policy"], f"{100 * run['accuracy']:.1f}",
         f"{100 * run['end_accuracy']:.1f}", run["recalibrations"],
         f"{run['engine'].telemetry.queue_ticks.max:.0f}",
         f"{run['engine'].telemetry.total_energy_uj:.1f}",
         f"{args.requests / run['seconds']:.1f}"]
        for run in runs
    ]
    print(
        format_table(
            ["policy", "accuracy %", "end-of-trace %", "recals", "queue max",
             "energy uJ", "req/s"],
            rows,
            title=(
                f"serve-bench --drift {args.model}/{args.notation} "
                f"backend={args.backend} fleet={args.fleet or 'rram:2,flash:2'} "
                f"trace={args.trace or 'uniform'} nu={args.drift_nu}"
            ),
        )
    )
    print()
    _print_quality_timeline(runs[0]["engine"])
    print(f"\nmapping cache: {runs[0]['engine'].cache.stats.as_dict()}")
    baseline = next(run for run in runs if run["policy"] == "round-robin")
    for run in runs:
        if run is baseline:
            continue
        lead = run["end_accuracy"] - baseline["end_accuracy"]
        print(
            f"{run['policy']} vs round-robin end-of-trace accuracy: "
            f"{100 * run['end_accuracy']:.1f}% vs "
            f"{100 * baseline['end_accuracy']:.1f}% ({100 * lead:+.1f} pts)"
        )
    store = ResultStore(args.results_dir)
    path = store.save(f"serve-bench-drift-{args.model}", _drift_record(args, runs))
    print(f"\nsaved: {path}")
    primary = runs[0]
    _record_bench(
        args, "serving",
        {
            **_bench_metrics(primary["engine"], primary["seconds"]),
            "end_accuracy": primary["end_accuracy"],
        },
        _bench_scale(args, primary["engine"]),
    )
    return 0


def _cmd_lifetime_bench(args) -> int:
    model, test, eval_spec = _serve_model(args)
    runs = [
        _drift_serving_run(model, test, eval_spec, args, policy)
        for policy in args.policies
    ]
    rows = [
        [run["policy"], f"{100 * run['accuracy']:.1f}",
         f"{100 * run['end_accuracy']:.1f}", run["recalibrations"],
         f"{run['engine'].telemetry.queue_ticks.mean:.2f}",
         f"{run['engine'].telemetry.queue_ticks.max:.0f}",
         f"{run['engine'].telemetry.total_energy_uj:.1f}"]
        for run in runs
    ]
    print(
        format_table(
            ["policy", "accuracy %", "end-of-trace %", "recals",
             "queue mean", "queue max", "energy uJ"],
            rows,
            title=(
                f"lifetime-bench {args.model}/{args.notation} "
                f"backend={args.backend} fleet={args.fleet or 'rram:2,flash:2'} "
                f"trace={args.trace or 'uniform'} {args.drift_kind} drift"
            ),
        )
    )
    print()
    _print_quality_timeline(runs[0]["engine"])
    best = max(runs, key=lambda run: run["end_accuracy"])
    print(f"\nbest end-of-trace policy: {best['policy']} "
          f"({100 * best['end_accuracy']:.1f}%)")
    store = ResultStore(args.results_dir)
    path = store.save(f"lifetime-bench-{args.model}", _drift_record(args, runs))
    print(f"saved: {path}")
    _record_bench(
        args, "lifetime",
        {
            **_bench_metrics(best["engine"], best["seconds"]),
            "accuracy": best["accuracy"],
            "end_accuracy": best["end_accuracy"],
            "recalibrations": best["recalibrations"],
        },
        _bench_scale(args, best["engine"]),
    )
    return 0


def _chaos_serving_run(model, test, eval_spec, args, trace) -> dict:
    """One chaos serving session; returns everything determinism compares."""
    from repro.serve import FaultInjector, FaultPlan, InferenceEngine, ServeConfig

    config = ServeConfig(
        max_batch=args.max_batch,
        max_wait=args.max_wait,
        policy=args.policy,
        cache_capacity=args.cache_capacity,
        seed=args.seed,
        self_tuning=_self_tuning(args),
        backend=args.backend,
        fused=args.fused,
        shards=args.shards,
        max_resident_chips=args.max_resident_chips,
    )
    engine = InferenceEngine(
        model, eval_spec, args.num_chips, config, fleet_spec=_fleet_spec(args)
    )
    engine.warm_up()
    plan = FaultPlan(
        transient_rate=args.transient_rate,
        latency_rate=args.latency_rate,
        deaths=args.deaths,
        stuck_chips=args.stuck_chips,
        horizon=args.fault_horizon,
        seed=args.fault_seed,
    )
    injector = FaultInjector(engine, plan)
    injector.install()
    workload, labels, ids = _serving_workload(args, test)
    started = time.perf_counter()
    outputs = engine.run_trace(workload, trace, ids=ids)
    seconds = time.perf_counter() - started
    engine.close()
    served = [rid for rid in ids if rid in outputs]
    correct = sum(
        int(outputs[rid].argmax() == label)
        for rid, label in zip(ids, labels)
        if rid in outputs
    )
    return {
        "engine": engine,
        "injector": injector,
        "outputs": outputs,
        "ids": ids,
        "served": served,
        "accuracy": correct / len(served) if served else 0.0,
        "seconds": seconds,
    }


def _cmd_serve_bench_chaos(args) -> int:
    """Goodput-under-faults bench: chaos schedule in, dead letters out.

    The session runs *twice* from the same (engine seed, fault seed, trace)
    and the whole observable story — fault schedule, retry/hedge counts,
    dead-letter set, and every served logit row — must be bit-identical;
    any divergence (or goodput below ``--goodput-floor``) is a non-zero
    exit, so CI can hold the line.
    """
    from repro.serve import ReplayTrace

    model, test, eval_spec = _serve_model(args)
    # Pin the arrival schedule so both runs (and any rerun of this command)
    # replay the identical trace regardless of trace-internal RNG state.
    trace = ReplayTrace.from_trace(_cli_trace(args), args.requests)
    first = _chaos_serving_run(model, test, eval_spec, args, trace)
    second = _chaos_serving_run(model, test, eval_spec, args, trace)

    engine, injector, ids = first["engine"], first["injector"], first["ids"]
    telemetry = engine.telemetry
    reproducible = (
        injector.schedule == second["injector"].schedule
        and telemetry.retries == second["engine"].telemetry.retries
        and telemetry.hedges == second["engine"].telemetry.hedges
        and set(engine.dead_letters) == set(second["engine"].dead_letters)
        and first["served"] == second["served"]
        and all(
            np.array_equal(first["outputs"][rid], second["outputs"][rid])
            for rid in first["served"]
        )
    )
    goodput = telemetry.goodput
    health_counts: dict[str, int] = {}
    for chip in engine.fleet:
        health_counts[chip.health] = health_counts.get(chip.health, 0) + 1
    rows = [
        ["requests", args.requests],
        ["served", len(first["served"])],
        ["dead-lettered", len(engine.dead_letters)],
        ["goodput", f"{100 * goodput:.2f}%"],
        ["served accuracy", f"{100 * first['accuracy']:.1f}%"],
        ["faults fired", telemetry.faults],
        ["retries", telemetry.retries],
        ["hedges", telemetry.hedges],
        ["replacements", len(engine.retired)],
        ["fleet health", ", ".join(f"{k}:{v}" for k, v in sorted(health_counts.items()))],
        ["reproducible", "yes" if reproducible else "NO"],
        ["req/s", f"{args.requests / first['seconds']:.1f}"],
    ]
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=(
                f"serve-bench --chaos {args.model}/{args.notation} "
                f"{args.num_chips} chips, backend={args.backend}, "
                f"deaths={args.deaths} stuck={args.stuck_chips} "
                f"transient={args.transient_rate} fault-seed={args.fault_seed}"
            ),
        )
    )
    print("\nfault schedule: " + (
        "  ".join(
            f"t={event.tick}:{event.kind}@{event.chip_id}"
            for event in injector.schedule
        ) or "(empty)"
    ))
    if engine.dead_letters:
        print("dead letters:")
        for letter in sorted(engine.dead_letters.values(), key=lambda l: l.id):
            print(
                f"  {letter.id}: {letter.reason} after {letter.attempts} "
                f"attempts (cause: {letter.cause}, tick {letter.tick})"
            )
    print("\nchaos engine telemetry:")
    print(telemetry.format())
    store = ResultStore(args.results_dir)
    path = store.save(
        f"serve-bench-chaos-{args.model}",
        {
            "model": args.model,
            "notation": args.notation,
            "backend": args.backend,
            "policy": args.policy,
            "num_chips": args.num_chips,
            "fleet": args.fleet,
            "requests": args.requests,
            "seed": args.seed,
            "fault_seed": args.fault_seed,
            "plan": {
                "transient_rate": args.transient_rate,
                "latency_rate": args.latency_rate,
                "deaths": args.deaths,
                "stuck_chips": args.stuck_chips,
                "horizon": args.fault_horizon,
            },
            "goodput": goodput,
            "served": len(first["served"]),
            "dead_letters": sorted(engine.dead_letters),
            "accuracy": first["accuracy"],
            "reproducible": reproducible,
            "schedule": [
                {"tick": e.tick, "kind": e.kind, "chip_id": e.chip_id}
                for e in injector.schedule
            ],
            "telemetry": telemetry.report(),
        },
    )
    print(f"\nsaved: {path}")
    _record_bench(
        args, "chaos",
        {
            **_bench_metrics(engine, first["seconds"]),
            "goodput": goodput,
            "dead_letters": len(engine.dead_letters),
            "retries": telemetry.retries,
            "hedges": telemetry.hedges,
            "faults": telemetry.faults,
            "replacements": len(engine.retired),
            "served_accuracy": first["accuracy"],
        },
        {
            **_bench_scale(args, engine),
            "fault_seed": args.fault_seed,
            "deaths": args.deaths,
            "stuck_chips": args.stuck_chips,
            "transient_rate": args.transient_rate,
        },
    )
    if not reproducible:
        print("ERROR: chaos run is not bit-reproducible across reruns")
        return 1
    if goodput < args.goodput_floor:
        print(
            f"ERROR: goodput {100 * goodput:.2f}% below floor "
            f"{100 * args.goodput_floor:.2f}%"
        )
        return 1
    return 0


def _slo_serving_run(model, test, eval_spec, args, trace, policy: str) -> dict:
    """One deadline-bearing serving session under ``policy``.

    The engine runs in continuous-batching mode (the gateway's admission
    mode) with every request carrying an ``arrival + --slo-ticks``
    deadline; per-dispatch transient/latency hazards (``--transient-rate``
    / ``--latency-rate``) supply the retry-parking pressure that makes
    deadlines losable at all — scheduled deaths/stuck-at events stay with
    ``--chaos``.
    """
    from repro.serve import FaultInjector, FaultPlan, InferenceEngine, ServeConfig

    config = ServeConfig(
        max_batch=args.max_batch,
        max_wait=args.max_wait,
        policy=policy,
        cache_capacity=args.cache_capacity,
        seed=args.seed,
        self_tuning=_self_tuning(args),
        backend=args.backend,
        continuous=True,
        fused=args.fused,
        shards=args.shards,
        max_resident_chips=args.max_resident_chips,
    )
    engine = InferenceEngine(
        model, eval_spec, args.num_chips, config, fleet_spec=_fleet_spec(args)
    )
    engine.warm_up()
    if policy in ("accuracy-weighted", "drift-aware", "energy-aware", "latency-aware"):
        engine.probe_fleet(test, k=args.probe_k)
    if args.transient_rate > 0.0 or args.latency_rate > 0.0:
        plan = FaultPlan(
            transient_rate=args.transient_rate,
            latency_rate=args.latency_rate,
            deaths=0,
            stuck_chips=0,
            seed=args.fault_seed,
        )
        FaultInjector(engine, plan).install()
    workload, labels, ids = _serving_workload(args, test)
    started = time.perf_counter()
    outputs = engine.run_trace(workload, trace, ids=ids)
    seconds = time.perf_counter() - started
    engine.close()
    served = [rid for rid in ids if rid in outputs]
    correct = sum(
        int(outputs[rid].argmax() == label)
        for rid, label in zip(ids, labels)
        if rid in outputs
    )
    telemetry = engine.telemetry
    finished = telemetry.slo_met + telemetry.slo_violations
    return {
        "policy": policy,
        "engine": engine,
        "outputs": outputs,
        "ids": ids,
        "served": served,
        "accuracy": correct / len(served) if served else 0.0,
        "attainment": telemetry.slo_attainment,
        "violation_fraction": (
            telemetry.slo_violations / finished if finished else 0.0
        ),
        "seconds": seconds,
    }


def _cmd_serve_bench_slo(args) -> int:
    """Deadline/SLO bench: goodput race plus a reproducibility gate.

    Every request carries an ``arrival + --slo-ticks`` deadline (frozen
    into a :class:`~repro.serve.trace.ReplayTrace`, so reruns replay
    literally the same arrivals and deadlines).  ``--policy``,
    ``latency-aware``, and ``round-robin`` race on SLO attainment; the
    best policy then runs a second time and its whole observable story —
    served set, logits, deadline outcomes, dead letters — must be
    bit-identical.  Divergence, or a violation fraction above
    ``--slo-ceiling``, is a non-zero exit.
    """
    from repro.serve import DeadlineTrace, ReplayTrace

    model, test, eval_spec = _serve_model(args)
    trace = ReplayTrace.from_trace(
        DeadlineTrace(_cli_trace(args), slo_ticks=args.slo_ticks), args.requests
    )
    policies = list(dict.fromkeys([args.policy, "latency-aware", "round-robin"]))
    runs = [
        _slo_serving_run(model, test, eval_spec, args, trace, policy)
        for policy in policies
    ]
    best = max(runs, key=lambda run: (run["attainment"], run["policy"] == args.policy))
    rerun = _slo_serving_run(model, test, eval_spec, args, trace, best["policy"])
    best_t, rerun_t = best["engine"].telemetry, rerun["engine"].telemetry
    reproducible = (
        best["served"] == rerun["served"]
        and best_t.slo_met == rerun_t.slo_met
        and best_t.slo_violations == rerun_t.slo_violations
        and best_t.slo_series == rerun_t.slo_series
        and set(best["engine"].dead_letters) == set(rerun["engine"].dead_letters)
        and all(
            np.array_equal(best["outputs"][rid], rerun["outputs"][rid])
            for rid in best["served"]
        )
    )
    rows = [
        [run["policy"], len(run["served"]),
         len(run["engine"].dead_letters),
         run["engine"].telemetry.slo_met,
         run["engine"].telemetry.slo_violations,
         f"{100 * run['attainment']:.1f}",
         f"{run['engine'].telemetry.deadline_headroom.quantile(0.50):.1f}",
         f"{100 * run['accuracy']:.1f}",
         f"{args.requests / run['seconds']:.1f}"]
        for run in runs
    ]
    print(
        format_table(
            ["policy", "served", "dead-let", "slo met", "violated",
             "attainment %", "headroom p50", "accuracy %", "req/s"],
            rows,
            title=(
                f"serve-bench --slo {args.model}/{args.notation} "
                f"{args.num_chips} chips, backend={args.backend}, "
                f"slo={args.slo_ticks} ticks, trace={args.trace or 'uniform'}, "
                f"transient={args.transient_rate}"
            ),
        )
    )
    print(
        f"\nbest policy: {best['policy']} "
        f"(attainment {100 * best['attainment']:.1f}%, "
        f"violations {100 * best['violation_fraction']:.1f}% "
        f"vs ceiling {100 * args.slo_ceiling:.1f}%)  "
        f"reproducible: {'yes' if reproducible else 'NO'}"
    )
    print("\nbest-policy telemetry:")
    print(best_t.format())
    store = ResultStore(args.results_dir)
    path = store.save(
        f"serve-bench-slo-{args.model}",
        {
            "model": args.model,
            "notation": args.notation,
            "backend": args.backend,
            "num_chips": args.num_chips,
            "fleet": args.fleet,
            "requests": args.requests,
            "seed": args.seed,
            "slo_ticks": args.slo_ticks,
            "slo_ceiling": args.slo_ceiling,
            "transient_rate": args.transient_rate,
            "latency_rate": args.latency_rate,
            "fault_seed": args.fault_seed,
            "best_policy": best["policy"],
            "reproducible": reproducible,
            "policies": [
                {
                    "policy": run["policy"],
                    "served": len(run["served"]),
                    "dead_letters": sorted(run["engine"].dead_letters),
                    "attainment": run["attainment"],
                    "violation_fraction": run["violation_fraction"],
                    "accuracy": run["accuracy"],
                    "seconds": run["seconds"],
                    "telemetry": run["engine"].telemetry.report(),
                }
                for run in runs
            ],
        },
    )
    print(f"\nsaved: {path}")
    # Recorded under the "serving" bench so --slo runs append to the same
    # BENCH_serving.json trajectory as the other serving benches instead
    # of resetting it (the recorder drops runs on a bench-name mismatch);
    # scale.slo_ticks/best_policy mark the entries as SLO runs.
    _record_bench(
        args, "serving",
        {
            **_bench_metrics(best["engine"], best["seconds"]),
            "slo_attainment": best["attainment"],
            "slo_violations": best_t.slo_violations,
            "slo_met": best_t.slo_met,
            "rejections": best_t.rejections,
            "dead_letters": len(best["engine"].dead_letters),
            "served_accuracy": best["accuracy"],
        },
        {
            **_bench_scale(args, best["engine"]),
            "slo_ticks": args.slo_ticks,
            "transient_rate": args.transient_rate,
            "best_policy": best["policy"],
        },
    )
    if not reproducible:
        print("ERROR: slo run is not bit-reproducible across reruns")
        return 1
    if best["violation_fraction"] > args.slo_ceiling:
        print(
            f"ERROR: SLO violation fraction {100 * best['violation_fraction']:.1f}% "
            f"above ceiling {100 * args.slo_ceiling:.1f}%"
        )
        return 1
    return 0


def _cmd_serve_bench(args) -> int:
    from repro.serve import InferenceEngine, ServeConfig

    if sum((args.chaos, args.drift, args.slo)) > 1:
        raise SystemExit(
            "error: --chaos, --drift, and --slo are separate benches; pick one"
        )
    if args.chaos:
        return _cmd_serve_bench_chaos(args)
    if args.drift:
        return _cmd_serve_bench_drift(args)
    if args.slo:
        return _cmd_serve_bench_slo(args)
    model, test, eval_spec = _serve_model(args)
    workload, _, ids = _serving_workload(args, test)

    def serve(max_batch: int, max_wait: int, fused: bool, shards: int = 0):
        config = ServeConfig(
            max_batch=max_batch,
            max_wait=max_wait,
            policy=args.policy,
            cache_capacity=args.cache_capacity,
            seed=args.seed,
            self_tuning=_self_tuning(args),
            backend=args.backend,
            fused=fused,
            shards=shards,
            max_resident_chips=args.max_resident_chips,
        )
        engine = InferenceEngine(
            model, eval_spec, args.num_chips, config, fleet_spec=_fleet_spec(args)
        )
        engine.warm_up()  # program outside the timed region
        if args.policy in ("accuracy-weighted", "drift-aware", "energy-aware"):
            engine.probe_fleet(test, k=args.probe_k)
        started = time.perf_counter()
        if args.trace is not None:
            outputs = engine.run_trace(workload, _cli_trace(args), ids=ids)
        else:
            outputs = engine.run(workload, ids=ids)
        engine.close()
        return engine, outputs, time.perf_counter() - started

    # The sequential reference is per-request by definition: fusing its
    # single-sample batches would measure a different baseline (and sharding
    # one-sample ticks would only measure pipe overhead), so only the batched
    # engine honours --shards.
    sequential, seq_out, seq_seconds = serve(max_batch=1, max_wait=0, fused=False)
    batched, batch_out, batch_seconds = serve(
        args.max_batch, args.max_wait, fused=args.fused, shards=args.shards
    )
    mismatched = sum(
        not np.array_equal(seq_out[rid], batch_out[rid]) for rid in ids
    )
    speedup = seq_seconds / batch_seconds if batch_seconds > 0 else float("inf")
    rows = [
        ["sequential", args.requests, sequential.telemetry.batches,
         f"{sequential.telemetry.batch_size.mean:.1f}",
         f"{args.requests / seq_seconds:.1f}", "1.00"],
        ["batched", args.requests, batched.telemetry.batches,
         f"{batched.telemetry.batch_size.mean:.1f}",
         f"{args.requests / batch_seconds:.1f}", f"{speedup:.2f}"],
    ]
    print(
        format_table(
            ["mode", "requests", "batches", "batch mean", "throughput sps", "speedup"],
            rows,
            title=(
                f"serve-bench {args.model}/{args.notation} sigma={args.sigma} "
                f"{args.scenario}, {args.num_chips} chips, "
                f"backend={args.backend}, policy={args.policy}"
            ),
        )
    )
    print("\nbatched engine telemetry:")
    print(batched.telemetry.format())
    fused_stats = batched.telemetry
    print(f"fused dispatch: {fused_stats.fused_groups} groups, "
          f"{fused_stats.fused_batches} batches, "
          f"{fused_stats.fused_fallback_batches} fallbacks")
    if args.shards:
        print(f"sharded dispatch: {fused_stats.shard_groups} ticks, "
              f"{fused_stats.shard_batches} batches across "
              f"{args.shards} shards")
    print(f"telemetry digest: {batched.telemetry.digest()}")
    print()
    _print_span_breakdown(batched, title="per-stage span breakdown (batched)")
    if mismatched:
        print(f"WARNING: {mismatched} requests differ between modes "
              "(policies may route them to different chips)")
    store = ResultStore(args.results_dir)
    path = store.save(
        f"serve-bench-{args.model}",
        {
            "model": args.model,
            "notation": args.notation,
            "sigma": args.sigma,
            "scenario": args.scenario,
            "backend": args.backend,
            "policy": args.policy,
            "num_chips": args.num_chips,
            "max_batch": args.max_batch,
            "max_wait": args.max_wait,
            "requests": args.requests,
            "shards": args.shards,
            "max_resident_chips": args.max_resident_chips,
            "sequential_seconds": seq_seconds,
            "batched_seconds": batch_seconds,
            "speedup": speedup,
            "telemetry": batched.telemetry.report(),
            "cache": batched.cache.stats.as_dict(),
        },
    )
    print(f"\nsaved: {path}")
    _record_bench(
        args, "serving",
        {**_bench_metrics(batched, batch_seconds), "speedup": float(speedup)},
        _bench_scale(args, batched),
    )
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "serve-bench":
        return _cmd_serve_bench(args)
    if args.command == "lifetime-bench":
        return _cmd_lifetime_bench(args)
    return _cmd_compare(args)
