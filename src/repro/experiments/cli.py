"""Command-line interface: train/evaluate paper configurations.

Examples::

    python -m repro.experiments list
    python -m repro.experiments run --method qavat --model lenet5 \\
        --notation A4W2 --sigma 0.3 --scenario within --scale tiny
    python -m repro.experiments run --method qavat --model vgg11 \\
        --notation A8W4 --sigma 0.3 --scenario mixed --self-tuning global
    python -m repro.experiments compare --model lenet5 --notation A2W2 \\
        --sigma 0.5 --scenario within

``run`` trains one method and prints the Monte Carlo robustness summary;
``compare`` runs QAVAT vs QAT vs PTQ-VAT on one configuration (one column
of Table I).  Results are also appended as JSON under ``--results-dir``.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.eval.statistics import summarize
from repro.experiments.configs import EXPERIMENT_SCALES, MethodConfig, WORKLOADS
from repro.experiments.runner import METHODS, run_method
from repro.experiments.store import ResultStore
from repro.experiments.tables import format_table
from repro.quant.qconfig import QConfig
from repro.selftuning.tuner import SelfTuningConfig
from repro.variability.models import variance_model_by_name
from repro.variability.sampler import VariabilitySpec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Train and evaluate QAVAT / QAT / PTQ-VAT configurations.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list models, scales, methods, scenarios")

    for name in ("run", "compare", "sweep"):
        helps = {
            "run": "train one method",
            "compare": "run all three methods on one configuration",
            "sweep": "one method across a sigma sweep (one figure panel)",
        }
        sub = commands.add_parser(name, help=helps[name])
        if name in ("run", "sweep"):
            sub.add_argument("--method", choices=METHODS, default="qavat")
        if name == "sweep":
            sub.add_argument(
                "--sigmas",
                type=float,
                nargs="+",
                default=[0.1, 0.3, 0.5],
                help="sigma_tot values to sweep",
            )
        sub.add_argument("--model", choices=sorted(WORKLOADS), default="lenet5")
        sub.add_argument("--notation", default="A4W2", help="AxWy bit widths")
        sub.add_argument("--sigma", type=float, default=0.3, help="sigma_tot")
        sub.add_argument(
            "--scenario",
            choices=("within", "mixed"),
            default="within",
            help="within-chip only, or equal within+between (paper Sec. IV)",
        )
        sub.add_argument(
            "--variance-model",
            choices=("weight-proportional", "layer-fixed"),
            default="weight-proportional",
        )
        sub.add_argument("--scale", choices=sorted(EXPERIMENT_SCALES), default="tiny")
        sub.add_argument("--samples", type=int, default=1, help="variation samples/step")
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument(
            "--self-tuning",
            choices=("none", "global", "layer"),
            default="none",
            help="attach a self-tuning architecture before evaluation",
        )
        sub.add_argument("--gtm-cells", type=int, default=1000)
        sub.add_argument("--ltm-columns", type=int, default=1)
        sub.add_argument("--results-dir", default="results")
        sub.add_argument(
            "--accuracy-spec",
            type=float,
            default=0.5,
            help="accuracy floor for the parametric-yield summary",
        )
    return parser


def _specs(args) -> tuple[VariabilitySpec, VariabilitySpec]:
    """(train_spec, eval_spec) for the chosen scenario.

    Training always sees within-chip variation only (the paper's deployment
    flow); the mixed scenario adds the correlated component at eval time.
    """
    variance_model = variance_model_by_name(args.variance_model)
    if args.scenario == "within":
        train = VariabilitySpec.within_only(args.sigma, variance_model)
        return train, train
    sigma_each = args.sigma / np.sqrt(2.0)
    train = VariabilitySpec.within_only(sigma_each, variance_model)
    return train, VariabilitySpec.mixed(sigma_each, variance_model)


def _self_tuning(args) -> SelfTuningConfig | None:
    if args.self_tuning == "none":
        return None
    return SelfTuningConfig(
        kind=args.self_tuning,
        gtm_cells=args.gtm_cells,
        ltm_columns=args.ltm_columns,
    )


def _result_row(method: str, result, args) -> list:
    summary = summarize(result.robustness, accuracy_spec=args.accuracy_spec)
    return [
        method,
        100 * result.clean_accuracy,
        100 * summary["mean"],
        100 * summary["p05"],
        100 * summary["worst"],
        100 * summary["yield_at_spec"],
    ]


def _record(result, args, method: str) -> dict:
    summary = summarize(result.robustness, accuracy_spec=args.accuracy_spec)
    return {
        "method": method,
        "model": args.model,
        "notation": args.notation,
        "sigma": args.sigma,
        "scenario": args.scenario,
        "variance_model": args.variance_model,
        "scale": args.scale,
        "self_tuning": args.self_tuning,
        "clean_accuracy": result.clean_accuracy,
        "summary": summary,
        "accuracies": result.robustness.accuracies,
    }


def _run_one(args, method: str):
    model_name, workload = WORKLOADS[args.model]
    train_spec, eval_spec = _specs(args)
    return run_method(
        method,
        model_name,
        workload,
        QConfig.from_notation(args.notation),
        train_spec,
        eval_spec,
        EXPERIMENT_SCALES[args.scale],
        MethodConfig(n_variation_samples=args.samples, seed=args.seed),
        self_tuning=_self_tuning(args),
    )


def _cmd_list() -> int:
    print("models:    " + ", ".join(sorted(WORKLOADS)))
    print("methods:   " + ", ".join(METHODS))
    print("scales:    " + ", ".join(sorted(EXPERIMENT_SCALES)))
    print("scenarios: within (Sec. IV-A), mixed (Sec. IV-B)")
    print("variance:  weight-proportional, layer-fixed")
    return 0


_HEADERS = ["method", "clean %", "mean %", "p05 %", "worst %", "yield %"]


def _cmd_run(args) -> int:
    result = _run_one(args, args.method)
    print(
        format_table(
            _HEADERS,
            [_result_row(args.method, result, args)],
            title=(
                f"{args.model}/{args.notation} sigma={args.sigma} "
                f"{args.scenario} ({args.variance_model}), scale={args.scale}"
            ),
        )
    )
    store = ResultStore(args.results_dir)
    path = store.save(f"run-{args.method}-{args.model}", _record(result, args, args.method))
    print(f"\nsaved: {path}")
    return 0


def _cmd_compare(args) -> int:
    rows = []
    store = ResultStore(args.results_dir)
    for method in METHODS:
        result = _run_one(args, method)
        rows.append(_result_row(method, result, args))
        store.save(f"compare-{method}-{args.model}", _record(result, args, method))
    print(
        format_table(
            _HEADERS,
            rows,
            title=(
                f"{args.model}/{args.notation} sigma={args.sigma} "
                f"{args.scenario} ({args.variance_model}), scale={args.scale}"
            ),
        )
    )
    return 0


def _cmd_sweep(args) -> int:
    rows = []
    store = ResultStore(args.results_dir)
    for sigma in args.sigmas:
        args.sigma = sigma
        result = _run_one(args, args.method)
        rows.append([sigma] + _result_row(args.method, result, args)[1:])
        store.save(
            f"sweep-{args.method}-{args.model}", _record(result, args, args.method)
        )
    print(
        format_table(
            ["sigma"] + _HEADERS[1:],
            rows,
            title=(
                f"{args.method} sweep: {args.model}/{args.notation} "
                f"{args.scenario} ({args.variance_model}), scale={args.scale}"
            ),
        )
    )
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    return _cmd_compare(args)
