"""JSON persistence for experiment results.

A :class:`ResultStore` is a directory of JSON records, one per experiment
run, keyed by a caller-chosen name plus a monotonically increasing run
index.  Used by the CLI so sweeps can be resumed and compared across
sessions (the benchmark suite keeps its own plain-text outputs under
``benchmarks/results/``).
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import asdict, is_dataclass

import numpy as np


def _jsonable(value):
    """Recursively convert numpy / dataclass values into JSON-safe types."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if is_dataclass(value) and not isinstance(value, type):
        return _jsonable(asdict(value))
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "__dict__") and not isinstance(value, type):
        # VariabilitySpec and friends: record their public attributes.
        return {
            k: _jsonable(v)
            for k, v in vars(value).items()
            if not k.startswith("_")
        }
    return value


class ResultStore:
    """Append-only JSON record store rooted at a directory."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, name: str, run: int) -> str:
        return os.path.join(self.root, f"{name}.run{run:03d}.json")

    def next_run_index(self, name: str) -> int:
        return len(self.list_runs(name))

    def save(self, name: str, record: dict) -> str:
        """Write one record; returns the file path."""
        if not re.fullmatch(r"[A-Za-z0-9._-]+", name):
            raise ValueError(f"unsafe record name {name!r}")
        run = self.next_run_index(name)
        path = self._path(name, run)
        with open(path, "w") as handle:
            json.dump(_jsonable(record), handle, indent=2, sort_keys=True)
        return path

    def load(self, name: str, run: int = -1) -> dict:
        """Load one record (default: the latest run)."""
        runs = self.list_runs(name)
        if not runs:
            raise FileNotFoundError(f"no stored runs named {name!r} under {self.root}")
        path = runs[run]
        with open(path) as handle:
            return json.load(handle)

    def list_runs(self, name: str) -> list[str]:
        """Paths of all stored runs for ``name``, oldest first."""
        pattern = re.compile(re.escape(name) + r"\.run(\d+)\.json$")
        matches = []
        for filename in os.listdir(self.root):
            match = pattern.fullmatch(filename)
            if match:
                matches.append((int(match.group(1)), filename))
        return [os.path.join(self.root, f) for _, f in sorted(matches)]

    def list_names(self) -> list[str]:
        """Distinct record names present in the store."""
        names = set()
        for filename in os.listdir(self.root):
            match = re.fullmatch(r"(.+)\.run\d+\.json", filename)
            if match:
                names.add(match.group(1))
        return sorted(names)
