"""Fabrication-time conductance variability models (paper Sec. II-B).

Two variance models are supported:

* **weight-proportional** — ``sigma(w) = sigma * |w|`` (Long et al. [2]);
  reparameterization ``f(eps, w) = eps * w``.
* **layer-fixed** — ``sigma(w) = sigma * |w_max^l|`` (Joshi et al. [17]);
  reparameterization ``f(eps, w) = eps * w_max^l``.

The spatial structure follows the additive within-/between-chip
decomposition: ``eps_i = eps_B + eps_{W,i}`` where ``eps_B ~ N(0, sigma_B^2)``
is shared by every weight on a chip and ``eps_{W,i} ~ N(0, sigma_W^2)`` is
iid per memory cell.
"""

from repro.variability.models import (
    LayerFixedVariance,
    VarianceModel,
    WeightProportionalVariance,
    variance_model_by_name,
)
from repro.variability.sampler import ChipVariation, VariabilitySampler, VariabilitySpec
from repro.variability.injection import (
    VariabilityInjector,
    clear_variation,
    inject_variation,
    restore_variation,
    snapshot_variation,
)
from repro.variability.faults import (
    FaultSpec,
    apply_stuck_codes,
    evaluate_fault_robustness,
    inject_faults,
    layer_fault_masks,
    stuck_masks,
)

__all__ = [
    "VarianceModel",
    "WeightProportionalVariance",
    "LayerFixedVariance",
    "variance_model_by_name",
    "VariabilitySpec",
    "VariabilitySampler",
    "ChipVariation",
    "VariabilityInjector",
    "inject_variation",
    "clear_variation",
    "snapshot_variation",
    "restore_variation",
    "FaultSpec",
    "inject_faults",
    "evaluate_fault_robustness",
    "stuck_masks",
    "layer_fault_masks",
    "apply_stuck_codes",
]
