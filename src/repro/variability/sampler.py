"""Sampling of chip variation vectors in reparameterized space."""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.variability.models import VarianceModel, WeightProportionalVariance


@dataclass
class VariabilitySpec:
    """Full description of a variability scenario.

    ``sigma_within`` / ``sigma_between`` are the normalized standard
    deviations of the within-chip and between-chip components; the paper's
    Scenario 1 uses ``sigma_between = 0`` and Scenario 2 ("mixed-type") uses
    ``sigma_between = sigma_within``.
    """

    sigma_within: float = 0.0
    sigma_between: float = 0.0
    variance_model: VarianceModel = field(default_factory=WeightProportionalVariance)

    @property
    def sigma_total(self) -> float:
        """sqrt(sigma_W^2 + sigma_B^2) — the paper's sigma_tot."""
        return float(np.hypot(self.sigma_within, self.sigma_between))

    @property
    def is_null(self) -> bool:
        """True when no variability is injected (plain QAT)."""
        return self.sigma_within == 0.0 and self.sigma_between == 0.0

    @classmethod
    def within_only(cls, sigma: float, variance_model: VarianceModel) -> "VariabilitySpec":
        """Scenario 1: within-chip variation only."""
        return cls(sigma_within=sigma, sigma_between=0.0, variance_model=variance_model)

    @classmethod
    def mixed(cls, sigma_each: float, variance_model: VarianceModel) -> "VariabilitySpec":
        """Scenario 2: equal within- and between-chip components."""
        return cls(
            sigma_within=sigma_each, sigma_between=sigma_each, variance_model=variance_model
        )

    @classmethod
    def null(cls) -> "VariabilitySpec":
        """No variability (used for the QAT baseline)."""
        return cls(0.0, 0.0)


class ChipVariation:
    """One sampled chip: a shared ``eps_B`` plus lazy per-layer ``eps_W``.

    The per-layer draws are generated from a dedicated RNG so that a chip is
    a reproducible object: querying the same layer key twice returns equal
    epsilon values.  Only the within-chip pattern is cached; ``eps_between``
    is added at query time so that a time-varying subclass
    (:class:`repro.pim.drift.DriftingChip`) stays consistent.
    """

    def __init__(self, eps_between: float, sigma_within: float, seed: int) -> None:
        self.eps_between = float(eps_between)
        self.sigma_within = float(sigma_within)
        self._seed = int(seed)
        self._cache: dict[str, np.ndarray] = {}
        # Scratch space for measurement results that are physically fixed per
        # chip (e.g. the GTM estimate of eps_B); keyed by the measuring module.
        self.measurements: dict[str, float] = {}

    def rng_for(self, tag: str) -> np.random.Generator:
        """Deterministic RNG for chip-specific draws (GTM/LTM cell noise)."""
        return np.random.default_rng((self._seed, zlib.crc32(tag.encode())))

    def within_pattern(self, key: str, shape: tuple[int, ...]) -> np.ndarray:
        """The frozen fabrication-time eps_W pattern for one layer."""
        if key not in self._cache:
            # zlib.crc32 is a stable string hash (python's hash() is salted
            # per process, which would break cross-process reproducibility).
            layer_rng = np.random.default_rng((self._seed, zlib.crc32(key.encode())))
            if self.sigma_within > 0.0:
                eps_w = layer_rng.normal(0.0, self.sigma_within, size=shape)
            else:
                eps_w = np.zeros(shape)
            self._cache[key] = eps_w
        cached = self._cache[key]
        if cached.shape != tuple(shape):
            raise ValueError(
                f"layer {key!r} queried with shape {shape}, previously {cached.shape}"
            )
        return cached

    def epsilon_for(self, key: str, shape: tuple[int, ...]) -> np.ndarray:
        """Total reparameterized epsilon (eps_B + eps_W) for one layer.

        ``eps_between`` is read at call time, so subclasses with a
        time-varying between-chip component (:class:`repro.pim.drift.DriftingChip`)
        stay consistent without invalidating the frozen eps_W cache.
        """
        return self.eps_between + self.within_pattern(key, shape)

    def release_patterns(self) -> None:
        """Drop the cached per-layer eps_W arrays (the chip's heavy state).

        The patterns are pure functions of ``(seed, layer key)``, so a
        released chip re-derives bit-identical arrays on the next
        :meth:`within_pattern` query.  ``eps_between`` (including drift
        state on subclasses) and :attr:`measurements` are untouched — this
        is the spill primitive large lazy fleets use to bound resident
        memory (see :mod:`repro.serve.shard`).
        """
        self._cache.clear()

    def __repr__(self) -> str:
        return (
            f"ChipVariation(eps_between={self.eps_between:+.4f}, "
            f"sigma_within={self.sigma_within})"
        )


class VariabilitySampler:
    """Draws :class:`ChipVariation` objects for a :class:`VariabilitySpec`."""

    def __init__(self, spec: VariabilitySpec, seed: int = 0) -> None:
        self.spec = spec
        self._rng = np.random.default_rng(seed)

    def sample_chip_params(self) -> tuple[float, float, int]:
        """Draw one chip's ``(eps_between, sigma_within, seed)`` triple.

        Consumes exactly the RNG stream :meth:`sample_chip` consumes, so a
        caller that stores descriptors and realizes
        :class:`ChipVariation` objects later (lazy fleets, see
        :class:`repro.serve.engine.ChipDescriptor`) produces chips
        bit-identical to eager sampling.
        """
        if self.spec.sigma_between > 0.0:
            eps_b = float(self._rng.normal(0.0, self.spec.sigma_between))
        else:
            eps_b = 0.0
        seed = int(self._rng.integers(0, 2**31 - 1))
        return eps_b, float(self.spec.sigma_within), seed

    def sample_chip(self) -> ChipVariation:
        """Sample one chip (one eps_B; eps_W drawn lazily per layer)."""
        return ChipVariation(*self.sample_chip_params())

    def sample_chips(self, count: int) -> list[ChipVariation]:
        """Sample ``count`` independent chips (a Monte Carlo test population)."""
        return [self.sample_chip() for _ in range(count)]
