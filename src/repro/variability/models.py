"""Variance models: how conductance variation scales with the weight."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor


class VarianceModel:
    """Maps a reparameterized noise draw ``eps`` to a weight perturbation.

    ``delta_w = reparameterize(eps, w)`` must generate the same distribution
    as the model's ``delta_w ~ N(0, sigma(w)^2)`` when ``eps ~ N(0, sigma^2)``
    (paper Eq. 2 and Sec. II-B).
    """

    name = "base"

    def std(self, weights: np.ndarray, sigma: float) -> np.ndarray:
        """Per-element standard deviation ``sigma(w)``."""
        raise NotImplementedError

    def reparameterize(self, eps, weights):
        """Differentiable ``f(eps, w)``; ``weights`` may be a Tensor."""
        raise NotImplementedError

    def reparameterize_data(self, eps: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Non-differentiable ``f(eps, w)`` on raw arrays (naive injection)."""
        result = self.reparameterize(eps, Tensor(weights))
        return result.data if isinstance(result, Tensor) else np.asarray(result)

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}()"


class WeightProportionalVariance(VarianceModel):
    """``sigma(w) = sigma * |w|``; ``f(eps, w) = eps * w``.

    Because ``f`` depends on ``w``, the STE backward picks up the
    ``(1 + eps)`` factor of Eq. 4 automatically when the perturbation is
    built inside the autograd graph.
    """

    name = "weight-proportional"

    def std(self, weights: np.ndarray, sigma: float) -> np.ndarray:
        return sigma * np.abs(weights)

    def reparameterize(self, eps, weights):
        return weights * eps


class LayerFixedVariance(VarianceModel):
    """``sigma(w) = sigma * |w_max^l|``; ``f(eps, w) = eps * w_max^l``.

    ``w_max^l`` is the largest-magnitude weight of the layer, treated as a
    stored digital constant (paper Sec. III-B), so ``df/dw = 0`` and the STE
    factor reduces to 1.
    """

    name = "layer-fixed"

    def std(self, weights: np.ndarray, sigma: float) -> np.ndarray:
        w_max = np.max(np.abs(weights))
        return np.full_like(weights, sigma * w_max)

    def reparameterize(self, eps, weights):
        if isinstance(weights, Tensor):
            w_max = float(np.max(np.abs(weights.data)))
            # eps may be an ndarray; the product is a constant tensor added
            # onto the dequantized weights by the caller.
            return Tensor(eps * w_max)
        return eps * float(np.max(np.abs(weights)))


_MODELS = {
    WeightProportionalVariance.name: WeightProportionalVariance,
    LayerFixedVariance.name: LayerFixedVariance,
    "weight_proportional": WeightProportionalVariance,
    "layer_fixed": LayerFixedVariance,
}


def variance_model_by_name(name: str) -> VarianceModel:
    """Look up a variance model by its paper name."""
    if name not in _MODELS:
        raise KeyError(f"unknown variance model {name!r}; options: {sorted(_MODELS)}")
    return _MODELS[name]()
