"""Network-level stuck-at fault injection.

:mod:`repro.pim.nonidealities` models stuck cells at the conductance level;
this module lifts the same defect model to the fake-quant network path so
fault tolerance can be evaluated with the standard Monte Carlo protocol.
A stuck cell pins the *dequantized* weight at an extreme of the layer's
representable range (stuck-on) or at zero (stuck-off, the open-cell case in
a differential pair).

The perturbation is expressed as an additive delta on the dequantized
weights and installed through the existing injection interface (naive mode:
the delta is a constant in the autograd graph — faults are an inference
phenomenon, not a training signal).

The same defect model also drives *live* fleets: the serving chaos harness
(:mod:`repro.serve.faults`) applies a :class:`FaultSpec` through each
chip's owning backend via the shared helpers here —
:func:`layer_fault_masks` (deterministic per-layer-name mask draws, so the
fake-quant and circuit realizations of one chip pin the *same* logical
cells) and :func:`apply_stuck_codes` (in-place pinning in integer code
space, representable on both fidelities).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.quant.ptq import quantized_layers
from repro.variability.models import VarianceModel


class AdditiveDelta(VarianceModel):
    """A variance model carrying a precomputed additive perturbation.

    ``reparameterize(eps, w)`` ignores ``w`` and returns ``eps`` itself —
    the injection machinery then adds it onto the dequantized weights.
    """

    name = "additive-delta"

    def std(self, weights: np.ndarray, sigma: float) -> np.ndarray:
        raise NotImplementedError("additive deltas carry no sigma parameterization")

    def reparameterize(self, eps, weights):
        from repro.autograd import Tensor

        return Tensor(np.asarray(eps))


@dataclass(frozen=True)
class FaultSpec:
    """Stuck-at defect rates for deployed weights.

    ``p_stuck_off``: probability a weight reads as 0 (open cell);
    ``p_stuck_on``: probability a weight reads as ±w_max (shorted cell; the
    sign follows the original weight so the differential mapping stays
    consistent).
    """

    p_stuck_off: float = 0.0
    p_stuck_on: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_stuck_off <= 1.0 or not 0.0 <= self.p_stuck_on <= 1.0:
            raise ValueError("fault probabilities must be in [0, 1]")
        if self.p_stuck_off + self.p_stuck_on > 1.0:
            raise ValueError("total fault probability exceeds 1")

    @property
    def rate(self) -> float:
        return self.p_stuck_off + self.p_stuck_on


def stuck_masks(
    shape: tuple, spec: FaultSpec, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """One uniform draw split into ``(stuck_off, stuck_on)`` boolean masks.

    A single ``rng.random`` tensor partitions every cell into stuck-off
    (``u < p_off``), stuck-on (``p_off <= u < p_off + p_on``), or healthy —
    so the two defect kinds never collide and the total rate is exact.
    """
    u = rng.random(shape)
    stuck_off = u < spec.p_stuck_off
    stuck_on = (u >= spec.p_stuck_off) & (u < spec.rate)
    return stuck_off, stuck_on


def layer_fault_masks(
    name: str, shape: tuple, spec: FaultSpec, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic per-layer masks keyed by the layer's dotted name.

    Seeded like :meth:`~repro.variability.sampler.ChipVariation.epsilon_for`
    (name digest + seed), so every backend realizing the same chip draws
    the *same* fault map for the same layer — the property the fake-quant
    vs circuit fault-parity test locks in.  ``shape`` is the fake-quant
    weight tensor's shape on both paths (the circuit path transposes the
    masks into its code layout afterwards).
    """
    rng = np.random.default_rng(
        (int(seed), zlib.crc32(f"fault:{name}".encode("utf-8")))
    )
    return stuck_masks(shape, spec, rng)


def apply_stuck_codes(
    codes: np.ndarray,
    stuck_off: np.ndarray,
    stuck_on: np.ndarray,
    qmin: int,
    qmax: int,
) -> int:
    """Pin stuck cells *in place* in integer weight-code space.

    Stuck-off cells read 0; stuck-on cells read the largest magnitude that
    is representable in both directions of the code range
    (``min(max|codes|, qmax, -qmin)``), signed like the original weight so
    the differential mapping stays consistent.  Operating in code space
    keeps the fake-quant realization (codes * scale written back into the
    replica's weights) and the circuit realization (codes reprogrammed
    onto crossbar tiles) numerically identical.  Returns the stuck count.
    """
    magnitude = float(np.max(np.abs(codes))) if codes.size else 0.0
    pin = min(magnitude if magnitude > 0.0 else 1.0, float(qmax), float(-qmin))
    signs = np.where(codes >= 0, 1.0, -1.0)
    codes[stuck_off] = 0.0
    codes[stuck_on] = (signs * pin)[stuck_on]
    return int(np.count_nonzero(stuck_off | stuck_on))


def fault_delta(layer, spec: FaultSpec, rng: np.random.Generator) -> np.ndarray:
    """Additive delta realizing one sampled fault map on a quantized layer."""
    w_ideal = layer.dequantized_weight()
    stuck_off, stuck_on = stuck_masks(w_ideal.shape, spec, rng)
    w_max = float(np.max(np.abs(w_ideal))) or 1.0
    target = w_ideal.copy()
    target[stuck_off] = 0.0
    signs = np.where(w_ideal >= 0, 1.0, -1.0)
    target[stuck_on] = (signs * w_max)[stuck_on]
    return target - w_ideal


def inject_faults(model, spec: FaultSpec, seed: int = 0) -> int:
    """Install one sampled fault map on every quantized layer.

    Returns the total number of faulted weights.  Remove with
    :func:`repro.variability.clear_variation`.
    """
    rng = np.random.default_rng(seed)
    model_delta = AdditiveDelta()
    faulted = 0
    for _, layer in quantized_layers(model):
        delta = fault_delta(layer, spec, rng)
        faulted += int(np.count_nonzero(delta))
        layer.set_variation(delta, model_delta, "naive")
    return faulted


def evaluate_fault_robustness(
    model,
    dataset,
    spec: FaultSpec,
    num_maps: int = 20,
    batch_size: int = 64,
    seed: int = 0,
):
    """Mean accuracy over independently sampled fault maps.

    The fault-map population plays the role of the chip population in the
    paper's variability protocol.  The model's prior variation state is
    snapshotted and restored afterwards (not blindly cleared), so faults
    can be evaluated on a model that already carries an installed chip
    variation without silently erasing it.
    """
    from repro.eval.robustness import RobustnessResult, _dataset_accuracy
    from repro.variability.injection import restore_variation, snapshot_variation

    model.eval()
    snapshot = snapshot_variation(model)
    result = RobustnessResult()
    try:
        for index in range(num_maps):
            inject_faults(model, spec, seed=seed + index)
            result.accuracies.append(_dataset_accuracy(model, dataset, batch_size))
    finally:
        restore_variation(model, snapshot)
    return result
