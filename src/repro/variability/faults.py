"""Network-level stuck-at fault injection.

:mod:`repro.pim.nonidealities` models stuck cells at the conductance level;
this module lifts the same defect model to the fake-quant network path so
fault tolerance can be evaluated with the standard Monte Carlo protocol.
A stuck cell pins the *dequantized* weight at an extreme of the layer's
representable range (stuck-on) or at zero (stuck-off, the open-cell case in
a differential pair).

The perturbation is expressed as an additive delta on the dequantized
weights and installed through the existing injection interface (naive mode:
the delta is a constant in the autograd graph — faults are an inference
phenomenon, not a training signal).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.quant.ptq import quantized_layers
from repro.variability.models import VarianceModel


class AdditiveDelta(VarianceModel):
    """A variance model carrying a precomputed additive perturbation.

    ``reparameterize(eps, w)`` ignores ``w`` and returns ``eps`` itself —
    the injection machinery then adds it onto the dequantized weights.
    """

    name = "additive-delta"

    def std(self, weights: np.ndarray, sigma: float) -> np.ndarray:
        raise NotImplementedError("additive deltas carry no sigma parameterization")

    def reparameterize(self, eps, weights):
        from repro.autograd import Tensor

        return Tensor(np.asarray(eps))


@dataclass(frozen=True)
class FaultSpec:
    """Stuck-at defect rates for deployed weights.

    ``p_stuck_off``: probability a weight reads as 0 (open cell);
    ``p_stuck_on``: probability a weight reads as ±w_max (shorted cell; the
    sign follows the original weight so the differential mapping stays
    consistent).
    """

    p_stuck_off: float = 0.0
    p_stuck_on: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_stuck_off <= 1.0 or not 0.0 <= self.p_stuck_on <= 1.0:
            raise ValueError("fault probabilities must be in [0, 1]")
        if self.p_stuck_off + self.p_stuck_on > 1.0:
            raise ValueError("total fault probability exceeds 1")

    @property
    def rate(self) -> float:
        return self.p_stuck_off + self.p_stuck_on


def fault_delta(layer, spec: FaultSpec, rng: np.random.Generator) -> np.ndarray:
    """Additive delta realizing one sampled fault map on a quantized layer."""
    w_ideal = layer.dequantized_weight()
    u = rng.random(w_ideal.shape)
    stuck_off = u < spec.p_stuck_off
    stuck_on = (u >= spec.p_stuck_off) & (u < spec.rate)
    w_max = float(np.max(np.abs(w_ideal))) or 1.0
    target = w_ideal.copy()
    target[stuck_off] = 0.0
    signs = np.where(w_ideal >= 0, 1.0, -1.0)
    target[stuck_on] = (signs * w_max)[stuck_on]
    return target - w_ideal


def inject_faults(model, spec: FaultSpec, seed: int = 0) -> int:
    """Install one sampled fault map on every quantized layer.

    Returns the total number of faulted weights.  Remove with
    :func:`repro.variability.clear_variation`.
    """
    rng = np.random.default_rng(seed)
    model_delta = AdditiveDelta()
    faulted = 0
    for _, layer in quantized_layers(model):
        delta = fault_delta(layer, spec, rng)
        faulted += int(np.count_nonzero(delta))
        layer.set_variation(delta, model_delta, "naive")
    return faulted


def evaluate_fault_robustness(
    model,
    dataset,
    spec: FaultSpec,
    num_maps: int = 20,
    batch_size: int = 64,
    seed: int = 0,
):
    """Mean accuracy over independently sampled fault maps.

    The fault-map population plays the role of the chip population in the
    paper's variability protocol.
    """
    from repro.eval.robustness import RobustnessResult, _dataset_accuracy
    from repro.variability.injection import clear_variation

    model.eval()
    result = RobustnessResult()
    for index in range(num_maps):
        inject_faults(model, spec, seed=seed + index)
        result.accuracies.append(_dataset_accuracy(model, dataset, batch_size))
    clear_variation(model)
    return result
