"""Attaching sampled chip variation to the quantized layers of a model.

Two injection modes are provided:

* ``"reparameterized"`` (default, the paper's contribution): the
  perturbation is built *inside* the autograd graph as
  ``w_tilde = w_D + f(eps, w_D)`` with ``eps`` a constant, so the
  backward pass computes the unbiased estimator of Eq. 2 including the
  ``(1 + df/dw)`` STE factor of Eq. 4.
* ``"naive"`` (the biased baseline of Eq. 1): ``delta_w = f(eps, w_D)``
  is evaluated numerically and added as a constant, so the gradient does
  not see the dependence of the noise on the weight.
"""

from __future__ import annotations

from repro.variability.sampler import ChipVariation, VariabilitySampler, VariabilitySpec

INJECTION_MODES = ("reparameterized", "naive")


def _quantized_layers(model):
    """Yield (name, layer) for every variability-capable layer in traversal order."""
    for name, module in model.named_modules():
        if getattr(module, "accepts_variation", False):
            yield name, module


class VariabilityInjector:
    """Samples chips from a spec and installs epsilons on a model's layers."""

    def __init__(
        self,
        spec: VariabilitySpec,
        seed: int = 0,
        mode: str = "reparameterized",
    ) -> None:
        if mode not in INJECTION_MODES:
            raise ValueError(f"mode must be one of {INJECTION_MODES}, got {mode!r}")
        self.spec = spec
        self.mode = mode
        self.sampler = VariabilitySampler(spec, seed=seed)

    def resample(self, model) -> ChipVariation | None:
        """Draw a fresh chip and install its variation on ``model``.

        Returns the chip, or ``None`` when the spec is null (QAT baseline).
        """
        if self.spec.is_null:
            clear_variation(model)
            return None
        chip = self.sampler.sample_chip()
        inject_variation(model, chip, self.spec, self.mode)
        return chip

    def clear(self, model) -> None:
        """Remove injected variation (restores ideal weights)."""
        clear_variation(model)


def inject_variation(model, chip: ChipVariation, spec: VariabilitySpec, mode: str = "reparameterized") -> None:
    """Install a specific chip's variation on every quantized layer."""
    for name, layer in _quantized_layers(model):
        eps = chip.epsilon_for(name, layer.weight.shape)
        layer.set_variation(eps, spec.variance_model, mode)
        layer.current_chip = chip


def clear_variation(model) -> None:
    """Remove any installed variation from the model's quantized layers."""
    for _, layer in _quantized_layers(model):
        layer.set_variation(None, None, "reparameterized")
        layer.current_chip = None


def snapshot_variation(model) -> list:
    """Capture every quantized layer's installed variation state.

    Returns an opaque snapshot for :func:`restore_variation`.  Evaluation
    protocols that temporarily install their own perturbation (e.g.
    :func:`repro.variability.faults.evaluate_fault_robustness`) use the
    pair to hand the model back exactly as they found it — clearing
    unconditionally would erase a pre-installed chip variation.
    """
    return [
        (layer, layer._epsilon, layer._variance_model, layer._injection_mode,
         layer.current_chip)
        for _, layer in _quantized_layers(model)
    ]


def restore_variation(model, snapshot: list) -> None:
    """Reinstall a state captured by :func:`snapshot_variation`.

    ``model`` is accepted for call-site symmetry (the snapshot itself
    holds the layer handles).
    """
    for layer, epsilon, variance_model, mode, chip in snapshot:
        layer.set_variation(epsilon, variance_model, mode)
        layer.current_chip = chip
