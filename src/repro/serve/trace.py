"""Arrival traces: when requests reach the serving engine.

``InferenceEngine.run`` submits every request at tick 0 — fine for a
throughput benchmark, useless for studying tail latency or drift, where
*when* traffic arrives matters as much as how much.  An
:class:`ArrivalTrace` assigns each request of a workload an arrival tick;
``InferenceEngine.run_trace`` then feeds the
:class:`~repro.serve.batcher.MicroBatcher` tick by tick, so partial
batches, deadline releases, and queue build-up during bursts all happen
exactly as they would under live traffic.

Traces are deterministic value objects: the schedule is a pure function of
the trace's own parameters (including its seed), never of global RNG
state, so a fixed-seed serving run is reproducible end to end — the
property ``tests/test_serve_lifecycle.py`` locks in.

* :class:`UniformTrace` — a constant deterministic rate (the closed-loop
  baseline);
* :class:`PoissonTrace` — i.i.d. exponential inter-arrival gaps (classic
  open-loop traffic);
* :class:`BurstyTrace` — an on/off modulated Poisson process (MMPP-style):
  quiet periods at ``rate`` interrupted by bursts at ``burst_rate``, the
  shape that actually stresses a batching deadline;
* :class:`ReplayTrace` — replay explicit per-request arrival ticks
  captured from a production log or a previous run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class ArrivalTrace:
    """Assigns arrival ticks (and optionally deadlines) to a request stream."""

    name = "base"

    def schedule(self, count: int) -> list[int]:
        """Non-decreasing arrival tick for each of ``count`` requests."""
        raise NotImplementedError

    def deadline_schedule(self, count: int) -> list:
        """Per-request absolute deadline ticks (``None`` = no deadline).

        Deadlines are relative to the trace's own tick 0, exactly like
        :meth:`schedule`; ``InferenceEngine.run_trace`` shifts both by the
        engine's current tick.  The base trace carries no deadlines — wrap
        any trace in a :class:`DeadlineTrace` to attach a per-request SLO,
        or hand :class:`ReplayTrace` explicit deadlines.
        """
        return [None] * count


@dataclass(frozen=True)
class UniformTrace(ArrivalTrace):
    """Deterministic constant arrival rate (``rate`` requests per tick)."""

    rate: float = 8.0

    def __post_init__(self) -> None:
        if self.rate <= 0.0:
            raise ValueError(f"rate must be positive, got {self.rate}")

    name = "uniform"

    def schedule(self, count: int) -> list[int]:
        return [int(i / self.rate) for i in range(count)]


@dataclass(frozen=True)
class PoissonTrace(ArrivalTrace):
    """Memoryless open-loop traffic: exponential inter-arrival gaps."""

    rate: float = 8.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate <= 0.0:
            raise ValueError(f"rate must be positive, got {self.rate}")

    name = "poisson"

    def schedule(self, count: int) -> list[int]:
        rng = np.random.default_rng((int(self.seed), 0x9015504))
        gaps = rng.exponential(1.0 / self.rate, size=count)
        return np.floor(np.cumsum(gaps)).astype(int).tolist()


@dataclass(frozen=True)
class BurstyTrace(ArrivalTrace):
    """On/off modulated Poisson traffic.

    The cycle is ``period`` ticks long; the first ``duty`` fraction of it
    runs hot at ``burst_rate``, the rest idles at ``rate``.  The mean rate
    is ``duty * burst_rate + (1 - duty) * rate``; bursts above the fleet's
    service rate build queue depth and light up the latency tail.
    """

    rate: float = 2.0
    burst_rate: float = 24.0
    period: int = 16
    duty: float = 0.25
    seed: int = 0

    name = "bursty"

    def __post_init__(self) -> None:
        if self.rate < 0.0 or self.burst_rate <= 0.0:
            raise ValueError("rates must be positive (quiet rate may be 0)")
        if self.period < 1 or not 0.0 < self.duty <= 1.0:
            raise ValueError("period must be >= 1 and duty in (0, 1]")

    def _rate_at(self, tick: int) -> float:
        return self.burst_rate if (tick % self.period) < self.duty * self.period else self.rate

    def schedule(self, count: int) -> list[int]:
        rng = np.random.default_rng((int(self.seed), 0xB0857))
        ticks: list[int] = []
        tick = 0
        while len(ticks) < count:
            arrivals = rng.poisson(self._rate_at(tick))
            ticks.extend([tick] * min(arrivals, count - len(ticks)))
            tick += 1
        return ticks


@dataclass(frozen=True)
class DeadlineTrace(ArrivalTrace):
    """Attach a per-request SLO to any arrival trace.

    Every request of the wrapped trace gets the absolute deadline
    ``arrival tick + slo_ticks`` — the uniform-SLO workload the
    ``serve-bench --slo`` gate measures.  The wrapped trace's arrival
    schedule is passed through untouched, so a deadline-bearing run sees
    exactly the traffic of its deadline-free twin.
    """

    inner: ArrivalTrace
    slo_ticks: int

    name = "deadline"

    def __post_init__(self) -> None:
        if self.slo_ticks < 1:
            raise ValueError(f"slo_ticks must be >= 1, got {self.slo_ticks}")

    def schedule(self, count: int) -> list[int]:
        return self.inner.schedule(count)

    def deadline_schedule(self, count: int) -> list:
        return [tick + self.slo_ticks for tick in self.inner.schedule(count)]


@dataclass(frozen=True)
class ReplayTrace(ArrivalTrace):
    """Replay explicit arrival ticks (e.g. captured from a request log).

    ``deadlines``, when given, replays per-request absolute deadline ticks
    alongside the arrivals — the shape the :class:`repro.serve.api.Gateway`
    compiles an accepted live run into, so an async session can be re-run
    offline bit-for-bit.
    """

    ticks: tuple[int, ...]
    deadlines: tuple | None = None

    name = "replay"

    def __post_init__(self) -> None:
        if any(b < a for a, b in zip(self.ticks, self.ticks[1:])):
            raise ValueError("replayed arrival ticks must be non-decreasing")
        if any(t < 0 for t in self.ticks):
            raise ValueError("arrival ticks must be non-negative")
        if self.deadlines is not None:
            if len(self.deadlines) != len(self.ticks):
                raise ValueError(
                    f"got {len(self.deadlines)} deadlines for {len(self.ticks)} arrivals"
                )

    def schedule(self, count: int) -> list[int]:
        if count > len(self.ticks):
            raise ValueError(
                f"trace has {len(self.ticks)} arrivals, {count} requests submitted"
            )
        return list(self.ticks[:count])

    def deadline_schedule(self, count: int) -> list:
        if self.deadlines is None:
            return [None] * count
        if count > len(self.deadlines):
            raise ValueError(
                f"trace has {len(self.deadlines)} deadlines, {count} requests submitted"
            )
        return list(self.deadlines[:count])

    @classmethod
    def from_trace(cls, trace: ArrivalTrace, count: int) -> "ReplayTrace":
        """Freeze another trace's schedule for ``count`` requests.

        Pins a generated (possibly seeded-random) trace to an explicit
        arrival list, so two runs — e.g. the reproducibility pair of the
        chaos bench — replay *literally* the same ticks rather than two
        draws of the same distribution.  Deadlines (a wrapped
        :class:`DeadlineTrace`, a deadline-bearing replay) are frozen too.
        """
        deadlines = trace.deadline_schedule(count)
        frozen = (
            None
            if all(deadline is None for deadline in deadlines)
            else tuple(
                None if deadline is None else int(deadline) for deadline in deadlines
            )
        )
        return cls(
            tuple(int(tick) for tick in trace.schedule(count)), deadlines=frozen
        )


TRACES = {
    UniformTrace.name: UniformTrace,
    PoissonTrace.name: PoissonTrace,
    BurstyTrace.name: BurstyTrace,
}


def make_trace(name: str, **kwargs) -> ArrivalTrace:
    """Instantiate a trace by registry name (``uniform``/``poisson``/``bursty``)."""
    if name not in TRACES:
        raise KeyError(f"unknown trace {name!r}; available: {sorted(TRACES)}")
    return TRACES[name](**kwargs)
