"""Batched multi-chip inference serving engine.

The deployment reality of analog PIM (the paper's Sec. IV) is a *fleet* of
non-identical accelerators: every fabricated chip carries its own sampled
variation, and self-tuning corrects each one individually.  The
:class:`InferenceEngine` simulates exactly that: it samples a pool of
chips from a :class:`~repro.variability.sampler.VariabilitySpec`, programs
a dedicated mapping per chip through a pluggable
:class:`~repro.backends.ChipBackend` (fake-quant replica or circuit-level
``PimChip`` — cached as :class:`~repro.backends.ProgrammedChip` objects in
an LRU :class:`~repro.serve.cache.MappingCache`), fuses incoming
single-sample requests into crossbar-friendly batches with a
:class:`~repro.serve.batcher.MicroBatcher`, and dispatches the batches
across the fleet under a pluggable
:class:`~repro.serve.scheduler.SchedulingPolicy`.

Everything is deterministic from ``ServeConfig.seed``: the same fleet,
the same request ids, and the same arrival ticks reproduce bit-identical
outputs — the per-row results are even invariant to batch composition,
because both backends treat batch rows independently.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backends import (
    ChipBackend,
    FusedFleetForward,
    ProgrammedChip,
    UnstackableError,
    make_backend,
)
from repro.datasets.loaders import batch_iterator
from repro.eval.metrics import topk_accuracy
from repro.obs import Observability
from repro.pim.devices import device_by_name
from repro.quant.ptq import quantized_layers
from repro.selftuning.tuner import SelfTuningConfig
from repro.serve.batcher import Batch, MicroBatcher, Request
from repro.serve.cache import MappingCache, mapping_key
from repro.serve.faults import ChipFault, DeadLetter, RetryPolicy
from repro.serve.health import HealthConfig, HealthMonitor
from repro.serve.scheduler import dispatchable, make_policy
from repro.serve.shard import ChipStateRef, ShardPlan, ShardPool
from repro.serve.telemetry import ServeTelemetry
from repro.serve.trace import ArrivalTrace
from repro.variability.faults import FaultSpec
from repro.variability.models import variance_model_by_name
from repro.variability.sampler import ChipVariation, VariabilitySampler, VariabilitySpec


@dataclass(frozen=True)
class ServeConfig:
    """Engine knobs: batching, scheduling, cache sizing, self-tuning.

    ``max_batch=1`` with ``max_wait=0`` degenerates to sequential
    per-request serving — the baseline ``benchmarks/bench_serving.py``
    measures against.  ``cache_capacity=None`` keeps every chip's mapping
    resident (programmed exactly once); a smaller capacity models a host
    that cannot hold the whole fleet and must reprogram on demand.

    ``backend`` selects how chips are realized: a registered
    :mod:`repro.backends` name (``"fake-quant"``, ``"circuit"``) or a
    configured :class:`~repro.backends.ChipBackend` instance.  A
    ``FleetSpec.backend`` set on a heterogeneous fleet takes precedence.

    ``tracing`` controls request-scoped span recording (metrics stay on
    either way): ``True`` collects spans in a bounded in-memory recorder,
    ``False`` swaps in the :class:`repro.obs.NullRecorder` fast path —
    the difference is bounded by ``tests/test_obs_overhead.py``.  Ignored
    when an explicit :class:`repro.obs.Observability` is handed to the
    engine.

    ``retry`` bounds how a failed dispatch is recovered (attempts, backoff,
    hedging, timeout — see :class:`repro.serve.faults.RetryPolicy`);
    ``health`` parameterizes the per-chip health state machine
    (:class:`repro.serve.health.HealthConfig`).  Both only matter once
    something fails — a fault-free run never parks a request.

    ``continuous`` enables continuous batching: a batch that reaches
    ``max_batch`` dispatches *inside* :meth:`InferenceEngine.submit`, the
    moment its last member arrives, instead of waiting for the next tick
    barrier — the admission mode the :class:`repro.serve.api.Gateway`
    runs the engine in.  Off by default: the tick-barrier behaviour every
    pre-gateway trace/bench was recorded under is unchanged.

    ``fused`` enables the batched cross-chip dispatch path: when several
    batches become due on the same tick, the engine stages them all
    (scheduling, counters, and SLO shedding in exact per-batch dispatch
    order) and executes the group through one
    :class:`~repro.backends.FusedFleetForward` — bit-identical outputs
    and an identical telemetry :meth:`~repro.serve.telemetry.ServeTelemetry.digest`,
    just fewer numpy calls.  The engine falls back to per-chip dispatch
    automatically whenever fusion cannot apply (an installed fault
    injector, self-tuning corrections, an unstackable fleet, or a
    single-batch tick), so turning it off is only ever a debugging aid.

    ``shards`` scales the engine out across worker processes: ``N >= 1``
    partitions the fleet into ``N`` contiguous shards
    (:class:`repro.serve.shard.ShardPlan`) and executes each tick's staged
    batches on a :class:`repro.serve.shard.ShardPool` of forked workers,
    each owning its shard's programmed chips.  Outputs and the telemetry
    digest are bit-identical to in-process execution (see
    ``docs/scale-out.md``); ``0`` (the default) is the in-process serial
    path — nothing changes for existing callers.  Chaos and self-tuning
    runs always take the serial path, mirroring ``fused``.

    ``max_resident_chips`` bounds how many chips may be *realized* at
    once on the coordinator: it caps the mapping cache at that many
    resident :class:`~repro.backends.ProgrammedChip` objects (tightening
    ``cache_capacity`` if both are set) and releases an evicted chip's
    realized variation patterns back to its seed descriptor — the LRU
    spill bound that lets ``num_chips=1000+`` fleets serve in
    O(``max_resident_chips``) heavy state.  Spilled chips re-realize
    deterministically on the next dispatch or probe.
    """

    max_batch: int = 32
    max_wait: int = 4
    policy: str = "round-robin"
    cache_capacity: int | None = None
    seed: int = 0
    self_tuning: SelfTuningConfig | None = None
    backend: str | ChipBackend = "fake-quant"
    tracing: bool = True
    retry: RetryPolicy = RetryPolicy()
    health: HealthConfig = HealthConfig()
    continuous: bool = False
    fused: bool = True
    shards: int = 0
    max_resident_chips: int | None = None


@dataclass(frozen=True)
class TechnologyGroup:
    """One homogeneous slice of a heterogeneous fleet.

    ``device`` names a :mod:`repro.pim.devices` preset; the group's chips
    are sampled from the variability spec that technology implies — its
    program/verify sigma becomes the spec's sigma and its residual-error
    shape (weight-proportional vs layer-fixed) picks the variance model.
    ``sigma_scale`` rescales the preset sigma (process maturity knob).
    """

    device: str
    count: int
    sigma_scale: float = 1.0

    def __post_init__(self) -> None:
        device_by_name(self.device)  # fail fast on typos
        if self.count < 1:
            raise ValueError(f"group count must be >= 1, got {self.count}")
        if self.sigma_scale <= 0.0:
            raise ValueError("sigma_scale must be positive")

    def variability_spec(self, scenario: str = "mixed") -> VariabilitySpec:
        """The spec this technology's chips are sampled from."""
        device = device_by_name(self.device)
        sigma = self.sigma_scale * device.effective_sigma()
        variance_model = variance_model_by_name(device.variance_model_name)
        if scenario == "within":
            return VariabilitySpec.within_only(sigma, variance_model)
        if scenario == "mixed":
            return VariabilitySpec.mixed(sigma / np.sqrt(2.0), variance_model)
        raise ValueError(f"scenario must be 'within' or 'mixed', got {scenario!r}")


@dataclass(frozen=True)
class FleetSpec:
    """A mixed-technology fleet: ordered technology groups.

    Parsed from the CLI syntax ``"rram:2,flash:2"`` (optionally
    ``rram:2@0.5`` to scale the preset sigma).  Chip ids carry the
    technology (``rram00``, ``flash02``, …) so telemetry and cache keys
    stay self-describing.  ``backend`` optionally pins how this fleet's
    chips are realized (a :mod:`repro.backends` name or instance),
    overriding the engine-wide ``ServeConfig.backend``.
    """

    groups: tuple[TechnologyGroup, ...]
    scenario: str = "mixed"
    backend: str | ChipBackend | None = None

    def __post_init__(self) -> None:
        if not self.groups:
            raise ValueError("fleet needs at least one technology group")

    @property
    def num_chips(self) -> int:
        """Total fleet size across every technology group."""
        return sum(group.count for group in self.groups)

    @classmethod
    def parse(
        cls, text: str, scenario: str = "mixed", backend: str | ChipBackend | None = None
    ) -> "FleetSpec":
        """Parse ``"rram:2,flash:2"`` / ``"rram:4@0.5"`` into a spec."""
        groups = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            device, _, tail = part.partition(":")
            count_text, _, scale_text = tail.partition("@")
            try:
                count = int(count_text) if count_text else 1
                scale = float(scale_text) if scale_text else 1.0
            except ValueError as error:
                raise ValueError(f"bad fleet group {part!r}: {error}") from None
            if count < 1:
                raise ValueError(
                    f"bad fleet group {part!r}: count must be >= 1, got {count}"
                )
            groups.append(TechnologyGroup(device.strip(), count, scale))
        return cls(tuple(groups), scenario=scenario, backend=backend)


@dataclass(frozen=True)
class ChipDescriptor:
    """Seed-addressed recipe for one chip's :class:`ChipVariation`.

    Everything a chip's fabrication state derives from: the sampled
    between-chip epsilon, the within-chip sigma, and the per-layer pattern
    seed.  A thousand-chip fleet stores only these triples
    (O(descriptors) memory) and realizes the heavy per-layer arrays on
    first traffic — :meth:`realize` is a pure function, so spilling and
    re-realizing a cold chip reproduces it bit-exactly.
    """

    eps_between: float
    sigma_within: float
    seed: int

    @classmethod
    def sample(cls, sampler: VariabilitySampler) -> "ChipDescriptor":
        """Draw one descriptor, consuming exactly ``sample_chip``'s RNG stream."""
        return cls(*sampler.sample_chip_params())

    def realize(self) -> ChipVariation:
        """Materialize the chip's variation (deterministic from the triple)."""
        return ChipVariation(self.eps_between, self.sigma_within, self.seed)


class FleetChip:
    """One pool member: a sampled chip plus its serving bookkeeping.

    ``technology``/``spec`` pin the chip's device class in a heterogeneous
    fleet (``spec=None`` means "use the engine-wide spec").  ``age`` is the
    virtual time since the chip was last (re)programmed and
    ``recalibrations`` counts lifecycle recalibration events — both stay at
    their defaults on static fleets and are maintained by
    :class:`~repro.serve.lifecycle.ChipLifecycle` on drifting ones.
    ``energy_uj`` accumulates the estimated physical energy of every batch
    dispatched to this chip (zero when the backend has no cost estimator)
    — the signal the ``energy-aware`` policy reads.  ``health`` is the
    chip's current state in the :mod:`repro.serve.health` machine; only
    serving states receive traffic
    (:func:`repro.serve.scheduler.dispatchable`).  ``fault_events`` counts
    every fault this chip has thrown (transients, latency spikes, its
    death) — the deterministic risk signal the ``latency-aware`` policy
    steers urgent batches away from.

    Chips are lazy: constructed from a :class:`ChipDescriptor`, the
    handle is pure bookkeeping until the first :attr:`variation` access
    realizes the :class:`~repro.variability.sampler.ChipVariation` — which
    is how ``num_chips=1000+`` fleets construct in O(descriptors) memory.
    Scheduling policies and the health machine read only counters, so
    routing never forces realization; :attr:`realized` says whether it
    happened and :meth:`spill` releases the realized per-layer patterns
    back to the seed (the engine calls it when
    ``ServeConfig.max_resident_chips`` evicts a cold chip).
    """

    def __init__(
        self,
        index: int,
        chip_id: str,
        variation: ChipVariation | None = None,
        served_samples: int = 0,
        served_batches: int = 0,
        quality: float | None = None,
        technology: str = "generic",
        spec: VariabilitySpec | None = None,
        age: float = 0.0,
        recalibrations: int = 0,
        mapping_stale: bool = False,
        energy_uj: float = 0.0,
        health: str = "healthy",
        fault_events: int = 0,
        descriptor: ChipDescriptor | None = None,
    ) -> None:
        if variation is None and descriptor is None:
            raise ValueError("FleetChip needs a variation or a descriptor")
        self.index = int(index)
        self.chip_id = str(chip_id)
        self._variation = variation
        self.descriptor = descriptor
        self.served_samples = served_samples
        self.served_batches = served_batches
        self.quality = quality
        self.technology = technology
        self.spec = spec
        self.age = age
        self.recalibrations = recalibrations
        self.mapping_stale = mapping_stale
        self.energy_uj = energy_uj
        self.health = health
        self.fault_events = fault_events

    @property
    def variation(self) -> ChipVariation:
        """The chip's fabrication state, realized from the descriptor on
        first access (lifecycle layers may later swap in a
        :class:`~repro.pim.drift.DriftingChip` via the setter)."""
        if self._variation is None:
            self._variation = self.descriptor.realize()
        return self._variation

    @variation.setter
    def variation(self, value: ChipVariation) -> None:
        self._variation = value

    @property
    def realized(self) -> bool:
        """Whether the variation has been materialized (no side effects)."""
        return self._variation is not None

    def spill(self) -> None:
        """Release the realized variation's cached per-layer patterns.

        The memory-bound half of lazy fleets: drops the heavy eps_W
        arrays (re-derived bit-exactly from the seed on next use) while
        keeping the variation object itself — drift state, measurements,
        and any :class:`~repro.pim.drift.DriftingChip` wrapper survive.
        No-op on a never-realized chip.
        """
        if self._variation is not None:
            self._variation.release_patterns()

    def __repr__(self) -> str:
        quality = f"{self.quality:.3f}" if self.quality is not None else "unprobed"
        return (
            f"FleetChip({self.chip_id}, tech={self.technology}, "
            f"served={self.served_samples}, quality={quality})"
        )


@dataclass
class ServedRequest:
    """Completed request: output logits plus serving provenance.

    ``deadline`` echoes the absolute deadline tick the request carried
    (``None`` = best effort) and ``completed_tick`` is the tick it was
    served at, so ``completed_tick <= deadline`` is the SLO-met predicate
    without consulting the engine.
    """

    id: str
    output: np.ndarray
    chip_id: str
    queue_ticks: int
    deadline: int | None = None
    completed_tick: int = 0


class InferenceEngine:
    """Serve a quantized model across a simulated fleet of PIM chips.

    ``model`` must already be converted (:func:`repro.quant.convert_to_quantized`)
    and calibrated (:func:`repro.quant.calibrate_model`); it is treated as
    the golden digital copy and never mutated — per-chip mappings are
    programmed through the configured :class:`~repro.backends.ChipBackend`
    onto structure-shared replicas (fake-quant) or crossbar tiles (circuit).

    Typical use::

        engine = InferenceEngine(model, spec, num_chips=4,
                                 config=ServeConfig(max_batch=32, policy="least-loaded"))
        results = engine.run(test.images)          # {request id: logits row}

    or streaming: ``submit`` requests as they arrive, call ``step`` per
    tick, and collect :class:`ServedRequest` objects as they complete.
    """

    def __init__(
        self,
        model,
        spec: VariabilitySpec,
        num_chips: int = 4,
        config: ServeConfig = ServeConfig(),
        model_key: str | None = None,
        fleet_spec: FleetSpec | None = None,
        obs: Observability | None = None,
    ) -> None:
        if fleet_spec is None and num_chips < 1:
            raise ValueError(f"num_chips must be >= 1, got {num_chips}")
        self.model = model
        self.spec = spec
        self.config = config
        self.model_key = model_key or model.__class__.__name__
        self._notation = self._validate_model(model)
        backend = config.backend
        if fleet_spec is not None and fleet_spec.backend is not None:
            backend = fleet_spec.backend
        self.backend = make_backend(backend)
        self.fleet_spec = fleet_spec
        if fleet_spec is None:
            sampler = VariabilitySampler(spec, seed=config.seed)
            width = max(2, len(str(num_chips - 1)))
            self.fleet = [
                FleetChip(
                    i,
                    f"chip{i:0{width}d}",
                    descriptor=ChipDescriptor.sample(sampler),
                )
                for i in range(num_chips)
            ]
        else:
            self.fleet = self._sample_heterogeneous(fleet_spec, config.seed)
        # One observability bundle per engine: the injectable clock every
        # latency measurement reads, the metrics registry telemetry lives
        # in, and the span recorder each request stage reports to.
        self.obs = obs if obs is not None else Observability.default(tracing=config.tracing)
        self._program_seconds = self.obs.registry.histogram(
            "serve_program_seconds", "seconds per miss-triggered chip programming",
            lo=1e-6, hi=1e3,
        )
        capacity = config.cache_capacity
        if config.max_resident_chips is not None:
            if config.max_resident_chips < 1:
                raise ValueError(
                    f"max_resident_chips must be >= 1 or None, got "
                    f"{config.max_resident_chips}"
                )
            capacity = (
                config.max_resident_chips
                if capacity is None
                else min(capacity, config.max_resident_chips)
            )
        self.cache = MappingCache(
            capacity=capacity,
            clock=self.obs.clock.now,
            on_program=self._on_program,
            on_evict=self._on_evict,
        )
        self.batcher = MicroBatcher(
            config.max_batch, config.max_wait, observer=self._on_batch_formed
        )
        self.policy = make_policy(config.policy)
        self.telemetry = ServeTelemetry(
            max_batch=config.max_batch, registry=self.obs.registry
        )
        self.telemetry.attach_cache(self.cache)
        self.health = HealthMonitor(
            config.health, telemetry=self.telemetry, obs=self.obs
        )
        #: The installed :class:`~repro.serve.faults.FaultInjector` (or None);
        #: set by ``FaultInjector.install``.
        self.faults = None
        #: Chips swapped out by spare provisioning, in replacement order.
        self.retired: list[FleetChip] = []
        #: Hooks fired as ``hook(old_chip, new_chip)`` after a replacement
        #: (the lifecycle registers one to adopt the fresh silicon).
        self.on_chip_replaced: list = []
        self.now = 0
        self._auto_id = 0
        self._completed: dict[str, ServedRequest] = {}
        self._submit_walls: dict[str, float] = {}
        self._dead_letters: dict[str, DeadLetter] = {}
        self._parked: list[tuple[int, Request]] = []
        self._attempts: dict[str, int] = {}
        self._first_arrival: dict[str, int] = {}
        self._sticky_faults: dict[str, tuple[FaultSpec, int]] = {}
        self._generations: dict[int, int] = {}
        self._last_fault_kind = "dispatch-failed"
        #: Lazily-built fused forward over the whole fleet (or None).
        self._fused: FusedFleetForward | None = None
        #: Fleet state key of the last failed fuse attempt — skips
        #: re-raising :class:`UnstackableError` every tick until the
        #: fleet's programmed state actually changes.
        self._fused_failed_key: tuple | None = None
        if config.shards < 0:
            raise ValueError(f"shards must be >= 0, got {config.shards}")
        #: Contiguous fleet partition driving sharded execution (or None
        #: for the in-process serial default).
        self.shard_plan = (
            ShardPlan.build(len(self.fleet), config.shards) if config.shards else None
        )
        self._shard_pool: ShardPool | None = None
        #: Per-chip programmed-state epoch: bumped whenever something other
        #: than drift mutates the chip's programmed state (fault pinning,
        #: recalibration), so shard workers drop and rebuild their copy.
        self._shard_epochs: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Fleet programming
    # ------------------------------------------------------------------
    @staticmethod
    def _sample_heterogeneous(fleet_spec: FleetSpec, seed: int) -> list[FleetChip]:
        """Sample a mixed-technology fleet, one sampler per technology group.

        Each group gets its own deterministic sampler stream, so adding a
        group (or reordering groups) never perturbs another group's chips.
        """
        fleet = []
        for group_index, group in enumerate(fleet_spec.groups):
            group_spec = group.variability_spec(fleet_spec.scenario)
            sampler = VariabilitySampler(group_spec, seed=(int(seed), group_index))
            for member in range(group.count):
                fleet.append(
                    FleetChip(
                        index=len(fleet),
                        chip_id=f"{group.device}{member:02d}",
                        descriptor=ChipDescriptor.sample(sampler),
                        technology=group.device,
                        spec=group_spec,
                    )
                )
        return fleet

    @staticmethod
    def _validate_model(model) -> str:
        layers = [layer for _, layer in quantized_layers(model)]
        if not layers:
            raise ValueError(
                "model has no quantized layers; run convert_to_quantized first"
            )
        for layer in layers:
            if layer.qconfig.quantize_activations and float(layer.act_scale) == 0.0:
                raise RuntimeError(
                    "model is not calibrated; run calibrate_model before serving"
                )
        return layers[0].qconfig.notation

    def _on_program(self, key: tuple, seconds: float) -> None:
        """Cache profiling hook: account one miss-triggered programming."""
        self._program_seconds.observe(seconds)

    def _on_evict(self, key: tuple, programmed) -> None:
        """Cache spill hook: a chip's mapping left the cache under
        capacity pressure, so release its realized variation patterns too.

        This is what makes ``max_resident_chips`` a bound on *heavy* chip
        state, not just on programmed mappings: the evicted chip's cached
        per-layer eps_W arrays are dropped (drift state and measurements
        survive) and re-derive bit-exactly from the seed when traffic
        returns.  Only :func:`~repro.serve.cache.mapping_key`-shaped keys
        participate; the chip id is the last key element.
        """
        if not (isinstance(key, tuple) and key):
            return
        chip = self.chip_by_id(str(key[-1]))
        if chip is None or not chip.realized:
            return
        chip.spill()
        self.cache.stats.spills += 1
        self.obs.event("chip.spill", chip=chip.chip_id, tick=self.now)

    def _on_batch_formed(self, batch: Batch) -> None:
        """Batcher tracing hook: one event per cut batch."""
        self.obs.event(
            "batch",
            size=batch.size,
            formed=batch.formed,
            wait_ticks=batch.max_queue_ticks(),
        )

    def _program(self, chip: FleetChip) -> ProgrammedChip:
        """Write the chip through the backend: the expensive step the
        mapping cache amortizes.

        Per-layer epsilon draws are cached inside the
        :class:`ChipVariation`, so reprogramming after an eviction
        reproduces the exact same physical chip — on either backend.
        """
        with self.obs.span(
            "program", chip=chip.chip_id, backend=self.backend.name
        ) as span:
            programmed = self.backend.program(
                self.model,
                chip.variation,
                spec=self.spec_for(chip),
                chip_id=chip.chip_id,
                self_tuning=self.config.self_tuning,
            )
            span.set(layers=programmed.describe().get("quantized_layers"))
        programmed.attach_observability(self.obs)
        sticky = self._sticky_faults.get(chip.chip_id)
        if sticky is not None:
            # Stuck cells are physical damage: reprogramming (recalibration,
            # cache eviction) rewrites the healthy cells but the stuck ones
            # stay pinned, so the fault map is re-applied on every program.
            fault_spec, fault_seed = sticky
            programmed.apply_faults(fault_spec, seed=fault_seed)
            programmed.refresh(chip.variation)
        chip.mapping_stale = False  # programmed from the chip's current state
        return programmed

    def spec_for(self, chip: FleetChip) -> VariabilitySpec:
        """The variability spec governing one chip (per-technology on
        heterogeneous fleets, the engine-wide spec otherwise)."""
        return chip.spec if chip.spec is not None else self.spec

    def key_for(self, chip: FleetChip) -> tuple:
        """The chip's mapping-cache key (backend identity included)."""
        return mapping_key(
            self.model_key, self._notation, chip.chip_id, backend=self.backend.name
        )

    def programmed_for(self, chip: FleetChip) -> ProgrammedChip:
        """The chip's :class:`~repro.backends.ProgrammedChip`, (re)programming
        through the cache on demand."""
        programmed = self.cache.get_or_program(
            self.key_for(chip), lambda: self._program(chip)
        )
        if chip.mapping_stale:
            # The physical chip changed since this mapping was last installed
            # (drift advanced by the lifecycle).  Refresh in place, lazily, so
            # only chips that are actually dispatched or probed pay the
            # re-installation cost — and without any cache traffic, because
            # drift does not reprogram anything.
            programmed.refresh(chip.variation)
            chip.mapping_stale = False
        return programmed

    def _mapping_for(self, chip: FleetChip):
        """Backwards-compatible pre-backend accessor: the chip's mapping Module.

        New code should use :meth:`programmed_for` and talk to the
        :class:`~repro.backends.ProgrammedChip` protocol instead.
        """
        return self.programmed_for(chip).mapping

    def reprogram(self, chip: FleetChip) -> int:
        """Rewrite one chip's mapping through its owning backend.

        The recalibration entry point: drops the chip's cache entry (and
        only that entry) and programs a fresh mapping from the chip's
        *current* variation.  Returns how many cache entries were
        invalidated (0 when the chip was not resident).
        """
        invalidated = int(self.cache.invalidate(self.key_for(chip)))
        self._bump_shard_epoch(chip)
        self.programmed_for(chip)
        return invalidated

    def warm_up(self) -> None:
        """Program every chip ahead of traffic (cold-start avoidance)."""
        for chip in self.fleet:
            self.programmed_for(chip)

    # ------------------------------------------------------------------
    # Faults, retirement, spare provisioning
    # ------------------------------------------------------------------
    def chip_by_id(self, chip_id: str) -> FleetChip | None:
        """The in-rotation chip with this id, or ``None`` (e.g. replaced)."""
        for chip in self.fleet:
            if chip.chip_id == chip_id:
                return chip
        return None

    def inject_chip_faults(self, chip: FleetChip, spec: FaultSpec, seed: int = 0) -> int:
        """Pin a sampled stuck-at fault map onto one chip's programmed state.

        Applied through the chip's owning backend
        (:meth:`repro.backends.ProgrammedChip.apply_faults`), so fake-quant
        and circuit fleets degrade the same way.  The map is *sticky*: it
        is remembered per chip id and re-applied whenever the chip is
        reprogrammed — stuck cells survive recalibration; only spare
        provisioning (a new chip id) sheds them.  Returns the number of
        stuck cells.
        """
        # Materialize first, then mark sticky: a cold chip programmed inside
        # this call must not have the map applied twice (once by ``_program``
        # seeing the sticky entry, once below).
        programmed = self.programmed_for(chip)
        self._sticky_faults[chip.chip_id] = (spec, int(seed))
        self._bump_shard_epoch(chip)
        with self.obs.span("faults.inject", chip=chip.chip_id) as span:
            stuck = programmed.apply_faults(spec, seed=int(seed))
            span.set(stuck=stuck)
        # Re-install the chip's variation on top of the mutated programmed
        # state (the circuit backend rewrites its tiles here).
        programmed.refresh(chip.variation)
        chip.mapping_stale = False
        return stuck

    def retire_dead(self, chip: FleetChip) -> FleetChip | None:
        """Take a hard-failed chip out of rotation; returns its replacement.

        The chip is retired in the health machine immediately; when
        ``config.health.replace_retired`` is on, spare provisioning swaps
        in fresh silicon in the same fleet slot.
        """
        self.health.on_death(chip, self.now)
        if self.config.health.replace_retired:
            return self.replace_chip(chip, reason="dead")
        return None

    def replace_chip(self, chip: FleetChip, reason: str = "retired") -> FleetChip:
        """Spare provisioning: swap ``chip`` for fresh silicon, same slot.

        The replacement is sampled from the same technology's variability
        spec under a fresh deterministic seed (generation-keyed, so every
        replacement in a run is a distinct chip and reruns reproduce it).
        Its id is ``<base>+<generation>`` — a new physical identity, so
        cache keys, sticky fault maps, and health history never leak from
        the dead chip.  The old chip's cache entries are surgically
        invalidated, exactly like recalibration.
        """
        generation = self._generations.get(chip.index, 0) + 1
        self._generations[chip.index] = generation
        base_id = chip.chip_id.partition("+")[0]
        sampler = VariabilitySampler(
            self.spec_for(chip),
            seed=(int(self.config.seed), 0x5BA6E, chip.index, generation),
        )
        replacement = FleetChip(
            index=chip.index,
            chip_id=f"{base_id}+{generation}",
            descriptor=ChipDescriptor.sample(sampler),
            technology=chip.technology,
            spec=chip.spec,
        )
        slot = self.fleet.index(chip)
        self.fleet[slot] = replacement
        self.retired.append(chip)
        invalidated = self.cache.invalidate_chip(chip.chip_id)
        self._sticky_faults.pop(chip.chip_id, None)
        self.health.mark_replaced(chip, self.now, reason=reason)
        self.health.adopt(replacement)
        self.telemetry.record_replacement(chip.chip_id, replacement.chip_id, self.now)
        self.obs.event(
            "chip.replaced",
            old=chip.chip_id,
            new=replacement.chip_id,
            tick=self.now,
            invalidated=invalidated,
        )
        for hook in self.on_chip_replaced:
            hook(chip, replacement)
        return replacement

    def probe_fleet(
        self, dataset, k: int = 1, batch_size: int = 64
    ) -> dict[str, float]:
        """Measure per-chip calibration quality on a labelled probe set.

        Runs the probe set through each chip's mapping and stores top-``k``
        accuracy on the chip handle — the signal the accuracy-weighted
        scheduling policy uses.  Returns ``{chip_id: quality}``.
        """
        return {
            chip.chip_id: self.probe_chip(chip, dataset, k=k, batch_size=batch_size)
            for chip in self.fleet
        }

    def probe_chip(
        self, chip: FleetChip, dataset, k: int = 1, batch_size: int = 64
    ) -> float:
        """Probe one chip's current quality and store it on the handle."""
        programmed = self.programmed_for(chip)
        logits, targets = [], []
        for inputs, labels in batch_iterator(dataset, batch_size, shuffle=False):
            logits.append(programmed.forward(inputs))
            targets.append(labels)
        chip.quality = topk_accuracy(
            np.concatenate(logits), np.concatenate(targets), k=k
        )
        return chip.quality

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def submit(
        self,
        payload: np.ndarray,
        request_id: str | None = None,
        deadline: int | None = None,
    ) -> Request:
        """Enqueue one single-sample request at the current tick.

        ``deadline`` is the absolute tick the request must complete by
        (``None`` = best effort).  A request whose deadline has *already*
        lapsed at admission is dead-lettered on the spot (reason
        ``"deadline"``, cause ``"expired-at-admit"``) instead of wasting
        fleet time — it still appears in :attr:`dead_letters` and in SLO
        telemetry, never in :attr:`completed`.

        With ``ServeConfig.continuous`` on, a submission that fills a
        batch dispatches it immediately (continuous batching); otherwise
        batches are only released at the next :meth:`step` tick barrier.
        Returns the enqueued :class:`~repro.serve.batcher.Request`.
        """
        if request_id is None:
            request_id = f"req{self._auto_id:06d}"
            self._auto_id += 1
        request = Request(
            str(request_id), np.asarray(payload), arrival=self.now, deadline=deadline
        )
        if deadline is not None and deadline < self.now:
            self._dead_letter(request, "deadline", "expired-at-admit")
            return request
        self._submit_walls[request.id] = self.obs.clock.now()
        self._first_arrival.setdefault(request.id, self.now)
        self.obs.event("enqueue", request=request.id, tick=self.now)
        self.batcher.submit(request)
        if self.config.continuous:
            self._dispatch_tick(self.batcher.ready(self.now))
        return request

    def _dispatch(self, batch: Batch) -> list[ServedRequest]:
        obs = self.obs
        clock = obs.clock
        # Shed requests whose deadline already lapsed in the queue: serving
        # them cannot meet the SLO, and their crossbar time is better spent
        # on requests that can still make it.
        live = []
        for request in batch.requests:
            if request.deadline is not None and request.deadline < self.now:
                self._dead_letter(
                    request,
                    "deadline",
                    "expired-queued",
                    attempts=self._attempts.get(request.id, 0),
                )
            else:
                live.append(request)
        if not live:
            return []
        if len(live) != len(batch.requests):
            batch = Batch(live, formed=batch.formed)
        obs.event(
            "queue_wait",
            batch=batch.size,
            wait_ticks=batch.max_queue_ticks(),
            headroom=batch.headroom(),
            tick=self.now,
        )
        with obs.span("dispatch", tick=self.now, batch=batch.size) as dispatch_span:
            with obs.span("schedule", policy=self.policy.name) as span:
                candidates = dispatchable(self.fleet)
                if not candidates:
                    span.set(chip=None)
                    dispatch_span.set(failed="no-capacity")
                    self._handle_failed_batch(batch, cause="no-capacity")
                    return []
                chip = self.policy.choose(batch, candidates)
                span.set(chip=chip.chip_id)
            inputs = batch.inputs()
            outcome = self._attempt(chip, batch, inputs)
            if outcome is None and self.config.retry.hedge:
                backup = self._hedge_candidate(chip)
                if backup is not None:
                    self.telemetry.record_hedge(chip.chip_id, backup.chip_id)
                    obs.event(
                        "hedge",
                        primary=chip.chip_id,
                        backup=backup.chip_id,
                        tick=self.now,
                    )
                    outcome = self._attempt(backup, batch, inputs)
                    if outcome is not None:
                        chip = backup
            if outcome is None:
                dispatch_span.set(chip=chip.chip_id, failed=self._last_fault_kind)
                self._handle_failed_batch(batch, cause=self._last_fault_kind)
                return []
            outputs, seconds, energy_uj = outcome
            dispatch_span.set(chip=chip.chip_id, seconds=seconds, energy_uj=energy_uj)
        if energy_uj is not None:
            chip.energy_uj += energy_uj
        chip.served_samples += batch.size
        chip.served_batches += 1
        completed_wall = clock.now()
        served = []
        for row, request in enumerate(batch.requests):
            done = ServedRequest(
                id=request.id,
                output=outputs[row],
                chip_id=chip.chip_id,
                queue_ticks=batch.formed - request.arrival,
                deadline=request.deadline,
                completed_tick=self.now,
            )
            if request.deadline is not None:
                self.telemetry.record_deadline(
                    self.now, request.deadline - self.now
                )
            self._completed[request.id] = done
            self._attempts.pop(request.id, None)
            self._first_arrival.pop(request.id, None)
            submitted_wall = self._submit_walls.pop(request.id, None)
            if submitted_wall is not None:
                self.telemetry.record_request_latency(completed_wall - submitted_wall)
            served.append(done)
        self.telemetry.record_batch(
            chip.chip_id,
            [item.queue_ticks for item in served],
            seconds,
            energy_uj=energy_uj,
        )
        return served

    # ------------------------------------------------------------------
    # Fused cross-chip dispatch
    # ------------------------------------------------------------------
    def _fusible(self) -> bool:
        """Whether this tick's batches may take the fused path at all.

        Fault injection perturbs individual dispatch attempts (penalties,
        mid-flight :class:`~repro.serve.faults.ChipFault`) and self-tuning
        is per-chip state the stacked kernels refuse — both route every
        batch through the per-chip path, which is also what keeps chaos
        runs trivially bit-identical with fusion enabled.
        """
        return (
            self.config.fused
            and self.faults is None
            and self.config.self_tuning is None
        )

    def _fused_for(self) -> FusedFleetForward | None:
        """The fleet-wide fused forward, rebuilt lazily; None if unstackable.

        Built from the *cache-resident* fleet only, through the cache's
        stats-neutral :meth:`~repro.serve.cache.MappingCache.peek`: the
        stack is a derived view, so building it must not program chips,
        refresh drifted mappings, or perturb hit/miss accounting — cold or
        stale chips are handled at stage time exactly as per-chip dispatch
        would, and the stack rebuilds to cover them afterwards.

        Freshness is ``(identity, version)`` via
        :meth:`~repro.backends.FusedFleetForward.covers`: recalibration and
        spare provisioning swap chip objects, ``refresh``/``apply_faults``
        bump versions in place — any of those invalidates the stack.  A
        fleet that failed to fuse is remembered by its state key so the
        (validating, raising) build is not retried every tick.
        """
        members = []
        for chip in self.fleet:
            programmed = self.cache.peek(self.key_for(chip))
            if programmed is not None:
                members.append(programmed)
        if not members:
            return None
        if self._fused is not None and self._fused.covers(members):
            return self._fused
        self._fused = None
        key = tuple((id(chip), chip.version) for chip in members)
        if key == self._fused_failed_key:
            return None
        try:
            with self.obs.span("dispatch.fuse", chips=len(members)) as span:
                self._fused = FusedFleetForward.build(members)
                span.set(backend=self._fused.backend)
        except UnstackableError as reason:
            self._fused_failed_key = key
            self.obs.event("fuse.unstackable", reason=str(reason))
            return None
        self._fused_failed_key = None
        return self._fused

    def _dispatch_tick(self, batches) -> list[ServedRequest]:
        """Dispatch one tick's due batches, fusing them when possible.

        The per-chip fallback (``_dispatch`` per batch) and the fused
        group produce bit-identical outputs and telemetry digests; the
        fused path just executes the whole group in one stacked forward.
        """
        batches = list(batches)
        if not batches:
            return []
        if self._shardable():
            served = self._dispatch_sharded(batches)
            if served is not None:
                return served
        fused = None
        if len(batches) > 1 and self._fusible():
            fused = self._fused_for()
        if fused is None:
            served = []
            for batch in batches:
                served.extend(self._dispatch(batch))
            return served
        clock = self.obs.clock
        served: list[ServedRequest] = []
        with self.obs.span(
            "dispatch.fused", tick=self.now, batches=len(batches)
        ) as span:
            staged = [
                item
                for item in (self._stage(batch) for batch in batches)
                if item is not None
            ]
            if not staged:
                span.set(staged=0)
                return []
            programmed = [chip_state for _, _, chip_state, _, _ in staged]
            if not fused.covers(programmed):
                # A cold chip was programmed during staging (new object
                # identity) — rebuild once from the now-warm fleet.
                fused = self._fused_for()
            if fused is not None and fused.covers(programmed):
                started = clock.now()
                outputs = fused.forward(
                    [(chip_state, inputs) for _, _, chip_state, inputs, _ in staged]
                )
                total_seconds = clock.now() - started
                self.telemetry.record_fused_group(len(staged))
                span.set(staged=len(staged), seconds=total_seconds)
                total_rows = sum(batch.size for batch, _, _, _, _ in staged)
                for (batch, chip, _, _, energy_uj), out in zip(staged, outputs):
                    # Attribute wall time by row share: service-time
                    # histograms are report-only (digest excludes wall).
                    seconds = total_seconds * (batch.size / total_rows)
                    served.extend(
                        self._complete(batch, chip, out, seconds, energy_uj)
                    )
            else:
                # Unstackable after staging: finish each staged batch on
                # its own chip (the assignments are already final).
                self.telemetry.record_fused_fallback(len(staged))
                span.set(staged=len(staged), fallback=True)
                for batch, chip, chip_state, inputs, energy_uj in staged:
                    started = clock.now()
                    out = chip_state.forward(inputs)
                    seconds = clock.now() - started
                    served.extend(
                        self._complete(batch, chip, out, seconds, energy_uj)
                    )
        return served

    def _stage(self, batch: Batch, realize: bool = True):
        """The pre-forward half of :meth:`_dispatch`, for the fused path.

        Sheds lapsed deadlines, schedules, and resolves the mapping —
        exactly like :meth:`_dispatch` — then advances the chip's served
        counters *immediately*, so the next batch staged this tick sees
        the same load state a per-batch dispatch sequence would have
        produced (load-aware policies make identical choices on both
        paths).  Returns ``(batch, chip, programmed, inputs, energy_uj)``,
        or ``None`` when the batch produced no dispatchable work (already
        dead-lettered or parked for retry, exactly as ``_dispatch`` does).

        ``realize=False`` is the sharded handoff: the forward runs on a
        worker that owns the programmed chip, so the coordinator skips
        materializing the mapping (``programmed`` comes back ``None``)
        and prices the batch through the backend's estimator directly —
        :meth:`~repro.backends.ProgrammedChip.cost` delegates to the same
        ``cost_for``, so the booked energy is bit-identical.
        """
        obs = self.obs
        live = []
        for request in batch.requests:
            if request.deadline is not None and request.deadline < self.now:
                self._dead_letter(
                    request,
                    "deadline",
                    "expired-queued",
                    attempts=self._attempts.get(request.id, 0),
                )
            else:
                live.append(request)
        if not live:
            return None
        if len(live) != len(batch.requests):
            batch = Batch(live, formed=batch.formed)
        obs.event(
            "queue_wait",
            batch=batch.size,
            wait_ticks=batch.max_queue_ticks(),
            headroom=batch.headroom(),
            tick=self.now,
        )
        with obs.span("schedule", policy=self.policy.name) as span:
            candidates = dispatchable(self.fleet)
            if not candidates:
                span.set(chip=None)
                self._handle_failed_batch(batch, cause="no-capacity")
                return None
            chip = self.policy.choose(batch, candidates)
            span.set(chip=chip.chip_id)
        programmed = None
        if realize:
            with obs.span("mapping", chip=chip.chip_id):
                programmed = self.programmed_for(chip)
        inputs = batch.inputs()
        # Book *all* per-batch chip state now, in dispatch order — load-
        # and energy-aware policies must see exactly the fleet state a
        # per-batch dispatch sequence would show the next batch.  The
        # forward cannot fail on this path (no fault injector), so the
        # health success mark and the deterministic dispatch cost do not
        # depend on actually having run it yet.
        self.health.on_success(chip, self.now)
        if realize:
            cost = programmed.cost(inputs.shape)
        else:
            cost = self.backend.cost_for(self.model, inputs.shape)
        energy_uj = cost.energy_uj if cost is not None else None
        if energy_uj is not None:
            chip.energy_uj += energy_uj
        chip.served_samples += batch.size
        chip.served_batches += 1
        return batch, chip, programmed, inputs, energy_uj

    def _complete(
        self, batch: Batch, chip: FleetChip, outputs, seconds, energy_uj
    ) -> list[ServedRequest]:
        """The post-forward half of :meth:`_dispatch`, for the fused path.

        Books per-request completion and batch telemetry — everything
        :meth:`_dispatch` does after a successful attempt, *except* the
        chip-state updates (served counters, energy, health), which
        :meth:`_stage` already advanced in dispatch order.
        """
        completed_wall = self.obs.clock.now()
        served = []
        for row, request in enumerate(batch.requests):
            done = ServedRequest(
                id=request.id,
                output=outputs[row],
                chip_id=chip.chip_id,
                queue_ticks=batch.formed - request.arrival,
                deadline=request.deadline,
                completed_tick=self.now,
            )
            if request.deadline is not None:
                self.telemetry.record_deadline(self.now, request.deadline - self.now)
            self._completed[request.id] = done
            self._attempts.pop(request.id, None)
            self._first_arrival.pop(request.id, None)
            submitted_wall = self._submit_walls.pop(request.id, None)
            if submitted_wall is not None:
                self.telemetry.record_request_latency(completed_wall - submitted_wall)
            served.append(done)
        self.telemetry.record_batch(
            chip.chip_id,
            [item.queue_ticks for item in served],
            seconds,
            energy_uj=energy_uj,
        )
        return served

    # ------------------------------------------------------------------
    # Sharded cross-process dispatch (repro.serve.shard)
    # ------------------------------------------------------------------
    def _shardable(self) -> bool:
        """Whether this tick's batches may be offloaded to shard workers.

        Mirrors :meth:`_fusible`'s eligibility: an installed fault
        injector perturbs individual attempts mid-flight and self-tuning
        is per-chip state the workers do not replicate — both route every
        batch through the in-process path, which is also what keeps chaos
        runs trivially digest-identical under ``--shards``.
        """
        return (
            self.shard_plan is not None
            and self.faults is None
            and self.config.self_tuning is None
        )

    def _bump_shard_epoch(self, chip: FleetChip) -> None:
        """Advance a chip's programmed-state epoch (workers rebuild their copy)."""
        self._shard_epochs[chip.chip_id] = self._shard_epochs.get(chip.chip_id, 0) + 1

    def _shard_ref(self, chip: FleetChip) -> ChipStateRef:
        """Snapshot everything a worker needs to realize this chip bit-exactly.

        Reads the descriptor when the chip was never realized (so shipping
        a cold chip does not force realization on the coordinator) and the
        live variation otherwise — drift moves only ``eps_between``, and
        programmed state is a pure function of ``(eps_between,
        sigma_within, seed, sticky faults)`` on both backends.
        """
        if chip.realized:
            variation = chip.variation
            eps = float(variation.eps_between)
            sigma = float(variation.sigma_within)
            seed = int(variation._seed)
        else:
            descriptor = chip.descriptor
            eps = descriptor.eps_between
            sigma = descriptor.sigma_within
            seed = descriptor.seed
        return ChipStateRef(
            chip_id=chip.chip_id,
            eps_between=eps,
            sigma_within=sigma,
            seed=seed,
            spec=self.spec_for(chip),
            sticky=self._sticky_faults.get(chip.chip_id),
            epoch=self._shard_epochs.get(chip.chip_id, 0),
        )

    def _shard_pool_for(self) -> ShardPool | None:
        """The lazily-started worker pool, or ``None`` when forking is
        unavailable on this platform (sharding then falls back to the
        in-process path for the whole run)."""
        if self._shard_pool is None:
            if not ShardPool.available():
                self.obs.event("shard.unavailable", shards=self.shard_plan.shards)
                self.shard_plan = None
                return None
            self._shard_pool = ShardPool(self.shard_plan, self.model, self.backend)
        return self._shard_pool

    def _dispatch_sharded(self, batches) -> list[ServedRequest] | None:
        """Dispatch one tick's due batches across the shard workers.

        The coordinator stages every batch in exact dispatch order (same
        scheduling, SLO shedding, counters, and energy accounting as the
        in-process paths — all digest-relevant state is booked here), the
        workers run the forwards against their own programmed copies, and
        completion runs in the original staged order, so outputs and the
        telemetry digest are bit-identical to serial execution.  Worker
        telemetry deltas (program counts, wall seconds) merge in canonical
        shard order and stay report-only.  Returns ``None`` when the pool
        cannot start, handing the tick back to the in-process paths.
        """
        pool = self._shard_pool_for()
        if pool is None:
            return None
        clock = self.obs.clock
        served: list[ServedRequest] = []
        with self.obs.span(
            "dispatch.sharded", tick=self.now, batches=len(batches)
        ) as span:
            staged = [
                item
                for item in (self._stage(batch, realize=False) for batch in batches)
                if item is not None
            ]
            if not staged:
                span.set(staged=0)
                return served
            work = [
                (self.shard_plan.shard_of(chip.index), self._shard_ref(chip), inputs)
                for _, chip, _, inputs, _ in staged
            ]
            started = clock.now()
            outputs, deltas = pool.run_tick(work)
            total_seconds = clock.now() - started
            self.telemetry.record_shard_group(
                len(staged), len({shard for shard, _, _ in work})
            )
            for shard, delta in deltas:
                self.telemetry.record_shard_delta(shard, delta)
            span.set(staged=len(staged), seconds=total_seconds, shards=len(deltas))
            total_rows = sum(batch.size for batch, _, _, _, _ in staged)
            for (batch, chip, _, _, energy_uj), out in zip(staged, outputs):
                # Attribute wall time by row share, exactly like the fused
                # path: service-time histograms are report-only.
                seconds = total_seconds * (batch.size / total_rows)
                served.extend(self._complete(batch, chip, out, seconds, energy_uj))
        return served

    def close(self) -> None:
        """Release external resources (shard worker processes); idempotent.

        Serial engines hold none, so calling this is always safe — but
        every sharded engine should be closed (the CLI and tests do) so
        worker processes exit promptly rather than at interpreter teardown.
        """
        if self._shard_pool is not None:
            self._shard_pool.close()
            self._shard_pool = None

    def _attempt(self, chip: FleetChip, batch: Batch, inputs) -> tuple | None:
        """One dispatch attempt on one chip; ``None`` means it failed.

        Failures (only :class:`~repro.serve.faults.ChipFault` — anything
        else is a bug and propagates) are absorbed into telemetry and the
        health machine; a dead chip is retired (and replaced) on the spot.
        """
        clock = self.obs.clock
        try:
            with self.obs.span("mapping", chip=chip.chip_id):
                programmed = self.programmed_for(chip)
            penalty = 0.0
            if self.faults is not None:
                penalty = self.faults.before_forward(chip)
            started = clock.now()
            outputs = programmed.forward(inputs)
            seconds = clock.now() - started + penalty
        except ChipFault as fault:
            self._last_fault_kind = fault.kind
            chip.fault_events += 1
            self.telemetry.record_fault(fault.kind, chip.chip_id)
            self.obs.event(
                "fault", kind=fault.kind, chip=chip.chip_id, tick=self.now,
                batch=batch.size,
            )
            if fault.kind == "dead":
                self.retire_dead(chip)
            else:
                self.health.on_failure(chip, self.now, reason=fault.kind)
            return None
        self.health.on_success(chip, self.now)
        cost = programmed.cost(inputs.shape)
        energy_uj = cost.energy_uj if cost is not None else None
        return outputs, seconds, energy_uj

    def _hedge_candidate(self, primary: FleetChip) -> FleetChip | None:
        """The backup chip a failed dispatch hedges to (least-loaded other)."""
        others = [chip for chip in dispatchable(self.fleet) if chip is not primary]
        if not others:
            return None
        return min(others, key=lambda chip: (chip.served_samples, chip.index))

    def _dead_letter(
        self, request: Request, reason: str, cause: str, attempts: int = 0
    ) -> None:
        """Record one request as undeliverable and drop its bookkeeping.

        The single funnel for every give-up path (retry budget exhausted,
        timeout, lapsed deadline): files the
        :class:`~repro.serve.faults.DeadLetter`, clears the request's
        attempt/arrival/latency state, and — when the reason is a lapsed
        ``deadline`` — books the miss as an SLO violation with its lateness
        at the tick it was shed.  The engine never raises for a failed
        request.
        """
        letter = DeadLetter(
            id=request.id,
            reason=reason,
            cause=cause,
            attempts=attempts,
            tick=self.now,
        )
        self._dead_letters[request.id] = letter
        self._attempts.pop(request.id, None)
        self._first_arrival.pop(request.id, None)
        self._submit_walls.pop(request.id, None)
        self.telemetry.record_dead_letter(reason)
        if reason == "deadline" and request.deadline is not None:
            self.telemetry.record_deadline(self.now, request.deadline - self.now)
        self.obs.event(
            "dead-letter", request=request.id, reason=reason, cause=cause,
            tick=self.now,
        )

    def _handle_failed_batch(self, batch: Batch, cause: str) -> None:
        """Park each request for a backoff retry, or dead-letter it.

        Every request in a failed batch spent one dispatch cycle; requests
        with budget left re-enter the queue ``retry.backoff_for(cycle)``
        ticks later, the rest land in :attr:`dead_letters` — the engine
        never raises for a failed request.
        """
        retry = self.config.retry
        for request in batch.requests:
            cycles = self._attempts.get(request.id, 0) + 1
            self._attempts[request.id] = cycles
            first = self._first_arrival.get(request.id, self.now)
            timed_out = (
                retry.timeout_ticks is not None
                and self.now - first >= retry.timeout_ticks
            )
            if cycles >= retry.max_attempts or timed_out:
                reason = "timeout" if timed_out else "retries-exhausted"
                self._dead_letter(request, reason, cause, attempts=cycles)
            else:
                release = self.now + retry.backoff_for(cycles)
                self._parked.append((release, request))
                self.telemetry.record_retry()
                self.obs.event(
                    "retry", request=request.id, attempt=cycles, release=release,
                    tick=self.now,
                )

    def _unpark(self) -> None:
        """Resubmit parked requests whose backoff has elapsed.

        A parked request whose deadline lapses *while waiting out its
        backoff* is dead-lettered here (reason ``"deadline"``, cause
        ``"expired-parked"``) rather than resubmitted or hedged — its SLO
        is already lost, so another dispatch cycle would only steal
        crossbar time from requests that can still meet theirs.
        """
        if not self._parked:
            return
        kept: list[tuple[int, Request]] = []
        expired: list[tuple[int, Request]] = []
        for release, request in self._parked:
            if request.deadline is not None and request.deadline < self.now:
                expired.append((release, request))
            else:
                kept.append((release, request))
        self._parked = kept
        for _, request in sorted(expired, key=lambda item: (item[0], item[1].id)):
            self._dead_letter(
                request,
                "deadline",
                "expired-parked",
                attempts=self._attempts.get(request.id, 0),
            )
        due = [item for item in self._parked if item[0] <= self.now]
        if not due:
            return
        self._parked = [item for item in self._parked if item[0] > self.now]
        for _, request in sorted(due, key=lambda item: (item[0], item[1].id)):
            self.batcher.submit(
                Request(
                    request.id,
                    request.payload,
                    arrival=self.now,
                    deadline=request.deadline,
                )
            )

    def step(self, ticks: int = 1) -> list[ServedRequest]:
        """Advance the clock and dispatch every batch that becomes due.

        Per-tick order: scheduled fault events fire, the health machine
        releases served quarantines, due retries re-enter the queue, then
        due batches dispatch.
        """
        served = []
        for _ in range(max(1, ticks)):
            if self.faults is not None:
                self.faults.on_tick(self.now)
            self.health.on_tick(self.now, self.fleet)
            self._unpark()
            served.extend(self._dispatch_tick(self.batcher.poll(self.now)))
            self.now += 1
        return served

    def drain(self) -> list[ServedRequest]:
        """Step the clock until queue and retry backlog are empty.

        Terminates even under permanent faults: every parked request has a
        bounded number of retry cycles before it dead-letters.
        """
        served = []
        while len(self.batcher) or self._parked:
            served.extend(self.step())
        return served

    def flush(self) -> list[ServedRequest]:
        """Dispatch everything pending immediately (shutdown path).

        Parked retries are force-released first; a batch that fails here
        re-enters the retry machinery (drain afterwards to settle it).
        """
        for _, request in sorted(self._parked, key=lambda item: (item[0], item[1].id)):
            self.batcher.submit(
                Request(
                    request.id,
                    request.payload,
                    arrival=self.now,
                    deadline=request.deadline,
                )
            )
        self._parked = []
        return self._dispatch_tick(self.batcher.flush(self.now))

    def run(self, inputs, ids=None) -> dict[str, np.ndarray]:
        """Convenience: submit ``inputs`` now, drain, return ``{id: logits}``.

        ``ids`` defaults to auto-assigned sequential ids; pass explicit ids
        to make results arrival-order-invariant (the canonical batching
        order is by id within a tick — see :mod:`repro.serve.batcher`).

        Requests that exhaust their retry budget under faults are absent
        from the result and recorded in :attr:`dead_letters` instead.
        """
        inputs = np.asarray(inputs)
        if ids is None:
            requests = [self.submit(sample) for sample in inputs]
        else:
            if len(ids) != len(inputs):
                raise ValueError("ids and inputs length mismatch")
            if len(set(ids)) != len(ids):
                raise ValueError("ids must be unique; duplicates would overwrite results")
            requests = [
                self.submit(sample, request_id) for sample, request_id in zip(inputs, ids)
            ]
        self.drain()
        return {
            request.id: self._completed[request.id].output
            for request in requests
            if request.id in self._completed
        }

    def run_trace(
        self,
        inputs,
        trace: ArrivalTrace,
        ids=None,
        lifecycle=None,
    ) -> dict[str, np.ndarray]:
        """Serve ``inputs`` under an arrival trace; returns ``{id: logits}``.

        Unlike :meth:`run` (everything arrives at once), requests are
        submitted on the ticks the trace assigns, so batching deadlines and
        queue build-up behave as under live traffic.  If a
        :class:`~repro.serve.lifecycle.ChipLifecycle` is passed, its drift
        clock advances once per tick *before* dispatch — chips age, get
        probed, and recalibrate while traffic is in flight.  With a
        :class:`~repro.serve.faults.FaultInjector` installed, scheduled
        fault events fire inside :meth:`step`; requests that exhaust
        their retry budget are absent from the result and recorded in
        :attr:`dead_letters`.

        Deadline-bearing traces (a :class:`~repro.serve.trace.DeadlineTrace`
        wrapper, a :class:`~repro.serve.trace.ReplayTrace` with explicit
        deadlines — e.g. one compiled by the
        :class:`repro.serve.api.Gateway`) submit each request with its
        absolute deadline, shifted by the engine's current tick exactly
        like the arrival schedule, so SLO accounting and deadline
        dead-lettering replay bit-identically.
        """
        inputs = np.asarray(inputs)
        if ids is not None:
            if len(ids) != len(inputs):
                raise ValueError("ids and inputs length mismatch")
            if len(set(ids)) != len(ids):
                raise ValueError("ids must be unique; duplicates would overwrite results")
        schedule = trace.schedule(len(inputs))
        if any(b < a for a, b in zip(schedule, schedule[1:])):
            raise ValueError("trace schedule must be non-decreasing")
        deadlines = trace.deadline_schedule(len(inputs))
        offset = self.now
        submitted: list[Request] = []
        cursor = 0
        while cursor < len(schedule) or len(self.batcher) or self._parked:
            tick = self.now - offset
            while cursor < len(schedule) and schedule[cursor] <= tick:
                request_id = None if ids is None else ids[cursor]
                deadline = deadlines[cursor]
                submitted.append(
                    self.submit(
                        inputs[cursor],
                        request_id,
                        deadline=None if deadline is None else offset + int(deadline),
                    )
                )
                cursor += 1
            if lifecycle is not None:
                lifecycle.advance()
            self.step()
        return {
            request.id: self._completed[request.id].output
            for request in submitted
            if request.id in self._completed
        }

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def completed(self) -> dict[str, ServedRequest]:
        """Every completed request so far, keyed by request id."""
        return dict(self._completed)

    @property
    def queue_depth(self) -> int:
        """Requests in flight but not finished: queued plus retry-parked.

        The backpressure signal the :class:`repro.serve.api.Gateway`'s
        admission control reads — once it exceeds the gateway's bound, new
        submissions are rejected with ``Overloaded`` instead of queued.
        """
        return len(self.batcher) + len(self._parked)

    @property
    def dead_letters(self) -> dict[str, DeadLetter]:
        """Requests that exhausted their retry budget, keyed by request id."""
        return dict(self._dead_letters)

    def assignments(self) -> dict[str, str]:
        """``{request id: chip id}`` for every completed request."""
        return {rid: done.chip_id for rid, done in self._completed.items()}

    def __repr__(self) -> str:
        return (
            f"InferenceEngine(model={self.model_key}, chips={len(self.fleet)}, "
            f"backend={self.backend.name!r}, policy={self.policy.name!r}, "
            f"max_batch={self.config.max_batch})"
        )
