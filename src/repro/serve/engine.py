"""Batched multi-chip inference serving engine.

The deployment reality of analog PIM (the paper's Sec. IV) is a *fleet* of
non-identical accelerators: every fabricated chip carries its own sampled
variation, and self-tuning corrects each one individually.  The
:class:`InferenceEngine` simulates exactly that: it samples a pool of
chips from a :class:`~repro.variability.sampler.VariabilitySpec`, programs
a dedicated model mapping per chip (variation injected, self-tuning
attached — cached in an LRU :class:`~repro.serve.cache.MappingCache`),
fuses incoming single-sample requests into crossbar-friendly batches with
a :class:`~repro.serve.batcher.MicroBatcher`, and dispatches the batches
across the fleet under a pluggable
:class:`~repro.serve.scheduler.SchedulingPolicy`.

Everything is deterministic from ``ServeConfig.seed``: the same fleet,
the same request ids, and the same arrival ticks reproduce bit-identical
outputs — the per-row results are even invariant to batch composition,
because the fake-quant forward treats batch rows independently.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.datasets.loaders import batch_iterator
from repro.eval.metrics import topk_accuracy
from repro.quant.ptq import quantized_layers
from repro.selftuning.tuner import SelfTuningConfig
from repro.selftuning.wrap import attach_self_tuning
from repro.serve.batcher import Batch, MicroBatcher, Request
from repro.serve.cache import MappingCache, mapping_key
from repro.serve.scheduler import make_policy
from repro.serve.telemetry import ServeTelemetry
from repro.variability.injection import inject_variation
from repro.variability.sampler import ChipVariation, VariabilitySampler, VariabilitySpec


@dataclass(frozen=True)
class ServeConfig:
    """Engine knobs: batching, scheduling, cache sizing, self-tuning.

    ``max_batch=1`` with ``max_wait=0`` degenerates to sequential
    per-request serving — the baseline ``benchmarks/bench_serving.py``
    measures against.  ``cache_capacity=None`` keeps every chip's mapping
    resident (programmed exactly once); a smaller capacity models a host
    that cannot hold the whole fleet and must reprogram on demand.
    """

    max_batch: int = 32
    max_wait: int = 4
    policy: str = "round-robin"
    cache_capacity: int | None = None
    seed: int = 0
    self_tuning: SelfTuningConfig | None = None


@dataclass
class FleetChip:
    """One pool member: a sampled chip plus its serving bookkeeping."""

    index: int
    chip_id: str
    variation: ChipVariation
    served_samples: int = 0
    served_batches: int = 0
    quality: float | None = None

    def __repr__(self) -> str:
        quality = f"{self.quality:.3f}" if self.quality is not None else "unprobed"
        return (
            f"FleetChip({self.chip_id}, served={self.served_samples}, "
            f"quality={quality})"
        )


@dataclass
class ServedRequest:
    """Completed request: output logits plus serving provenance."""

    id: str
    output: np.ndarray
    chip_id: str
    queue_ticks: int


class InferenceEngine:
    """Serve a quantized model across a simulated fleet of PIM chips.

    ``model`` must already be converted (:func:`repro.quant.convert_to_quantized`)
    and calibrated (:func:`repro.quant.calibrate_model`); it is treated as
    the golden digital copy and never mutated — per-chip mappings are
    programmed onto deep copies.

    Typical use::

        engine = InferenceEngine(model, spec, num_chips=4,
                                 config=ServeConfig(max_batch=32, policy="least-loaded"))
        results = engine.run(test.images)          # {request id: logits row}

    or streaming: ``submit`` requests as they arrive, call ``step`` per
    tick, and collect :class:`ServedRequest` objects as they complete.
    """

    def __init__(
        self,
        model,
        spec: VariabilitySpec,
        num_chips: int = 4,
        config: ServeConfig = ServeConfig(),
        model_key: str | None = None,
    ) -> None:
        if num_chips < 1:
            raise ValueError(f"num_chips must be >= 1, got {num_chips}")
        self.model = model
        self.spec = spec
        self.config = config
        self.model_key = model_key or model.__class__.__name__
        self._notation = self._validate_model(model)
        sampler = VariabilitySampler(spec, seed=config.seed)
        width = max(2, len(str(num_chips - 1)))
        self.fleet = [
            FleetChip(i, f"chip{i:0{width}d}", sampler.sample_chip())
            for i in range(num_chips)
        ]
        self.cache = MappingCache(capacity=config.cache_capacity)
        self.batcher = MicroBatcher(config.max_batch, config.max_wait)
        self.policy = make_policy(config.policy)
        self.telemetry = ServeTelemetry(max_batch=config.max_batch)
        self.now = 0
        self._auto_id = 0
        self._completed: dict[str, ServedRequest] = {}

    # ------------------------------------------------------------------
    # Fleet programming
    # ------------------------------------------------------------------
    @staticmethod
    def _validate_model(model) -> str:
        layers = [layer for _, layer in quantized_layers(model)]
        if not layers:
            raise ValueError(
                "model has no quantized layers; run convert_to_quantized first"
            )
        for layer in layers:
            if layer.qconfig.quantize_activations and float(layer.act_scale) == 0.0:
                raise RuntimeError(
                    "model is not calibrated; run calibrate_model before serving"
                )
        return layers[0].qconfig.notation

    def _program(self, chip: FleetChip):
        """Build the chip's mapping: replicate, inject variation, self-tune.

        This is the expensive 'write the crossbars' step the mapping cache
        amortizes; per-layer epsilon draws are cached inside the
        :class:`ChipVariation`, so reprogramming after an eviction
        reproduces the exact same physical chip.
        """
        mapping = copy.deepcopy(self.model)
        mapping.eval()
        inject_variation(mapping, chip.variation, self.spec)
        if self.config.self_tuning is not None:
            attach_self_tuning(mapping, self.config.self_tuning)
        return mapping

    def _mapping_for(self, chip: FleetChip):
        key = mapping_key(self.model_key, self._notation, chip.chip_id)
        return self.cache.get_or_program(key, lambda: self._program(chip))

    def warm_up(self) -> None:
        """Program every chip ahead of traffic (cold-start avoidance)."""
        for chip in self.fleet:
            self._mapping_for(chip)

    def probe_fleet(
        self, dataset, k: int = 1, batch_size: int = 64
    ) -> dict[str, float]:
        """Measure per-chip calibration quality on a labelled probe set.

        Runs the probe set through each chip's mapping and stores top-``k``
        accuracy on the chip handle — the signal the accuracy-weighted
        scheduling policy uses.  Returns ``{chip_id: quality}``.
        """
        qualities = {}
        with no_grad():
            for chip in self.fleet:
                mapping = self._mapping_for(chip)
                logits, targets = [], []
                for inputs, labels in batch_iterator(dataset, batch_size, shuffle=False):
                    logits.append(mapping(Tensor(inputs)).data)
                    targets.append(labels)
                chip.quality = topk_accuracy(
                    np.concatenate(logits), np.concatenate(targets), k=k
                )
                qualities[chip.chip_id] = chip.quality
        return qualities

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------
    def submit(self, payload: np.ndarray, request_id: str | None = None) -> Request:
        """Enqueue one single-sample request at the current tick."""
        if request_id is None:
            request_id = f"req{self._auto_id:06d}"
            self._auto_id += 1
        request = Request(str(request_id), np.asarray(payload), arrival=self.now)
        self.batcher.submit(request)
        return request

    def _dispatch(self, batch: Batch) -> list[ServedRequest]:
        chip = self.policy.choose(batch, self.fleet)
        mapping = self._mapping_for(chip)
        started = time.perf_counter()
        with no_grad():
            outputs = mapping(Tensor(batch.inputs())).data
        seconds = time.perf_counter() - started
        chip.served_samples += batch.size
        chip.served_batches += 1
        served = []
        for row, request in enumerate(batch.requests):
            done = ServedRequest(
                id=request.id,
                output=outputs[row],
                chip_id=chip.chip_id,
                queue_ticks=batch.formed - request.arrival,
            )
            self._completed[request.id] = done
            served.append(done)
        self.telemetry.record_batch(
            chip.chip_id, [item.queue_ticks for item in served], seconds
        )
        return served

    def step(self, ticks: int = 1) -> list[ServedRequest]:
        """Advance the clock and dispatch every batch that becomes due."""
        served = []
        for _ in range(max(1, ticks)):
            for batch in self.batcher.poll(self.now):
                served.extend(self._dispatch(batch))
            self.now += 1
        return served

    def drain(self) -> list[ServedRequest]:
        """Step the clock until the queue is empty (deadlines run out)."""
        served = []
        while len(self.batcher):
            served.extend(self.step())
        return served

    def flush(self) -> list[ServedRequest]:
        """Dispatch everything pending immediately (shutdown path)."""
        served = []
        for batch in self.batcher.flush(self.now):
            served.extend(self._dispatch(batch))
        return served

    def run(self, inputs, ids=None) -> dict[str, np.ndarray]:
        """Convenience: submit ``inputs`` now, drain, return ``{id: logits}``.

        ``ids`` defaults to auto-assigned sequential ids; pass explicit ids
        to make results arrival-order-invariant (the canonical batching
        order is by id within a tick — see :mod:`repro.serve.batcher`).
        """
        inputs = np.asarray(inputs)
        if ids is None:
            requests = [self.submit(sample) for sample in inputs]
        else:
            if len(ids) != len(inputs):
                raise ValueError("ids and inputs length mismatch")
            if len(set(ids)) != len(ids):
                raise ValueError("ids must be unique; duplicates would overwrite results")
            requests = [
                self.submit(sample, request_id) for sample, request_id in zip(inputs, ids)
            ]
        self.drain()
        return {request.id: self._completed[request.id].output for request in requests}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def completed(self) -> dict[str, ServedRequest]:
        """Every completed request so far, keyed by request id."""
        return dict(self._completed)

    def assignments(self) -> dict[str, str]:
        """``{request id: chip id}`` for every completed request."""
        return {rid: done.chip_id for rid, done in self._completed.items()}

    def __repr__(self) -> str:
        return (
            f"InferenceEngine(model={self.model_key}, chips={len(self.fleet)}, "
            f"policy={self.policy.name!r}, max_batch={self.config.max_batch})"
        )
