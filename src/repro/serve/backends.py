"""Compatibility shim: the backend API lives in :mod:`repro.backends`.

The chip-programming protocol started life inside the serving package;
it now serves the experiment runner too, so it moved up to
``repro.backends``.  This module keeps ``repro.serve.backends`` imports
working — new code should import from :mod:`repro.backends` directly.
"""

from repro.backends import (  # noqa: F401
    BACKENDS,
    ChipBackend,
    CircuitBackend,
    CircuitChip,
    FakeQuantBackend,
    FakeQuantChip,
    ProgrammedChip,
    layer_epsilon,
    make_backend,
    register_backend,
    replicate_for_programming,
)

__all__ = [
    "BACKENDS",
    "ChipBackend",
    "CircuitBackend",
    "CircuitChip",
    "FakeQuantBackend",
    "FakeQuantChip",
    "ProgrammedChip",
    "layer_epsilon",
    "make_backend",
    "register_backend",
    "replicate_for_programming",
]
