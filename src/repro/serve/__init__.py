"""``repro.serve`` — batched multi-chip inference serving.

Deployment-scale counterpart of the single-chip evaluation utilities: a
pool of sampled chips (each programmed through a pluggable
:mod:`repro.backends` fidelity — fake-quant replica or circuit-level
``PimChip`` — optionally self-tuned), dynamic micro-batching of
single-sample requests, pluggable fleet scheduling, an LRU mapping cache,
and streaming telemetry.  On top of the static fleet, :mod:`repro.serve.lifecycle`
drives drift aging, quality monitoring, and recalibration-triggered
cache invalidation over mixed-technology fleets
(:class:`~repro.serve.engine.FleetSpec`), and :mod:`repro.serve.trace`
supplies Poisson/bursty/replayed arrival traces.  :mod:`repro.serve.health`
tracks per-chip health (``healthy -> degraded -> quarantined -> retired ->
replaced``) from dispatch outcomes and lifecycle probes, and
:mod:`repro.serve.faults` is the deterministic chaos harness — stuck-at
fault maps, transient dispatch errors, latency spikes, and hard chip
deaths injected into a *running* fleet, absorbed by retry/hedging,
dead-letter records, and spare provisioning.  :mod:`repro.serve.api`
puts a client-facing asyncio front end over all of it — the
:class:`~repro.serve.api.Gateway`: awaitable per-request submission with
deadlines/SLOs, continuous batching, bounded-queue admission control
(:class:`~repro.serve.api.Overloaded`), and compilation of every accepted
session into a bit-replayable
:class:`~repro.serve.trace.ReplayTrace`.  :mod:`repro.serve.shard`
scales all of it out: fleets construct lazily from seed descriptors
(``num_chips=1000+`` in O(descriptors) memory, with an LRU spill bound
via ``ServeConfig.max_resident_chips``) and ``ServeConfig.shards`` runs
each tick's staged batches on a pool of forked worker processes with
bit-identical outputs and telemetry digests (``docs/scale-out.md``).  See
:class:`~repro.serve.engine.InferenceEngine` for the entry point and
``examples/serving_fleet.py`` / ``examples/lifecycle_serving.py`` /
``examples/chaos_serving.py`` for end-to-end tours.
"""

from repro.serve.api import Gateway, GatewayConfig, Overloaded, RequestFailed

from repro.backends import (
    BACKENDS,
    ChipBackend,
    CircuitBackend,
    FakeQuantBackend,
    ProgrammedChip,
    make_backend,
)
from repro.obs import Observability
from repro.serve.batcher import Batch, MicroBatcher, Request
from repro.serve.cache import CacheStats, MappingCache, mapping_key
from repro.serve.engine import (
    ChipDescriptor,
    FleetChip,
    FleetSpec,
    InferenceEngine,
    ServeConfig,
    ServedRequest,
    TechnologyGroup,
)
from repro.serve.faults import (
    ChipFault,
    DeadLetter,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
)
from repro.serve.health import (
    HEALTH_STATES,
    SERVING_STATES,
    ChipHealth,
    HealthConfig,
    HealthMonitor,
    HealthTransition,
)
from repro.serve.lifecycle import ChipLifecycle, LifecycleConfig, RecalibrationEvent
from repro.serve.scheduler import (
    POLICIES,
    AccuracyWeightedPolicy,
    DriftAwarePolicy,
    EnergyAwarePolicy,
    LatencyAwarePolicy,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
    dispatchable,
    make_policy,
)
from repro.serve.shard import ChipStateRef, ShardPlan, ShardPool
from repro.serve.telemetry import ServeTelemetry
from repro.serve.trace import (
    TRACES,
    ArrivalTrace,
    BurstyTrace,
    DeadlineTrace,
    PoissonTrace,
    ReplayTrace,
    UniformTrace,
    make_trace,
)

__all__ = [
    "Gateway",
    "GatewayConfig",
    "Overloaded",
    "RequestFailed",
    "BACKENDS",
    "Observability",
    "ChipBackend",
    "ProgrammedChip",
    "FakeQuantBackend",
    "CircuitBackend",
    "make_backend",
    "EnergyAwarePolicy",
    "InferenceEngine",
    "ServeConfig",
    "ChipDescriptor",
    "FleetChip",
    "FleetSpec",
    "ChipStateRef",
    "ShardPlan",
    "ShardPool",
    "TechnologyGroup",
    "ServedRequest",
    "Request",
    "Batch",
    "MicroBatcher",
    "MappingCache",
    "CacheStats",
    "mapping_key",
    "SchedulingPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "AccuracyWeightedPolicy",
    "DriftAwarePolicy",
    "LatencyAwarePolicy",
    "POLICIES",
    "make_policy",
    "dispatchable",
    "ServeTelemetry",
    "ChipLifecycle",
    "LifecycleConfig",
    "RecalibrationEvent",
    "ChipFault",
    "RetryPolicy",
    "DeadLetter",
    "FaultPlan",
    "FaultEvent",
    "FaultInjector",
    "HEALTH_STATES",
    "SERVING_STATES",
    "HealthConfig",
    "ChipHealth",
    "HealthTransition",
    "HealthMonitor",
    "ArrivalTrace",
    "UniformTrace",
    "PoissonTrace",
    "BurstyTrace",
    "DeadlineTrace",
    "ReplayTrace",
    "TRACES",
    "make_trace",
]
