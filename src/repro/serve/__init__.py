"""``repro.serve`` — batched multi-chip inference serving.

Deployment-scale counterpart of the single-chip evaluation utilities: a
pool of sampled chips (each programmed through a pluggable
:mod:`repro.backends` fidelity — fake-quant replica or circuit-level
``PimChip`` — optionally self-tuned), dynamic micro-batching of
single-sample requests, pluggable fleet scheduling, an LRU mapping cache,
and streaming telemetry.  On top of the static fleet, :mod:`repro.serve.lifecycle`
drives drift aging, quality monitoring, and recalibration-triggered
cache invalidation over mixed-technology fleets
(:class:`~repro.serve.engine.FleetSpec`), and :mod:`repro.serve.trace`
supplies Poisson/bursty/replayed arrival traces.  See
:class:`~repro.serve.engine.InferenceEngine` for the entry point and
``examples/serving_fleet.py`` / ``examples/lifecycle_serving.py`` for
end-to-end tours.
"""

from repro.backends import (
    BACKENDS,
    ChipBackend,
    CircuitBackend,
    FakeQuantBackend,
    ProgrammedChip,
    make_backend,
)
from repro.obs import Observability
from repro.serve.batcher import Batch, MicroBatcher, Request
from repro.serve.cache import CacheStats, MappingCache, mapping_key
from repro.serve.engine import (
    FleetChip,
    FleetSpec,
    InferenceEngine,
    ServeConfig,
    ServedRequest,
    TechnologyGroup,
)
from repro.serve.lifecycle import ChipLifecycle, LifecycleConfig, RecalibrationEvent
from repro.serve.scheduler import (
    POLICIES,
    AccuracyWeightedPolicy,
    DriftAwarePolicy,
    EnergyAwarePolicy,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
    make_policy,
)
from repro.serve.telemetry import ServeTelemetry
from repro.serve.trace import (
    TRACES,
    ArrivalTrace,
    BurstyTrace,
    PoissonTrace,
    ReplayTrace,
    UniformTrace,
    make_trace,
)

__all__ = [
    "BACKENDS",
    "Observability",
    "ChipBackend",
    "ProgrammedChip",
    "FakeQuantBackend",
    "CircuitBackend",
    "make_backend",
    "EnergyAwarePolicy",
    "InferenceEngine",
    "ServeConfig",
    "FleetChip",
    "FleetSpec",
    "TechnologyGroup",
    "ServedRequest",
    "Request",
    "Batch",
    "MicroBatcher",
    "MappingCache",
    "CacheStats",
    "mapping_key",
    "SchedulingPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "AccuracyWeightedPolicy",
    "DriftAwarePolicy",
    "POLICIES",
    "make_policy",
    "ServeTelemetry",
    "ChipLifecycle",
    "LifecycleConfig",
    "RecalibrationEvent",
    "ArrivalTrace",
    "UniformTrace",
    "PoissonTrace",
    "BurstyTrace",
    "ReplayTrace",
    "TRACES",
    "make_trace",
]
