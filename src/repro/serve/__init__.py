"""``repro.serve`` — batched multi-chip inference serving.

Deployment-scale counterpart of the single-chip evaluation utilities: a
pool of sampled chips (each with its own programmed, optionally
self-tuned mapping), dynamic micro-batching of single-sample requests,
pluggable fleet scheduling, an LRU mapping cache, and streaming
telemetry.  See :class:`~repro.serve.engine.InferenceEngine` for the
entry point and ``examples/serving_fleet.py`` for an end-to-end tour.
"""

from repro.serve.batcher import Batch, MicroBatcher, Request
from repro.serve.cache import CacheStats, MappingCache, mapping_key
from repro.serve.engine import FleetChip, InferenceEngine, ServeConfig, ServedRequest
from repro.serve.scheduler import (
    POLICIES,
    AccuracyWeightedPolicy,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    SchedulingPolicy,
    make_policy,
)
from repro.serve.telemetry import ServeTelemetry

__all__ = [
    "InferenceEngine",
    "ServeConfig",
    "FleetChip",
    "ServedRequest",
    "Request",
    "Batch",
    "MicroBatcher",
    "MappingCache",
    "CacheStats",
    "mapping_key",
    "SchedulingPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "AccuracyWeightedPolicy",
    "POLICIES",
    "make_policy",
    "ServeTelemetry",
]
