"""Sharded multiprocessing execution for lazy thousand-chip fleets.

A single process caps the serving stack twice over: fleet memory (every
realized chip holds per-layer variation arrays plus a programmed mapping)
and dispatch throughput (one core runs every forward, fused or not).  The
repo's determinism contract removes both caps at once — chips are
*seed-addressed*, so any process can realize any chip bit-exactly from a
few floats — and this module is that removal:

* :class:`ShardPlan` partitions the fleet's index space into contiguous
  shards (chip ``index`` → shard is a pure function, stable across chip
  replacement because spares keep their slot index);
* :class:`ChipStateRef` is the coordinator's per-dispatch snapshot of one
  chip: descriptor triple, current drifted ``eps_between``, sticky fault
  map, and a programmed-state epoch — everything a worker needs to own a
  bit-identical programmed copy;
* :class:`ShardPool` forks one worker process per shard (lazily, on the
  first sharded tick); each worker programs its shard's chips on demand
  into a private store, reuses the fused cross-chip path *within* the
  shard, and returns outputs plus a report-only telemetry delta.

The parity contract: the coordinator books every digest-relevant quantity
(scheduling order, served counters, energy, SLO accounting) while staging
— workers only compute forwards, whose outputs are bit-identical to
in-process execution because programming is a pure function of the
shipped state on both backends.  See ``docs/scale-out.md``.

Workers are forked, not spawned: they inherit the golden model read-only,
so nothing model-sized ever crosses the pipe — per-tick traffic is just
``(ChipStateRef, inputs)`` pairs and output arrays.
"""

from __future__ import annotations

import multiprocessing
import time
from bisect import bisect_right
from dataclasses import dataclass

from repro.backends import FusedFleetForward, UnstackableError
from repro.variability.sampler import ChipVariation


@dataclass(frozen=True)
class ShardPlan:
    """Contiguous partition of the fleet's index space into shards.

    ``bounds`` has one more element than there are shards; shard ``s``
    owns chip indices ``[bounds[s], bounds[s+1])``.  Contiguity keeps the
    mapping pure and cheap (a bisect), and spare provisioning preserves
    it for free: a replacement chip inherits its predecessor's slot
    index, so it lands on the same shard without any rebalancing.
    """

    bounds: tuple[int, ...]

    @classmethod
    def build(cls, num_chips: int, shards: int) -> "ShardPlan":
        """Partition ``num_chips`` indices into ``shards`` near-equal shards.

        ``shards`` is clamped to ``[1, num_chips]``; the first
        ``num_chips % shards`` shards are one chip larger, so sizes never
        differ by more than one.
        """
        if num_chips < 1:
            raise ValueError(f"num_chips must be >= 1, got {num_chips}")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        shards = min(int(shards), int(num_chips))
        base, extra = divmod(int(num_chips), shards)
        bounds = [0]
        for shard in range(shards):
            bounds.append(bounds[-1] + base + (1 if shard < extra else 0))
        return cls(tuple(bounds))

    @property
    def shards(self) -> int:
        """Number of shards in the plan."""
        return len(self.bounds) - 1

    @property
    def num_chips(self) -> int:
        """Total number of chip indices the plan covers."""
        return self.bounds[-1]

    def shard_of(self, index: int) -> int:
        """The shard owning chip ``index``."""
        if not 0 <= index < self.num_chips:
            raise IndexError(f"chip index {index} outside [0, {self.num_chips})")
        return bisect_right(self.bounds, index) - 1

    def members(self, shard: int) -> range:
        """The chip indices shard ``shard`` owns."""
        return range(self.bounds[shard], self.bounds[shard + 1])

    def describe(self) -> dict:
        """JSON-friendly plan summary (shard count and sizes)."""
        return {
            "shards": self.shards,
            "sizes": [len(self.members(shard)) for shard in range(self.shards)],
        }


@dataclass(frozen=True)
class ChipStateRef:
    """Everything a worker needs to own one chip's programmed state.

    ``(eps_between, sigma_within, seed)`` realize the chip's
    :class:`~repro.variability.sampler.ChipVariation` bit-exactly;
    ``eps_between`` is the *current* (possibly drifted) value, since drift
    moves only that scalar while the seeded within-chip patterns stay
    frozen.  ``sticky`` carries the chip's pinned stuck-at fault map (a
    ``(FaultSpec, seed)`` pair, or ``None``) — stuck cells are physical
    damage that must survive every reprogram, on the worker exactly as on
    the coordinator.  ``epoch`` is the programmed-state generation: the
    coordinator bumps it on non-drift mutations (fault injection,
    recalibration) and the worker drops its copy and rebuilds whenever
    the epoch moves.  ``spec`` is the chip's
    :class:`~repro.variability.sampler.VariabilitySpec` (variance model
    included), so heterogeneous fleets program per-technology on workers
    exactly as in-process.
    """

    chip_id: str
    eps_between: float
    sigma_within: float
    seed: int
    spec: object
    sticky: tuple | None
    epoch: int


class _ShardWorker:
    """One worker's chip store: programs, refreshes, and runs its shard.

    Lives inside the forked process.  Chips are programmed on first
    traffic from the shipped :class:`ChipStateRef` (program → sticky
    faults → refresh, the exact in-process ``_program`` sequence),
    refreshed in place when only ``eps_between`` drifted, and rebuilt
    from scratch when the epoch moved.  Forwards of multi-batch ticks go
    through a :class:`~repro.backends.FusedFleetForward` over every chip
    this worker has programmed, rebuilt lazily via ``covers`` — the same
    reuse discipline as the in-process fused path.
    """

    def __init__(self, model, backend) -> None:
        self.model = model
        self.backend = backend
        self._programmed: dict[str, object] = {}
        self._variations: dict[str, ChipVariation] = {}
        self._state: dict[str, tuple[int, float]] = {}
        self._fused: FusedFleetForward | None = None
        self._fusible = True
        self.programs = 0
        self.refreshes = 0
        self.program_seconds = 0.0

    def _realize(self, ref: ChipStateRef):
        """The worker-side ``programmed_for``: program or refresh from a ref."""
        programmed = self._programmed.get(ref.chip_id)
        state = self._state.get(ref.chip_id)
        if programmed is not None and state[0] != ref.epoch:
            programmed = None  # non-drift mutation: rebuild from scratch
        if programmed is None:
            variation = ChipVariation(ref.eps_between, ref.sigma_within, ref.seed)
            started = time.perf_counter()
            programmed = self.backend.program(
                self.model, variation, spec=ref.spec, chip_id=ref.chip_id
            )
            if ref.sticky is not None:
                fault_spec, fault_seed = ref.sticky
                programmed.apply_faults(fault_spec, seed=fault_seed)
                programmed.refresh(variation)
            self.program_seconds += time.perf_counter() - started
            self.programs += 1
            self._programmed[ref.chip_id] = programmed
            self._variations[ref.chip_id] = variation
            self._state[ref.chip_id] = (ref.epoch, ref.eps_between)
        elif state[1] != ref.eps_between:
            # Drift moved eps_between: refresh in place, exactly like the
            # coordinator's lazy stale refresh (no reprogramming).
            variation = self._variations[ref.chip_id]
            variation.eps_between = float(ref.eps_between)
            programmed.refresh(variation)
            self.refreshes += 1
            self._state[ref.chip_id] = (ref.epoch, ref.eps_between)
        return programmed

    def _fused_for(self, programmed: list) -> FusedFleetForward | None:
        """A fused forward covering ``programmed``, rebuilt lazily."""
        if not self._fusible:
            return None
        if self._fused is not None and self._fused.covers(programmed):
            return self._fused
        members = list(self._programmed.values())
        try:
            self._fused = FusedFleetForward.build(members)
        except UnstackableError:
            # Per-chip forwards stay bit-identical; remember so the
            # (validating, raising) build is not retried every tick.
            self._fused = None
            self._fusible = False
            return None
        return self._fused if self._fused.covers(programmed) else None

    def run(self, items: list) -> tuple[list, dict]:
        """Run one tick's ``(ChipStateRef, inputs)`` items; outputs in order."""
        programmed = [self._realize(ref) for ref, _ in items]
        fused = self._fused_for(programmed) if len(items) > 1 else None
        if fused is not None:
            outputs = fused.forward(
                [(chip, inputs) for chip, (_, inputs) in zip(programmed, items)]
            )
        else:
            outputs = [chip.forward(inputs) for chip, (_, inputs) in zip(programmed, items)]
        delta = {
            "batches": len(items),
            "rows": sum(int(inputs.shape[0]) for _, inputs in items),
            "programs": self.programs,
            "refreshes": self.refreshes,
            "program_seconds": self.program_seconds,
            "resident": len(self._programmed),
        }
        self.programs = 0
        self.refreshes = 0
        self.program_seconds = 0.0
        return outputs, delta


def _worker_main(conn, model, backend) -> None:
    """Worker process loop: receive tick items, send ``(outputs, delta)``.

    Protocol: the coordinator sends a list of ``(ChipStateRef, inputs)``
    pairs per tick and ``None`` to shut down; the worker answers
    ``("ok", outputs, delta)`` or ``("error", message)`` — it never dies
    silently mid-conversation.
    """
    worker = _ShardWorker(model, backend)
    while True:
        try:
            items = conn.recv()
        except EOFError:
            break
        if items is None:
            break
        try:
            outputs, delta = worker.run(items)
        except Exception as error:  # surfaced as RuntimeError on the coordinator
            conn.send(("error", f"{type(error).__name__}: {error}"))
            continue
        conn.send(("ok", outputs, delta))
    conn.close()


class ShardPool:
    """Coordinator-side handle on one forked worker process per shard.

    Workers start lazily on the first :meth:`run_tick` (so a sharded
    engine that never dispatches costs nothing) and are forked, so they
    inherit the golden model and backend without pickling either.  They
    run as daemons — an unclosed pool cannot hang interpreter exit — but
    :meth:`close` should still be called for prompt teardown.
    """

    def __init__(self, plan: ShardPlan, model, backend) -> None:
        self.plan = plan
        self._model = model
        self._backend = backend
        self._workers: list[tuple[object, object]] | None = None

    @staticmethod
    def available() -> bool:
        """Whether this platform supports fork-start workers."""
        return "fork" in multiprocessing.get_all_start_methods()

    @property
    def started(self) -> bool:
        """Whether the worker processes are running."""
        return self._workers is not None

    def start(self) -> None:
        """Fork one worker per shard (idempotent)."""
        if self._workers is not None:
            return
        context = multiprocessing.get_context("fork")
        workers = []
        for _ in range(self.plan.shards):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main,
                args=(child_conn, self._model, self._backend),
                daemon=True,
            )
            process.start()
            child_conn.close()
            workers.append((process, parent_conn))
        self._workers = workers

    def run_tick(self, items: list) -> tuple[list, list]:
        """Run one tick's staged work across the shards.

        ``items`` is a list of ``(shard, ChipStateRef, inputs)`` triples
        in staged dispatch order.  Work is scattered per shard, gathered
        in canonical shard order, and outputs are returned in the input
        order; the second return value is ``[(shard, delta), ...]`` in
        shard order — the deterministic merge order the telemetry layer
        relies on.
        """
        self.start()
        per_shard: dict[int, list] = {}
        for position, (shard, ref, inputs) in enumerate(items):
            per_shard.setdefault(shard, []).append((position, ref, inputs))
        shards = sorted(per_shard)
        for shard in shards:
            _, conn = self._workers[shard]
            conn.send([(ref, inputs) for _, ref, inputs in per_shard[shard]])
        outputs: list = [None] * len(items)
        deltas: list = []
        for shard in shards:
            _, conn = self._workers[shard]
            try:
                reply = conn.recv()
            except EOFError:
                raise RuntimeError(f"shard worker {shard} died mid-tick") from None
            if reply[0] != "ok":
                raise RuntimeError(f"shard worker {shard} failed: {reply[1]}")
            _, shard_outputs, delta = reply
            for (position, _, _), out in zip(per_shard[shard], shard_outputs):
                outputs[position] = out
            deltas.append((shard, delta))
        return outputs, deltas

    def close(self) -> None:
        """Shut the workers down (idempotent; safe on a never-started pool)."""
        if self._workers is None:
            return
        workers, self._workers = self._workers, None
        for process, conn in workers:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for process, _ in workers:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)

    def __repr__(self) -> str:
        state = "started" if self.started else "cold"
        return f"ShardPool(shards={self.plan.shards}, {state})"
