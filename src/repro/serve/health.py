"""Per-chip health state machine: hysteresis between probes and dispatch.

A drifting chip degrades *gradually* and recalibration brings it back; a
faulted chip misbehaves *discretely* — a transient dispatch error, a burst
of stuck cells, a hard death.  The serving engine needs a memory between
those observations, otherwise one flaky dispatch would bounce a chip in
and out of rotation every tick.  :class:`HealthMonitor` is that memory:
every fleet chip carries one of five states,

    healthy -> degraded -> quarantined -> retired -> replaced

with hysteresis in both directions:

* a dispatch failure degrades a healthy chip immediately (one strike);
  ``quarantine_after`` *consecutive* failures quarantine it — the
  scheduler stops routing traffic to it entirely;
* a quarantined chip sits out ``quarantine_ticks`` ticks, then re-enters
  rotation on probation (``degraded``); ``recover_after`` consecutive
  successful dispatches promote it back to ``healthy``;
* a chip quarantined ``retire_after`` times is retired for good — flapping
  hardware is not worth the retry budget; a hard death retires it
  immediately;
* retired chips are (optionally) replaced by the engine's
  spare-provisioning policy (fresh silicon, fresh seed, same fleet slot),
  at which point the old chip's terminal state is ``replaced``.

Lifecycle probes feed the same machine through :meth:`HealthMonitor.on_probe`
(a probe below ``probe_floor`` counts as a failure signal), so slow quality
collapse and discrete faults drive one shared state.  Every transition is
recorded (and mirrored to telemetry + the span recorder), making the
health history of a run auditable after the fact.

Only :const:`SERVING_STATES` receive traffic — the scheduler-side filter
is :func:`repro.serve.scheduler.dispatchable`.

Like the scheduling policies, the monitor reads and writes only the
bookkeeping fields of a :class:`~repro.serve.engine.FleetChip` handle
(``health``, counters) — never ``variation`` — so health tracking on a
lazy thousand-chip fleet (:mod:`repro.serve.shard`) never forces chip
realization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Every state a chip can be in, in degradation order.
HEALTH_STATES = ("healthy", "degraded", "quarantined", "retired", "replaced")

#: States the scheduler may dispatch to.
SERVING_STATES = frozenset({"healthy", "degraded"})


@dataclass(frozen=True)
class HealthConfig:
    """Hysteresis thresholds of the health state machine.

    ``quarantine_after`` consecutive dispatch failures quarantine a chip;
    ``recover_after`` consecutive successes promote a degraded chip back to
    healthy; ``quarantine_ticks`` is the sit-out period before a
    quarantined chip re-enters rotation on probation; ``retire_after``
    quarantines retire it permanently.  ``replace_retired`` turns on the
    engine's spare-provisioning policy (retired chips are swapped for
    fresh seeds); ``probe_floor``, when set, marks a chip degraded whenever
    a lifecycle probe reads below that absolute quality.
    """

    quarantine_after: int = 2
    recover_after: int = 4
    quarantine_ticks: int = 8
    retire_after: int = 2
    replace_retired: bool = True
    probe_floor: float | None = None

    def __post_init__(self) -> None:
        if self.quarantine_after < 1 or self.recover_after < 1:
            raise ValueError("quarantine_after and recover_after must be >= 1")
        if self.quarantine_ticks < 1 or self.retire_after < 1:
            raise ValueError("quarantine_ticks and retire_after must be >= 1")
        if self.probe_floor is not None and not 0.0 <= self.probe_floor <= 1.0:
            raise ValueError("probe_floor must be in [0, 1]")


@dataclass(frozen=True)
class HealthTransition:
    """One recorded state change: when, which chip, from what, to what, why."""

    tick: int
    chip_id: str
    source: str
    target: str
    reason: str


@dataclass
class ChipHealth:
    """Mutable per-chip health record the monitor updates."""

    chip_id: str
    state: str = "healthy"
    consecutive_failures: int = 0
    consecutive_successes: int = 0
    quarantines: int = 0
    quarantined_at: int | None = None
    failures: int = 0
    successes: int = 0


class HealthMonitor:
    """Drives the per-chip state machine from dispatch and probe outcomes.

    The engine owns one monitor and reports every dispatch outcome
    (:meth:`on_success` / :meth:`on_failure`), hard deaths
    (:meth:`on_death`), injected degradations (:meth:`on_fault_event`) and
    lifecycle probes (:meth:`on_probe`); :meth:`on_tick` releases served
    quarantines.  The monitor mirrors the resolved state onto
    ``chip.health`` (the attribute :func:`repro.serve.scheduler.dispatchable`
    filters on) and records every :class:`HealthTransition`.
    """

    def __init__(self, config: HealthConfig | None = None, telemetry=None, obs=None) -> None:
        self.config = config if config is not None else HealthConfig()
        self.telemetry = telemetry
        self.obs = obs
        self.records: dict[str, ChipHealth] = {}
        self.transitions: list[HealthTransition] = []

    # ------------------------------------------------------------------
    # Record plumbing
    # ------------------------------------------------------------------
    def record_for(self, chip) -> ChipHealth:
        """The chip's health record (created healthy on first touch)."""
        record = self.records.get(chip.chip_id)
        if record is None:
            record = ChipHealth(chip.chip_id, state=getattr(chip, "health", "healthy"))
            self.records[chip.chip_id] = record
        return record

    def adopt(self, chip) -> ChipHealth:
        """Start tracking a freshly provisioned chip (healthy, zeroed)."""
        record = ChipHealth(chip.chip_id)
        self.records[chip.chip_id] = record
        chip.health = record.state
        return record

    def state_of(self, chip) -> str:
        return self.record_for(chip).state

    def _transition(self, chip, record: ChipHealth, target: str, tick: int, reason: str) -> None:
        if record.state == target:
            return
        transition = HealthTransition(
            tick=int(tick),
            chip_id=record.chip_id,
            source=record.state,
            target=target,
            reason=reason,
        )
        record.state = target
        chip.health = target
        self.transitions.append(transition)
        if self.telemetry is not None:
            self.telemetry.record_health_transition(transition)
        if self.obs is not None:
            self.obs.event(
                "health",
                chip=record.chip_id,
                source=transition.source,
                target=target,
                reason=reason,
                tick=transition.tick,
            )

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def on_success(self, chip, tick: int) -> None:
        """One successful dispatch: hysteresis toward recovery."""
        record = self.record_for(chip)
        record.successes += 1
        record.consecutive_failures = 0
        record.consecutive_successes += 1
        if (
            record.state == "degraded"
            and record.consecutive_successes >= self.config.recover_after
        ):
            self._transition(chip, record, "healthy", tick, "recovered")

    def on_failure(self, chip, tick: int, reason: str = "dispatch-error") -> None:
        """One failed dispatch: degrade immediately, quarantine on a streak."""
        record = self.record_for(chip)
        record.failures += 1
        record.consecutive_successes = 0
        record.consecutive_failures += 1
        if record.state in ("retired", "replaced"):
            return
        if record.consecutive_failures >= self.config.quarantine_after:
            self._quarantine(chip, record, tick, reason)
        elif record.state == "healthy":
            self._transition(chip, record, "degraded", tick, reason)

    def on_fault_event(self, chip, tick: int, kind: str) -> None:
        """An injected persistent degradation (e.g. a stuck-at fault map)."""
        record = self.record_for(chip)
        if record.state == "healthy":
            self._transition(chip, record, "degraded", tick, kind)

    def on_death(self, chip, tick: int) -> None:
        """Hard failure: the chip leaves rotation permanently."""
        record = self.record_for(chip)
        if record.state in ("retired", "replaced"):
            return
        self._transition(chip, record, "retired", tick, "dead")

    def on_probe(self, chip, quality: float, tick: int) -> None:
        """A lifecycle quality probe feeds the same hysteresis."""
        if self.config.probe_floor is None:
            return
        record = self.record_for(chip)
        if record.state in ("retired", "replaced"):
            return
        if quality < self.config.probe_floor:
            self.on_failure(chip, tick, reason="probe-floor")
        else:
            self.on_success(chip, tick)

    def mark_replaced(self, chip, tick: int, reason: str = "spare-provisioned") -> None:
        """Terminal state for a chip swapped out by spare provisioning."""
        record = self.record_for(chip)
        self._transition(chip, record, "replaced", tick, reason)

    def _quarantine(self, chip, record: ChipHealth, tick: int, reason: str) -> None:
        if record.state == "quarantined":
            return
        record.quarantines += 1
        if record.quarantines > self.config.retire_after:
            self._transition(chip, record, "retired", tick, "flapping")
            return
        record.quarantined_at = int(tick)
        self._transition(chip, record, "quarantined", tick, reason)

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def on_tick(self, tick: int, fleet) -> None:
        """Release quarantined chips whose sit-out period has elapsed."""
        for chip in fleet:
            record = self.record_for(chip)
            if record.state != "quarantined" or record.quarantined_at is None:
                continue
            if tick - record.quarantined_at >= self.config.quarantine_ticks:
                record.consecutive_failures = 0
                record.consecutive_successes = 0
                record.quarantined_at = None
                self._transition(chip, record, "degraded", tick, "probation")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """``{state: [chip ids]}`` for every tracked chip (JSON-friendly)."""
        states: dict[str, list[str]] = {state: [] for state in HEALTH_STATES}
        for chip_id, record in sorted(self.records.items()):
            states[record.state].append(chip_id)
        return {state: chips for state, chips in states.items() if chips}

    def __repr__(self) -> str:
        return (
            f"HealthMonitor(chips={len(self.records)}, "
            f"transitions={len(self.transitions)})"
        )
