"""Streaming serving telemetry: latency quantiles, throughput, occupancy.

Built on :mod:`repro.obs.metrics`: every meter is a :class:`Counter` or a
log-bucketed streaming :class:`Histogram` registered in a
:class:`MetricsRegistry`, so the counters stay O(1) no matter how much
traffic flows through — and, unlike the old ``AverageMeter``-only
telemetry, latency now reports interpolated p50/p95/p99 tails alongside
mean/min/max/std (an SLO is a quantile, not a mean).  The registry is
shared with the engine's :class:`~repro.obs.Observability`, which is what
lets one Prometheus dump cover the whole stack.
"""

from __future__ import annotations

from collections import defaultdict

from repro.obs.metrics import Histogram, MetricsRegistry

#: The quantile points every latency-shaped report carries.
QUANTILES = (50.0, 95.0, 99.0)


class ServeTelemetry:
    """Counters the :class:`~repro.serve.engine.InferenceEngine` maintains.

    * ``queue_ticks`` — per-request queueing delay in scheduler ticks
      (batching latency; the cost of waiting for a fuller batch);
    * ``service_seconds`` — wall-clock seconds per batched forward pass;
    * ``request_seconds`` — wall-clock submit-to-completion latency per
      request (the engine measures it through its injectable clock);
    * ``batch_size`` / ``occupancy`` — how full released batches are
      relative to ``max_batch``;
    * ``per_chip_samples`` — samples served by each chip (load balance);
    * ``batch_energy_uj`` / ``per_chip_energy_uj`` — estimated physical
      energy of each dispatched batch (from
      :meth:`repro.backends.ProgrammedChip.cost`), total and per chip, in
      microjoules — the signal energy-aware scheduling weighs against
      quality;
    * ``recalibrations`` / ``quality_series`` — lifecycle events: per-chip
      recalibration counts and the probed accuracy-over-(virtual)-time
      series, which is what a drift/recovery curve is plotted from;
    * fault tolerance — fault events by kind and by chip, retry/hedge/
      dead-letter counters, recorded health transitions, spare-provisioning
      replacements, and ``goodput`` (served / (served + dead-lettered)),
      the chaos bench's acceptance metric.  All land in the ``faults``
      section of :meth:`report`;
    * SLO accounting — deadline outcomes (:meth:`record_deadline`:
      met/violated counters, headroom and lateness tick histograms, the
      violations-over-time ``slo_series``) and admission rejections
      (:meth:`record_rejection`), the ``slo`` section the ``serve-bench
      --slo`` gate and the :class:`~repro.serve.api.Gateway` read.

    ``attach_cache`` links the engine's :class:`~repro.serve.cache.MappingCache`
    so its hit/miss/invalidation stats appear in :meth:`report` and
    :meth:`format` — operators should not need the cache object in hand to
    see the hit rate.
    """

    def __init__(self, max_batch: int = 1, registry: MetricsRegistry | None = None) -> None:
        self.max_batch = max(1, int(max_batch))
        self.registry = registry if registry is not None else MetricsRegistry()
        self._requests = self.registry.counter(
            "serve_requests_total", "requests served to completion"
        )
        self._batches = self.registry.counter(
            "serve_batches_total", "batches dispatched to chips"
        )
        # Ticks are small integers; a tighter low edge keeps single-digit
        # quantiles inside log buckets instead of one underflow bin.
        self.queue_ticks = self.registry.histogram(
            "serve_queue_ticks", "per-request queueing delay (ticks)",
            lo=0.5, hi=1e5, buckets_per_decade=20,
        )
        self.service_seconds = self.registry.histogram(
            "serve_batch_service_seconds", "wall seconds per batched forward",
            lo=1e-6, hi=1e3,
        )
        self.request_seconds = self.registry.histogram(
            "serve_request_latency_seconds", "submit-to-completion wall seconds",
            lo=1e-6, hi=1e3,
        )
        self.batch_size = self.registry.histogram(
            "serve_batch_size", "requests fused per batch", lo=0.5, hi=1e5,
            buckets_per_decade=20,
        )
        self.occupancy = self.registry.histogram(
            "serve_batch_occupancy", "batch size / max_batch", lo=1e-3, hi=10.0,
            buckets_per_decade=20,
        )
        self.batch_energy_uj = self.registry.histogram(
            "serve_batch_energy_uj", "estimated energy per dispatched batch (uJ)",
            lo=1e-6, hi=1e9,
        )
        self._retries = self.registry.counter(
            "serve_retries_total", "requests parked for a backoff retry"
        )
        self._hedges = self.registry.counter(
            "serve_hedges_total", "failed dispatches hedged to a second chip"
        )
        self._dead_letters = self.registry.counter(
            "serve_dead_letters_total", "requests that exhausted their retry budget"
        )
        self._faults = self.registry.counter(
            "serve_faults_total", "chip fault events (all kinds)"
        )
        self._slo_met = self.registry.counter(
            "serve_slo_met_total", "deadline-bearing requests served in time"
        )
        self._slo_violations = self.registry.counter(
            "serve_slo_violations_total",
            "deadline-bearing requests served late or expired",
        )
        self._rejections = self.registry.counter(
            "serve_rejections_total", "requests rejected at admission (backpressure)"
        )
        self._fused_groups = self.registry.counter(
            "serve_fused_groups_total", "fused dispatch groups executed"
        )
        self._fused_batches = self.registry.counter(
            "serve_fused_batches_total", "batches served through the fused fleet path"
        )
        self._fused_fallbacks = self.registry.counter(
            "serve_fused_fallback_batches_total",
            "batches dispatched per-chip while fusion was enabled",
        )
        self._shard_groups = self.registry.counter(
            "serve_shard_groups_total", "sharded dispatch groups executed"
        )
        self._shard_batches = self.registry.counter(
            "serve_shard_batches_total", "batches served through shard workers"
        )
        # Tick-valued like queue_ticks: a tight low edge plus an underflow
        # bucket for the zero-headroom / zero-lateness edge.
        self.deadline_headroom = self.registry.histogram(
            "serve_deadline_headroom_ticks",
            "ticks of slack left when a deadline-bearing request completed",
            lo=0.5, hi=1e5, buckets_per_decade=20,
        )
        self.deadline_lateness = self.registry.histogram(
            "serve_deadline_lateness_ticks",
            "ticks past deadline for requests that missed their SLO",
            lo=0.5, hi=1e5, buckets_per_decade=20,
        )
        self.per_chip_samples: dict[str, int] = defaultdict(int)
        self.per_chip_energy_uj: dict[str, float] = defaultdict(float)
        self.recalibrations: dict[str, int] = defaultdict(int)
        self.recalibration_events: list[tuple[float, str]] = []
        self.quality_series: dict[str, list[tuple[float, float]]] = defaultdict(list)
        self.fault_counts: dict[str, int] = defaultdict(int)
        self.per_chip_faults: dict[str, int] = defaultdict(int)
        self.dead_letter_reasons: dict[str, int] = defaultdict(int)
        self.health_transitions: list = []
        self.replacements: list[tuple[float, str, str]] = []
        #: ``(tick, met_total, violations_total)`` after every deadline
        #: outcome — the SLO-violation-over-time series the ``--slo`` bench
        #: plots and gates on.
        self.slo_series: list[tuple[int, int, int]] = []
        #: Accumulated per-shard worker deltas (programs, refreshes, wall
        #: seconds), merged in canonical shard order by the engine.  Like
        #: every wall-clock quantity these are report-only: the digest
        #: must not see them, or sharded and serial runs could never match.
        self.shard_deltas: dict[int, dict] = {}
        self._cache = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @property
    def requests(self) -> int:
        return self._requests.value

    @property
    def batches(self) -> int:
        return self._batches.value

    def attach_cache(self, cache) -> None:
        """Surface ``cache.stats`` in :meth:`report`/:meth:`format`."""
        self._cache = cache

    def record_batch(
        self, chip_id: str, queue_ticks, seconds: float, energy_uj: float | None = None
    ) -> None:
        """Account one dispatched batch.

        ``queue_ticks`` is the per-request queueing delay of every request
        fused into the batch, so the latency meter sees true tails rather
        than batch averages.  ``energy_uj`` is the chip's estimated physical
        cost of the batch (``None`` when the backend has no cost estimator).
        """
        size = len(queue_ticks)
        self._requests.inc(size)
        self._batches.inc()
        self.per_chip_samples[chip_id] += size
        self.batch_size.update(size)
        self.occupancy.update(size / self.max_batch)
        for ticks in queue_ticks:
            self.queue_ticks.update(ticks)
        self.service_seconds.update(seconds)
        if energy_uj is not None:
            self.batch_energy_uj.update(float(energy_uj))
            self.per_chip_energy_uj[chip_id] += float(energy_uj)

    def record_request_latency(self, seconds: float) -> None:
        """Account one request's submit-to-completion wall latency."""
        self.request_seconds.update(seconds)

    def record_quality(self, chip_id: str, time: float, quality: float) -> None:
        """Append one probed quality sample to a chip's accuracy-over-time series."""
        self.quality_series[chip_id].append((float(time), float(quality)))

    def record_recalibration(self, chip_id: str, time: float) -> None:
        """Account one recalibration event (GTM re-measure + reprogram)."""
        self.recalibrations[chip_id] += 1
        self.recalibration_events.append((float(time), chip_id))

    def record_fault(self, kind: str, chip_id: str) -> None:
        """Account one chip fault event (death, stuck-at, transient, ...)."""
        self._faults.inc()
        self.fault_counts[kind] += 1
        self.per_chip_faults[chip_id] += 1

    def record_retry(self) -> None:
        """Account one request parked for a backoff retry."""
        self._retries.inc()

    def record_hedge(self, primary: str, backup: str) -> None:
        """Account one failed dispatch hedged to a second chip."""
        self._hedges.inc()

    def record_dead_letter(self, reason: str) -> None:
        """Account one request that exhausted its retry budget."""
        self._dead_letters.inc()
        self.dead_letter_reasons[reason] += 1

    def record_deadline(self, tick: int, headroom: int) -> None:
        """Account one deadline outcome at ``tick``.

        ``headroom`` is ``deadline - completion tick``: non-negative counts
        as SLO met (with that many ticks of slack), negative as an SLO
        violation ``-headroom`` ticks late.  Requests dead-lettered for an
        expired deadline are violations too — the engine reports their
        lateness at the tick they were shed.
        """
        if headroom >= 0:
            self._slo_met.inc()
            self.deadline_headroom.update(headroom)
        else:
            self._slo_violations.inc()
            self.deadline_lateness.update(-headroom)
        self.slo_series.append((int(tick), self.slo_met, self.slo_violations))

    def record_rejection(self) -> None:
        """Account one request refused at admission (queue full)."""
        self._rejections.inc()

    def record_fused_group(self, batches: int) -> None:
        """Account one fused dispatch group covering ``batches`` batches."""
        self._fused_groups.inc()
        self._fused_batches.inc(int(batches))

    def record_fused_fallback(self, batches: int = 1) -> None:
        """Account ``batches`` batches dispatched per-chip despite fusion being on."""
        self._fused_fallbacks.inc(int(batches))

    def record_shard_group(self, batches: int, shards: int = 1) -> None:
        """Account one sharded dispatch group (``batches`` over ``shards``)."""
        self._shard_groups.inc()
        self._shard_batches.inc(int(batches))

    def record_shard_delta(self, shard: int, delta: dict) -> None:
        """Merge one worker's per-tick telemetry delta (report-only).

        Counters accumulate; ``resident`` (the worker's programmed-chip
        count) keeps the latest value.  The engine calls this in canonical
        shard order every sharded tick, so the merged state is
        deterministic — but none of it enters :meth:`digest`, exactly like
        the wall-time histograms.
        """
        merged = self.shard_deltas.setdefault(
            int(shard),
            {"batches": 0, "rows": 0, "programs": 0, "refreshes": 0,
             "program_seconds": 0.0, "resident": 0},
        )
        for key in ("batches", "rows", "programs", "refreshes"):
            merged[key] += int(delta.get(key, 0))
        merged["program_seconds"] += float(delta.get("program_seconds", 0.0))
        merged["resident"] = int(delta.get("resident", merged["resident"]))

    def record_health_transition(self, transition) -> None:
        """Append one :class:`~repro.serve.health.HealthTransition`."""
        self.health_transitions.append(transition)

    def record_replacement(self, old_chip: str, new_chip: str, time: float) -> None:
        """Account one spare-provisioning swap (retired -> fresh silicon)."""
        self.replacements.append((float(time), str(old_chip), str(new_chip)))

    def quality_timeline(self, chip_id: str) -> list[tuple[float, float]]:
        """One chip's ``(time, probed accuracy)`` series, oldest first."""
        return list(self.quality_series.get(chip_id, []))

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def total_service_seconds(self) -> float:
        return self.service_seconds.total

    @property
    def total_energy_uj(self) -> float:
        """Estimated energy of all dispatched batches, in microjoules."""
        return self.batch_energy_uj.total

    @property
    def energy_per_request_uj(self) -> float:
        """Mean estimated energy per served request, in microjoules."""
        return self.total_energy_uj / self.requests if self.requests else 0.0

    @property
    def throughput(self) -> float:
        """Samples per second of service time (excludes queueing ticks)."""
        seconds = self.total_service_seconds
        return self.requests / seconds if seconds > 0.0 else 0.0

    @property
    def retries(self) -> int:
        return self._retries.value

    @property
    def hedges(self) -> int:
        return self._hedges.value

    @property
    def dead_letters(self) -> int:
        return self._dead_letters.value

    @property
    def faults(self) -> int:
        return self._faults.value

    @property
    def slo_met(self) -> int:
        return self._slo_met.value

    @property
    def slo_violations(self) -> int:
        return self._slo_violations.value

    @property
    def rejections(self) -> int:
        return self._rejections.value

    @property
    def fused_groups(self) -> int:
        return self._fused_groups.value

    @property
    def fused_batches(self) -> int:
        return self._fused_batches.value

    @property
    def fused_fallback_batches(self) -> int:
        return self._fused_fallbacks.value

    @property
    def shard_groups(self) -> int:
        return self._shard_groups.value

    @property
    def shard_batches(self) -> int:
        return self._shard_batches.value

    @property
    def slo_attainment(self) -> float:
        """Fraction of deadline-bearing requests that met their deadline.

        1.0 when no request carried a deadline — a deadline-free run
        trivially violates nothing, which keeps the ``--slo`` ceiling gate
        meaningful only on deadline-bearing workloads.
        """
        finished = self.slo_met + self.slo_violations
        return self.slo_met / finished if finished else 1.0

    @property
    def goodput(self) -> float:
        """Fraction of finished requests actually served (vs dead-lettered).

        The chaos bench's acceptance metric: 1.0 on a fault-free run,
        degrading as requests exhaust their retry budget.
        """
        finished = self.requests + self.dead_letters
        return self.requests / finished if finished else 1.0

    def digest(self) -> str:
        """SHA-256 over the run's *deterministic* accounting.

        The fused-parity contract in one hash: a ``fused=True`` and a
        ``fused=False`` run of the same seeded workload must produce the
        same digest, because fusion may change wall-clock timing and span
        structure but never what was served, by whom, in which batches,
        with what queueing, energy, SLO, or fault outcomes.  Wall-time
        histograms (service/request seconds) and the fused counters
        themselves are therefore excluded; everything else — request and
        batch counts, per-chip load and energy, tick-valued histograms,
        fault/retry/dead-letter accounting, SLO series, lifecycle events
        — is included.
        """
        import hashlib
        import json

        def hist(histogram: Histogram) -> dict:
            return histogram.as_dict()

        # Collapse the cumulative SLO series to its last entry per tick:
        # the fused path stages every same-tick batch before completing
        # any, so *within* a tick deadline events interleave differently,
        # but the per-tick end state is the same multiset of events.
        slo_by_tick: dict[int, tuple[int, int]] = {}
        for tick, met, violations in self.slo_series:
            slo_by_tick[int(tick)] = (met, violations)

        payload = {
            "requests": self.requests,
            "batches": self.batches,
            "per_chip_samples": dict(self.per_chip_samples),
            "per_chip_energy_uj": dict(self.per_chip_energy_uj),
            "queue_ticks": hist(self.queue_ticks),
            "batch_size": hist(self.batch_size),
            "occupancy": hist(self.occupancy),
            "batch_energy_uj": hist(self.batch_energy_uj),
            "deadline_headroom": hist(self.deadline_headroom),
            "deadline_lateness": hist(self.deadline_lateness),
            "slo": [self.slo_met, self.slo_violations, self.rejections],
            "slo_series": sorted(slo_by_tick.items()),
            "faults": [self.faults, self.retries, self.hedges, self.dead_letters],
            "fault_counts": dict(self.fault_counts),
            "per_chip_faults": dict(self.per_chip_faults),
            "dead_letter_reasons": dict(self.dead_letter_reasons),
            "recalibrations": dict(self.recalibrations),
            "recalibration_events": self.recalibration_events,
            "quality_series": dict(self.quality_series),
            "replacements": self.replacements,
            "health_transitions": [
                (t.tick, t.chip_id, t.source, t.target, t.reason)
                for t in self.health_transitions
            ],
        }
        encoded = json.dumps(payload, sort_keys=True, default=str).encode()
        return hashlib.sha256(encoded).hexdigest()

    @staticmethod
    def _meter_section(histogram: Histogram) -> dict:
        """mean/min/max/std (the pre-quantile surface) + p50/p95/p99."""
        return {
            "mean": float(histogram.mean),
            "min": float(histogram.min),
            "max": float(histogram.max),
            "std": float(histogram.std),
            **{key: float(value) for key, value in histogram.percentiles(QUANTILES).items()},
        }

    def report(self) -> dict:
        """Plain-dict snapshot (JSON-friendly, used by the CLI result store).

        Backwards compatible with the pre-``repro.obs`` layout (every old
        key is still present) plus the quantile sections (``latency``,
        per-meter p50/p95/p99) and, when a cache is attached, ``cache``.
        """
        report = {
            "requests": self.requests,
            "batches": self.batches,
            "throughput_sps": float(self.throughput),
            "service_seconds": float(self.total_service_seconds),
            "batch_size_mean": float(self.batch_size.mean),
            "occupancy_mean": float(self.occupancy.mean),
            "queue_ticks": self._meter_section(self.queue_ticks),
            "service_seconds_per_batch": self._meter_section(self.service_seconds),
            "latency": {
                "count": self.request_seconds.count,
                **self._meter_section(self.request_seconds),
            },
            "per_chip_samples": dict(self.per_chip_samples),
            "energy_uj": {
                "total": float(self.total_energy_uj),
                "mean_per_batch": float(self.batch_energy_uj.mean),
                "per_request": float(self.energy_per_request_uj),
                "per_chip": {
                    chip: float(value)
                    for chip, value in self.per_chip_energy_uj.items()
                },
            },
            "recalibrations": dict(self.recalibrations),
            "recalibration_events": [
                {"time": float(time), "chip": chip}
                for time, chip in self.recalibration_events
            ],
            "quality_series": {
                chip: [{"time": float(time), "accuracy": float(q)} for time, q in series]
                for chip, series in self.quality_series.items()
            },
            "slo": {
                "met": self.slo_met,
                "violations": self.slo_violations,
                "attainment": float(self.slo_attainment),
                "rejections": self.rejections,
                "headroom_ticks": self._meter_section(self.deadline_headroom),
                "lateness_ticks": self._meter_section(self.deadline_lateness),
                "series": [
                    {"tick": tick, "met": met, "violations": violations}
                    for tick, met, violations in self.slo_series
                ],
            },
            "fused": {
                "groups": self.fused_groups,
                "batches": self.fused_batches,
                "fallback_batches": self.fused_fallback_batches,
            },
            "sharded": {
                "groups": self.shard_groups,
                "batches": self.shard_batches,
                "workers": {
                    str(shard): dict(delta)
                    for shard, delta in sorted(self.shard_deltas.items())
                },
            },
            "faults": {
                "total": self.faults,
                "by_kind": dict(self.fault_counts),
                "per_chip": dict(self.per_chip_faults),
                "retries": self.retries,
                "hedges": self.hedges,
                "dead_letters": self.dead_letters,
                "dead_letter_reasons": dict(self.dead_letter_reasons),
                "goodput": float(self.goodput),
                "replacements": [
                    {"time": float(time), "old": old, "new": new}
                    for time, old, new in self.replacements
                ],
                "health_transitions": [
                    {
                        "tick": transition.tick,
                        "chip": transition.chip_id,
                        "source": transition.source,
                        "target": transition.target,
                        "reason": transition.reason,
                    }
                    for transition in self.health_transitions
                ],
            },
        }
        if self._cache is not None:
            report["cache"] = {
                key: (float(value) if isinstance(value, float) else value)
                for key, value in self._cache.stats.as_dict().items()
            }
        return report

    def format(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"requests: {self.requests}  batches: {self.batches}  "
            f"throughput: {self.throughput:.1f} samples/s",
            f"batch size: mean {self.batch_size.mean:.2f}  "
            f"occupancy: {100 * self.occupancy.mean:.0f}%",
            f"queue ticks: mean {self.queue_ticks.mean:.2f}  "
            f"p50 {self.queue_ticks.quantile(0.50):.1f}  "
            f"p95 {self.queue_ticks.quantile(0.95):.1f}  "
            f"p99 {self.queue_ticks.quantile(0.99):.1f}  "
            f"max {self.queue_ticks.max:.0f}",
            f"service ms/batch: mean {1e3 * self.service_seconds.mean:.2f}  "
            f"p95 {1e3 * self.service_seconds.quantile(0.95):.2f}  "
            f"max {1e3 * self.service_seconds.max:.2f}",
            "chip load: "
            + "  ".join(
                f"{chip}={count}" for chip, count in sorted(self.per_chip_samples.items())
            ),
        ]
        if self.request_seconds.count:
            lines.insert(
                3,
                f"request latency ms: p50 {1e3 * self.request_seconds.quantile(0.50):.2f}  "
                f"p95 {1e3 * self.request_seconds.quantile(0.95):.2f}  "
                f"p99 {1e3 * self.request_seconds.quantile(0.99):.2f}  "
                f"max {1e3 * self.request_seconds.max:.2f}",
            )
        if self._cache is not None:
            stats = self._cache.stats
            lines.append(
                f"mapping cache: {stats.hits} hits / {stats.misses} misses "
                f"(hit rate {100 * stats.hit_rate:.0f}%)  "
                f"evictions {stats.evictions}  invalidations {stats.invalidations}  "
                f"cross-backend misses {stats.cross_backend_misses}"
            )
        if self.batch_energy_uj.count:
            lines.append(
                f"energy: total {self.total_energy_uj:.1f} uJ  "
                f"mean {self.batch_energy_uj.mean:.1f} uJ/batch  "
                f"{self.energy_per_request_uj:.2f} uJ/request"
            )
        if self.slo_met or self.slo_violations or self.rejections:
            lines.append(
                f"slo: {self.slo_met} met / {self.slo_violations} violated "
                f"(attainment {100 * self.slo_attainment:.1f}%)  "
                f"rejections {self.rejections}  "
                f"headroom p50 {self.deadline_headroom.quantile(0.50):.1f} ticks"
            )
        if self.faults or self.dead_letters or self.retries:
            lines.append(
                f"faults: {self.faults} ("
                + "  ".join(
                    f"{kind}={count}" for kind, count in sorted(self.fault_counts.items())
                )
                + f")  retries {self.retries}  hedges {self.hedges}  "
                f"dead-letters {self.dead_letters}  "
                f"goodput {100 * self.goodput:.1f}%"
            )
        if self.replacements:
            lines.append(
                "replacements: "
                + "  ".join(f"{old}->{new}" for _, old, new in self.replacements)
            )
        if self.health_transitions:
            terminal: dict[str, str] = {}
            for transition in self.health_transitions:
                terminal[transition.chip_id] = transition.target
            lines.append(
                "health: "
                + "  ".join(
                    f"{chip}={state}" for chip, state in sorted(terminal.items())
                )
            )
        if self.recalibrations:
            lines.append(
                "recalibrations: "
                + "  ".join(
                    f"{chip}={count}"
                    for chip, count in sorted(self.recalibrations.items())
                )
            )
        if self.quality_series:
            lines.append(
                "quality now: "
                + "  ".join(
                    f"{chip}={100 * series[-1][1]:.0f}%"
                    for chip, series in sorted(self.quality_series.items())
                    if series
                )
            )
        return "\n".join(lines)
