"""Streaming serving telemetry: latency, throughput, occupancy.

Built on :class:`repro.eval.metrics.AverageMeter`, which tracks mean /
min / max / std without storing samples, so the counters stay O(1) no
matter how much traffic flows through the engine.
"""

from __future__ import annotations

from collections import defaultdict

from repro.eval.metrics import AverageMeter


class ServeTelemetry:
    """Counters the :class:`~repro.serve.engine.InferenceEngine` maintains.

    * ``queue_ticks`` — per-request queueing delay in scheduler ticks
      (batching latency; the cost of waiting for a fuller batch);
    * ``service_seconds`` — wall-clock seconds per batched forward pass;
    * ``batch_size`` / ``occupancy`` — how full released batches are
      relative to ``max_batch``;
    * ``per_chip_samples`` — samples served by each chip (load balance);
    * ``recalibrations`` / ``quality_series`` — lifecycle events: per-chip
      recalibration counts and the probed accuracy-over-(virtual)-time
      series, which is what a drift/recovery curve is plotted from.
    """

    def __init__(self, max_batch: int = 1) -> None:
        self.max_batch = max(1, int(max_batch))
        self.queue_ticks = AverageMeter()
        self.service_seconds = AverageMeter()
        self.batch_size = AverageMeter()
        self.occupancy = AverageMeter()
        self.requests = 0
        self.batches = 0
        self.per_chip_samples: dict[str, int] = defaultdict(int)
        self.recalibrations: dict[str, int] = defaultdict(int)
        self.recalibration_events: list[tuple[float, str]] = []
        self.quality_series: dict[str, list[tuple[float, float]]] = defaultdict(list)

    def record_batch(self, chip_id: str, queue_ticks, seconds: float) -> None:
        """Account one dispatched batch.

        ``queue_ticks`` is the per-request queueing delay of every request
        fused into the batch, so the latency meter sees true tails rather
        than batch averages.
        """
        size = len(queue_ticks)
        self.requests += size
        self.batches += 1
        self.per_chip_samples[chip_id] += size
        self.batch_size.update(size)
        self.occupancy.update(size / self.max_batch)
        for ticks in queue_ticks:
            self.queue_ticks.update(ticks)
        self.service_seconds.update(seconds)

    def record_quality(self, chip_id: str, time: float, quality: float) -> None:
        """Append one probed quality sample to a chip's accuracy-over-time series."""
        self.quality_series[chip_id].append((float(time), float(quality)))

    def record_recalibration(self, chip_id: str, time: float) -> None:
        """Account one recalibration event (GTM re-measure + reprogram)."""
        self.recalibrations[chip_id] += 1
        self.recalibration_events.append((float(time), chip_id))

    def quality_timeline(self, chip_id: str) -> list[tuple[float, float]]:
        """One chip's ``(time, probed accuracy)`` series, oldest first."""
        return list(self.quality_series.get(chip_id, []))

    @property
    def total_service_seconds(self) -> float:
        return self.service_seconds.total

    @property
    def throughput(self) -> float:
        """Samples per second of service time (excludes queueing ticks)."""
        seconds = self.total_service_seconds
        return self.requests / seconds if seconds > 0.0 else 0.0

    def report(self) -> dict:
        """Plain-dict snapshot (JSON-friendly, used by the CLI result store)."""
        return {
            "requests": self.requests,
            "batches": self.batches,
            "throughput_sps": self.throughput,
            "service_seconds": self.total_service_seconds,
            "batch_size_mean": self.batch_size.mean,
            "occupancy_mean": self.occupancy.mean,
            "queue_ticks": {
                "mean": self.queue_ticks.mean,
                "min": self.queue_ticks.min,
                "max": self.queue_ticks.max,
                "std": self.queue_ticks.std,
            },
            "service_seconds_per_batch": {
                "mean": self.service_seconds.mean,
                "min": self.service_seconds.min,
                "max": self.service_seconds.max,
                "std": self.service_seconds.std,
            },
            "per_chip_samples": dict(self.per_chip_samples),
            "recalibrations": dict(self.recalibrations),
            "recalibration_events": [
                {"time": time, "chip": chip} for time, chip in self.recalibration_events
            ],
            "quality_series": {
                chip: [{"time": time, "accuracy": q} for time, q in series]
                for chip, series in self.quality_series.items()
            },
        }

    def format(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"requests: {self.requests}  batches: {self.batches}  "
            f"throughput: {self.throughput:.1f} samples/s",
            f"batch size: mean {self.batch_size.mean:.2f}  "
            f"occupancy: {100 * self.occupancy.mean:.0f}%",
            f"queue ticks: mean {self.queue_ticks.mean:.2f}  "
            f"max {self.queue_ticks.max:.0f}  std {self.queue_ticks.std:.2f}",
            f"service ms/batch: mean {1e3 * self.service_seconds.mean:.2f}  "
            f"max {1e3 * self.service_seconds.max:.2f}",
            "chip load: "
            + "  ".join(
                f"{chip}={count}" for chip, count in sorted(self.per_chip_samples.items())
            ),
        ]
        if self.recalibrations:
            lines.append(
                "recalibrations: "
                + "  ".join(
                    f"{chip}={count}"
                    for chip, count in sorted(self.recalibrations.items())
                )
            )
        if self.quality_series:
            lines.append(
                "quality now: "
                + "  ".join(
                    f"{chip}={100 * series[-1][1]:.0f}%"
                    for chip, series in sorted(self.quality_series.items())
                    if series
                )
            )
        return "\n".join(lines)
