"""Streaming serving telemetry: latency, throughput, occupancy.

Built on :class:`repro.eval.metrics.AverageMeter`, which tracks mean /
min / max / std without storing samples, so the counters stay O(1) no
matter how much traffic flows through the engine.
"""

from __future__ import annotations

from collections import defaultdict

from repro.eval.metrics import AverageMeter


class ServeTelemetry:
    """Counters the :class:`~repro.serve.engine.InferenceEngine` maintains.

    * ``queue_ticks`` — per-request queueing delay in scheduler ticks
      (batching latency; the cost of waiting for a fuller batch);
    * ``service_seconds`` — wall-clock seconds per batched forward pass;
    * ``batch_size`` / ``occupancy`` — how full released batches are
      relative to ``max_batch``;
    * ``per_chip_samples`` — samples served by each chip (load balance);
    * ``batch_energy_uj`` / ``per_chip_energy_uj`` — estimated physical
      energy of each dispatched batch (from
      :meth:`repro.backends.ProgrammedChip.cost`), total and per chip, in
      microjoules — the signal energy-aware scheduling weighs against
      quality;
    * ``recalibrations`` / ``quality_series`` — lifecycle events: per-chip
      recalibration counts and the probed accuracy-over-(virtual)-time
      series, which is what a drift/recovery curve is plotted from.
    """

    def __init__(self, max_batch: int = 1) -> None:
        self.max_batch = max(1, int(max_batch))
        self.queue_ticks = AverageMeter()
        self.service_seconds = AverageMeter()
        self.batch_size = AverageMeter()
        self.occupancy = AverageMeter()
        self.batch_energy_uj = AverageMeter()
        self.requests = 0
        self.batches = 0
        self.per_chip_samples: dict[str, int] = defaultdict(int)
        self.per_chip_energy_uj: dict[str, float] = defaultdict(float)
        self.recalibrations: dict[str, int] = defaultdict(int)
        self.recalibration_events: list[tuple[float, str]] = []
        self.quality_series: dict[str, list[tuple[float, float]]] = defaultdict(list)

    def record_batch(
        self, chip_id: str, queue_ticks, seconds: float, energy_uj: float | None = None
    ) -> None:
        """Account one dispatched batch.

        ``queue_ticks`` is the per-request queueing delay of every request
        fused into the batch, so the latency meter sees true tails rather
        than batch averages.  ``energy_uj`` is the chip's estimated physical
        cost of the batch (``None`` when the backend has no cost estimator).
        """
        size = len(queue_ticks)
        self.requests += size
        self.batches += 1
        self.per_chip_samples[chip_id] += size
        self.batch_size.update(size)
        self.occupancy.update(size / self.max_batch)
        for ticks in queue_ticks:
            self.queue_ticks.update(ticks)
        self.service_seconds.update(seconds)
        if energy_uj is not None:
            self.batch_energy_uj.update(float(energy_uj))
            self.per_chip_energy_uj[chip_id] += float(energy_uj)

    def record_quality(self, chip_id: str, time: float, quality: float) -> None:
        """Append one probed quality sample to a chip's accuracy-over-time series."""
        self.quality_series[chip_id].append((float(time), float(quality)))

    def record_recalibration(self, chip_id: str, time: float) -> None:
        """Account one recalibration event (GTM re-measure + reprogram)."""
        self.recalibrations[chip_id] += 1
        self.recalibration_events.append((float(time), chip_id))

    def quality_timeline(self, chip_id: str) -> list[tuple[float, float]]:
        """One chip's ``(time, probed accuracy)`` series, oldest first."""
        return list(self.quality_series.get(chip_id, []))

    @property
    def total_service_seconds(self) -> float:
        return self.service_seconds.total

    @property
    def total_energy_uj(self) -> float:
        """Estimated energy of all dispatched batches, in microjoules."""
        return self.batch_energy_uj.total

    @property
    def energy_per_request_uj(self) -> float:
        """Mean estimated energy per served request, in microjoules."""
        return self.total_energy_uj / self.requests if self.requests else 0.0

    @property
    def throughput(self) -> float:
        """Samples per second of service time (excludes queueing ticks)."""
        seconds = self.total_service_seconds
        return self.requests / seconds if seconds > 0.0 else 0.0

    def report(self) -> dict:
        """Plain-dict snapshot (JSON-friendly, used by the CLI result store)."""
        return {
            "requests": self.requests,
            "batches": self.batches,
            "throughput_sps": self.throughput,
            "service_seconds": self.total_service_seconds,
            "batch_size_mean": self.batch_size.mean,
            "occupancy_mean": self.occupancy.mean,
            "queue_ticks": {
                "mean": self.queue_ticks.mean,
                "min": self.queue_ticks.min,
                "max": self.queue_ticks.max,
                "std": self.queue_ticks.std,
            },
            "service_seconds_per_batch": {
                "mean": self.service_seconds.mean,
                "min": self.service_seconds.min,
                "max": self.service_seconds.max,
                "std": self.service_seconds.std,
            },
            "per_chip_samples": dict(self.per_chip_samples),
            "energy_uj": {
                "total": self.total_energy_uj,
                "mean_per_batch": self.batch_energy_uj.mean,
                "per_request": self.energy_per_request_uj,
                "per_chip": dict(self.per_chip_energy_uj),
            },
            "recalibrations": dict(self.recalibrations),
            "recalibration_events": [
                {"time": time, "chip": chip} for time, chip in self.recalibration_events
            ],
            "quality_series": {
                chip: [{"time": time, "accuracy": q} for time, q in series]
                for chip, series in self.quality_series.items()
            },
        }

    def format(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"requests: {self.requests}  batches: {self.batches}  "
            f"throughput: {self.throughput:.1f} samples/s",
            f"batch size: mean {self.batch_size.mean:.2f}  "
            f"occupancy: {100 * self.occupancy.mean:.0f}%",
            f"queue ticks: mean {self.queue_ticks.mean:.2f}  "
            f"max {self.queue_ticks.max:.0f}  std {self.queue_ticks.std:.2f}",
            f"service ms/batch: mean {1e3 * self.service_seconds.mean:.2f}  "
            f"max {1e3 * self.service_seconds.max:.2f}",
            "chip load: "
            + "  ".join(
                f"{chip}={count}" for chip, count in sorted(self.per_chip_samples.items())
            ),
        ]
        if self.batch_energy_uj.count:
            lines.append(
                f"energy: total {self.total_energy_uj:.1f} uJ  "
                f"mean {self.batch_energy_uj.mean:.1f} uJ/batch  "
                f"{self.energy_per_request_uj:.2f} uJ/request"
            )
        if self.recalibrations:
            lines.append(
                "recalibrations: "
                + "  ".join(
                    f"{chip}={count}"
                    for chip, count in sorted(self.recalibrations.items())
                )
            )
        if self.quality_series:
            lines.append(
                "quality now: "
                + "  ".join(
                    f"{chip}={100 * series[-1][1]:.0f}%"
                    for chip, series in sorted(self.quality_series.items())
                    if series
                )
            )
        return "\n".join(lines)
