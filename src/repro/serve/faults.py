"""Live fault injection and the retry/dead-letter machinery.

:mod:`repro.variability.faults` models stuck-at defects offline — sample a
fault map, measure accuracy, repeat.  This module drives the same defect
model (and two failure modes the offline protocol cannot express:
transient dispatch errors and hard chip deaths) into a *running* fleet, so
the serving stack's fault tolerance is exercised end to end:

* :class:`FaultPlan` — the seeded chaos scenario: how many chips die, how
  many acquire stuck-at fault maps (a
  :class:`~repro.variability.faults.FaultSpec` applied through each chip's
  owning backend, so both fake-quant and circuit fleets are coverable),
  the per-dispatch transient error rate and latency-spike rate;
* :class:`FaultInjector` — compiles the plan into a deterministic
  :class:`FaultEvent` schedule at :meth:`~FaultInjector.install` time and
  applies due events each engine tick; per-dispatch hazards (transients,
  latency spikes) are drawn from a dedicated seeded stream in
  :meth:`~FaultInjector.before_forward`;
* :class:`RetryPolicy` — bounded retry with exponential backoff, an
  optional same-tick hedge to a second chip, and an optional timeout;
* :class:`DeadLetter` — the terminal record of a request that exhausted
  its retry budget; the engine returns results for completed requests and
  dead-letter records for the rest *instead of raising*.

Everything is reproducible from ``(engine seed, fault seed, trace)``: the
event schedule is a pure function of the plan and the fleet roster, the
per-dispatch hazard stream is consumed in dispatch order, and dispatch
order is itself deterministic — the property ``tests/test_serve_faults.py``
locks in.

Stuck-at maps are *sticky*: the engine remembers which chips carry one and
re-applies it whenever the chip is reprogrammed (cache eviction,
recalibration) — stuck cells are physical damage, a rewrite does not heal
them.  Only spare provisioning (fresh silicon under a new chip id) sheds
the fault map.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.variability.faults import FaultSpec


class ChipFault(RuntimeError):
    """A dispatch-time chip failure the engine's retry machinery absorbs.

    ``kind`` is ``"transient"`` (this dispatch failed, the chip may be
    fine) or ``"dead"`` (the chip is gone for good).
    """

    def __init__(self, kind: str, chip_id: str = "") -> None:
        super().__init__(f"{kind} fault on chip {chip_id or '<unknown>'}")
        self.kind = kind
        self.chip_id = chip_id


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff, hedging, and a timeout.

    A batch whose dispatch fails is not lost: each of its requests is
    parked and resubmitted ``backoff_base * backoff_factor**(cycle-1)``
    ticks later (capped at ``max_backoff``), for at most ``max_attempts``
    dispatch cycles; within a cycle, ``hedge`` allows one immediate
    fail-over attempt on the least-loaded alternate chip before the batch
    counts as failed.  ``timeout_ticks`` (``None`` disables) bounds a
    request's total queue residency: a request that failed a cycle after
    sitting that long is dead-lettered even with attempts left.  Requests
    out of budget land in a :class:`DeadLetter` record, never an exception.
    """

    max_attempts: int = 3
    backoff_base: int = 1
    backoff_factor: float = 2.0
    max_backoff: int = 8
    hedge: bool = True
    timeout_ticks: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 1 or self.max_backoff < 1:
            raise ValueError("backoff_base and max_backoff must be >= 1 tick")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.timeout_ticks is not None and self.timeout_ticks < 1:
            raise ValueError("timeout_ticks must be >= 1 or None")

    def backoff_for(self, cycle: int) -> int:
        """Park duration (ticks) after the ``cycle``-th failed dispatch."""
        ticks = self.backoff_base * self.backoff_factor ** max(0, cycle - 1)
        return max(1, min(int(ticks), self.max_backoff))


@dataclass(frozen=True)
class DeadLetter:
    """Terminal record of a request the fleet could not serve.

    ``reason`` says which budget ran out (``"retries-exhausted"`` or
    ``"timeout"``); ``cause`` records the last failure the request saw
    (``"transient"``, ``"dead"``, or ``"no-capacity"`` when no serving
    chip existed at all).
    """

    id: str
    reason: str
    cause: str
    attempts: int
    tick: int


@dataclass(frozen=True)
class FaultPlan:
    """One seeded chaos scenario for a serving run.

    The default mix is the chaos-smoke acceptance scenario: one hard chip
    death, two stuck-at degradations (``stuck`` rates applied through the
    chip's backend), and a 5% transient dispatch error rate.  Scheduled
    events (deaths, stuck-at maps) land on distinct victim chips at ticks
    drawn uniformly from ``[1, horizon]``; per-dispatch hazards
    (``transient_rate``, ``latency_rate``) apply for the whole run.
    ``latency_seconds`` is the service-time penalty of one latency spike —
    spikes slow a dispatch down, they do not fail it.
    """

    transient_rate: float = 0.05
    latency_rate: float = 0.0
    latency_seconds: float = 0.05
    deaths: int = 1
    stuck_chips: int = 2
    stuck: FaultSpec = field(default_factory=lambda: FaultSpec(0.02, 0.01))
    horizon: int = 16
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("transient_rate", "latency_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {rate}")
        if self.deaths < 0 or self.stuck_chips < 0:
            raise ValueError("deaths and stuck_chips must be >= 0")
        if self.horizon < 1:
            raise ValueError("horizon must be >= 1 tick")
        if self.latency_seconds < 0.0:
            raise ValueError("latency_seconds must be >= 0")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: when, what, and the victim chip."""

    tick: int
    kind: str  # "death" | "stuck-at"
    chip_id: str


class FaultInjector:
    """Compiles a :class:`FaultPlan` against a fleet and fires it tick by tick.

    Attach before traffic::

        injector = FaultInjector(engine, FaultPlan(seed=7))
        injector.install()
        engine.run_trace(workload, trace, ids=ids)

    ``install`` draws the victim chips and event ticks (one deterministic
    stream per plan seed, independent of traffic), registers the injector
    on the engine, and returns the schedule.  The engine then calls
    :meth:`on_tick` once per tick (scheduled events) and
    :meth:`before_forward` once per dispatch attempt (transient/latency
    hazards — raising :class:`ChipFault` hands the failure to the retry
    machinery).
    """

    def __init__(self, engine, plan: FaultPlan | None = None) -> None:
        self.engine = engine
        self.plan = plan if plan is not None else FaultPlan()
        self._schedule: list[FaultEvent] = []
        self._cursor = 0
        self._dead: set[str] = set()
        self._installed = False
        self._hazard_rng = np.random.default_rng((int(self.plan.seed), 0x7A15))

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def install(self) -> list[FaultEvent]:
        """Draw the fault schedule against the engine's current roster."""
        if self._installed:
            raise RuntimeError("fault injector already installed on this engine")
        plan = self.plan
        fleet = list(self.engine.fleet)
        victims_needed = plan.deaths + plan.stuck_chips
        if victims_needed > len(fleet):
            raise ValueError(
                f"plan wants {victims_needed} victim chips, fleet has {len(fleet)}"
            )
        rng = np.random.default_rng((int(plan.seed), 0xFA0175))
        order = rng.permutation(len(fleet))
        death_victims = [fleet[i] for i in order[: plan.deaths]]
        stuck_victims = [fleet[i] for i in order[plan.deaths : victims_needed]]
        events = [
            FaultEvent(int(tick), "death", chip.chip_id)
            for chip, tick in zip(
                death_victims, rng.integers(1, plan.horizon + 1, size=plan.deaths)
            )
        ]
        events.extend(
            FaultEvent(int(tick), "stuck-at", chip.chip_id)
            for chip, tick in zip(
                stuck_victims, rng.integers(1, plan.horizon + 1, size=plan.stuck_chips)
            )
        )
        self._schedule = sorted(events, key=lambda e: (e.tick, e.kind, e.chip_id))
        self._cursor = 0
        self._installed = True
        self.engine.faults = self
        self.engine.obs.event(
            "chaos.install",
            events=len(self._schedule),
            seed=plan.seed,
            transient_rate=plan.transient_rate,
        )
        return list(self._schedule)

    @property
    def schedule(self) -> list[FaultEvent]:
        """The compiled fault schedule (empty before :meth:`install`)."""
        return list(self._schedule)

    @property
    def dead_chips(self) -> set[str]:
        """Chip ids killed so far."""
        return set(self._dead)

    # ------------------------------------------------------------------
    # Scheduled events
    # ------------------------------------------------------------------
    def on_tick(self, tick: int) -> list[FaultEvent]:
        """Apply every scheduled event due at ``tick``; returns them."""
        if not self._installed:
            raise RuntimeError("call install() before driving the injector")
        fired: list[FaultEvent] = []
        while self._cursor < len(self._schedule) and self._schedule[self._cursor].tick <= tick:
            event = self._schedule[self._cursor]
            self._cursor += 1
            self._apply(event, tick)
            fired.append(event)
        return fired

    def _apply(self, event: FaultEvent, tick: int) -> None:
        engine = self.engine
        chip = engine.chip_by_id(event.chip_id)
        if chip is None:  # victim already replaced under an earlier event
            return
        engine.obs.event("fault.scheduled", kind=event.kind, chip=event.chip_id, tick=tick)
        if event.kind == "death":
            self._dead.add(event.chip_id)
            engine.telemetry.record_fault("death", event.chip_id)
            engine.retire_dead(chip)
        elif event.kind == "stuck-at":
            engine.telemetry.record_fault("stuck-at", event.chip_id)
            stuck = engine.inject_chip_faults(
                chip, self.plan.stuck, seed=(int(self.plan.seed) * 1_000_003 + chip.index)
            )
            engine.health.on_fault_event(chip, tick, kind=f"stuck-at:{stuck}")
        else:  # pragma: no cover - schedule only contains the two kinds
            raise ValueError(f"unknown fault kind {event.kind!r}")

    # ------------------------------------------------------------------
    # Per-dispatch hazards
    # ------------------------------------------------------------------
    def before_forward(self, chip) -> float:
        """Hazard gate for one dispatch attempt on ``chip``.

        Raises :class:`ChipFault` when the attempt fails (dead chip,
        transient error); otherwise returns the latency penalty in seconds
        (0.0 almost always, ``plan.latency_seconds`` on a spike).  The
        hazard stream is consumed once per attempt in dispatch order, so
        outcomes are reproducible run to run.
        """
        if chip.chip_id in self._dead:
            raise ChipFault("dead", chip.chip_id)
        if self.plan.transient_rate > 0.0:
            if self._hazard_rng.random() < self.plan.transient_rate:
                raise ChipFault("transient", chip.chip_id)
        if self.plan.latency_rate > 0.0:
            if self._hazard_rng.random() < self.plan.latency_rate:
                # Spikes slow a dispatch rather than fail it, so the engine's
                # ChipFault handler never sees them — count the risk signal
                # for latency-aware scheduling here instead.
                chip.fault_events = getattr(chip, "fault_events", 0) + 1
                self.engine.telemetry.record_fault("latency-spike", chip.chip_id)
                self.engine.obs.event(
                    "fault.latency", chip=chip.chip_id, seconds=self.plan.latency_seconds
                )
                return self.plan.latency_seconds
        return 0.0

    def __repr__(self) -> str:
        return (
            f"FaultInjector(events={len(self._schedule)}, fired={self._cursor}, "
            f"dead={sorted(self._dead)})"
        )
