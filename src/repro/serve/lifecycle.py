"""Chip lifecycle management: drift aging, quality monitoring, recalibration.

PR 1's fleet is frozen at fabrication time; real analog chips are not — their
programmed conductances decay (PCM-like log-time aging) or wander with
temperature, which is exactly the correlated time-varying variation the
paper's footnote 2 says self-tuning can chase.  :class:`ChipLifecycle`
closes that loop inside the serving engine:

1. **drift clock** — every pooled chip's fabrication-time
   :class:`~repro.variability.sampler.ChipVariation` is wrapped in a
   :class:`~repro.pim.drift.DriftingChip` driven by a per-chip
   :class:`~repro.pim.drift.DriftProcess` scaled by the technology's
   :attr:`~repro.pim.devices.DeviceModel.drift_scale`; each engine tick
   advances the virtual clock by ``dt`` and marks the chip's mapping
   stale — the engine re-installs the drifted variation in place, lazily,
   at the chip's next dispatch or probe (physical drift does not
   reprogram anything, so it never shows up as cache traffic);
2. **quality monitor** — every ``probe_every`` virtual time units each
   chip's mapping is probed on a held-out labelled set; the measured top-k
   accuracy lands on the chip handle (feeding the accuracy-weighted and
   drift-aware schedulers) and in
   :class:`~repro.serve.telemetry.ServeTelemetry`'s accuracy-over-time
   series;
3. **recalibration** — a chip probing below ``accuracy_floor`` is pulled:
   its cells are rewritten back to their program-and-verify targets (the
   fabrication-time pattern is restored and the drift clock restarts with a
   fresh process), cached self-tuning measurements are discarded so the
   next GTM read sees the recovered chip, and the chip is *surgically*
   rewritten via :meth:`~repro.serve.engine.InferenceEngine.reprogram` —
   its stale cache entry (and only that entry) is invalidated and the
   chip's owning :class:`~repro.backends.ChipBackend` programs a fresh
   mapping; healthy chips stay resident, no fleet-wide flush.

Everything is deterministic from the engine seed, the lifecycle seed, and
the trace: the same run reproduces the same recalibration schedule and the
same outputs (``tests/test_serve_lifecycle.py``).

On lazy large fleets (:mod:`repro.serve.shard`), installing the lifecycle
realizes each chip's (tiny) variation object to wrap it in drift state,
but the heavy artifacts — per-layer patterns and programmed mappings —
are only materialized by probes, on demand, through the engine's
capacity-bounded mapping cache; ``ServeConfig.max_resident_chips`` keeps
probing a thousand-chip fleet within a fixed resident budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.pim.devices import device_by_name
from repro.pim.drift import AgingDrift, DriftingChip, DriftProcess, TemperatureDrift
from repro.serve.engine import FleetChip, InferenceEngine
from repro.serve.health import SERVING_STATES

DRIFT_KINDS = ("aging", "temperature")


@dataclass(frozen=True)
class LifecycleConfig:
    """Drift-process shape, probe cadence, and the recalibration trigger.

    ``dt`` is the virtual time that passes per engine tick.  ``accuracy_floor``
    is *relative*: a chip recalibrates when its probed quality falls below
    ``accuracy_floor`` times its own time-zero quality, so the trigger works
    for strong and weak models alike (an absolute floor would either never
    fire on an untrained model or always fire on a noisy chip).
    ``probe_subset`` bounds how many probe-set samples each quality probe
    consumes (probing is a full forward pass per chip, the lifecycle's one
    expensive operation).  With ``scale_by_technology`` (default) each
    chip's drift process is scaled by its device technology's severity
    (:attr:`repro.pim.devices.DeviceModel.drift_scale`), so a mixed fleet
    ages heterogeneously — the regime the drift-aware schedulers exist for.

    ``predict_quality`` turns on model-predictive quality estimation:
    between probes, each chip's ``quality`` estimate is decayed as
    ``probed * exp(-predict_beta * |eps_now - eps_at_probe|)``.  Log-time
    conductance decay is predictable from device characterization (the
    premise of practical PCM drift compensation), so an operator *can*
    extrapolate how much a probe has gone stale — without this, a probe
    taken right after recalibration reads near-perfect and a
    quality-weighted scheduler keeps trusting a chip that is already
    drifting away, which is how it loses to round-robin.  The raw probed
    values (not the extrapolation) are what telemetry records.
    """

    drift: str = "aging"
    nu: float = 0.08
    t0: float = 1.0
    theta: float = 0.5
    sigma: float = 0.05
    dt: float = 1.0
    probe_every: float = 8.0
    probe_subset: int = 64
    probe_k: int = 1
    accuracy_floor: float = 0.85
    recalibrate: bool = True
    scale_by_technology: bool = True  # per-chip DeviceModel.drift_scale
    predict_quality: bool = True
    predict_beta: float = 6.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.drift not in DRIFT_KINDS:
            raise ValueError(f"drift must be one of {DRIFT_KINDS}, got {self.drift!r}")
        if self.dt <= 0.0 or self.probe_every <= 0.0:
            raise ValueError("dt and probe_every must be positive")
        if not 0.0 < self.accuracy_floor <= 1.0:
            raise ValueError("accuracy_floor must be in (0, 1]")
        if self.probe_subset < 1:
            raise ValueError("probe_subset must be >= 1")

    def make_process(self, scale: float = 1.0) -> DriftProcess:
        """A fresh drift process instance (one per chip per program cycle)."""
        if self.drift == "aging":
            return AgingDrift(nu=scale * self.nu, t0=self.t0)
        return TemperatureDrift(theta=self.theta, sigma=scale * self.sigma)


@dataclass(frozen=True)
class RecalibrationEvent:
    """One recalibration: when, which chip, and the quality swing."""

    time: float
    chip_id: str
    quality_before: float
    quality_after: float
    invalidated: int


@dataclass
class ChipLifecycle:
    """Drives a fleet's drift clock, quality probes, and recalibrations.

    Attach to an engine *before* traffic::

        lifecycle = ChipLifecycle(engine, probe_set, LifecycleConfig(nu=0.1))
        lifecycle.install()
        engine.run_trace(workload, trace, ids=ids, lifecycle=lifecycle)

    ``install`` wraps every fleet chip in a drifting variation and records
    the time-zero quality baseline; :meth:`advance` (called once per tick
    by ``run_trace``, or manually) moves physics forward.
    """

    engine: InferenceEngine
    probe_set: object
    config: LifecycleConfig = field(default_factory=LifecycleConfig)

    def __post_init__(self) -> None:
        self.time = 0.0
        self.events: list[RecalibrationEvent] = []
        self._bases: dict[int, object] = {}
        self._baseline: dict[str, float] = {}
        self._anchor: dict[str, tuple[float, float]] = {}
        self._next_probe = float(self.config.probe_every)
        self._probe_data = (
            self.probe_set.subset(self.config.probe_subset)
            if hasattr(self.probe_set, "subset")
            else self.probe_set
        )
        self._installed = False

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def install(self) -> dict[str, float]:
        """Wrap the fleet in drifting chips; returns the t=0 quality baseline."""
        if self._installed:
            raise RuntimeError("lifecycle already installed on this engine")
        for chip in self.engine.fleet:
            self._bases[chip.index] = chip.variation
            chip.variation = DriftingChip(
                chip.variation,
                self.config.make_process(self.drift_scale(chip)),
                seed=self._drift_seed(chip, cycle=0),
            )
            chip.age = 0.0
            chip.mapping_stale = True
        self._installed = True
        # Spare provisioning swaps fresh silicon into the fleet mid-run;
        # adopt it into the drift clock so replacements age like everyone.
        self.engine.on_chip_replaced.append(self._adopt_replacement)
        for chip in self.engine.fleet:
            quality = self._probe(chip)
            self._baseline[chip.chip_id] = quality
        return dict(self._baseline)

    def _adopt_replacement(self, old_chip: FleetChip, new_chip: FleetChip) -> None:
        """Wrap a provisioned replacement in its own fresh drift clock.

        The new chip gets its own base variation, a drift stream disjoint
        from every fabrication-time chip's (generation-offset cycle), and
        a quality baseline established at its *first* probe — the old
        chip's t=0 baseline describes silicon that no longer exists.
        """
        if not self._installed:
            return
        self._bases[new_chip.index] = new_chip.variation
        tail = new_chip.chip_id.rpartition("+")[2]
        generation = int(tail) if tail.isdigit() else 1
        new_chip.variation = DriftingChip(
            new_chip.variation,
            self.config.make_process(self.drift_scale(new_chip)),
            seed=self._drift_seed(new_chip, cycle=500_000 + generation),
        )
        new_chip.age = 0.0
        new_chip.mapping_stale = True
        self._anchor.pop(old_chip.chip_id, None)

    def drift_scale(self, chip: FleetChip) -> float:
        """Technology severity multiplier for one chip's drift process.

        Read from :attr:`repro.pim.devices.DeviceModel.drift_scale`, so the
        physics lives with the device definition; chips without a registered
        technology (homogeneous fleets sampled straight from a
        ``VariabilitySpec``) drift at full severity.
        """
        if not self.config.scale_by_technology:
            return 1.0
        try:
            return device_by_name(chip.technology).drift_scale
        except KeyError:
            return 1.0

    def _drift_seed(self, chip: FleetChip, cycle: int) -> int:
        # One deterministic stream per (lifecycle, chip, program cycle):
        # recalibrating chip 2 must never replay chip 3's drift path.
        return (int(self.config.seed) * 1_000_003 + chip.index) * 97 + cycle

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def advance(self, dt: float | None = None) -> list[RecalibrationEvent]:
        """Advance the virtual drift clock; returns recalibrations triggered."""
        if not self._installed:
            raise RuntimeError("call install() before advancing the lifecycle")
        step = self.config.dt if dt is None else float(dt)
        if step < 0.0:
            raise ValueError("dt must be >= 0")
        self.time += step
        for chip in self.engine.fleet:
            variation = chip.variation
            variation.advance_to(variation.time + step)
            chip.age += step
            # Physical drift changed the chip in place; the engine refreshes
            # the resident mapping lazily at the chip's next dispatch/probe
            # (no cache traffic — drift does not reprogram anything).
            chip.mapping_stale = True
        triggered: list[RecalibrationEvent] = []
        while self.time >= self._next_probe - 1e-9:
            triggered.extend(self._probe_and_recalibrate())
            self._next_probe += self.config.probe_every
        self._update_quality_estimates()
        return triggered

    # ------------------------------------------------------------------
    # Quality monitor + recalibration
    # ------------------------------------------------------------------
    def _probe(self, chip: FleetChip) -> float:
        with self.engine.obs.span(
            "lifecycle.probe", chip=chip.chip_id, time=self.time
        ) as span:
            quality = self.engine.probe_chip(
                chip, self._probe_data, k=self.config.probe_k
            )
            span.set(quality=quality)
        self.engine.telemetry.record_quality(chip.chip_id, self.time, quality)
        self._anchor[chip.chip_id] = (float(chip.variation.eps_between), quality)
        # Replacements get their baseline at first probe (install() already
        # set it for fabrication-time chips; setdefault is a no-op there).
        self._baseline.setdefault(chip.chip_id, quality)
        self.engine.health.on_probe(chip, quality, tick=self.engine.now)
        return quality

    def _update_quality_estimates(self) -> None:
        """Extrapolate each chip's quality from its last probe anchor.

        Between probes the recorded quality would otherwise stay frozen at
        the probe value while the chip keeps drifting; decaying it by the
        *known* eps excursion since the probe keeps quality-weighted
        dispatch honest about fast-drifting chips.
        """
        if not self.config.predict_quality:
            return
        for chip in self.engine.fleet:
            anchor = self._anchor.get(chip.chip_id)
            if anchor is None:
                continue
            eps_probe, probed = anchor
            excursion = abs(float(chip.variation.eps_between) - eps_probe)
            chip.quality = probed * math.exp(-self.config.predict_beta * excursion)

    def floor_for(self, chip: FleetChip) -> float:
        """The absolute quality below which this chip recalibrates."""
        baseline = self._baseline.get(chip.chip_id, 1.0)
        return self.config.accuracy_floor * baseline

    def _probe_and_recalibrate(self) -> list[RecalibrationEvent]:
        events = []
        for chip in self.engine.fleet:
            # Retired silicon is dead (or already swapped out): probing it
            # wastes forwards and recalibration cannot resurrect stuck
            # cells.  Quarantined chips still get probed — the probe is
            # the diagnosis that feeds the health monitor's probation —
            # but only serving chips are worth the recalibration rewrite.
            if chip.health in ("retired", "replaced"):
                continue
            quality = self._probe(chip)
            if (
                chip.health in SERVING_STATES
                and self.config.recalibrate
                and quality < self.floor_for(chip)
            ):
                events.append(self.recalibrate(chip, quality_before=quality))
        return events

    def recalibrate(
        self, chip: FleetChip, quality_before: float | None = None
    ) -> RecalibrationEvent:
        """Rewrite the chip's cells and re-tune: the drift-recovery path.

        Physically: program-and-verify restores every cell to its
        fabrication-time target (the frozen within-chip pattern is the
        physical chip, so it comes back bit-identical), the drift clock
        restarts, and stale GTM/LTM measurements are discarded.  In the
        serving layer: :meth:`~repro.serve.engine.InferenceEngine.reprogram`
        drops the chip's cache entry — and only that entry — and rewrites
        the chip through its owning backend, whichever fidelity that is.
        """
        if quality_before is None:
            quality_before = chip.quality if chip.quality is not None else float("nan")
        chip.recalibrations += 1
        chip.variation = DriftingChip(
            self._bases[chip.index],
            self.config.make_process(self.drift_scale(chip)),
            seed=self._drift_seed(chip, cycle=chip.recalibrations),
        )
        chip.age = 0.0
        with self.engine.obs.span(
            "lifecycle.recalibrate", chip=chip.chip_id, time=self.time
        ) as span:
            invalidated = self.engine.reprogram(chip)
            span.set(invalidated=invalidated)
        quality_after = self._probe(chip)
        self.engine.telemetry.record_recalibration(chip.chip_id, self.time)
        event = RecalibrationEvent(
            time=self.time,
            chip_id=chip.chip_id,
            quality_before=float(quality_before),
            quality_after=float(quality_after),
            invalidated=invalidated,
        )
        self.events.append(event)
        return event

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def baseline(self) -> dict[str, float]:
        """Per-chip t=0 probed quality (the recalibration reference)."""
        return dict(self._baseline)

    def recalibration_schedule(self) -> list[tuple[float, str]]:
        """``(time, chip_id)`` for every recalibration, in event order."""
        return [(event.time, event.chip_id) for event in self.events]

    def __repr__(self) -> str:
        return (
            f"ChipLifecycle(t={self.time:.1f}, drift={self.config.drift}, "
            f"events={len(self.events)})"
        )
