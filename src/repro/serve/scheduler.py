"""Fleet scheduling policies: which chip serves the next batch.

Every policy is deterministic — given the same batch sequence and the same
fleet it makes the same choices — which keeps end-to-end serving
reproducible from a single seed.  Policies see lightweight
:class:`~repro.serve.engine.FleetChip` handles (counters + calibration
quality), never the programmed mappings themselves — and never the
chip's ``variation`` either, so choosing a chip on a lazy thousand-chip
fleet (see :mod:`repro.serve.shard`) does not force realization; a
policy that needs new per-chip state must read it from bookkeeping the
engine maintains on the handle.

* ``round-robin`` — cycle through the pool regardless of state;
* ``least-loaded`` — send the batch to the chip that has served the
  fewest samples so far (balances heterogeneous batch sizes);
* ``accuracy-weighted`` — weighted fair queueing on each chip's measured
  calibration quality (see ``InferenceEngine.probe_fleet``), so better
  chips serve proportionally more traffic without starving the rest;
* ``drift-aware`` — greedy accuracy-first dispatch on each chip's
  *current* quality estimate with an age discount (see
  :mod:`repro.serve.lifecycle`): near-equal chips are balanced
  least-loaded, measurably degraded chips get no traffic until they
  recover — the fairness-free behaviour a drifting fleet needs;
* ``energy-aware`` — among the chips whose quality estimate ties the best
  (same contention rule as ``drift-aware``), dispatch to the one with the
  least energy spent so far.  Energy is the per-batch
  :meth:`repro.backends.ProgrammedChip.cost` estimate the engine
  accumulates on each chip handle.  Today's engines program every chip
  through one backend (one cost estimator), so per-batch costs are
  uniform and the tie-break reduces to least-loaded among the quality
  contenders; the ordering becomes load-bearing once fleets mix design
  points with distinct per-batch costs (per-group backends, per-device
  energy models) — the seed of the ROADMAP's energy-aware-scheduling
  follow-up;
* ``latency-aware`` — deadline-racing dispatch: a batch with thin
  deadline headroom (:meth:`repro.serve.batcher.Batch.headroom`) goes to
  the chip least likely to cost a retry park (fewest observed fault
  events), everything else dispatches quality-first like ``drift-aware``
  — the policy the SLO-bearing gateway path (:mod:`repro.serve.api`) is
  meant to run under.

Policies never see unhealthy hardware: the engine filters the fleet
through :func:`dispatchable` first, so quarantined/retired/replaced chips
(see :mod:`repro.serve.health`) are routed around without any policy
needing to know the state machine exists.
"""

from __future__ import annotations

from repro.serve.health import SERVING_STATES


def dispatchable(chips):
    """The subset of ``chips`` the scheduler may route traffic to.

    Health-aware routing: only chips in a serving state
    (:const:`repro.serve.health.SERVING_STATES` — ``healthy`` or
    ``degraded``) are candidates; quarantined, retired, and replaced chips
    receive no traffic.  Chips without a ``health`` attribute (bare
    handles in tests) count as healthy, so every policy keeps working on
    pre-health fleets.  The engine applies this filter *before*
    ``policy.choose``, so policies stay health-agnostic.
    """
    return [
        chip for chip in chips if getattr(chip, "health", "healthy") in SERVING_STATES
    ]


class SchedulingPolicy:
    """Interface: pick one chip from the pool for a released batch."""

    name = "base"

    def choose(self, batch, chips):
        """Return the chip that should serve ``batch``."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget any internal dispatch state (new serving session)."""

    def describe(self) -> dict:
        """JSON-friendly policy identity + configuration.

        Used by observability (``schedule`` span attributes, the
        ``BENCH_*.json`` scale block) so a recorded run names the exact
        dispatch configuration it measured.  Public scalar attributes are
        included generically; private dispatch state (``_cursor`` etc.)
        is not — it is run state, not configuration.
        """
        config = {
            key: value
            for key, value in vars(self).items()
            if not key.startswith("_") and isinstance(value, (int, float, str, bool))
        }
        return {"policy": self.name, **config}


class RoundRobinPolicy(SchedulingPolicy):
    """Cycle through the pool in chip-index order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, batch, chips):
        chip = chips[self._cursor % len(chips)]
        self._cursor += 1
        return chip

    def reset(self) -> None:
        self._cursor = 0


class LeastLoadedPolicy(SchedulingPolicy):
    """Pick the chip with the fewest served samples (ties: lowest index)."""

    name = "least-loaded"

    def choose(self, batch, chips):
        return min(chips, key=lambda chip: (chip.served_samples, chip.index))


class AccuracyWeightedPolicy(SchedulingPolicy):
    """Serve traffic proportionally to per-chip calibration quality.

    Deterministic weighted fair queueing: choose the chip maximizing
    ``quality / (served_samples + 1)``, i.e. the chip furthest behind its
    quality-proportional share.  Chips without a measured quality fall back
    to weight 1.0 (uniform); a fleet that was never probed therefore
    degrades to least-loaded behavior rather than failing.
    """

    name = "accuracy-weighted"

    def __init__(self, floor: float = 1e-3) -> None:
        # A floor keeps pathologically bad chips schedulable (weight > 0),
        # mirroring the engine's promise that no request is ever dropped.
        self.floor = float(floor)

    def _weight(self, chip) -> float:
        quality = chip.quality if chip.quality is not None else 1.0
        return max(float(quality), self.floor)

    def choose(self, batch, chips):
        return max(
            chips,
            key=lambda chip: (self._weight(chip) / (chip.served_samples + 1), -chip.index),
        )


class DriftAwarePolicy(SchedulingPolicy):
    """Greedy accuracy-first dispatch for drifting fleets.

    Accuracy-weighted fair queueing is the right call on a *static* fleet:
    quality is constant, so deferring a weak chip's share and paying it
    back later costs nothing.  Under drift that catch-up is poison — the
    debt owed to a down-weighted chip comes due exactly when the chip has
    degraded furthest.  This policy therefore holds no traffic debt at
    all: every batch goes to the chip with the best *current* quality
    estimate (as maintained by
    :class:`~repro.serve.lifecycle.ChipLifecycle`'s probes and
    model-predictive extrapolation), discounted by
    ``1 + age_discount * age`` so a chip long past its last recalibration
    is trusted less.  Chips within ``tie_margin`` of the best are treated
    as equals and balanced least-loaded-first, which keeps a healthy
    homogeneous fleet load-balanced; a chip that stays measurably worse
    receives no traffic until it recovers — deliberate: under drift,
    starving a degraded chip *is* the accuracy-preserving behaviour.
    """

    name = "drift-aware"

    def __init__(
        self,
        floor: float = 1e-3,
        age_discount: float = 0.1,
        tie_margin: float = 0.01,
    ) -> None:
        if age_discount < 0.0:
            raise ValueError("age_discount must be >= 0")
        if tie_margin < 0.0:
            raise ValueError("tie_margin must be >= 0")
        self.floor = float(floor)
        self.age_discount = float(age_discount)
        self.tie_margin = float(tie_margin)

    def _weight(self, chip) -> float:
        quality = chip.quality if chip.quality is not None else 1.0
        age = max(0.0, float(getattr(chip, "age", 0.0)))
        return max(float(quality) / (1.0 + self.age_discount * age), self.floor)

    def choose(self, batch, chips):
        best = max(self._weight(chip) for chip in chips)
        contenders = [
            chip for chip in chips if self._weight(chip) >= best - self.tie_margin
        ]
        return min(contenders, key=lambda chip: (chip.served_samples, chip.index))


class EnergyAwarePolicy(SchedulingPolicy):
    """Cheapest-adequate dispatch: best quality first, then least energy.

    Quality still gates dispatch exactly like :class:`DriftAwarePolicy`'s
    contender rule (chips within ``tie_margin`` of the best estimate are
    interchangeable), but ties break on *cumulative dispatched energy*
    rather than served samples.  When every chip costs the same per batch
    — which is the case on today's single-backend engines, where one
    estimator prices the whole fleet — energy is proportional to served
    samples and the ordering coincides with least-loaded; the policy pays
    off once per-chip costs diverge (fleets mixing array sizes or ADC
    resolutions via per-group backends, per-device energy models), where
    traffic drains toward chips that answer at the lowest physical cost
    without surrendering accuracy.  Chips served by a cost-less backend
    accumulate zero energy and likewise degrade to least-loaded.
    """

    name = "energy-aware"

    def __init__(self, floor: float = 1e-3, tie_margin: float = 0.01) -> None:
        if tie_margin < 0.0:
            raise ValueError("tie_margin must be >= 0")
        self.floor = float(floor)
        self.tie_margin = float(tie_margin)

    def _weight(self, chip) -> float:
        quality = chip.quality if chip.quality is not None else 1.0
        return max(float(quality), self.floor)

    def choose(self, batch, chips):
        best = max(self._weight(chip) for chip in chips)
        contenders = [
            chip for chip in chips if self._weight(chip) >= best - self.tie_margin
        ]
        return min(
            contenders,
            key=lambda chip: (
                float(getattr(chip, "energy_uj", 0.0)),
                chip.served_samples,
                chip.index,
            ),
        )


class LatencyAwarePolicy(SchedulingPolicy):
    """Race deadline misses against accuracy: urgency flips the dispatch rule.

    A deadline in this stack is lost to *queueing*, not to raw forward
    speed — and the queueing a policy can still influence at dispatch time
    is the retry path: a chip that throws a transient fault costs the whole
    batch a backoff park of several ticks, which is exactly what a batch
    with thin deadline headroom cannot afford.  So the policy reads
    :meth:`repro.serve.batcher.Batch.headroom`:

    * **urgent** (headroom ``<= urgent_ticks``) — dispatch to the chip
      least likely to burn the remaining headroom: fewest observed fault
      events (transients, latency spikes — the engine counts them on the
      chip handle), ties broken least-loaded.  Accuracy is deliberately
      not consulted: a slightly-worse answer inside the deadline beats a
      better answer after it.
    * **relaxed** (ample or no headroom constraint) — quality-first with
      the same contender rule as ``drift-aware``: chips within
      ``tie_margin`` of the best quality estimate are interchangeable and
      balanced least-loaded.

    Both arms read only deterministic counters (fault events, served
    samples, probed quality), never wall-clock service times, so a
    deadline-bearing run stays bit-reproducible under replay.
    """

    name = "latency-aware"

    def __init__(
        self,
        urgent_ticks: int = 2,
        floor: float = 1e-3,
        tie_margin: float = 0.01,
    ) -> None:
        if urgent_ticks < 0:
            raise ValueError("urgent_ticks must be >= 0")
        if tie_margin < 0.0:
            raise ValueError("tie_margin must be >= 0")
        self.urgent_ticks = int(urgent_ticks)
        self.floor = float(floor)
        self.tie_margin = float(tie_margin)

    def _weight(self, chip) -> float:
        quality = chip.quality if chip.quality is not None else 1.0
        return max(float(quality), self.floor)

    def choose(self, batch, chips):
        headroom = batch.headroom() if hasattr(batch, "headroom") else None
        if headroom is not None and headroom <= self.urgent_ticks:
            return min(
                chips,
                key=lambda chip: (
                    getattr(chip, "fault_events", 0),
                    chip.served_samples,
                    chip.index,
                ),
            )
        best = max(self._weight(chip) for chip in chips)
        contenders = [
            chip for chip in chips if self._weight(chip) >= best - self.tie_margin
        ]
        return min(contenders, key=lambda chip: (chip.served_samples, chip.index))


POLICIES = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
    AccuracyWeightedPolicy.name: AccuracyWeightedPolicy,
    DriftAwarePolicy.name: DriftAwarePolicy,
    EnergyAwarePolicy.name: EnergyAwarePolicy,
    LatencyAwarePolicy.name: LatencyAwarePolicy,
}


def make_policy(name: str) -> SchedulingPolicy:
    """Instantiate a policy by registry name."""
    if name not in POLICIES:
        raise KeyError(f"unknown policy {name!r}; available: {sorted(POLICIES)}")
    return POLICIES[name]()
