"""Fleet scheduling policies: which chip serves the next batch.

Every policy is deterministic — given the same batch sequence and the same
fleet it makes the same choices — which keeps end-to-end serving
reproducible from a single seed.  Policies see lightweight
:class:`~repro.serve.engine.FleetChip` handles (counters + calibration
quality), never the programmed mappings themselves.

* ``round-robin`` — cycle through the pool regardless of state;
* ``least-loaded`` — send the batch to the chip that has served the
  fewest samples so far (balances heterogeneous batch sizes);
* ``accuracy-weighted`` — weighted fair queueing on each chip's measured
  calibration quality (see ``InferenceEngine.probe_fleet``), so better
  chips serve proportionally more traffic without starving the rest.
"""

from __future__ import annotations


class SchedulingPolicy:
    """Interface: pick one chip from the pool for a released batch."""

    name = "base"

    def choose(self, batch, chips):
        """Return the chip that should serve ``batch``."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget any internal dispatch state (new serving session)."""


class RoundRobinPolicy(SchedulingPolicy):
    """Cycle through the pool in chip-index order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, batch, chips):
        chip = chips[self._cursor % len(chips)]
        self._cursor += 1
        return chip

    def reset(self) -> None:
        self._cursor = 0


class LeastLoadedPolicy(SchedulingPolicy):
    """Pick the chip with the fewest served samples (ties: lowest index)."""

    name = "least-loaded"

    def choose(self, batch, chips):
        return min(chips, key=lambda chip: (chip.served_samples, chip.index))


class AccuracyWeightedPolicy(SchedulingPolicy):
    """Serve traffic proportionally to per-chip calibration quality.

    Deterministic weighted fair queueing: choose the chip maximizing
    ``quality / (served_samples + 1)``, i.e. the chip furthest behind its
    quality-proportional share.  Chips without a measured quality fall back
    to weight 1.0 (uniform); a fleet that was never probed therefore
    degrades to least-loaded behavior rather than failing.
    """

    name = "accuracy-weighted"

    def __init__(self, floor: float = 1e-3) -> None:
        # A floor keeps pathologically bad chips schedulable (weight > 0),
        # mirroring the engine's promise that no request is ever dropped.
        self.floor = float(floor)

    def _weight(self, chip) -> float:
        quality = chip.quality if chip.quality is not None else 1.0
        return max(float(quality), self.floor)

    def choose(self, batch, chips):
        return max(
            chips,
            key=lambda chip: (self._weight(chip) / (chip.served_samples + 1), -chip.index),
        )


POLICIES = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
    AccuracyWeightedPolicy.name: AccuracyWeightedPolicy,
}


def make_policy(name: str) -> SchedulingPolicy:
    """Instantiate a policy by registry name."""
    if name not in POLICIES:
        raise KeyError(f"unknown policy {name!r}; available: {sorted(POLICIES)}")
    return POLICIES[name]()
