"""Async request gateway: the client-facing front end of the serving stack.

Everything below this module is tick-driven and trace-fed — the
:class:`~repro.serve.engine.InferenceEngine` consumes pre-built
:class:`~repro.serve.trace.ArrivalTrace` schedules, which is perfect for
reproducible experiments and useless for a client that just has a request
in hand.  The :class:`Gateway` closes that gap with the
api-layer-over-workflow-core shape: an asyncio surface
(``await gateway.submit(sample, deadline=...)``) over the unchanged
deterministic core.

What the gateway adds on top of the engine:

* **continuous batching** — it runs the engine with
  ``ServeConfig.continuous`` on, so a submission that fills a batch
  dispatches *inside* the submit call instead of waiting for the next
  tick barrier, and late arrivals keep joining the still-partial tail
  batch;
* **deadlines / SLOs** — ``submit(..., deadline=n)`` gives the request a
  budget of ``n`` ticks (default: ``GatewayConfig.default_slo``); the
  engine races it through batching, scheduling (the ``latency-aware``
  policy), retry parking, and SLO telemetry;
* **admission control & backpressure** — a bounded queue: once the
  engine's :attr:`~repro.serve.engine.InferenceEngine.queue_depth`
  reaches ``GatewayConfig.max_queue``, new submissions are rejected with
  :class:`Overloaded` instead of growing the queue without bound;
* **replayability** — every *accepted* request's arrival tick and
  deadline are recorded, and :meth:`Gateway.compiled_trace` freezes them
  into a :class:`~repro.serve.trace.ReplayTrace`, so an async session can
  be re-run offline through ``engine.run_trace`` bit-for-bit — the bridge
  that keeps the chaos and parity suites honest against the async path.

Determinism: the gateway adds no randomness and reads no wall clock for
control decisions.  Ticks advance only through :meth:`Gateway.pump` (or
the background serve loop, which just calls ``pump``), rejection depends
only on queue depth, and queue depth is a pure function of the submission
sequence — so the same submission sequence accepts, rejects, and serves
identically on every run.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

import numpy as np

from repro.serve.engine import InferenceEngine, ServedRequest
from repro.serve.faults import DeadLetter
from repro.serve.trace import ReplayTrace


class Overloaded(RuntimeError):
    """Raised by :meth:`Gateway.submit` when admission control rejects.

    The fleet's queue (pending batches plus retry-parked requests) is at
    ``GatewayConfig.max_queue``; the client should back off and retry —
    the request was *not* enqueued.  ``queue_depth`` carries the depth
    observed at rejection time.
    """

    def __init__(self, queue_depth: int, max_queue: int) -> None:
        super().__init__(
            f"gateway overloaded: queue depth {queue_depth} >= bound {max_queue}"
        )
        self.queue_depth = queue_depth
        self.max_queue = max_queue


class RequestFailed(RuntimeError):
    """Raised by :meth:`Gateway.submit` when the fleet gave up on a request.

    Wraps the engine's terminal :class:`~repro.serve.faults.DeadLetter`
    record (``letter``): retry budget exhausted, timeout, or a lapsed
    deadline.  The awaitable never hangs — every accepted request either
    resolves to a :class:`~repro.serve.engine.ServedRequest` or raises.
    """

    def __init__(self, letter: DeadLetter) -> None:
        super().__init__(
            f"request {letter.id} dead-lettered: {letter.reason} ({letter.cause})"
        )
        self.letter = letter


@dataclass(frozen=True)
class GatewayConfig:
    """Gateway knobs: admission bound, default SLO, serve-loop pacing.

    ``max_queue`` bounds the engine's queue depth (pending + retry-parked
    requests) at admission time — the backpressure limit behind
    :class:`Overloaded`.  ``default_slo`` is the per-request deadline
    budget in ticks applied when ``submit`` is not given one (``None`` =
    best effort).  ``tick_seconds`` paces the background serve loop
    (:meth:`Gateway.start`): how long the loop sleeps between engine
    ticks; ``0.0`` just yields to the event loop, which is what tests and
    the quickstart want.
    """

    max_queue: int = 256
    default_slo: int | None = None
    tick_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.default_slo is not None and self.default_slo < 1:
            raise ValueError(f"default_slo must be >= 1 or None, got {self.default_slo}")
        if self.tick_seconds < 0.0:
            raise ValueError("tick_seconds must be >= 0")


class Gateway:
    """Asyncio request/response front end over an :class:`InferenceEngine`.

    Typical use — the README quickstart::

        async with Gateway(engine) as gateway:
            served = await gateway.submit(sample, deadline=12)
        print(served.chip_id, served.output.argmax())

    ``async with`` starts a background serve loop that advances the engine
    one tick per event-loop turn, so awaited submissions resolve without
    any manual stepping.  Deterministic tests drive the clock by hand
    instead: submit via ``asyncio.create_task``, yield once so the
    coroutine reaches admission, then call :meth:`pump`/:meth:`drain`.

    The engine should be configured with ``ServeConfig(continuous=True)``
    so full batches dispatch at submit time (the constructor does not
    mutate the engine; a tick-barrier engine still works, it just batches
    on :meth:`pump` boundaries only).
    """

    def __init__(
        self, engine: InferenceEngine, config: GatewayConfig = GatewayConfig()
    ) -> None:
        self.engine = engine
        self.config = config
        #: Engine tick the gateway session started at; recorded arrivals
        #: and deadlines are relative to it, so the compiled trace replays
        #: on a fresh engine starting at tick 0.
        self.t0 = engine.now
        self._futures: dict[str, asyncio.Future] = {}
        self._arrivals: list[tuple[int, int | None]] = []
        self._accepted_ids: list[str] = []
        self._serve_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    async def submit(
        self,
        payload: np.ndarray,
        request_id: str | None = None,
        deadline: int | None = None,
    ) -> ServedRequest:
        """Submit one sample and await its result.

        ``deadline`` is the request's SLO budget in ticks from now
        (``None`` falls back to ``GatewayConfig.default_slo``; both
        ``None`` = best effort).  Returns the
        :class:`~repro.serve.engine.ServedRequest` once the fleet serves
        it.  Raises :class:`Overloaded` when admission control rejects
        (the request is not enqueued) and :class:`RequestFailed` when the
        engine dead-letters it (retries exhausted, timeout, deadline
        lapsed while queued or parked).
        """
        engine = self.engine
        budget = deadline if deadline is not None else self.config.default_slo
        if budget is not None and budget < 1:
            raise ValueError(f"deadline budget must be >= 1 tick, got {budget}")
        with engine.obs.span(
            "admit", tick=engine.now, queue_depth=engine.queue_depth
        ) as span:
            depth = engine.queue_depth
            if depth >= self.config.max_queue:
                span.set(rejected=True)
                engine.telemetry.record_rejection()
                raise Overloaded(depth, self.config.max_queue)
            absolute = None if budget is None else engine.now + budget
            request = engine.submit(payload, request_id, deadline=absolute)
            span.set(request=request.id, deadline=absolute)
        self._arrivals.append(
            (
                engine.now - self.t0,
                None if absolute is None else absolute - self.t0,
            )
        )
        self._accepted_ids.append(request.id)
        future = asyncio.get_running_loop().create_future()
        self._futures[request.id] = future
        # Continuous batching may have served (or dead-lettered) the
        # request inside engine.submit — settle before the first await.
        self._settle()
        return await future

    def pump(self, ticks: int = 1) -> None:
        """Advance the engine ``ticks`` ticks and settle finished futures.

        The manual clock for deterministic tests and custom drive loops;
        the background serve loop is nothing but ``pump(1)`` per event-loop
        turn.
        """
        self.engine.step(ticks)
        self._settle()

    async def drain(self) -> None:
        """Pump until every accepted request has resolved or failed.

        Terminates for the same reason ``engine.drain`` does: every parked
        request has a bounded retry budget, so the backlog always empties.
        """
        await asyncio.sleep(0)  # let freshly created submit tasks reach admission
        while self._futures or self.engine.queue_depth:
            self.pump()
            await asyncio.sleep(0)

    # ------------------------------------------------------------------
    # Background serve loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the background serve loop (one ``pump`` per iteration)."""
        if self._serve_task is None or self._serve_task.done():
            self._serve_task = asyncio.get_running_loop().create_task(
                self._serve_loop()
            )

    async def close(self) -> None:
        """Stop the background serve loop and fail any unresolved futures."""
        if self._serve_task is not None:
            self._serve_task.cancel()
            try:
                await self._serve_task
            except asyncio.CancelledError:
                pass
            self._serve_task = None

    async def _serve_loop(self) -> None:
        while True:
            self.pump()
            await asyncio.sleep(self.config.tick_seconds)

    async def __aenter__(self) -> "Gateway":
        self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Settlement and replay
    # ------------------------------------------------------------------
    def _settle(self) -> None:
        """Resolve futures for requests the engine has finished with."""
        completed = self.engine._completed
        letters = self.engine._dead_letters
        for request_id in list(self._futures):
            future = self._futures[request_id]
            if future.done():
                del self._futures[request_id]
                continue
            if request_id in completed:
                future.set_result(completed[request_id])
                del self._futures[request_id]
            elif request_id in letters:
                future.set_exception(RequestFailed(letters[request_id]))
                del self._futures[request_id]

    @property
    def accepted(self) -> int:
        """How many submissions passed admission control so far."""
        return len(self._accepted_ids)

    @property
    def accepted_ids(self) -> list[str]:
        """Accepted request ids in admission order (the replay order)."""
        return list(self._accepted_ids)

    def compiled_trace(self) -> ReplayTrace:
        """Freeze the accepted session into a replayable arrival trace.

        Returns a :class:`~repro.serve.trace.ReplayTrace` carrying every
        accepted request's arrival tick and deadline (relative to the
        session start), in admission order.  Feeding it — with the same
        payloads, ids (:attr:`accepted_ids`), and engine configuration —
        to ``engine.run_trace`` reproduces the live async run bit-for-bit,
        which is how an interactive session becomes a deterministic
        offline experiment.
        """
        return ReplayTrace(
            ticks=tuple(tick for tick, _ in self._arrivals),
            deadlines=(
                None
                if all(deadline is None for _, deadline in self._arrivals)
                else tuple(deadline for _, deadline in self._arrivals)
            ),
        )

    def __repr__(self) -> str:
        return (
            f"Gateway(accepted={self.accepted}, pending={len(self._futures)}, "
            f"max_queue={self.config.max_queue}, tick={self.engine.now})"
        )
