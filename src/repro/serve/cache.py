"""LRU cache for programmed crossbar mappings.

Programming a chip is the expensive part of serving: the trained model is
replicated, the chip's sampled variation is installed on every quantized
layer, and (optionally) self-tuning modules are attached — the software
analogue of writing conductances into every crossbar tile.  A naive server
would redo that work per request; the cache does it once per
``(model, qconfig, chip)`` and keeps the hottest mappings resident.

The capacity bound models the realistic constraint that only a subset of a
large fleet's mappings fits in the serving host's memory: requesting an
evicted chip's mapping transparently reprograms it (a miss), which the
stats surface so operators can size the cache against the fleet.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Hashable


def mapping_key(
    model_key: str,
    qconfig_notation: str,
    chip_id: str,
    backend: str = "fake-quant",
) -> tuple:
    """Canonical cache key for one programmed mapping.

    The programming backend is part of the identity: a fake-quant replica
    and a circuit-level ``PimChip`` programmed for the *same* chip are
    different artifacts, and a mixed-backend engine must never serve one
    where the other was requested.  ``chip_id`` stays the last element —
    lifecycle invalidation selects on ``key[-1]`` across all backends.
    """
    return (str(model_key), str(qconfig_notation), str(backend), str(chip_id))


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one :class:`MappingCache`.

    ``evictions`` counts capacity-pressure drops (LRU); ``invalidations``
    counts deliberate drops via :meth:`MappingCache.invalidate` /
    :meth:`MappingCache.invalidate_where` — e.g. recalibration replacing a
    drifted chip's stale mapping.  Telemetry reports both so operators can
    tell "cache too small" from "fleet recalibrating a lot".
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    # Spills: evictions whose owner released spillable chip state through
    # the ``on_evict`` hook (lazy fleets dropping a cold chip's realized
    # variation patterns — see ``ServeConfig.max_resident_chips``).  The
    # hook owner increments this; the cache itself only counts evictions.
    spills: int = 0
    # High-water mark of resident mappings, sampled after every insert's
    # capacity enforcement — on a capacity-bounded cache this never
    # exceeds ``capacity``, which is the resident-chip ceiling large lazy
    # fleets assert against.
    peak_resident: int = 0
    # Misses where the same (model, qconfig, chip) *is* resident but was
    # programmed by a different backend: the collision the backend-aware
    # key exists to prevent.  A high count on a mixed-backend engine means
    # the cache is effectively halved — size it per backend.
    cross_backend_misses: int = 0
    program_seconds: float = 0.0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "cross_backend_misses": self.cross_backend_misses,
            "spills": self.spills,
            "peak_resident": self.peak_resident,
            "hit_rate": self.hit_rate,
            "program_seconds": self.program_seconds,
        }


@dataclass
class MappingCache:
    """Least-recently-used store of programmed chip mappings.

    ``capacity`` bounds the number of resident mappings (``None`` means
    unbounded).  ``get_or_program`` is the only entry point the engine
    needs: it returns the cached mapping or invokes ``program`` to build
    it, evicting the least recently used entry when over capacity.

    ``clock`` is the time source programming cost is measured with
    (injectable — the engine passes its :mod:`repro.obs` clock so tests
    can drive it deterministically); ``on_program`` is the profiling hook:
    called as ``on_program(key, seconds)`` after every miss-triggered
    programming, which is how per-chip program time attributes to spans
    and histograms without the cache knowing about either.

    ``on_evict`` is the symmetric spill hook: called as
    ``on_evict(key, mapping)`` after every capacity-pressure eviction (not
    on deliberate invalidation — an invalidated mapping is stale, an
    evicted one is merely cold), so an owner of spillable per-chip state
    can release it and re-realize deterministically later.
    """

    capacity: int | None = None
    stats: CacheStats = field(default_factory=CacheStats)
    clock: Callable[[], float] = time.perf_counter
    on_program: Callable[[Hashable, float], None] | None = None
    on_evict: Callable[[Hashable, object], None] | None = None

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {self.capacity}")
        self._entries: OrderedDict[Hashable, object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def keys(self) -> list:
        """Resident keys, least recently used first."""
        return list(self._entries)

    def get_or_program(self, key: Hashable, program: Callable[[], object]):
        """Fetch the mapping for ``key``, programming (and caching) on miss."""
        if key in self._entries:
            self.stats.hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]
        self.stats.misses += 1
        if self._is_cross_backend_miss(key):
            self.stats.cross_backend_misses += 1
        started = self.clock()
        mapping = program()
        seconds = self.clock() - started
        self.stats.program_seconds += seconds
        if self.on_program is not None:
            self.on_program(key, seconds)
        self._entries[key] = mapping
        if self.capacity is not None:
            while len(self._entries) > self.capacity:
                evicted_key, evicted = self._entries.popitem(last=False)
                self.stats.evictions += 1
                if self.on_evict is not None:
                    self.on_evict(evicted_key, evicted)
        self.stats.peak_resident = max(self.stats.peak_resident, len(self._entries))
        return mapping

    def _is_cross_backend_miss(self, key: Hashable) -> bool:
        """True when the missing chip is resident under another backend.

        Only :func:`mapping_key`-shaped keys (4-tuples with the backend in
        slot 2) participate; opaque keys never count.
        """
        if not (isinstance(key, tuple) and len(key) == 4):
            return False
        return any(
            isinstance(other, tuple)
            and len(other) == 4
            and other[:2] == key[:2]
            and other[3] == key[3]
            and other[2] != key[2]
            for other in self._entries
        )

    def peek(self, key: Hashable):
        """The resident mapping for ``key`` or ``None`` — no stats, no LRU touch.

        Used by the lifecycle layer to refresh drifted variation *in place*
        on a resident mapping without perturbing hit/miss accounting.
        """
        return self._entries.get(key)

    def invalidate(self, key: Hashable) -> bool:
        """Drop one mapping (e.g. after recalibration); True if it was resident."""
        if self._entries.pop(key, None) is None:
            return False
        self.stats.invalidations += 1
        return True

    def invalidate_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every mapping whose key matches ``predicate``; returns the count.

        This is the recalibration entry point: dropping only
        ``key[-1] == chip_id`` replaces one reprogrammed chip's stale
        mapping while every healthy chip stays resident (no fleet-wide
        flush, no spurious reprogramming cost).
        """
        stale = [key for key in self._entries if predicate(key)]
        for key in stale:
            del self._entries[key]
        self.stats.invalidations += len(stale)
        return len(stale)

    def invalidate_chip(self, chip_id: str) -> int:
        """Drop every mapping programmed for ``chip_id``; returns the count.

        Convenience over :meth:`invalidate_where` for the two surgical
        invalidation call sites — recalibration and spare provisioning —
        selecting on the :func:`mapping_key` convention that the chip id
        is the last key element.  Opaque (non-tuple) keys never match.
        """
        chip_id = str(chip_id)
        return self.invalidate_where(
            lambda key: isinstance(key, tuple) and bool(key) and key[-1] == chip_id
        )

    def clear(self) -> None:
        """Drop every resident mapping (stats are kept)."""
        self._entries.clear()
