"""Dynamic micro-batching of single-sample inference requests.

Crossbar MVMs amortize beautifully over a batch dimension (one im2col, one
GEMM per layer instead of N), so the serving hot path wants single-sample
requests fused into batches.  The :class:`MicroBatcher` implements the
classic dynamic policy: a batch is released as soon as ``max_batch``
requests are pending, or once the oldest pending request has waited
``max_wait`` ticks — trading a bounded latency hit for throughput.

Determinism: within one release event the pending requests are ordered
canonically by request id before batches are cut.  Arrival *order* inside a
batching window therefore never changes batch composition — only arrival
*ticks* do — which is what makes fleet serving reproducible (see
``tests/test_serve_engine.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Request:
    """One inference request: an id, a single input sample, an arrival tick."""

    id: str
    payload: np.ndarray
    arrival: int = 0

    def sort_key(self) -> tuple:
        return (self.arrival, self.id)


@dataclass
class Batch:
    """A group of requests fused into one batched forward pass."""

    requests: list[Request]
    formed: int

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def ids(self) -> list[str]:
        return [request.id for request in self.requests]

    def inputs(self) -> np.ndarray:
        """Stacked payloads: shape (size, *sample_shape)."""
        return np.stack([np.asarray(request.payload) for request in self.requests])

    def max_queue_ticks(self) -> int:
        """Worst queueing delay inside this batch (formed - earliest arrival)."""
        return self.formed - min(request.arrival for request in self.requests)


class MicroBatcher:
    """Request queue with size- and deadline-triggered batch release.

    ``max_batch`` caps the fused batch size; ``max_wait`` is the number of
    ticks a request may sit in the queue before a partial batch is forced
    out (``0`` releases every poll, i.e. no artificial batching delay).

    ``observer`` is an optional tracing hook called with every cut
    :class:`Batch` the moment it is formed — the engine wires it to emit
    a ``batch`` span, so batch-formation shows up on the request timeline
    without the batcher knowing anything about observability.
    """

    def __init__(
        self,
        max_batch: int = 32,
        max_wait: int = 4,
        observer=None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.observer = observer
        self._pending: list[Request] = []

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending(self) -> list[Request]:
        return list(self._pending)

    def submit(self, request: Request) -> None:
        """Enqueue one request."""
        self._pending.append(request)

    def _cut(self, now: int) -> Batch:
        # Canonical order: by (arrival tick, id).  Ids break intra-tick ties,
        # so any permutation of same-tick submissions forms the same batches.
        self._pending.sort(key=Request.sort_key)
        batch = Batch(self._pending[: self.max_batch], formed=now)
        del self._pending[: self.max_batch]
        if self.observer is not None:
            self.observer(batch)
        return batch

    def poll(self, now: int) -> list[Batch]:
        """Release every batch that is due at tick ``now``.

        Full batches are always released; a partial batch is released only
        when its oldest request has aged past ``max_wait``.
        """
        batches = []
        while len(self._pending) >= self.max_batch:
            batches.append(self._cut(now))
        if self._pending and now - min(
            request.arrival for request in self._pending
        ) >= self.max_wait:
            batches.append(self._cut(now))
        return batches

    def flush(self, now: int) -> list[Batch]:
        """Force everything pending into batches (drain/shutdown path)."""
        batches = []
        while self._pending:
            batches.append(self._cut(now))
        return batches
