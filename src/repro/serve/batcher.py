"""Dynamic micro-batching of single-sample inference requests.

Crossbar MVMs amortize beautifully over a batch dimension (one im2col, one
GEMM per layer instead of N), so the serving hot path wants single-sample
requests fused into batches.  The :class:`MicroBatcher` implements the
classic dynamic policy: a batch is released as soon as ``max_batch``
requests are pending, or once the oldest pending request has waited
``max_wait`` ticks — trading a bounded latency hit for throughput.

Determinism: within one release event the pending requests are ordered
canonically by request id before batches are cut.  Arrival *order* inside a
batching window therefore never changes batch composition — only arrival
*ticks* do — which is what makes fleet serving reproducible (see
``tests/test_serve_engine.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Request:
    """One inference request: id, single input sample, arrival tick, deadline.

    ``deadline`` is the absolute tick by which the request must complete
    (``None`` = best effort).  It rides with the request through batching,
    retry parking, and replay, so every layer can race it against the
    clock: the batcher force-releases a partial batch rather than let a
    deadline lapse in the queue, and the engine dead-letters a request
    whose deadline has already passed instead of wasting fleet time on it.
    """

    id: str
    payload: np.ndarray
    arrival: int = 0
    deadline: int | None = None

    def sort_key(self) -> tuple:
        return (self.arrival, self.id)


@dataclass
class Batch:
    """A group of requests fused into one batched forward pass."""

    requests: list[Request]
    formed: int

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def ids(self) -> list[str]:
        return [request.id for request in self.requests]

    def inputs(self) -> np.ndarray:
        """Stacked payloads: shape (size, *sample_shape)."""
        return np.stack([np.asarray(request.payload) for request in self.requests])

    def max_queue_ticks(self) -> int:
        """Worst queueing delay inside this batch (formed - earliest arrival)."""
        return self.formed - min(request.arrival for request in self.requests)

    def min_deadline(self) -> int | None:
        """The tightest absolute deadline in this batch (None = none carried)."""
        deadlines = [
            request.deadline for request in self.requests if request.deadline is not None
        ]
        return min(deadlines) if deadlines else None

    def headroom(self) -> int | None:
        """Ticks of slack between batch formation and the tightest deadline.

        ``None`` when no request carries a deadline; can be negative when a
        deadline has already lapsed in the queue.  This is the urgency
        signal the ``latency-aware`` scheduling policy dispatches on.
        """
        deadline = self.min_deadline()
        return None if deadline is None else deadline - self.formed


class MicroBatcher:
    """Request queue with size- and deadline-triggered batch release.

    ``max_batch`` caps the fused batch size; ``max_wait`` is the number of
    ticks a request may sit in the queue before a partial batch is forced
    out (``0`` releases every poll, i.e. no artificial batching delay).
    Deadlines tighten both rules: :meth:`poll` force-releases a partial
    batch once the tightest queued deadline is due, and :meth:`ready`
    (the continuous-batching path) lets a full batch dispatch mid-tick,
    the moment its last member arrives.

    ``observer`` is an optional tracing hook called with every cut
    :class:`Batch` the moment it is formed — the engine wires it to emit
    a ``batch`` span, so batch-formation shows up on the request timeline
    without the batcher knowing anything about observability.
    """

    def __init__(
        self,
        max_batch: int = 32,
        max_wait: int = 4,
        observer=None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.observer = observer
        self._pending: list[Request] = []

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def pending(self) -> list[Request]:
        """Snapshot of the queued requests (a copy, in arrival order)."""
        return list(self._pending)

    def submit(self, request: Request) -> None:
        """Enqueue one request."""
        self._pending.append(request)

    def _cut(self, now: int) -> Batch:
        # Canonical order: by (arrival tick, id).  Ids break intra-tick ties,
        # so any permutation of same-tick submissions forms the same batches.
        self._pending.sort(key=Request.sort_key)
        batch = Batch(self._pending[: self.max_batch], formed=now)
        del self._pending[: self.max_batch]
        if self.observer is not None:
            self.observer(batch)
        return batch

    def ready(self, now: int) -> list[Batch]:
        """Release only the batches that are already full at tick ``now``.

        The continuous-batching admission path: the engine calls this on
        every ``submit`` (when ``ServeConfig.continuous`` is on), so a
        request that completes a batch dispatches *the moment it arrives*
        instead of waiting for the next tick barrier — and late arrivals
        keep joining the still-partial tail batch until it fills or a
        deadline forces it out.
        """
        batches = []
        while len(self._pending) >= self.max_batch:
            batches.append(self._cut(now))
        return batches

    def _deadline_due(self, now: int) -> bool:
        """True when waiting one more tick would lapse a queued deadline."""
        deadlines = [
            request.deadline
            for request in self._pending
            if request.deadline is not None
        ]
        return bool(deadlines) and min(deadlines) <= now

    def poll(self, now: int) -> list[Batch]:
        """Release every batch that is due at tick ``now``.

        Full batches are always released; a partial batch is released when
        its oldest request has aged past ``max_wait`` — or, deadline-aware,
        when the tightest queued deadline is at ``now`` or already past, so
        a request is never left to expire waiting for a fuller batch.
        """
        batches = []
        while len(self._pending) >= self.max_batch:
            batches.append(self._cut(now))
        if self._pending and (
            now - min(request.arrival for request in self._pending) >= self.max_wait
            or self._deadline_due(now)
        ):
            batches.append(self._cut(now))
        return batches

    def flush(self, now: int) -> list[Batch]:
        """Force everything pending into batches (drain/shutdown path)."""
        batches = []
        while self._pending:
            batches.append(self._cut(now))
        return batches
