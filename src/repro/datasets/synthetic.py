"""Procedural image-classification datasets.

Each class is defined by a smooth random template (low-pass filtered
Gaussian noise plus an oriented sinusoidal grating, both seeded per class).
A sample is its class template under a random circular shift, random
amplitude jitter, and additive pixel noise.  The tasks are comfortably
learnable by small conv nets yet far from linearly trivial, which is what
the robustness experiments need: a model whose accuracy has headroom to be
destroyed by weight perturbations and recovered by training/self-tuning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage


@dataclass
class ArrayDataset:
    """In-memory dataset: images (N, C, H, W) in [0, 1]-ish range, int labels."""

    images: np.ndarray
    labels: np.ndarray
    num_classes: int
    name: str = "synthetic"

    def __post_init__(self) -> None:
        if len(self.images) != len(self.labels):
            raise ValueError("images/labels length mismatch")

    def __len__(self) -> int:
        return len(self.images)

    def subset(self, count: int) -> "ArrayDataset":
        """First ``count`` samples (class-balanced because generation interleaves)."""
        return ArrayDataset(
            self.images[:count], self.labels[:count], self.num_classes, self.name
        )

    @property
    def sample_shape(self) -> tuple[int, ...]:
        return self.images.shape[1:]


def _class_template(
    rng: np.random.Generator, channels: int, height: int, width: int
) -> np.ndarray:
    """Smooth, distinctive per-class pattern in roughly [-1, 1]."""
    smooth = ndimage.gaussian_filter(
        rng.normal(size=(channels, height, width)), sigma=(0, 3.0, 3.0)
    )
    smooth /= np.abs(smooth).max() + 1e-12
    yy, xx = np.mgrid[0:height, 0:width]
    frequency = rng.uniform(0.2, 0.9)
    angle = rng.uniform(0.0, np.pi)
    phase = rng.uniform(0.0, 2 * np.pi)
    grating = np.sin(frequency * (np.cos(angle) * xx + np.sin(angle) * yy) + phase)
    return 0.6 * smooth + 0.4 * grating[None, :, :]


def make_pattern_dataset(
    num_classes: int,
    samples_per_class: int,
    shape: tuple[int, int, int],
    seed: int = 0,
    noise: float = 0.35,
    max_shift: int = 3,
    name: str = "synthetic",
) -> ArrayDataset:
    """Generate a deterministic pattern-classification dataset.

    Samples are interleaved by class (sample i has label i % num_classes) so
    any prefix subset is class-balanced.
    """
    channels, height, width = shape
    rng = np.random.default_rng(seed)
    templates = [
        _class_template(rng, channels, height, width) for _ in range(num_classes)
    ]
    total = num_classes * samples_per_class
    images = np.empty((total, channels, height, width))
    labels = np.empty(total, dtype=np.int64)
    for index in range(total):
        label = index % num_classes
        template = templates[label]
        shift_y = int(rng.integers(-max_shift, max_shift + 1))
        shift_x = int(rng.integers(-max_shift, max_shift + 1))
        sample = np.roll(template, (shift_y, shift_x), axis=(1, 2))
        amplitude = rng.uniform(0.8, 1.2)
        sample = amplitude * sample + rng.normal(0.0, noise, size=sample.shape)
        images[index] = sample
        labels[index] = label
    # Normalize to zero mean / unit std like standard dataset transforms.
    images -= images.mean()
    images /= images.std() + 1e-12
    return ArrayDataset(images, labels, num_classes, name)


def synthetic_mnist(
    train_per_class: int = 64, test_per_class: int = 16, seed: int = 0
) -> tuple[ArrayDataset, ArrayDataset]:
    """MNIST stand-in: 1x28x28, 10 classes."""
    return _train_test(10, train_per_class, test_per_class, (1, 28, 28), seed, "synthetic-mnist")


def synthetic_cifar10(
    train_per_class: int = 64, test_per_class: int = 16, seed: int = 1
) -> tuple[ArrayDataset, ArrayDataset]:
    """CIFAR-10 stand-in: 3x32x32, 10 classes."""
    return _train_test(10, train_per_class, test_per_class, (3, 32, 32), seed, "synthetic-cifar10")


def synthetic_cifar100(
    train_per_class: int = 8, test_per_class: int = 2, seed: int = 2
) -> tuple[ArrayDataset, ArrayDataset]:
    """CIFAR-100 stand-in: 3x32x32, 100 classes."""
    return _train_test(
        100, train_per_class, test_per_class, (3, 32, 32), seed, "synthetic-cifar100"
    )


def _train_test(
    num_classes: int,
    train_per_class: int,
    test_per_class: int,
    shape: tuple[int, int, int],
    seed: int,
    name: str,
) -> tuple[ArrayDataset, ArrayDataset]:
    full = make_pattern_dataset(
        num_classes, train_per_class + test_per_class, shape, seed=seed, name=name
    )
    split = num_classes * train_per_class
    train = ArrayDataset(full.images[:split], full.labels[:split], num_classes, name)
    test = ArrayDataset(
        full.images[split:], full.labels[split:], num_classes, name + "-test"
    )
    return train, test
