"""Mini-batch iteration utilities."""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.datasets.synthetic import ArrayDataset


def batch_iterator(
    dataset: ArrayDataset,
    batch_size: int,
    shuffle: bool = True,
    rng: np.random.Generator | None = None,
    drop_last: bool = False,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield (inputs, targets) mini-batches from an :class:`ArrayDataset`."""
    count = len(dataset)
    order = np.arange(count)
    if shuffle:
        (rng or np.random.default_rng()).shuffle(order)
    for start in range(0, count, batch_size):
        index = order[start : start + batch_size]
        if drop_last and len(index) < batch_size:
            break
        yield dataset.images[index], dataset.labels[index]


def batch_source(
    dataset: ArrayDataset,
    batch_size: int,
    seed: int = 0,
) -> Callable[[], Iterator[tuple[np.ndarray, np.ndarray]]]:
    """A zero-argument callable producing freshly shuffled epochs.

    Each call advances the shuffle RNG so successive epochs see different
    orders while the whole sequence stays reproducible.
    """
    rng = np.random.default_rng(seed)

    def source() -> Iterator[tuple[np.ndarray, np.ndarray]]:
        return batch_iterator(dataset, batch_size, shuffle=True, rng=rng)

    return source
