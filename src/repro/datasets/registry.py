"""Dataset registry mapping paper dataset names to synthetic stand-ins."""

from __future__ import annotations

from repro.datasets.synthetic import (
    ArrayDataset,
    synthetic_cifar10,
    synthetic_cifar100,
    synthetic_mnist,
)

# name -> (factory, num_classes, default train/test per class)
_DATASETS = {
    "mnist": (synthetic_mnist, 10, 64, 16),
    "mnist-mini": (synthetic_mnist, 10, 16, 8),
    "cifar10": (synthetic_cifar10, 10, 64, 16),
    "cifar10-mini": (synthetic_cifar10, 10, 16, 8),
    "cifar100": (synthetic_cifar100, 100, 8, 2),
    "cifar100-mini": (synthetic_cifar100, 100, 2, 1),
}


def list_datasets() -> list[str]:
    """Names of all registered datasets."""
    return sorted(_DATASETS)


def make_dataset(
    name: str,
    train_size: int | None = None,
    test_size: int | None = None,
    seed: int | None = None,
) -> tuple[ArrayDataset, ArrayDataset]:
    """Build (train, test) splits of a registered dataset.

    ``train_size``/``test_size`` are *total* sample counts (rounded up to a
    class-balanced multiple); the ``-mini`` variants default to sizes small
    enough for second-scale CPU training.
    """
    if name not in _DATASETS:
        raise KeyError(f"unknown dataset {name!r}; available: {list_datasets()}")
    factory, num_classes, train_per_class, test_per_class = _DATASETS[name]
    if train_size is not None:
        train_per_class = max(1, -(-train_size // num_classes))
    if test_size is not None:
        test_per_class = max(1, -(-test_size // num_classes))
    kwargs = {"train_per_class": train_per_class, "test_per_class": test_per_class}
    if seed is not None:
        kwargs["seed"] = seed
    return factory(**kwargs)
