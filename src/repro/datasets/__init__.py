"""Synthetic datasets standing in for MNIST / CIFAR-10 / CIFAR-100.

The evaluation environment has no network access, so the paper's public
datasets are replaced by deterministic procedural pattern-classification
tasks with the same tensor shapes and class counts.  See DESIGN.md for why
this substitution preserves the paper's robustness comparisons.
"""

from repro.datasets.synthetic import (
    ArrayDataset,
    make_pattern_dataset,
    synthetic_cifar10,
    synthetic_cifar100,
    synthetic_mnist,
)
from repro.datasets.loaders import batch_iterator, batch_source
from repro.datasets.registry import list_datasets, make_dataset

__all__ = [
    "ArrayDataset",
    "make_pattern_dataset",
    "synthetic_mnist",
    "synthetic_cifar10",
    "synthetic_cifar100",
    "batch_iterator",
    "batch_source",
    "make_dataset",
    "list_datasets",
]
