"""Analog PIM crossbar substrate (circuit-level counterpart of fake-quant).

Provides conductance-level simulation of the MVM arrays the paper deploys
onto: differential weight mapping, DAC/ADC interfaces, tiling onto
512x512 arrays, and chip objects carrying correlated fabrication variation.
Used to cross-validate the fake-quant training path and to ground the
GTM/LTM tuning modules in the circuit of Fig. 3.

Beyond the paper's scope, the substrate also models the device layer
(multi-level RRAM/Flash/MRAM cells in :mod:`repro.pim.devices`), weight/
input bit-slicing (:mod:`repro.pim.bitslicing`), time-dependent correlated
drift (:mod:`repro.pim.drift` — exercising the paper's footnote-2 claim
that self-tuning generalizes to temperature drift and aging), IR drop and
stuck-at faults (:mod:`repro.pim.nonidealities`), and an event-based
energy/latency/area estimator (:mod:`repro.pim.energy`).
"""

from repro.pim.bitslicing import BitSlicingScheme, assemble_signed, slice_signed
from repro.pim.converters import ADC, DAC
from repro.pim.crossbar import CrossbarArray
from repro.pim.devices import DeviceModel, device_by_name
from repro.pim.drift import AgingDrift, DriftingChip, TemperatureDrift, drift_trajectory
from repro.pim.energy import (
    CostModel,
    CostReport,
    LayerGeometry,
    PimCostEstimator,
    digital_baseline_cost,
    geometries_from_model,
)
from repro.pim.mapping import (
    ConductanceMapping,
    deinterleave_readings,
    interleave_differential,
)
from repro.pim.nonidealities import IRDropModel, StuckAtFaultModel
from repro.pim.tiling import TileSpec, accumulate_tile_outputs, plan_tiles, tile_count
from repro.pim.chip import MappedConv2d, MappedLinear, PimChip, deploy_model

__all__ = [
    "DAC",
    "ADC",
    "CrossbarArray",
    "ConductanceMapping",
    "interleave_differential",
    "deinterleave_readings",
    "TileSpec",
    "plan_tiles",
    "tile_count",
    "accumulate_tile_outputs",
    "MappedLinear",
    "MappedConv2d",
    "PimChip",
    "deploy_model",
    "DeviceModel",
    "device_by_name",
    "BitSlicingScheme",
    "slice_signed",
    "assemble_signed",
    "TemperatureDrift",
    "AgingDrift",
    "DriftingChip",
    "drift_trajectory",
    "CostModel",
    "CostReport",
    "LayerGeometry",
    "PimCostEstimator",
    "digital_baseline_cost",
    "geometries_from_model",
    "IRDropModel",
    "StuckAtFaultModel",
]
