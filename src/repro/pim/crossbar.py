"""A single analog crossbar array.

Weights are stored as cell conductances; applying wordline voltages and
summing bitline currents computes a matrix-vector product in one shot
(Kirchhoff current law).  Fabrication variability perturbs the programmed
conductances according to the paper's variance models.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.pim.converters import ADC, DAC
from repro.variability.models import VarianceModel
from repro.variability.sampler import ChipVariation


class CrossbarArray:
    """``rows x cols`` array of programmable conductances.

    ``program`` stores ideal conductances; ``apply_variation`` derives the
    physical conductances under a sampled chip's variation; ``mvm`` computes
    bitline outputs for a batch of wordline vectors through the DAC/ADC
    models.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        dac: DAC | None = None,
        adc: ADC | None = None,
        key: str = "array",
        device=None,
        ir_drop=None,
        fault_model=None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.rows = rows
        self.cols = cols
        self.dac = dac or DAC()
        self.adc = adc or ADC(ideal=True)
        self.key = key
        # Optional device-level fidelity: a repro.pim.devices.DeviceModel
        # adds level snapping + write noise at program time; an
        # IRDropModel attenuates far cells; a StuckAtFaultModel freezes a
        # random subset of cells.  All default to off (ideal array).
        self.device = device
        self.ir_drop = ir_drop
        self.fault_model = fault_model
        # Lazily seeded from the array key when no generator is supplied, so
        # every array in a fleet draws from its own reproducible stream and
        # call sites never need to improvise a default.
        self._rng = rng
        self._fault_map = None
        self.ideal = np.zeros((rows, cols))
        self.programmed = np.zeros((rows, cols))
        self.physical = np.zeros((rows, cols))

    @property
    def rng(self) -> np.random.Generator:
        """This array's random stream (device write/read noise, fault maps).

        Created on first use when the constructor received ``rng=None``,
        seeded from the array key — distinct tiles get distinct streams, and
        rebuilding the same fleet reproduces the same draws bit-for-bit.
        """
        if self._rng is None:
            self._rng = np.random.default_rng(zlib.crc32(self.key.encode()))
        return self._rng

    def program(self, conductances: np.ndarray) -> None:
        """Write ideal conductances (shape must be (rows, cols)).

        With a device model attached, programming snaps targets to the
        device's level grid and adds program/verify residual noise; with a
        fault model attached, a persistent per-array fault map overrides the
        stuck cells.
        """
        conductances = np.asarray(conductances, dtype=np.float64)
        if conductances.shape != (self.rows, self.cols):
            raise ValueError(
                f"expected shape {(self.rows, self.cols)}, got {conductances.shape}"
            )
        self.ideal = conductances.copy()
        written = conductances.copy()
        if self.device is not None:
            written = self.device.program(written, self.rng)
        if self.fault_model is not None:
            if self._fault_map is None:
                self._fault_map = self.fault_model.sample_map(written.shape, self.rng)
            written = self.fault_model.apply(written, self._fault_map)
        self.programmed = written
        self.physical = written.copy()

    def apply_variation(
        self, chip: ChipVariation, variance_model: VarianceModel
    ) -> None:
        """Perturb programmed conductances per the chip's variation."""
        eps = chip.epsilon_for(self.key, self.ideal.shape)
        delta = variance_model.reparameterize_data(eps, self.ideal)
        self.physical = self.programmed + delta

    def clear_variation(self) -> None:
        self.physical = self.programmed.copy()

    def effective_conductances(self) -> np.ndarray:
        """Conductances as seen by an MVM (after IR-drop attenuation)."""
        if self.ir_drop is None:
            return self.physical
        return self.ir_drop.apply(self.physical)

    def mvm(self, codes: np.ndarray) -> np.ndarray:
        """Batched MVM: input codes (N, rows) -> bitline readings (N, cols)."""
        codes = np.atleast_2d(codes)
        if codes.shape[-1] != self.rows:
            raise ValueError(f"expected {self.rows} inputs, got {codes.shape[-1]}")
        voltages = self.dac.convert(codes)
        conductances = self.effective_conductances()
        if self.device is not None and self.device.sigma_read > 0.0:
            conductances = self.device.read(conductances, self.rng)
        currents = voltages @ conductances
        return self.adc.convert(currents)
