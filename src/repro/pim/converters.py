"""DAC/ADC models for the analog crossbar interface.

Activations enter a PIM array through DACs (integer activation codes ->
wordline voltages) and dot-product currents leave through ADCs (bitline
current -> integer codes).  The DNN-level quantizers already discretize
values; these models add the *physical* resolution limits and are used by
the crossbar substrate to validate that the fake-quant training path and
the circuit-level path agree.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DAC:
    """Digital-to-analog converter: integer codes -> voltages.

    ``bits`` bounds the representable code range (symmetric); ``v_step`` is
    the voltage per LSB.  Codes outside the range saturate, mirroring a
    driver hitting its rails.
    """

    bits: int = 8
    v_step: float = 1.0

    @property
    def code_max(self) -> int:
        return 2 ** (self.bits - 1) - 1

    def convert(self, codes: np.ndarray) -> np.ndarray:
        clipped = np.clip(np.rint(codes), -self.code_max, self.code_max)
        return clipped * self.v_step


@dataclass(frozen=True)
class ADC:
    """Analog-to-digital converter: currents -> integer codes.

    The full-scale range ``full_scale`` maps onto ``±(2^(bits-1) - 1)``
    codes.  ``ideal=True`` bypasses quantization entirely (infinite
    resolution), which is useful for isolating variability effects from ADC
    effects in experiments.
    """

    bits: int = 12
    full_scale: float = 1.0
    ideal: bool = False
    # Static converter errors (fractions of full scale / of the reading):
    # ``offset_error`` shifts the transfer curve, ``gain_error`` scales it,
    # ``noise_rms`` adds input-referred thermal noise per conversion.
    offset_error: float = 0.0
    gain_error: float = 0.0
    noise_rms: float = 0.0
    noise_seed: int = 0

    @property
    def code_max(self) -> int:
        return 2 ** (self.bits - 1) - 1

    @property
    def lsb(self) -> float:
        return self.full_scale / self.code_max

    def _distort(self, currents: np.ndarray) -> np.ndarray:
        out = np.asarray(currents, dtype=np.float64)
        if self.gain_error:
            out = out * (1.0 + self.gain_error)
        if self.offset_error:
            out = out + self.offset_error * self.full_scale
        if self.noise_rms:
            out = out + self._rng.normal(0.0, self.noise_rms * self.full_scale, out.shape)
        return out

    def __post_init__(self) -> None:
        # A mutable RNG on a frozen dataclass: conversions draw fresh noise
        # while the converter's configuration stays hashable/immutable.
        object.__setattr__(self, "_rng", np.random.default_rng(self.noise_seed))

    def convert(self, currents: np.ndarray) -> np.ndarray:
        """Quantized current readings (in current units, not codes)."""
        distorted = self._distort(currents)
        if self.ideal:
            return distorted
        codes = np.clip(np.rint(distorted / self.lsb), -self.code_max, self.code_max)
        return codes * self.lsb

    def effective_resolution_bits(self) -> float:
        """ENOB-style figure: bits after input-referred noise is accounted.

        Uses the standard ``ENOB = bits - log2(sqrt(1 + 12 * sigma_lsb^2))``
        relation, with ``sigma_lsb`` the noise in LSB units.
        """
        if self.noise_rms == 0.0:
            return float(self.bits)
        sigma_lsb = self.noise_rms * self.full_scale / self.lsb
        return self.bits - 0.5 * np.log2(1.0 + 12.0 * sigma_lsb**2)
