"""Additional crossbar non-idealities: IR drop and stuck-at faults.

The paper's focus is programming variability, but a credible PIM substrate
should expose the other standard analog error sources so users can study
how QAVAT-trained models respond to them:

* **IR drop** — finite wire resistance along wordlines/bitlines attenuates
  the effective cell voltage, more strongly for cells far from the drivers.
  Modelled here with the widely used first-order approximation: each cell's
  contribution is scaled by a position-dependent attenuation factor derived
  from the accumulated series resistance and the instantaneous column
  current load.
* **Stuck-at faults** — cells frozen at minimum (stuck-off / open) or
  maximum (stuck-on / short) conductance, a yield phenomenon independent of
  Gaussian variation.  Fault maps are sampled per chip and are persistent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class IRDropModel:
    """First-order IR-drop attenuation for a crossbar of given geometry.

    ``wire_resistance`` is the segment resistance between adjacent cells
    (relative to the cell's on-resistance, i.e. ``r_wire * g_max``); rows
    farther from the wordline driver and columns farther from the ADC see
    proportionally more series resistance.  ``attenuation_map`` returns the
    per-cell multiplicative factor in (0, 1]; 1 everywhere when
    ``wire_resistance == 0``.
    """

    wire_resistance: float = 0.0

    def __post_init__(self) -> None:
        if self.wire_resistance < 0.0:
            raise ValueError("wire_resistance must be non-negative")

    def attenuation_map(self, rows: int, cols: int) -> np.ndarray:
        """Per-cell attenuation factors, shape (rows, cols)."""
        if self.wire_resistance == 0.0:
            return np.ones((rows, cols))
        # Distance (in segments) from the wordline driver (column index) and
        # from the bitline sense amp (row index).  The first-order voltage
        # divider gives 1 / (1 + r * distance).
        row_distance = np.arange(rows)[:, None]
        col_distance = np.arange(cols)[None, :]
        series = self.wire_resistance * (row_distance + col_distance)
        return 1.0 / (1.0 + series)

    def apply(self, conductances: np.ndarray) -> np.ndarray:
        """Effective conductances after IR-drop attenuation."""
        rows, cols = conductances.shape
        return conductances * self.attenuation_map(rows, cols)

    def worst_case_attenuation(self, rows: int, cols: int) -> float:
        """Attenuation of the cell farthest from both drivers."""
        return float(self.attenuation_map(rows, cols)[-1, -1])


@dataclass(frozen=True)
class StuckAtFaultModel:
    """Random persistent cell faults.

    ``p_stuck_off``/``p_stuck_on`` are per-cell probabilities of a cell
    being frozen at ``g_off``/``g_on``.  A sampled fault map is a pair of
    boolean masks; applying it overrides the programmed conductances.
    """

    p_stuck_off: float = 0.0
    p_stuck_on: float = 0.0
    g_off: float = 0.0
    g_on: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_stuck_off <= 1.0 or not 0.0 <= self.p_stuck_on <= 1.0:
            raise ValueError("fault probabilities must be in [0, 1]")
        if self.p_stuck_off + self.p_stuck_on > 1.0:
            raise ValueError("total fault probability exceeds 1")

    @property
    def fault_rate(self) -> float:
        return self.p_stuck_off + self.p_stuck_on

    def sample_map(
        self, shape: tuple[int, ...], rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """(stuck_off_mask, stuck_on_mask) boolean arrays, disjoint."""
        u = rng.random(shape)
        stuck_off = u < self.p_stuck_off
        stuck_on = (u >= self.p_stuck_off) & (u < self.fault_rate)
        return stuck_off, stuck_on

    def apply(
        self,
        conductances: np.ndarray,
        fault_map: tuple[np.ndarray, np.ndarray],
    ) -> np.ndarray:
        """Conductances with faulted cells overridden."""
        stuck_off, stuck_on = fault_map
        out = np.asarray(conductances, dtype=np.float64).copy()
        out[stuck_off] = self.g_off
        out[stuck_on] = self.g_on
        return out


def expected_fault_error_power(
    model: StuckAtFaultModel, conductances: np.ndarray
) -> float:
    """Mean squared conductance error introduced by the fault model.

    Useful for sizing comparisons against Gaussian variation: a fault rate
    producing the same error power as ``sigma_W`` typically degrades
    accuracy *more*, because faults are heavy-tailed.
    """
    g = np.asarray(conductances, dtype=np.float64)
    off_err = (g - model.g_off) ** 2
    on_err = (g - model.g_on) ** 2
    return float(
        (model.p_stuck_off * off_err + model.p_stuck_on * on_err).mean()
    )
