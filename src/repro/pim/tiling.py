"""Tiling large weight matrices across fixed-size crossbar arrays.

A logical MVM of shape ``(d_in, d_out)`` rarely fits one physical array;
the weight matrix is split into row/column tiles, each tile's partial sums
are read out separately, and the digital backend accumulates them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class TileSpec:
    """One tile's placement within the logical weight matrix."""

    row_start: int
    row_stop: int
    col_start: int
    col_stop: int

    @property
    def shape(self) -> tuple[int, int]:
        return (self.row_stop - self.row_start, self.col_stop - self.col_start)


def plan_tiles(d_in: int, d_out: int, array_rows: int, array_cols: int) -> list[TileSpec]:
    """Cover a (d_in, d_out) matrix with array-sized tiles, row-major."""
    if array_rows < 1 or array_cols < 1:
        raise ValueError("array dimensions must be positive")
    tiles = []
    for row_start in range(0, d_in, array_rows):
        row_stop = min(row_start + array_rows, d_in)
        for col_start in range(0, d_out, array_cols):
            col_stop = min(col_start + array_cols, d_out)
            tiles.append(TileSpec(row_start, row_stop, col_start, col_stop))
    return tiles


def tile_count(d_in: int, d_out: int, array_rows: int, array_cols: int) -> int:
    """Number of arrays needed for one logical MVM."""
    rows = -(-d_in // array_rows)
    cols = -(-d_out // array_cols)
    return rows * cols


def accumulate_tile_outputs(
    outputs: dict[TileSpec, np.ndarray], d_out: int, batch: int
) -> np.ndarray:
    """Sum row-tile partial results into the full (batch, d_out) output."""
    total = np.zeros((batch, d_out))
    for tile, partial in outputs.items():
        total[:, tile.col_start : tile.col_stop] += partial
    return total
