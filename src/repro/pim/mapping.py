"""Weight-to-conductance mapping.

Conductances are non-negative, so signed weights use the standard
differential-pair scheme: each logical weight column becomes a positive and
a negative physical column, and the digital backend subtracts the two
bitline readings.  Integer weight codes map linearly onto the conductance
range so that one code step equals one conductance unit ``g_unit``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ConductanceMapping:
    """Linear code->conductance map for a ``bits``-wide symmetric grid."""

    g_unit: float = 1.0

    def to_differential(self, codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Signed integer codes -> (positive, negative) conductance planes."""
        codes = np.asarray(codes, dtype=np.float64)
        positive = np.where(codes > 0, codes, 0.0) * self.g_unit
        negative = np.where(codes < 0, -codes, 0.0) * self.g_unit
        return positive, negative

    def from_differential(self, reading_pos: np.ndarray, reading_neg: np.ndarray) -> np.ndarray:
        """Differential bitline readings -> signed dot-product values."""
        return (reading_pos - reading_neg) / self.g_unit


def interleave_differential(positive: np.ndarray, negative: np.ndarray) -> np.ndarray:
    """Pack (rows, cols) pos/neg planes into one (rows, 2*cols) array image."""
    rows, cols = positive.shape
    packed = np.empty((rows, 2 * cols))
    packed[:, 0::2] = positive
    packed[:, 1::2] = negative
    return packed


def deinterleave_readings(readings: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split packed differential readings back into pos/neg halves."""
    return readings[..., 0::2], readings[..., 1::2]
