"""Time-dependent correlated variation: temperature drift and aging.

The paper's footnote 2 observes that the self-tuning architecture
"can be generalized to compensate for any correlated weight variation,
e.g., due to temperature drifts or aging".  This module supplies those
processes so the claim can be exercised end to end:

* :class:`TemperatureDrift` — a slowly varying, chip-wide multiplicative
  conductance shift driven by ambient temperature (an Ornstein-Uhlenbeck
  process, optionally with a diurnal sinusoidal component).  Like
  fabrication-time ``eps_B`` it is fully correlated across the chip, but it
  *changes between inferences*, so a single GTM measurement goes stale and
  must be refreshed (see :class:`repro.selftuning.drift.DriftCompensator`).
* :class:`AgingDrift` — the standard log-time conductance decay of
  programmed analog cells (paper ref [17] observes this in PCM); a
  deterministic, monotone drift plus a small stochastic component.
* :class:`DriftingChip` — wraps a fabrication-time
  :class:`repro.variability.ChipVariation` and adds the time-varying
  component, exposing the same interface so the injection and self-tuning
  machinery work unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.variability.sampler import ChipVariation


class DriftProcess:
    """A scalar stochastic process ``eps_drift(t)`` shared by a whole chip."""

    def epsilon_at(self, time: float, rng: np.random.Generator) -> float:
        """Drift epsilon at ``time`` (advances any internal state)."""
        raise NotImplementedError

    def reset(self) -> None:
        """Return the process to its initial state."""


@dataclass
class TemperatureDrift(DriftProcess):
    """Ornstein-Uhlenbeck temperature-induced conductance drift.

    ``d(eps) = -theta * eps * dt + sigma * sqrt(dt) * dW`` plus an optional
    deterministic sinusoid ``amplitude * sin(2*pi*t/period)`` modelling a
    diurnal or duty-cycle temperature swing.  The stationary standard
    deviation of the OU part is ``sigma / sqrt(2*theta)``.
    """

    theta: float = 0.5
    sigma: float = 0.05
    amplitude: float = 0.0
    period: float = 24.0

    def __post_init__(self) -> None:
        if self.theta <= 0.0:
            raise ValueError("theta must be positive")
        self._state = 0.0
        self._last_time = 0.0

    def reset(self) -> None:
        self._state = 0.0
        self._last_time = 0.0

    @property
    def stationary_std(self) -> float:
        """Long-run standard deviation of the OU component."""
        return self.sigma / math.sqrt(2.0 * self.theta)

    def epsilon_at(self, time: float, rng: np.random.Generator) -> float:
        dt = time - self._last_time
        if dt < 0.0:
            raise ValueError("time must be non-decreasing for an OU process")
        if dt > 0.0:
            decay = math.exp(-self.theta * dt)
            # Exact OU transition: conditional mean decays, variance fills
            # toward the stationary value.
            std = self.stationary_std * math.sqrt(1.0 - decay * decay)
            self._state = self._state * decay + rng.normal(0.0, std)
            self._last_time = time
        seasonal = self.amplitude * math.sin(2.0 * math.pi * time / self.period)
        return self._state + seasonal


@dataclass
class AgingDrift(DriftProcess):
    """Log-time conductance decay: ``eps(t) = -nu * log(1 + t/t0)``.

    ``nu`` is the drift coefficient (PCM-like devices show nu in the
    0.01-0.1 range); ``jitter`` adds a small zero-mean stochastic component
    on top of the deterministic decay.
    """

    nu: float = 0.02
    t0: float = 1.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.nu < 0.0 or self.t0 <= 0.0 or self.jitter < 0.0:
            raise ValueError("nu/jitter must be >= 0 and t0 > 0")

    def epsilon_at(self, time: float, rng: np.random.Generator) -> float:
        if time < 0.0:
            raise ValueError("aging time must be non-negative")
        drift = -self.nu * math.log1p(time / self.t0)
        if self.jitter:
            drift += rng.normal(0.0, self.jitter)
        return drift


class DriftingChip(ChipVariation):
    """A fabricated chip whose between-chip epsilon drifts over time.

    The fabrication-time components (``eps_between`` at t=0 and the frozen
    per-layer ``eps_W`` draws) come from the wrapped chip; :meth:`advance_to`
    moves operating time forward, re-evaluating the drift process and
    updating the *effective* ``eps_between`` seen by injection and by the
    tuning modules.  GTM measurements are keyed per measurement epoch, so a
    re-measure after advancing time sees the drifted value (a stale
    measurement from an earlier epoch stays stale — exactly the physical
    behaviour a drift compensator must deal with).
    """

    def __init__(
        self,
        base: ChipVariation,
        process: DriftProcess,
        seed: int = 0,
    ) -> None:
        # Share the base chip's frozen within-chip draws and seed so the
        # fabrication pattern is identical with and without drift (the cache
        # holds eps_W only; eps_B is added at query time).
        super().__init__(base.eps_between, base.sigma_within, base._seed)
        self._cache = base._cache
        self.fabrication_eps = float(base.eps_between)
        self.process = process
        self.time = 0.0
        self.measurement_epoch = 0
        self._drift_rng = np.random.default_rng(seed)

    def advance_to(self, time: float) -> float:
        """Move operating time forward; returns the new effective eps_B."""
        if time < self.time:
            raise ValueError("time must be non-decreasing")
        self.time = time
        drift = self.process.epsilon_at(time, self._drift_rng)
        self.eps_between = self.fabrication_eps + drift
        # Old GTM measurements (cached in self.measurements) become stale
        # rather than being invalidated: a physical chip keeps whatever its
        # last measurement was until someone re-measures.  Bumping the epoch
        # lets a drift compensator decide when to re-measure.
        self.measurement_epoch += 1
        return self.eps_between

    def remeasure(self) -> None:
        """Discard cached tuning-module measurements (forces a fresh read)."""
        self.measurements.clear()

    def __repr__(self) -> str:
        return (
            f"DriftingChip(t={self.time:.2f}, eps_fab={self.fabrication_eps:+.4f}, "
            f"eps_now={self.eps_between:+.4f})"
        )


def drift_trajectory(
    process: DriftProcess,
    times: np.ndarray,
    seed: int = 0,
) -> np.ndarray:
    """Sample one drift path ``eps(t)`` at the given (sorted) times."""
    rng = np.random.default_rng(seed)
    process.reset()
    return np.array([process.epsilon_at(float(t), rng) for t in times])
