"""A PIM chip: tiled crossbar arrays + digital backend for quantized layers.

This is the circuit-level counterpart of the fake-quant fast path used in
training.  Deploying a :class:`repro.quant.QuantLinear` or
:class:`repro.quant.QuantConv2d` onto a :class:`PimChip` programs its
integer weight codes into differential crossbar tiles; inference then runs
DAC -> analog MVM -> ADC -> digital rescale (convolutions are lowered with
im2col, each output position driving the same arrays).  Given the same
:class:`ChipVariation`, the chip path and the fake-quant path produce
identical outputs when the ADC is ideal — a cross-validation exercised by
the test suite, including whole-model deployment via :func:`deploy_model`.

Perturbations are applied to the *signed logical weights* before the
differential mapping.  This is physically equivalent to perturbing the
nonzero cell of each differential pair (the reading subtracts the pair, so
a conductance perturbation on the negative column flips sign exactly like
a signed-weight perturbation) and keeps the eps bookkeeping identical to
the training path.
"""

from __future__ import annotations

import numpy as np

from repro.pim.converters import ADC, DAC
from repro.pim.crossbar import CrossbarArray
from repro.pim.mapping import ConductanceMapping, deinterleave_readings, interleave_differential
from repro.pim.tiling import TileSpec, plan_tiles
from repro.quant.qlayers import QuantConv2d, QuantLinear
from repro.variability.sampler import ChipVariation, VariabilitySampler, VariabilitySpec


def _require_per_tensor_scale(qlayer) -> None:
    if np.asarray(qlayer.weight_scale).ndim != 0:
        raise NotImplementedError(
            "chip deployment supports per-tensor weight scales only; "
            "per-channel scales need per-column digital multipliers"
        )


class _MappedLayer:
    """Shared machinery: weight codes tiled across differential arrays."""

    def __init__(
        self,
        qlayer,
        codes: np.ndarray,
        array_rows: int,
        array_cols: int,
        dac: DAC,
        adc: ADC,
        mapping: ConductanceMapping,
        key: str,
    ) -> None:
        self.qlayer = qlayer
        self.mapping = mapping
        self.act_scale = float(qlayer.act_scale)
        self.weight_scale = float(qlayer.weight_scale)
        if self.act_scale == 0.0:
            raise RuntimeError("deploying an uncalibrated layer; run calibrate_model first")
        # Codes laid out (d_in, d_out) for wordline-major MVM.
        self.d_in, self.d_out = codes.shape
        self.codes = codes
        self.tiles: list[tuple[TileSpec, CrossbarArray]] = []
        # Differential mapping doubles physical columns per logical column.
        logical_cols = array_cols // 2
        for tile in plan_tiles(self.d_in, self.d_out, array_rows, logical_cols):
            rows, cols = tile.shape
            array = CrossbarArray(
                rows, 2 * cols, dac=dac, adc=adc, key=f"{key}:tile{len(self.tiles)}"
            )
            self.tiles.append((tile, array))
        self.program(None, None)

    def program(
        self,
        chip: ChipVariation | None,
        variance_model,
        eps: np.ndarray | None = None,
    ) -> None:
        """(Re)program tiles; with a chip, weights carry its variation.

        ``eps`` (shape ``(d_in, d_out)``) overrides the chip's per-tile
        epsilon draws with an externally supplied full-layer pattern — the
        hook :class:`repro.backends.CircuitBackend` uses to install the
        *same* physical variation the fake-quant path draws per layer name,
        so both fidelities realize one and the same chip.
        """
        if eps is not None and eps.shape != (self.d_in, self.d_out):
            raise ValueError(
                f"eps shape {eps.shape} does not match codes {(self.d_in, self.d_out)}"
            )
        for tile, array in self.tiles:
            block = self.codes[tile.row_start : tile.row_stop, tile.col_start : tile.col_stop]
            logical = block * self.weight_scale
            if eps is not None:
                tile_eps = eps[tile.row_start : tile.row_stop, tile.col_start : tile.col_stop]
                logical = logical + variance_model.reparameterize_data(tile_eps, logical)
            elif chip is not None:
                tile_eps = chip.epsilon_for(array.key, logical.shape)
                logical = logical + variance_model.reparameterize_data(tile_eps, logical)
            positive, negative = self.mapping.to_differential(logical / self.weight_scale)
            array.program(interleave_differential(positive, negative))

    def _mvm(self, x: np.ndarray) -> np.ndarray:
        """Rows of float activations -> float MVM outputs (pre-bias)."""
        spec = self.qlayer.act_spec
        x_codes = np.clip(np.rint(x / self.act_scale), spec.qmin, spec.qmax)
        batch = x_codes.shape[0]
        total = np.zeros((batch, self.d_out))
        for tile, array in self.tiles:
            drive = x_codes[:, tile.row_start : tile.row_stop]
            readings = array.mvm(drive)
            pos, neg = deinterleave_readings(readings)
            total[:, tile.col_start : tile.col_stop] += self.mapping.from_differential(pos, neg)
        # Digital rescale: codes*codes -> real units.
        return total * self.act_scale * self.weight_scale

    @property
    def array_count(self) -> int:
        return len(self.tiles)


class MappedLinear(_MappedLayer):
    """One quantized linear layer deployed onto crossbar tiles."""

    def __init__(
        self,
        qlayer: QuantLinear,
        array_rows: int,
        array_cols: int,
        dac: DAC,
        adc: ADC,
        mapping: ConductanceMapping,
        key: str,
    ) -> None:
        spec = qlayer.weight_spec
        _require_per_tensor_scale(qlayer)
        codes = np.clip(
            np.rint(qlayer.weight.data / float(qlayer.weight_scale)), spec.qmin, spec.qmax
        ).T
        super().__init__(qlayer, codes, array_rows, array_cols, dac, adc, mapping, key)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Float activations in, float layer outputs out."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        out = self._mvm(x)
        if self.qlayer.bias is not None:
            out = out + self.qlayer.bias.data
        return out


class MappedConv2d(_MappedLayer):
    """One quantized conv layer deployed onto crossbar tiles (im2col)."""

    def __init__(
        self,
        qlayer: QuantConv2d,
        array_rows: int,
        array_cols: int,
        dac: DAC,
        adc: ADC,
        mapping: ConductanceMapping,
        key: str,
    ) -> None:
        spec = qlayer.weight_spec
        _require_per_tensor_scale(qlayer)
        flat = qlayer.weight.data.reshape(qlayer.out_channels, -1)
        codes = np.clip(
            np.rint(flat / float(qlayer.weight_scale)), spec.qmin, spec.qmax
        ).T
        super().__init__(qlayer, codes, array_rows, array_cols, dac, adc, mapping, key)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """NCHW float activations in, NCHW float conv outputs out."""
        from repro.nn.conv import im2col

        x = np.asarray(x, dtype=np.float64)
        kernel = (self.qlayer.kernel_size, self.qlayer.kernel_size)
        patches = im2col(x, kernel, self.qlayer.stride, self.qlayer.padding)
        n, h, w, _ = patches.shape
        out = self._mvm(patches.reshape(n * h * w, -1))
        out = out.reshape(n, h, w, self.d_out).transpose(0, 3, 1, 2)
        if self.qlayer.bias is not None:
            out = out + self.qlayer.bias.data.reshape((1, -1, 1, 1))
        return out


class PimChip:
    """A chip instance: fixed fabrication variation + deployed layers."""

    def __init__(
        self,
        spec: VariabilitySpec,
        array_rows: int = 512,
        array_cols: int = 512,
        dac: DAC | None = None,
        adc: ADC | None = None,
        seed: int = 0,
        variation: ChipVariation | None = None,
    ) -> None:
        self.spec = spec
        self.array_rows = array_rows
        self.array_cols = array_cols
        self.dac = dac or DAC()
        self.adc = adc or ADC(ideal=True)
        self.mapping = ConductanceMapping()
        # An externally sampled variation pins this chip to an already-known
        # physical instance (fleet serving samples chips up front); without
        # one the chip samples its own, as before.
        self.variation = (
            variation
            if variation is not None
            else VariabilitySampler(spec, seed=seed).sample_chip()
        )
        self.layers: dict[str, _MappedLayer] = {}

    def _deploy(self, cls, qlayer, name: str, eps: np.ndarray | None = None):
        mapped = cls(
            qlayer,
            self.array_rows,
            self.array_cols,
            self.dac,
            self.adc,
            self.mapping,
            key=name,
        )
        if eps is not None:
            mapped.program(None, self.spec.variance_model, eps=eps)
        elif not self.spec.is_null:
            mapped.program(self.variation, self.spec.variance_model)
        self.layers[name] = mapped
        return mapped

    def deploy_linear(
        self, qlayer: QuantLinear, name: str, eps: np.ndarray | None = None
    ) -> MappedLinear:
        """Program a quantized linear layer onto this chip's arrays."""
        return self._deploy(MappedLinear, qlayer, name, eps=eps)

    def deploy_conv2d(
        self, qlayer: QuantConv2d, name: str, eps: np.ndarray | None = None
    ) -> MappedConv2d:
        """Program a quantized conv layer onto this chip's arrays."""
        return self._deploy(MappedConv2d, qlayer, name, eps=eps)

    def gtm_read(self, num_cells: int, w_g: float = 1.0, x_g: float = 1.0) -> float:
        """Physically measure eps_B with a reference column (Fig. 3, left).

        Builds an actual ``num_cells x 1`` array, programs all cells to
        ``w_g``, applies this chip's variation under the weight-proportional
        model (a uniform column is insensitive to the distinction between
        the two variance models), drives it with ``x_g`` and returns
        ``y_GTM / y_0 - 1``.
        """
        from repro.variability.models import WeightProportionalVariance

        column = CrossbarArray(
            num_cells, 1, dac=self.dac, adc=ADC(ideal=True), key=f"gtm:{num_cells}"
        )
        column.program(np.full((num_cells, 1), w_g))
        column.apply_variation(self.variation, WeightProportionalVariance())
        y0 = num_cells * w_g * x_g
        y = float(column.mvm(np.full((1, num_cells), x_g))[0, 0])
        return y / y0 - 1.0

    @property
    def total_arrays(self) -> int:
        return sum(layer.array_count for layer in self.layers.values())


from repro.nn.module import Module


class _ChipLayerModule(Module):
    """A parameter-free module routing one layer through the chip."""

    def __init__(self, mapped: _MappedLayer) -> None:
        super().__init__()
        object.__setattr__(self, "mapped", mapped)

    def forward(self, x):
        from repro.autograd import Tensor

        data = x.data if isinstance(x, Tensor) else np.asarray(x)
        return Tensor(self.mapped.forward(data))

    def __repr__(self) -> str:
        return f"ChipLayer({self.mapped.qlayer!r})"


def deploy_model(model, chip: PimChip, eps_for=None):
    """Deploy every quantized layer of ``model`` onto ``chip``, in place.

    Each :class:`QuantLinear`/:class:`QuantConv2d` submodule is replaced by
    an adapter that routes its forward pass through the chip's crossbar
    tiles (inference only — the adapters build no autograd graph).  Returns
    the list of deployed layer names — the layers' dotted module paths, the
    same keys :func:`repro.variability.injection.inject_variation` uses, so
    the two fidelities agree on what "one layer" means.

    ``eps_for(path, qlayer)`` optionally supplies a full-layer epsilon
    matrix (``(d_in, d_out)``) per deployed layer, overriding the chip's
    own per-tile draws (see :meth:`_MappedLayer.program`).

    The surrounding digital layers (BN, pooling, activations) keep running
    in float, matching the usual mixed-signal deployment.
    """
    deployed = []

    def convert(module, prefix):
        for name, child in list(module._modules.items()):
            path = prefix + name
            if isinstance(child, QuantConv2d):
                eps = eps_for(path, child) if eps_for is not None else None
                adapter = _ChipLayerModule(chip.deploy_conv2d(child, path, eps=eps))
            elif isinstance(child, QuantLinear):
                eps = eps_for(path, child) if eps_for is not None else None
                adapter = _ChipLayerModule(chip.deploy_linear(child, path, eps=eps))
            else:
                convert(child, path + ".")
                continue
            setattr(module, name, adapter)
            deployed.append(path)

    convert(model, "")
    return deployed
