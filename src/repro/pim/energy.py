"""Energy, latency, and area estimation for PIM deployments.

Analog PIM's headline advantage is the energy of in-array MVMs versus
digital MACs (paper ref [1] targets 10000 TOPS/W).  This module provides a
first-order event-based cost model so experiments can report the price of
design choices — ADC resolution, bit-slicing depth, self-tuning columns —
in physical units rather than FLOP ratios alone.

The model is deliberately simple and fully parameterized: every cost is an
explicit per-event energy/latency/area constant, defaulting to values in
the range of published 28-40nm PIM prototypes.  Nothing in the accuracy
experiments depends on these constants; they only scale the cost reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.pim.tiling import tile_count


@dataclass(frozen=True)
class CostModel:
    """Per-event costs. Energies in pJ, times in ns, areas in um^2."""

    # One cell's contribution to an analog dot product (wordline charge +
    # bitline current integration), per activated row-column pair.
    energy_cell_mac: float = 0.001
    # One DAC conversion (per wordline, per cycle).
    energy_dac: float = 0.05
    # One ADC conversion (per bitline, per cycle); dominates real designs.
    energy_adc: float = 2.0
    # One digital shift-add in the backend (per output, per partial).
    energy_digital_acc: float = 0.01
    # Reference digital 8-bit MAC (for the comparison baseline).
    energy_digital_mac: float = 0.25

    latency_array_read: float = 100.0   # one full array MVM cycle
    latency_adc: float = 5.0            # per conversion (pipelined per column)
    latency_digital_mac: float = 1.0

    area_cell: float = 0.05             # per memory cell
    area_adc: float = 500.0             # per ADC instance
    area_dac: float = 20.0              # per DAC instance


@dataclass
class LayerGeometry:
    """The MVM workload of one layer: shape and how often it runs."""

    d_in: int
    d_out: int
    mvm_count: int = 1  # MVMs per inference (spatial positions for a conv)
    name: str = "layer"


@dataclass
class CostReport:
    """Accumulated costs for one deployment."""

    energy_pj: float = 0.0
    latency_ns: float = 0.0
    area_um2: float = 0.0
    adc_conversions: int = 0
    array_reads: int = 0
    breakdown: dict = field(default_factory=dict)

    @property
    def energy_uj(self) -> float:
        return self.energy_pj * 1e-6

    def scaled(self, count: int) -> "CostReport":
        """Costs of ``count`` back-to-back inferences through this deployment.

        Energy, latency, and event counts scale with activity; area is the
        hardware footprint and does not.  The per-layer breakdown is not
        carried over (it describes one inference).
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        return CostReport(
            energy_pj=self.energy_pj * count,
            latency_ns=self.latency_ns * count,
            area_um2=self.area_um2,
            adc_conversions=self.adc_conversions * count,
            array_reads=self.array_reads * count,
        )

    def add(self, other: "CostReport", name: str) -> None:
        self.energy_pj += other.energy_pj
        self.latency_ns += other.latency_ns
        self.area_um2 += other.area_um2
        self.adc_conversions += other.adc_conversions
        self.array_reads += other.array_reads
        self.breakdown[name] = other

    def __repr__(self) -> str:
        return (
            f"CostReport(energy={self.energy_pj:.1f}pJ, "
            f"latency={self.latency_ns:.1f}ns, area={self.area_um2:.0f}um2, "
            f"adc_conversions={self.adc_conversions})"
        )


class PimCostEstimator:
    """Event-based cost estimate of running layers on tiled analog arrays.

    ``array_rows``/``array_cols`` describe the physical array (logical
    columns after differential mapping are ``array_cols // 2``);
    ``input_cycles`` and ``weight_slices`` come from the bit-slicing scheme;
    ``adcs_per_array`` models ADC sharing (columns multiplexed onto a few
    ADCs, raising latency but cutting area).
    """

    def __init__(
        self,
        cost_model: CostModel | None = None,
        array_rows: int = 512,
        array_cols: int = 512,
        input_cycles: int = 8,
        weight_slices: int = 1,
        adcs_per_array: int = 16,
        differential: bool = True,
    ) -> None:
        if array_rows < 1 or array_cols < 1:
            raise ValueError("array dimensions must be positive")
        if adcs_per_array < 1:
            raise ValueError("need at least one ADC per array")
        self.cost = cost_model or CostModel()
        self.array_rows = array_rows
        self.array_cols = array_cols
        self.input_cycles = input_cycles
        self.weight_slices = weight_slices
        self.adcs_per_array = adcs_per_array
        self.differential = differential

    # ------------------------------------------------------------------
    @property
    def logical_cols_per_array(self) -> int:
        cols = self.array_cols // (2 if self.differential else 1)
        return max(cols // self.weight_slices, 1)

    def arrays_for(self, geometry: LayerGeometry) -> int:
        """Physical arrays needed to hold one layer's weights."""
        return tile_count(
            geometry.d_in, geometry.d_out, self.array_rows, self.logical_cols_per_array
        )

    # ------------------------------------------------------------------
    def layer_cost(self, geometry: LayerGeometry) -> CostReport:
        """Cost of one inference through one layer."""
        report = CostReport()
        arrays = self.arrays_for(geometry)
        physical_cols_used = geometry.d_out * self.weight_slices * (
            2 if self.differential else 1
        )
        cycles = self.input_cycles

        # Energy: cell MACs + conversions + digital accumulation.
        cell_macs = geometry.d_in * physical_cols_used * cycles * geometry.mvm_count
        dac_events = geometry.d_in * cycles * geometry.mvm_count
        adc_events = physical_cols_used * cycles * geometry.mvm_count
        partials = self.weight_slices * cycles
        acc_events = geometry.d_out * partials * geometry.mvm_count

        report.energy_pj = (
            cell_macs * self.cost.energy_cell_mac
            + dac_events * self.cost.energy_dac
            + adc_events * self.cost.energy_adc
            + acc_events * self.cost.energy_digital_acc
        )

        # Latency: arrays fire in parallel; cycles and ADC multiplexing
        # serialize.  Column groups share ADCs.
        cols_per_array = min(physical_cols_used, self.array_cols)
        adc_rounds = int(np.ceil(cols_per_array / self.adcs_per_array))
        per_mvm = cycles * (self.cost.latency_array_read + adc_rounds * self.cost.latency_adc)
        report.latency_ns = per_mvm * geometry.mvm_count

        # Area: weight storage + converter instances.
        report.area_um2 = (
            arrays * self.array_rows * self.array_cols * self.cost.area_cell
            + arrays * self.adcs_per_array * self.cost.area_adc
            + arrays * self.array_rows * self.cost.area_dac
        )
        report.adc_conversions = adc_events
        report.array_reads = arrays * cycles * geometry.mvm_count
        return report

    def model_cost(self, geometries: list[LayerGeometry]) -> CostReport:
        """Summed cost of one inference through all layers."""
        total = CostReport()
        for geometry in geometries:
            total.add(self.layer_cost(geometry), geometry.name)
        return total

    # ------------------------------------------------------------------
    def self_tuning_cost(
        self, geometries: list[LayerGeometry], gtm_cells: int, ltm_columns: int
    ) -> CostReport:
        """Incremental cost of GTM + LTM columns for a deployment.

        The GTM column is read once per inference; each layer's LTM columns
        are read with every MVM of that layer (they share the array's
        wordlines, so no extra DAC events — only cell MACs, ADC conversions
        and the digital correction).
        """
        report = CostReport()
        report.energy_pj += gtm_cells * self.cost.energy_cell_mac + self.cost.energy_adc
        report.adc_conversions += 1
        for geometry in geometries:
            cell_macs = geometry.d_in * ltm_columns * self.input_cycles * geometry.mvm_count
            adc_events = ltm_columns * self.input_cycles * geometry.mvm_count
            corrections = geometry.d_out * geometry.mvm_count
            report.energy_pj += (
                cell_macs * self.cost.energy_cell_mac
                + adc_events * self.cost.energy_adc
                + corrections * self.cost.energy_digital_acc
            )
            report.adc_conversions += adc_events
            report.area_um2 += ltm_columns * self.array_rows * self.cost.area_cell
        report.area_um2 += gtm_cells * self.cost.area_cell
        return report


def digital_baseline_cost(
    geometries: list[LayerGeometry], cost_model: CostModel | None = None
) -> CostReport:
    """Cost of the same workload on a digital MAC datapath."""
    cost = cost_model or CostModel()
    report = CostReport()
    for geometry in geometries:
        macs = geometry.d_in * geometry.d_out * geometry.mvm_count
        report.energy_pj += macs * cost.energy_digital_mac
        report.latency_ns += macs * cost.latency_digital_mac
    return report


def geometries_from_model(model, input_shape: tuple[int, ...]) -> list[LayerGeometry]:
    """Extract per-layer MVM geometries from a quantized model.

    Runs one traced forward (to size conv feature maps), then reads each
    quantized layer's MVM dimensions.
    """
    from repro.autograd import Tensor, no_grad
    from repro.quant.ptq import quantized_layers
    from repro.quant.qlayers import QuantConv2d

    with no_grad():
        model(Tensor(np.zeros((1, *input_shape))))
    geometries = []
    for name, layer in quantized_layers(model):
        if isinstance(layer, QuantConv2d):
            h, w = layer.output_hw(layer._last_input_hw)
            geometries.append(
                LayerGeometry(layer.mvm_input_dim(), layer.out_channels, h * w, name)
            )
        else:
            geometries.append(
                LayerGeometry(layer.mvm_input_dim(), layer.out_features, 1, name)
            )
    return geometries
