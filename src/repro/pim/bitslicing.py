"""Bit-slicing: mapping multi-bit weights and activations onto limited cells.

A ``k``-bit weight rarely fits a single memory cell; practical PIM designs
split the weight's binary representation across several columns
("weight slicing") and stream the activation bits over several cycles
("input bit-serial"), recombining partial sums digitally with shift-adds
(paper refs [4], [8]).  The fake-quant training path never needs this —
it computes with dequantized reals — but the circuit substrate does, and
the equivalence of the two is a strong correctness check: with noise-free
devices and ideal ADCs the sliced analog pipeline must reproduce the
integer matrix product *exactly*.

Signed values use two's-complement slicing: the most significant slice
carries negative weight ``-2^(k-1)``, lower slices are plain binary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def slice_signed(codes: np.ndarray, total_bits: int, bits_per_slice: int) -> np.ndarray:
    """Split signed integer codes into unsigned slices, LSB slice first.

    Returns an array of shape ``(num_slices, *codes.shape)`` whose entries
    are in ``[0, 2**bits_per_slice)``.  Two's complement: reassembling with
    :func:`assemble_signed` recovers ``codes`` exactly for any value in
    ``[-2**(total_bits-1), 2**(total_bits-1) - 1]``.
    """
    if total_bits % bits_per_slice != 0:
        raise ValueError(
            f"total_bits ({total_bits}) must be a multiple of bits_per_slice "
            f"({bits_per_slice})"
        )
    codes = np.asarray(codes)
    if not np.issubdtype(codes.dtype, np.integer):
        rounded = np.rint(codes)
        if not np.allclose(rounded, codes):
            raise ValueError("codes must be integers")
        codes = rounded.astype(np.int64)
    low, high = -(2 ** (total_bits - 1)), 2 ** (total_bits - 1) - 1
    if codes.min() < low or codes.max() > high:
        raise ValueError(f"codes outside the {total_bits}-bit signed range")
    unsigned = np.where(codes < 0, codes + 2**total_bits, codes).astype(np.int64)
    num_slices = total_bits // bits_per_slice
    mask = (1 << bits_per_slice) - 1
    slices = np.empty((num_slices,) + codes.shape, dtype=np.int64)
    for i in range(num_slices):
        slices[i] = (unsigned >> (i * bits_per_slice)) & mask
    return slices


def assemble_signed(slices: np.ndarray, total_bits: int, bits_per_slice: int) -> np.ndarray:
    """Inverse of :func:`slice_signed`."""
    num_slices = total_bits // bits_per_slice
    if slices.shape[0] != num_slices:
        raise ValueError(f"expected {num_slices} slices, got {slices.shape[0]}")
    unsigned = np.zeros(slices.shape[1:], dtype=np.int64)
    for i in range(num_slices):
        unsigned += slices[i].astype(np.int64) << (i * bits_per_slice)
    half = 2 ** (total_bits - 1)
    return np.where(unsigned >= half, unsigned - 2**total_bits, unsigned)


def slice_weights_signed_msb(
    codes: np.ndarray, total_bits: int, bits_per_slice: int
) -> tuple[np.ndarray, np.ndarray]:
    """Slices plus per-slice digital weights (the shift-add coefficients).

    The MSB slice's coefficient is negative (two's complement), so the
    recombination is a single weighted sum:
    ``codes = sum_i coeff[i] * slice[i]``.
    """
    slices = slice_signed(codes, total_bits, bits_per_slice)
    num_slices = total_bits // bits_per_slice
    coeffs = np.array(
        [float(1 << (i * bits_per_slice)) for i in range(num_slices)]
    )
    # Two's complement: the unsigned digits reassemble to the signed code
    # once the MSB digit is reinterpreted in [-2^(b-1), 2^(b-1)) — subtract
    # the base from MSB digits at or above half the base.
    msb = num_slices - 1
    half = 1 << (bits_per_slice - 1)
    # Convert MSB slice from unsigned to signed digit in [-half, half-1].
    signed_msb = np.where(slices[msb] >= half, slices[msb] - (1 << bits_per_slice), slices[msb])
    slices = slices.copy()
    slices[msb] = signed_msb
    return slices, coeffs


@dataclass(frozen=True)
class BitSlicingScheme:
    """How one logical MVM maps onto sliced analog operations.

    ``weight_bits``/``activation_bits`` are the logical precisions;
    ``bits_per_cell`` limits each memory cell; ``dac_bits`` limits the
    wordline driver per cycle (1 = fully bit-serial).
    """

    weight_bits: int = 4
    activation_bits: int = 8
    bits_per_cell: int = 2
    dac_bits: int = 1

    def __post_init__(self) -> None:
        if self.weight_bits % self.bits_per_cell != 0:
            raise ValueError("weight_bits must be a multiple of bits_per_cell")
        if self.activation_bits % self.dac_bits != 0:
            raise ValueError("activation_bits must be a multiple of dac_bits")

    @property
    def weight_slices(self) -> int:
        return self.weight_bits // self.bits_per_cell

    @property
    def input_cycles(self) -> int:
        return self.activation_bits // self.dac_bits

    @property
    def column_expansion(self) -> int:
        """Physical columns per logical output column (before differential)."""
        return self.weight_slices

    def mvm(self, activations: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Reference bit-sliced integer MVM: ``activations @ weights``.

        ``activations``: signed integer codes, shape (N, d_in);
        ``weights``: signed integer codes, shape (d_in, d_out).
        Computes the product exclusively through sliced partial products
        recombined with shift-adds, mirroring the analog pipeline's digital
        backend, and returns int64 results equal to the direct product.
        """
        w_slices, w_coeffs = slice_weights_signed_msb(
            weights, self.weight_bits, self.bits_per_cell
        )
        a_slices, a_coeffs = slice_weights_signed_msb(
            activations, self.activation_bits, self.dac_bits
        )
        total = np.zeros((activations.shape[0], weights.shape[1]), dtype=np.int64)
        for ai in range(self.input_cycles):
            for wi in range(self.weight_slices):
                partial = a_slices[ai].astype(np.int64) @ w_slices[wi].astype(np.int64)
                total += int(a_coeffs[ai] * w_coeffs[wi]) * partial
        return total

    def adc_dynamic_range(self, rows: int) -> int:
        """Worst-case magnitude of one sliced partial-sum (per bitline).

        Sets the ADC resolution requirement: each analog partial product
        accumulates at most ``rows`` terms of magnitude
        ``(2**dac_bits - 1) * (2**bits_per_cell - 1)``... with signed MSB
        digits the bound doubles on the MSB slice; this returns the
        conservative bound used for ADC sizing.
        """
        a_max = 2 ** self.dac_bits - 1 if self.dac_bits == 1 else 2 ** (self.dac_bits - 1)
        w_max = 2**self.bits_per_cell - 1
        return rows * max(a_max, 1) * w_max
