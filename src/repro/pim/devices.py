"""Memory-cell device models for the analog crossbar substrate.

The paper's variability model (Sec. II-B) abstracts fabrication effects
into reparameterized Gaussian perturbations of the *logical* weights.  This
module provides the device-level grounding for that abstraction: concrete
multi-level cell technologies (RRAM, Flash, MRAM) with finite conductance
ranges, discrete programmable levels, program/verify write noise, and
cycle-to-cycle read noise.

The connection to the paper's model: programming a cell to conductance
``g`` leaves a residual error whose standard deviation scales either with
``g`` itself (weight-proportional variance, paper ref [2]) or with the
technology's full-scale conductance (layer-fixed variance, paper ref [17]).
:meth:`DeviceModel.variance_model_name` names which of the two each
technology approximates, so experiments can pick the matching
:class:`repro.variability.VarianceModel` and self-tuning architecture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DeviceModel:
    """A programmable analog memory cell technology.

    Conductances live in ``[g_min, g_max]`` (Siemens, arbitrary units here);
    ``bits_per_cell`` gives the number of reliably distinguishable levels
    (``2**bits_per_cell``).  ``sigma_program`` is the relative standard
    deviation of the residual programming error after program-and-verify;
    ``sigma_read`` is the relative cycle-to-cycle read fluctuation.  Both
    are expressed relative to ``g_max`` when ``proportional=False`` (the
    layer-fixed flavour) or relative to the programmed conductance when
    ``proportional=True`` (the weight-proportional flavour).
    ``drift_scale`` is the relative severity of time-dependent conductance
    drift (see :mod:`repro.pim.drift`): 1.0 is PCM/RRAM-class log-time
    decay, flash retention is far tighter, bistable MRAM barely moves.
    """

    name: str = "generic"
    g_min: float = 0.0
    g_max: float = 1.0
    bits_per_cell: int = 4
    sigma_program: float = 0.0
    sigma_read: float = 0.0
    proportional: bool = True
    drift_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.g_max <= self.g_min:
            raise ValueError("g_max must exceed g_min")
        if self.bits_per_cell < 1:
            raise ValueError("need at least one bit per cell")
        if self.sigma_program < 0.0 or self.sigma_read < 0.0:
            raise ValueError("noise sigmas must be non-negative")
        if self.drift_scale < 0.0:
            raise ValueError("drift_scale must be non-negative")

    # ------------------------------------------------------------------
    # Level grid
    # ------------------------------------------------------------------
    @property
    def num_levels(self) -> int:
        return 2**self.bits_per_cell

    @property
    def g_range(self) -> float:
        return self.g_max - self.g_min

    def levels(self) -> np.ndarray:
        """The programmable conductance grid (ascending)."""
        return np.linspace(self.g_min, self.g_max, self.num_levels)

    def level_step(self) -> float:
        """Conductance difference between adjacent levels."""
        return self.g_range / (self.num_levels - 1)

    def nearest_level(self, conductance: np.ndarray) -> np.ndarray:
        """Snap target conductances to the nearest programmable level."""
        target = np.clip(np.asarray(conductance, dtype=np.float64), self.g_min, self.g_max)
        step = self.level_step()
        index = np.rint((target - self.g_min) / step)
        return self.g_min + index * step

    # ------------------------------------------------------------------
    # Noise
    # ------------------------------------------------------------------
    def _noise_scale(self, conductance: np.ndarray, sigma: float) -> np.ndarray:
        if self.proportional:
            return sigma * np.abs(conductance)
        return np.full_like(np.asarray(conductance, dtype=np.float64), sigma * self.g_max)

    def program(
        self, target: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Program cells toward ``target``: snap to levels, add write noise.

        The result is clipped back into the physical conductance window
        (program/verify cannot push a cell beyond its range).
        """
        snapped = self.nearest_level(target)
        if self.sigma_program == 0.0 or rng is None:
            return snapped
        noise = rng.normal(0.0, 1.0, size=snapped.shape) * self._noise_scale(
            snapped, self.sigma_program
        )
        return np.clip(snapped + noise, self.g_min, self.g_max)

    def read(
        self, programmed: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """One read of programmed conductances with cycle-to-cycle noise."""
        programmed = np.asarray(programmed, dtype=np.float64)
        if self.sigma_read == 0.0 or rng is None:
            return programmed.copy()
        noise = rng.normal(0.0, 1.0, size=programmed.shape) * self._noise_scale(
            programmed, self.sigma_read
        )
        return programmed + noise

    # ------------------------------------------------------------------
    # Mapping to the paper's abstractions
    # ------------------------------------------------------------------
    @property
    def variance_model_name(self) -> str:
        """Which paper variance model this technology approximates."""
        return "weight-proportional" if self.proportional else "layer-fixed"

    def effective_sigma(self) -> float:
        """Total relative write-error sigma seen by the logical weights.

        Programming noise is the fabrication-time component the paper's
        ``sigma_W`` models (read noise is a temporal effect handled
        separately by :mod:`repro.pim.drift`).
        """
        return self.sigma_program

    def quantization_error_rms(self) -> float:
        """RMS conductance error from level snapping (uniform rounding)."""
        return self.level_step() / np.sqrt(12.0)


# ----------------------------------------------------------------------
# Technology presets (parameters follow the ranges quoted in the paper's
# device references: [2] RRAM, [9] 5-bit/cell Flash, [6]-[7] MRAM).
# ----------------------------------------------------------------------


def rram(sigma_program: float = 0.1, bits_per_cell: int = 4) -> DeviceModel:
    """Resistive RAM: multi-level, weight-proportional write error."""
    return DeviceModel(
        name="rram",
        g_min=0.0,
        g_max=1.0,
        bits_per_cell=bits_per_cell,
        sigma_program=sigma_program,
        sigma_read=0.02,
        proportional=True,
        drift_scale=1.0,
    )


def flash(sigma_program: float = 0.03, bits_per_cell: int = 5) -> DeviceModel:
    """NOR/NAND Flash: 5 bits/cell production-ready (paper ref [9]);
    program/verify leaves a near-uniform (layer-fixed-like) residual."""
    return DeviceModel(
        name="flash",
        g_min=0.0,
        g_max=1.0,
        bits_per_cell=bits_per_cell,
        sigma_program=sigma_program,
        sigma_read=0.01,
        proportional=False,
        drift_scale=0.15,
    )


def mram(sigma_program: float = 0.05) -> DeviceModel:
    """MRAM: binary cells (1 bit) with small, fixed-magnitude fluctuation."""
    return DeviceModel(
        name="mram",
        g_min=0.0,
        g_max=1.0,
        bits_per_cell=1,
        sigma_program=sigma_program,
        sigma_read=0.01,
        proportional=False,
        drift_scale=0.1,
    )


def ideal(bits_per_cell: int = 8) -> DeviceModel:
    """Noise-free device with a dense level grid (debug / upper bound)."""
    return DeviceModel(
        name="ideal",
        g_min=0.0,
        g_max=1.0,
        bits_per_cell=bits_per_cell,
        sigma_program=0.0,
        sigma_read=0.0,
        proportional=True,
        drift_scale=0.0,
    )


_PRESETS = {
    "rram": rram,
    "flash": flash,
    "mram": mram,
    "ideal": ideal,
}


def device_by_name(name: str, **overrides) -> DeviceModel:
    """Look up a technology preset by name (``rram``/``flash``/``mram``/``ideal``)."""
    if name not in _PRESETS:
        raise KeyError(f"unknown device {name!r}; options: {sorted(_PRESETS)}")
    return _PRESETS[name](**overrides)
