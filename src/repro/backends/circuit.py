"""Circuit backend: chips realized as tiled crossbar hardware (``pim.chip``).

Where :class:`~repro.backends.fakequant.FakeQuantBackend` perturbs weights
inside the fake-quant forward, this backend actually *builds* the chip: a
:class:`~repro.pim.chip.PimChip` whose quantized layers are lowered onto
differential crossbar tiles and whose forward runs DAC -> analog MVM -> ADC
-> digital rescale.  With an ideal ADC the two backends realize the same
mathematics, so a fleet can be served at either fidelity — the parity is
exercised end to end through ``InferenceEngine.run_trace`` by the test
suite.

The one subtlety is *which* epsilon pattern lands on the arrays.  The
fake-quant path draws one pattern per layer, keyed by the layer's dotted
module name; the raw ``PimChip`` path draws per tile.  To make both paths
program the same physical chip from the same
:class:`~repro.variability.sampler.ChipVariation`, this backend draws the
layer-keyed pattern and slices it across tiles (``eps_for`` hook of
:func:`~repro.pim.chip.deploy_model`).
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import ChipBackend, ProgrammedChip, register_backend
from repro.backends.fakequant import replicate_for_programming
from repro.pim.chip import PimChip, deploy_model
from repro.pim.converters import ADC, DAC
from repro.pim.energy import PimCostEstimator
from repro.variability.sampler import ChipVariation, VariabilitySpec


def layer_epsilon(variation: ChipVariation, name: str, qlayer) -> np.ndarray:
    """The layer's epsilon in MVM codes layout ``(d_in, d_out)``.

    Drawn with the same key (dotted layer name) and shape (the fake-quant
    weight tensor) as :func:`~repro.variability.injection.inject_variation`,
    then rearranged exactly like the weight codes are
    (``(out, ...) -> flatten -> transpose``), so element ``[i, j]`` of the
    result perturbs the same logical weight on both fidelities.
    """
    eps = variation.epsilon_for(name, qlayer.weight.data.shape)
    return np.asarray(eps).reshape(eps.shape[0], -1).T


class CircuitChip(ProgrammedChip):
    """A chip realized as crossbar tiles behind DAC/ADC converters."""

    backend = "circuit"

    def __init__(
        self,
        chip_id: str,
        mapping,
        chip: PimChip,
        deployed: list[str],
        spec: VariabilitySpec,
        backend_obj=None,
        source_model=None,
    ) -> None:
        super().__init__(chip_id, mapping, backend_obj, source_model)
        self.chip = chip
        self.deployed = list(deployed)
        self.spec = spec

    def refresh(self, variation: ChipVariation) -> None:
        """Re-derive physical conductances from a drifted variation.

        Drift moves the *effective* conductances, not the programmed
        targets; reprogramming each mapped layer with the drifted epsilon
        models reading the drifted array.
        """
        for name in self.deployed:
            mapped = self.chip.layers[name]
            mapped.program(
                None,
                self.spec.variance_model,
                eps=layer_epsilon(variation, name, mapped.qlayer),
            )
        self.bump_version()

    def apply_faults(self, spec, seed: int = 0) -> int:
        """Pin stuck cells directly in each mapped layer's weight codes.

        Masks are drawn on the fake-quant weight shape (same keying as
        :func:`layer_epsilon`) and rearranged into the codes layout, so a
        circuit chip and a fake-quant chip given the same ``(spec, seed)``
        pin the *same* logical weights.  Callers must :meth:`refresh`
        afterwards — the tiles are programmed from ``codes``, and the
        mutation only reaches silicon on the next (re)program.
        """
        from repro.variability.faults import apply_stuck_codes, layer_fault_masks

        faulted = 0
        for name in self.deployed:
            mapped = self.chip.layers[name]
            qlayer = mapped.qlayer
            stuck_off, stuck_on = layer_fault_masks(
                name, qlayer.weight.data.shape, spec, seed
            )
            # Same (out, ...) -> flatten -> transpose rearrangement the
            # weight codes themselves went through at deploy time.
            stuck_off = stuck_off.reshape(stuck_off.shape[0], -1).T
            stuck_on = stuck_on.reshape(stuck_on.shape[0], -1).T
            qspec = qlayer.weight_spec
            faulted += apply_stuck_codes(
                mapped.codes, stuck_off, stuck_on, qspec.qmin, qspec.qmax
            )
        self.bump_version()
        return faulted

    def describe(self) -> dict:
        return {
            "backend": self.backend,
            "chip_id": self.chip_id,
            "self_tuning": False,
            "quantized_layers": len(self.deployed),
            "arrays": self.chip.total_arrays,
            "array_rows": self.chip.array_rows,
            "array_cols": self.chip.array_cols,
            "adc_bits": None if self.chip.adc.ideal else self.chip.adc.bits,
        }


@register_backend
class CircuitBackend(ChipBackend):
    """Program chips as tiled crossbar hardware.

    ``array_rows``/``array_cols`` size the physical arrays (tiling splits
    larger layers across several, see :mod:`repro.pim.tiling`); ``dac`` and
    ``adc`` model the converter interface — the default ADC is ideal, which
    is what makes circuit and fake-quant serving bit-compatible.  The cost
    estimator defaults to the same array geometry, so energy telemetry and
    the simulated hardware agree on the design point.
    """

    name = "circuit"

    def __init__(
        self,
        array_rows: int = 256,
        array_cols: int = 256,
        dac: DAC | None = None,
        adc: ADC | None = None,
        estimator: PimCostEstimator | None = None,
        costed: bool = True,
    ) -> None:
        if estimator is None and costed:
            estimator = PimCostEstimator(array_rows=array_rows, array_cols=array_cols)
        super().__init__(estimator)
        if array_rows < 1 or array_cols < 2:
            raise ValueError("arrays need >= 1 row and >= 2 columns (differential pairs)")
        self.array_rows = int(array_rows)
        self.array_cols = int(array_cols)
        self.dac = dac or DAC()
        self.adc = adc or ADC(ideal=True)

    def program(
        self,
        model,
        variation: ChipVariation,
        *,
        spec: VariabilitySpec,
        chip_id: str = "chip",
        self_tuning=None,
    ) -> CircuitChip:
        if self_tuning is not None:
            raise NotImplementedError(
                "the circuit backend has no GTM/LTM columns yet; "
                "serve self-tuned fleets through the fake-quant backend"
            )
        mapping = replicate_for_programming(model)
        mapping.eval()
        chip = PimChip(
            spec,
            array_rows=self.array_rows,
            array_cols=self.array_cols,
            dac=self.dac,
            adc=self.adc,
            variation=variation,
        )
        deployed = deploy_model(
            mapping,
            chip,
            eps_for=lambda name, qlayer: layer_epsilon(variation, name, qlayer),
        )
        return CircuitChip(
            chip_id,
            mapping,
            chip,
            deployed,
            spec,
            backend_obj=self,
            source_model=model,
        )

    def describe(self) -> dict:
        return {
            "backend": self.name,
            "array_rows": self.array_rows,
            "array_cols": self.array_cols,
            "adc_bits": None if self.adc.ideal else self.adc.bits,
            "costed": self.estimator is not None,
        }
