"""Fake-quant backend: the fast training-fidelity chip realization.

This extracts (and speeds up) what ``InferenceEngine._program`` used to do
inline: replicate the golden model, install the chip's sampled variation on
every quantized layer, and optionally attach GTM/LTM self-tuning.  The
expensive part used to be a full ``copy.deepcopy`` of the model per chip;
:func:`replicate_for_programming` instead builds a *structural* replica —
fresh :class:`~repro.nn.module.Module` objects (per-chip variation and
tuning state must be independent) whose parameters and buffers are **shared**
with the golden model, except each quantized layer's weight tensor, which is
copied because it is the crossbar-written state a backend may legitimately
perturb.  Programming N chips therefore costs N copies of the quantized
weights only — memory no longer scales with non-quantized parameters
(BatchNorm affines, biases) or with buffers.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.backends.base import ChipBackend, ProgrammedChip, register_backend
from repro.nn.module import Module, Parameter
from repro.pim.energy import PimCostEstimator
from repro.selftuning.wrap import attach_self_tuning
from repro.variability.injection import INJECTION_MODES, inject_variation
from repro.variability.sampler import ChipVariation, VariabilitySpec


def replicate_for_programming(module: Module) -> Module:
    """Structure-copy ``module`` for per-chip programming.

    Module objects are fresh (so per-chip attributes — injected epsilon,
    ``current_chip``, ``self_tuner``, train/eval mode — never leak back to
    the golden model), while parameters and buffers alias the golden
    model's arrays.  Only quantized-layer weights are deep-copied: they are
    the state a chip programming step owns.  Registries are rebuilt so
    ``setattr``/``set_buffer`` on the replica cannot touch the original.
    """
    clone = object.__new__(type(module))
    clone.__dict__.update(module.__dict__)
    object.__setattr__(clone, "_parameters", OrderedDict(module._parameters))
    object.__setattr__(clone, "_buffers", OrderedDict(module._buffers))
    object.__setattr__(clone, "_modules", OrderedDict())
    for name, child in module._modules.items():
        child_clone = replicate_for_programming(child)
        clone._modules[name] = child_clone
        object.__setattr__(clone, name, child_clone)
    if getattr(module, "accepts_variation", False):
        weight = Parameter(module.weight.data.copy())
        clone._parameters["weight"] = weight
        object.__setattr__(clone, "weight", weight)
    return clone


class FakeQuantChip(ProgrammedChip):
    """A chip realized as a fake-quant model replica with installed epsilon."""

    backend = "fake-quant"

    def __init__(
        self,
        chip_id: str,
        mapping: Module,
        spec: VariabilitySpec,
        injection_mode: str,
        tuner=None,
        backend_obj=None,
        source_model=None,
    ) -> None:
        super().__init__(chip_id, mapping, backend_obj, source_model)
        self.spec = spec
        self.injection_mode = injection_mode
        self.tuner = tuner

    def refresh(self, variation: ChipVariation) -> None:
        inject_variation(self.mapping, variation, self.spec, self.injection_mode)
        self.bump_version()

    def apply_faults(self, spec, seed: int = 0) -> int:
        """Pin stuck cells into the replica's (owned) quantized weights.

        The replica's weight tensors are exactly the crossbar-written
        state this backend owns per chip (everything else aliases the
        golden model), so pinning happens there: weights are taken to code
        space, stuck cells pinned via
        :func:`~repro.variability.faults.apply_stuck_codes`, and the codes
        written back as dequantized values — which round-trip exactly
        through the fake-quant forward, matching what the circuit backend
        reads off its faulted tiles.
        """
        import numpy as np

        from repro.quant.ptq import quantized_layers
        from repro.variability.faults import apply_stuck_codes, layer_fault_masks

        faulted = 0
        for name, layer in quantized_layers(self.mapping):
            weight = layer.weight.data
            stuck_off, stuck_on = layer_fault_masks(name, weight.shape, spec, seed)
            if layer.qconfig.per_channel_weights:
                scales = np.asarray(layer.weight_scale).reshape(
                    (-1,) + (1,) * (weight.ndim - 1)
                )
            else:
                scales = float(layer.weight_scale)
            qspec = layer.weight_spec
            codes = np.clip(np.rint(weight / scales), qspec.qmin, qspec.qmax)
            faulted += apply_stuck_codes(
                codes, stuck_off, stuck_on, qspec.qmin, qspec.qmax
            )
            weight[...] = codes * scales
        self.bump_version()
        return faulted

    def describe(self) -> dict:
        from repro.quant.ptq import quantized_layers

        return {
            "backend": self.backend,
            "chip_id": self.chip_id,
            "self_tuning": self.tuner is not None,
            "quantized_layers": sum(1 for _ in quantized_layers(self.mapping)),
        }


@register_backend
class FakeQuantBackend(ChipBackend):
    """Program chips as fake-quant replicas (the training-path fidelity).

    ``injection_mode`` selects how epsilon enters the forward pass (the
    serving default is the numeric ``"naive"``-equivalent behaviour of the
    reparameterized mode under ``no_grad``; both are identical at inference
    time, so the default mirrors the training path).  The default cost
    estimator prices batches as if the same mapping were realized on tiled
    analog arrays — the fake-quant path *simulates* that hardware, so its
    energy story is the hardware's.
    """

    name = "fake-quant"

    def __init__(
        self,
        injection_mode: str = "reparameterized",
        estimator: PimCostEstimator | None = None,
        costed: bool = True,
    ) -> None:
        super().__init__(estimator if estimator is not None else (PimCostEstimator() if costed else None))
        if injection_mode not in INJECTION_MODES:
            raise ValueError(
                f"injection_mode must be one of {INJECTION_MODES}, got {injection_mode!r}"
            )
        self.injection_mode = injection_mode

    def program(
        self,
        model,
        variation: ChipVariation,
        *,
        spec: VariabilitySpec,
        chip_id: str = "chip",
        self_tuning=None,
    ) -> FakeQuantChip:
        mapping = replicate_for_programming(model)
        mapping.eval()
        inject_variation(mapping, variation, spec, self.injection_mode)
        tuner = None
        if self_tuning is not None:
            tuner = attach_self_tuning(mapping, self_tuning)
        return FakeQuantChip(
            chip_id,
            mapping,
            spec,
            self.injection_mode,
            tuner=tuner,
            backend_obj=self,
            source_model=model,
        )
