"""Fused fleet forward: one stacked numpy call chain for N programmed chips.

The serving hot path used to be O(chips x layers) Python dispatch: every
chip ran its own per-layer forward, so fleet throughput was bounded by
interpreter and autograd overhead rather than by numpy.  But replicas of
one golden model share *all* structure — only the quantized per-layer
state differs per chip (perturbed weights on the fake-quant path, tile
conductances on the circuit path).  :class:`FusedFleetForward` exploits
that: it stacks each layer's per-chip state into one ``(chips, ...)``
tensor at build time and then executes a whole group of micro-batches —
one per chip — through a single merged elementwise chain per layer, with
one GEMM per (chip, layer) slice.

Bit-exactness is a hard requirement, not an aspiration: the fused path
must produce *the same bits* as dispatching each batch through its chip's
:meth:`~repro.backends.base.ProgrammedChip.forward`.  Two rules make
that hold:

* every elementwise op (activation fake-quant, pooling, bias add) is
  applied in exactly the same order and association as the unfused code,
  on merged arrays — elementwise math is batching-invariant (the circuit
  MVM chain additionally runs per chip slice, where merged temporaries
  measure slower on cache-bound hosts);
* every GEMM runs with exactly the operand shapes, strides, and dtypes
  the unfused path would use: the merged activation tensor is sliced
  back per chip (contiguous row ranges) and multiplied against that
  chip's weight slice in a plain 2-D ``np.matmul`` — the *same* BLAS
  call the unfused layer makes, so no assumption about reduction-order
  invariance across GEMM geometries is ever needed.

Because the GEMMs are per-slice, groups do **not** require equal batch
sizes — the merge only amortizes interpreter, im2col, quantization, and
activation traffic across the fleet.

Effective per-chip state is snapshotted at build time, so a stack is a
*derived view* that goes stale whenever a member chip mutates.  Each
:class:`~repro.backends.base.ProgrammedChip` carries a ``version``
counter bumped on ``refresh``/``apply_faults``; :meth:`FusedFleetForward.covers`
compares ``(identity, version)`` pairs, and the serving engine rebuilds
lazily when a group is no longer covered (reprogramming and chip
replacement create new chip objects, which fail the identity check).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.backends.base import ProgrammedChip
from repro.backends.circuit import CircuitChip
from repro.backends.fakequant import FakeQuantChip, replicate_for_programming
from repro.nn.conv import im2col
from repro.nn.module import Module
from repro.pim.chip import MappedConv2d, MappedLinear, _ChipLayerModule
from repro.quant.ptq import quantized_layers
from repro.quant.qlayers import QuantConv2d, QuantLinear


class UnstackableError(RuntimeError):
    """A fleet cannot be fused into one stacked forward.

    Raised by :meth:`FusedFleetForward.build` with a human-readable
    reason (mixed backends, self-tuning attached, noisy ADCs, mismatched
    tile plans, ...).  Callers fall back to per-chip dispatch — fusion is
    an optimization, never a capability.
    """


def _all_equal(values) -> bool:
    values = list(values)
    return all(v == values[0] for v in values[1:])


class _FusedLayerBase(Module):
    """Shared plumbing for the template's stacked leaf layers.

    A fused adapter is parameter-free (stacked state is derived, not
    trainable); it reads the active group context — ``(idx, bounds)``,
    the member-stack positions and merged-row boundaries of the group's
    per-chip batches — from its owning :class:`FusedFleetForward` on
    every call.
    """

    def __init__(self, owner: "FusedFleetForward") -> None:
        super().__init__()
        object.__setattr__(self, "owner", owner)


def _sliced_matmul(flat: np.ndarray, idx, bounds, scale: int, stacks) -> np.ndarray:
    """Per-chip-slice GEMMs over a merged activation matrix.

    ``flat`` is ``(sum(B_c) * scale, k)`` with chip ``c``'s rows at
    ``[bounds[c] * scale, bounds[c + 1] * scale)``; ``stacks[pos]`` is
    that chip's ``(k, n)`` operand *in the unfused layout* (an
    F-contiguous ``.T`` view for weight matrices, C-contiguous for
    conductance tiles).  Each slice runs the identical 2-D ``np.matmul``
    the unfused layer would — contiguous A slice, same-layout B — which
    is what makes the fused output bit-identical to per-chip dispatch on
    any BLAS (the transpose flag reaches the BLAS kernel, and output
    bits are *not* invariant to it at small M).
    """
    out = np.empty((flat.shape[0], stacks[idx[0]].shape[1]))
    for pos, start, stop in zip(idx, bounds[:-1], bounds[1:]):
        rows = slice(start * scale, stop * scale)
        np.matmul(flat[rows], stacks[pos], out=out[rows])
    return out


# ----------------------------------------------------------------------
# Fake-quant backend: stacked effective weights
# ----------------------------------------------------------------------
class _FusedQuantLinear(_FusedLayerBase):
    """Stacked :class:`~repro.quant.qlayers.QuantLinear` across the fleet."""

    def __init__(self, owner, qlayer: QuantLinear, stacks: list[np.ndarray]) -> None:
        super().__init__(owner)
        object.__setattr__(self, "qlayer", qlayer)
        # Per chip, (in_features, out_features): the transpose of the chip
        # layer's _quantize_weight() output, bit-identical per element.
        object.__setattr__(self, "stacks", stacks)

    def forward(self, x):
        idx, bounds = self.owner._group
        qlayer = self.qlayer
        data = x.data if isinstance(x, Tensor) else np.asarray(x)
        if qlayer.qconfig.quantize_activations:
            spec = qlayer.act_spec
            codes = np.clip(np.rint(data / float(qlayer.act_scale)), spec.qmin, spec.qmax)
            data = codes * float(qlayer.act_scale)
        out = _sliced_matmul(data, idx, bounds, 1, self.stacks)
        if qlayer.bias is not None:
            out = out + qlayer.bias.data
        return Tensor(out)


class _FusedQuantConv2d(_FusedLayerBase):
    """Stacked :class:`~repro.quant.qlayers.QuantConv2d` across the fleet.

    im2col runs once over the merged batch (patch extraction is
    per-sample, so merged rows are bit-identical to per-chip rows), then
    each chip's row range — ``B_c * H_out * W_out`` flat output
    positions — multiplies that chip's flattened weight matrix in the
    same 2-D GEMM the unfused :func:`~repro.nn.conv.conv2d` runs.
    """

    def __init__(self, owner, qlayer: QuantConv2d, stacks: list[np.ndarray]) -> None:
        super().__init__(owner)
        object.__setattr__(self, "qlayer", qlayer)
        # Per chip, (C*kh*kw, out_channels) flattened-transposed weights.
        object.__setattr__(self, "stacks", stacks)

    def forward(self, x):
        idx, bounds = self.owner._group
        qlayer = self.qlayer
        data = x.data if isinstance(x, Tensor) else np.asarray(x)
        if qlayer.qconfig.quantize_activations:
            spec = qlayer.act_spec
            codes = np.clip(np.rint(data / float(qlayer.act_scale)), spec.qmin, spec.qmax)
            data = codes * float(qlayer.act_scale)
        kernel = (qlayer.kernel_size, qlayer.kernel_size)
        cols = im2col(data, kernel, qlayer.stride, qlayer.padding)
        total, h_out, w_out, patch = cols.shape
        flat = cols.reshape(-1, patch)
        out = _sliced_matmul(flat, idx, bounds, h_out * w_out, self.stacks)
        out = out.reshape(total, h_out, w_out, -1).transpose(0, 3, 1, 2)
        if qlayer.bias is not None:
            out = out + qlayer.bias.data.reshape((1, -1, 1, 1))
        return Tensor(out)


# ----------------------------------------------------------------------
# Circuit backend: stacked tile conductances
# ----------------------------------------------------------------------
class _FusedMappedBase(_FusedLayerBase):
    """Shared per-slice MVM machinery for circuit-deployed layers.

    The circuit path quantizes *after* patch extraction, so its
    elementwise DAC/clip chain runs over the full im2col drive matrix.
    Running that chain merged is a measured pessimization on cache-bound
    hosts (the working set of the op-by-op temporaries triples), so the
    fused circuit layer shares only the merged glue (im2col, pooling,
    activations, reshapes) and runs each chip's *own*
    :meth:`~repro.pim.chip._MappedLayer._mvm` on its contiguous row
    slice — bit-exactness by construction, since it is literally the
    unfused code on the same rows.
    """

    def __init__(self, owner, mapped_layers: list) -> None:
        super().__init__(owner)
        # Per stack position, that chip's own mapped layer object.
        object.__setattr__(self, "mapped_layers", mapped_layers)

    def _per_chip_mvm(self, flat: np.ndarray, idx, bounds, scale: int) -> np.ndarray:
        first = self.mapped_layers[idx[0]]
        out = np.empty((flat.shape[0], first.d_out))
        for pos, start, stop in zip(idx, bounds[:-1], bounds[1:]):
            rows = slice(start * scale, stop * scale)
            out[rows] = self.mapped_layers[pos]._mvm(flat[rows])
        return out


class _FusedMappedLinear(_FusedMappedBase):
    """Fleet-shared :class:`~repro.pim.chip.MappedLinear` dispatch."""

    def forward(self, x):
        idx, bounds = self.owner._group
        data = x.data if isinstance(x, Tensor) else np.asarray(x)
        flat = np.atleast_2d(np.asarray(data, dtype=np.float64))
        out = self._per_chip_mvm(flat, idx, bounds, 1)
        qlayer = self.mapped_layers[idx[0]].qlayer
        if qlayer.bias is not None:
            out = out + qlayer.bias.data
        return Tensor(out)


class _FusedMappedConv2d(_FusedMappedBase):
    """Fleet-shared :class:`~repro.pim.chip.MappedConv2d` dispatch.

    The unfused circuit conv flattens im2col patches to a
    ``(B*H_out*W_out, d_in)`` drive matrix; the fused version extracts
    patches from the merged batch once and scales each chip's row range
    by ``H_out * W_out``, so every per-chip MVM sees exactly the drive
    rows the unfused layer would.
    """

    def forward(self, x):
        idx, bounds = self.owner._group
        first = self.mapped_layers[idx[0]]
        qlayer = first.qlayer
        data = x.data if isinstance(x, Tensor) else np.asarray(x)
        data = np.asarray(data, dtype=np.float64)
        kernel = (qlayer.kernel_size, qlayer.kernel_size)
        patches = im2col(data, kernel, qlayer.stride, qlayer.padding)
        total, h_out, w_out, patch = patches.shape
        out = self._per_chip_mvm(patches.reshape(-1, patch), idx, bounds, h_out * w_out)
        out = out.reshape(total, h_out, w_out, first.d_out).transpose(0, 3, 1, 2)
        if qlayer.bias is not None:
            out = out + qlayer.bias.data.reshape((1, -1, 1, 1))
        return Tensor(out)


# ----------------------------------------------------------------------
# The fused forward itself
# ----------------------------------------------------------------------
class FusedFleetForward:
    """One batched forward for a whole fleet of programmed chips.

    Build one with :meth:`build` from the fleet's
    :class:`~repro.backends.base.ProgrammedChip` list (raises
    :class:`UnstackableError` when the fleet cannot be stacked), check
    freshness with :meth:`covers`, and execute a group of per-chip
    batches with :meth:`forward`.  Instances hold strong references to
    their member chips, so an ``(identity, version)`` pair can never be
    recycled by the allocator while the stack is alive.
    """

    def __init__(self, members, template, backend: str) -> None:
        self._members = list(members)
        self._template = template
        self._index = {id(chip): pos for pos, chip in enumerate(self._members)}
        self._versions = [chip.version for chip in self._members]
        self._group = None
        self.backend = backend

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, chips: list[ProgrammedChip]) -> "FusedFleetForward":
        """Stack ``chips`` into one fused forward.

        Raises :class:`UnstackableError` when the fleet is heterogeneous
        or carries per-chip state the stacked kernels cannot represent
        (self-tuning corrections, noisy ADCs, device/IR-drop models,
        mismatched tile plans or layer sets).
        """
        chips = list(chips)
        if not chips:
            raise UnstackableError("cannot fuse an empty fleet")
        if all(isinstance(chip, FakeQuantChip) for chip in chips):
            template = cls._fakequant_template(chips, owner_slot := _OwnerSlot())
            fused = cls(chips, template, backend="fake-quant")
        elif all(isinstance(chip, CircuitChip) for chip in chips):
            template = cls._circuit_template(chips, owner_slot := _OwnerSlot())
            fused = cls(chips, template, backend="circuit")
        else:
            raise UnstackableError(
                "mixed or unknown chip backends: "
                + ", ".join(sorted({type(chip).__name__ for chip in chips}))
            )
        owner_slot.resolve(fused)
        return fused

    @classmethod
    def _fakequant_template(cls, chips, owner) -> Module:
        base = chips[0]
        if base._source_model is None or any(
            chip._source_model is not base._source_model for chip in chips
        ):
            raise UnstackableError("chips were not programmed from one golden model")
        if any(chip.tuner is not None for chip in chips):
            raise UnstackableError("self-tuning corrections are per-chip state")
        layer_maps = [dict(quantized_layers(chip.mapping)) for chip in chips]
        names = list(layer_maps[0])
        if any(list(layers) != names for layers in layer_maps[1:]):
            raise UnstackableError("chips disagree on their quantized layer sets")
        stacks = {}
        for name in names:
            layers = [layers[name] for layers in layer_maps]
            first = layers[0]
            if any(type(layer) is not type(first) for layer in layers):
                raise UnstackableError(f"layer {name!r} has mixed types across chips")
            for layer in layers:
                if layer._calibrating:
                    raise UnstackableError(f"layer {name!r} is mid-calibration")
                if layer._input_observer is not None:
                    raise UnstackableError(f"layer {name!r} has an input observer attached")
                if layer.self_tuner is not None:
                    raise UnstackableError(f"layer {name!r} carries a self-tuner")
            if not _all_equal(float(layer.act_scale) for layer in layers):
                raise UnstackableError(f"layer {name!r} has per-chip activation scales")
            if first.qconfig.quantize_activations and float(first.act_scale) == 0.0:
                raise UnstackableError(f"layer {name!r} is uncalibrated")
            effective = []
            for layer in layers:
                with no_grad():
                    weight = layer._quantize_weight().data
                if isinstance(first, QuantConv2d):
                    weight = weight.reshape(layer.out_channels, -1)
                # Keep the unfused operand layout exactly: the unfused GEMM
                # multiplies by w_tilde.T, an F-contiguous view of the
                # C-contiguous (n, k) weight.  BLAS output bits depend on
                # the transpose flag at small M, so a C-contiguous (k, n)
                # copy would NOT be bit-identical — store the .T view.
                effective.append(np.ascontiguousarray(np.asarray(weight, dtype=np.float64)).T)
            stacks[name] = effective

        def make_adapter(path, layer):
            if isinstance(layer, QuantConv2d):
                return _FusedQuantConv2d(owner, layer, stacks[path])
            return _FusedQuantLinear(owner, layer, stacks[path])

        return cls._swap_template(
            base.mapping, (QuantLinear, QuantConv2d), make_adapter
        )

    @classmethod
    def _circuit_template(cls, chips, owner) -> Module:
        base = chips[0]
        names = base.deployed
        if any(chip.deployed != names for chip in chips):
            raise UnstackableError("chips disagree on their deployed layer sets")
        if any(chip.chip.adc != base.chip.adc or chip.chip.dac != base.chip.dac for chip in chips):
            raise UnstackableError("chips disagree on converter models")
        if base.chip.adc.noise_rms:
            raise UnstackableError("ADC read noise is order-dependent (stateful RNG)")
        adapters = {}
        for name in names:
            mapped_layers = [chip.chip.layers[name] for chip in chips]
            first = mapped_layers[0]
            if any(type(mapped) is not type(first) for mapped in mapped_layers):
                raise UnstackableError(f"layer {name!r} has mixed types across chips")
            if not _all_equal(
                [spec for spec, _ in mapped.tiles] for mapped in mapped_layers
            ):
                raise UnstackableError(f"layer {name!r} has per-chip tile plans")
            if not _all_equal(
                (mapped.act_scale, mapped.weight_scale, mapped.d_in, mapped.d_out)
                for mapped in mapped_layers
            ):
                raise UnstackableError(f"layer {name!r} has per-chip scales or shapes")
            for mapped in mapped_layers:
                for _, array in mapped.tiles:
                    if (
                        array.device is not None
                        or array.ir_drop is not None
                        or array.fault_model is not None
                    ):
                        raise UnstackableError(
                            f"layer {name!r} has device-level array models attached"
                        )
            if isinstance(first, MappedConv2d):
                adapters[name] = _FusedMappedConv2d(owner, mapped_layers)
            elif isinstance(first, MappedLinear):
                adapters[name] = _FusedMappedLinear(owner, mapped_layers)
            else:
                raise UnstackableError(f"layer {name!r} has an unknown mapped type")

        def make_adapter(path, layer):
            return adapters[path]

        return cls._swap_template(base.mapping, (_ChipLayerModule,), make_adapter)

    @staticmethod
    def _swap_template(mapping: Module, leaf_types, make_adapter) -> Module:
        """Structural clone of ``mapping`` with leaf layers swapped for adapters.

        Same recursive walk as :func:`~repro.pim.chip.deploy_model`, so a
        path here names the same layer the backends name — non-leaf
        modules come from :func:`replicate_for_programming` (their state
        aliases the golden model and is identical across chips).
        """
        clone = replicate_for_programming(mapping)

        def convert(module, prefix):
            for name, child in list(module._modules.items()):
                path = prefix + name
                if isinstance(child, leaf_types):
                    setattr(module, name, make_adapter(path, child))
                else:
                    convert(child, path + ".")

        convert(clone, "")
        return clone

    # ------------------------------------------------------------------
    # Freshness
    # ------------------------------------------------------------------
    @property
    def members(self) -> list[ProgrammedChip]:
        """The stacked chips, in stack order."""
        return list(self._members)

    def covers(self, chips) -> bool:
        """Whether every chip in ``chips`` is stacked here, unmutated.

        Compares ``(identity, version)``: reprogramming or replacement
        creates a new chip object (identity miss), while ``refresh`` and
        ``apply_faults`` bump the version in place (version miss).
        """
        for chip in chips:
            pos = self._index.get(id(chip))
            if pos is None or chip is not self._members[pos]:
                return False
            if chip.version != self._versions[pos]:
                return False
        return True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def forward(self, assignments) -> list[np.ndarray]:
        """Run one fused group: ``[(chip, inputs), ...]`` -> output list.

        Batch sizes may differ per chip (the merge amortizes elementwise
        and interpreter work; the per-slice GEMMs keep each chip's exact
        unfused geometry).  Outputs come back in assignment order,
        bit-identical to ``chip.forward(inputs)``.
        """
        assignments = list(assignments)
        if not assignments:
            return []
        batches = [np.asarray(inputs) for _, inputs in assignments]
        try:
            idx = tuple(self._index[id(chip)] for chip, _ in assignments)
        except KeyError:
            raise ValueError("assignment names a chip outside this fused stack") from None
        bounds = [0]
        for batch in batches:
            bounds.append(bounds[-1] + int(batch.shape[0]))
        merged = np.concatenate(batches, axis=0) if len(batches) > 1 else batches[0]
        self._group = (idx, tuple(bounds))
        try:
            with no_grad():
                outputs = self._template(Tensor(merged)).data
        finally:
            self._group = None
        return [outputs[start:stop] for start, stop in zip(bounds[:-1], bounds[1:])]

    def describe(self) -> dict:
        """Stack provenance (JSON-friendly)."""
        return {
            "backend": self.backend,
            "chips": [chip.chip_id for chip in self._members],
        }

    def __repr__(self) -> str:
        ids = ", ".join(chip.chip_id for chip in self._members)
        return f"FusedFleetForward([{ids}], backend={self.backend!r})"


class _OwnerSlot:
    """Late-bound owner reference for adapters built before their stack.

    The template's adapters need the :class:`FusedFleetForward` for group
    context, but the stack object is constructed *after* its template.
    This proxy forwards ``_group`` lookups once :meth:`resolve` is called.
    """

    def __init__(self) -> None:
        self._owner = None

    def resolve(self, owner: FusedFleetForward) -> None:
        self._owner = owner

    @property
    def _group(self):
        return self._owner._group
