"""The chip-programming protocol: one API for every way to realize a chip.

The repo grew two disjoint "put a quantized model onto hardware" codepaths:
the fast fake-quant path (deep-copied model + injected variation + attached
self-tuning, used by the serving engine and the experiment runner) and the
circuit-level :class:`repro.pim.chip.PimChip` path (DAC -> crossbar MVM ->
ADC), which the serving stack could not reach at all.  ``repro.backends``
unifies them behind two small abstractions:

* :class:`ChipBackend` — a *programmer*: given the golden digital model and
  one sampled :class:`~repro.variability.sampler.ChipVariation`, it writes a
  :class:`ProgrammedChip` (the software analogue of programming every
  crossbar tile of one physical accelerator);
* :class:`ProgrammedChip` — one programmed chip: ``forward`` runs batched
  inference, ``refresh`` re-installs a drifted variation in place (physical
  drift does not reprogram anything), ``cost`` prices a dispatched batch
  through :class:`repro.pim.energy.PimCostEstimator`, and ``describe``
  reports the programming provenance.

The serving engine, the lifecycle manager, the schedulers, and the
experiment runner all talk to these two types only, so a fleet can mix
fidelities — and every future backend (bit-sliced, tiled, faulted) plugs in
by registering a :class:`ChipBackend` subclass via :func:`register_backend`.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.pim.energy import CostReport, PimCostEstimator, geometries_from_model
from repro.variability.sampler import ChipVariation, VariabilitySpec


class ProgrammedChip:
    """One physical chip with a model mapping installed on it.

    Subclasses hold whatever realizes the chip (a fake-quant model replica,
    a tiled :class:`~repro.pim.chip.PimChip`, ...) but expose the same
    surface, so the serving layers never branch on fidelity.  ``mapping`` is
    the underlying :class:`~repro.nn.module.Module` the chip routes through
    — kept public for introspection (tests, telemetry), not for dispatch.
    """

    backend = "base"

    def __init__(self, chip_id: str, mapping, backend_obj=None, source_model=None) -> None:
        self.chip_id = str(chip_id)
        self.mapping = mapping
        self._backend_obj = backend_obj
        self._source_model = source_model
        self._obs = None
        #: Monotone counter of state mutations (refresh, fault pinning).
        #: Derived views of the programmed state — notably the stacked
        #: tensors a :class:`~repro.backends.fused.FusedFleetForward`
        #: holds — compare it against the version they were built from to
        #: know when they are stale.  A freshly programmed chip is a new
        #: object at version 0, so (identity, version) pins exactly one
        #: programmed state.
        self.version = 0

    def bump_version(self) -> None:
        """Mark the programmed state as mutated (invalidates fused stacks).

        Subclasses call this from every method that changes what
        :meth:`forward` would compute — :meth:`refresh` and
        :meth:`apply_faults` — so cached derivations rebuild lazily.
        """
        self.version += 1

    def attach_observability(self, obs) -> None:
        """Profile this chip through ``obs`` (a :class:`repro.obs.Observability`).

        With tracing enabled every :meth:`forward` emits a ``chip.forward``
        span carrying the chip id, batch rows, and — when the backend has a
        cost estimator — the batch's per-layer energy attribution, so
        fleet-level profiles can say which chip and which layer the time
        and energy went to.  Detach by passing ``None``.
        """
        self._obs = obs

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Batched inference: float inputs in, float logits out (no autograd)."""
        obs = self._obs
        if obs is None or not obs.tracing:
            with no_grad():
                return self.mapping(Tensor(np.asarray(x))).data
        x = np.asarray(x)
        rows = int(x.shape[0]) if x.ndim else 1
        with obs.span("chip.forward", chip=self.chip_id, rows=rows) as span:
            with no_grad():
                outputs = self.mapping(Tensor(x)).data
            per_layer = self.layer_energy_uj(x.shape)
            if per_layer is not None:
                span.set(energy_uj_per_layer=per_layer)
            return outputs

    def layer_energy_uj(self, batch_shape: tuple[int, ...]) -> dict | None:
        """Per-layer estimated energy (uJ) of one ``batch_shape`` batch.

        ``None`` when the owning backend has no cost estimator — same
        optionality contract as :meth:`cost`.
        """
        if self._backend_obj is None or self._source_model is None:
            return None
        return self._backend_obj.layer_energy_uj(self._source_model, batch_shape)

    def refresh(self, variation: ChipVariation) -> None:
        """Re-install a (drifted) variation on the already-programmed chip.

        This models physics changing under an installed mapping — it must
        not count as reprogramming (no cache traffic, no program cost).
        """
        raise NotImplementedError

    def apply_faults(self, spec, seed: int = 0) -> int:
        """Pin a stuck-at fault map onto the chip's programmed state.

        ``spec`` is a :class:`~repro.variability.faults.FaultSpec`; masks
        are drawn per layer name via
        :func:`~repro.variability.faults.layer_fault_masks`, so every
        backend realizing the same ``(spec, seed)`` pins the same logical
        cells.  Mutates the programmed state in place and returns the
        number of stuck cells; callers should :meth:`refresh` afterwards
        so fidelities that derive state from the mutated codes (crossbar
        tiles) re-install it.
        """
        raise NotImplementedError

    def cost(self, batch_shape: tuple[int, ...]) -> CostReport | None:
        """Estimated physical cost of dispatching one ``batch_shape`` batch.

        Returns ``None`` when the owning backend has no cost estimator
        wired; callers must treat the hook as optional.
        """
        if self._backend_obj is None or self._source_model is None:
            return None
        return self._backend_obj.cost_for(self._source_model, batch_shape)

    def describe(self) -> dict:
        """Programming provenance (JSON-friendly)."""
        return {"backend": self.backend, "chip_id": self.chip_id}

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}({self.chip_id}, backend={self.backend!r})"


class ChipBackend:
    """Interface: program a golden model onto one sampled chip.

    ``estimator`` (a :class:`~repro.pim.energy.PimCostEstimator`, or
    ``None`` to disable costing) prices batches dispatched to the chips this
    backend programs; layer geometries are traced once per (model, input
    shape) and cached weakly, so per-batch costing is just arithmetic.
    """

    name = "base"

    def __init__(self, estimator: PimCostEstimator | None = None) -> None:
        self.estimator = estimator
        self._geometries = weakref.WeakKeyDictionary()

    def program(
        self,
        model,
        variation: ChipVariation,
        *,
        spec: VariabilitySpec,
        chip_id: str = "chip",
        self_tuning=None,
    ) -> ProgrammedChip:
        """Write ``model`` onto one chip carrying ``variation``.

        ``spec`` supplies the variance model governing how epsilon perturbs
        weights; ``self_tuning`` (a
        :class:`~repro.selftuning.tuner.SelfTuningConfig`) attaches the
        GTM/LTM correction when the backend supports it.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Cost estimation (shared by all backends)
    # ------------------------------------------------------------------
    def _unit_report(self, model, batch_shape: tuple[int, ...]) -> CostReport:
        """Cached single-inference cost report (with per-layer breakdown)."""
        batch_shape = tuple(int(dim) for dim in batch_shape)
        if len(batch_shape) < 2:
            raise ValueError(f"batch_shape needs (N, ...features), got {batch_shape}")
        per_model = self._geometries.setdefault(model, {})
        input_shape = batch_shape[1:]
        report = per_model.get(input_shape)
        if report is None:
            geometries = geometries_from_model(model, input_shape)
            report = self.estimator.model_cost(geometries)
            per_model[input_shape] = report
        return report

    def cost_for(self, model, batch_shape: tuple[int, ...]) -> CostReport | None:
        """Cost of one ``batch_shape`` batch through ``model`` on this backend."""
        if self.estimator is None:
            return None
        report = self._unit_report(model, batch_shape)
        return report.scaled(max(1, int(batch_shape[0])))

    def layer_energy_uj(self, model, batch_shape: tuple[int, ...]) -> dict | None:
        """Per-layer energy (uJ) of one ``batch_shape`` batch, JSON-friendly.

        The profiling attribution hook: reads the cached single-inference
        breakdown and scales by the batch's row count, so calling it per
        dispatched batch is dict arithmetic, not a model trace.
        """
        if self.estimator is None:
            return None
        report = self._unit_report(model, batch_shape)
        rows = max(1, int(batch_shape[0]))
        return {
            name: float(layer.energy_uj * rows)
            for name, layer in report.breakdown.items()
        }

    def describe(self) -> dict:
        """Backend configuration (JSON-friendly)."""
        return {"backend": self.name, "costed": self.estimator is not None}

    def __repr__(self) -> str:
        return f"{self.__class__.__name__}()"


#: Registry of available backends, name -> ChipBackend subclass.
BACKENDS: dict[str, type[ChipBackend]] = {}


def register_backend(cls: type[ChipBackend]) -> type[ChipBackend]:
    """Class decorator: make a backend constructible by name."""
    if not cls.name or cls.name == "base":
        raise ValueError(f"backend {cls.__name__} needs a unique non-default name")
    BACKENDS[cls.name] = cls
    return cls


def make_backend(backend) -> ChipBackend:
    """Resolve a backend name (or pass through an instance) to a ChipBackend."""
    if isinstance(backend, ChipBackend):
        return backend
    if backend not in BACKENDS:
        raise KeyError(f"unknown backend {backend!r}; available: {sorted(BACKENDS)}")
    return BACKENDS[backend]()
