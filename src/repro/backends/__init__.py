"""``repro.backends`` — one chip-programming API for every fidelity.

A :class:`ChipBackend` turns (golden model, sampled chip variation) into a
:class:`ProgrammedChip` the serving and experiment layers can ``forward``
through, ``refresh`` under drift, and ``cost`` per dispatched batch:

* ``"fake-quant"`` (:class:`FakeQuantBackend`) — the fast training-fidelity
  path: a structure-shared model replica with epsilon injected into the
  fake-quant forward;
* ``"circuit"`` (:class:`CircuitBackend`) — the hardware-fidelity path: a
  :class:`~repro.pim.chip.PimChip` with the model lowered onto differential
  crossbar tiles behind DAC/ADC converters.

Both program the *same physical chip* from the same
:class:`~repro.variability.sampler.ChipVariation` (layer-keyed epsilon), so
with an ideal ADC their outputs agree — fleets can be served, probed, and
recalibrated at either fidelity interchangeably.

:class:`FusedFleetForward` (:mod:`repro.backends.fused`) stacks a whole
fleet's per-layer state into batched numpy kernels, so the serving engine
can execute a group of same-sized micro-batches — one per chip — in a
handful of ``np.matmul`` calls, bit-identical to per-chip dispatch.
"""

from repro.backends.base import (
    BACKENDS,
    ChipBackend,
    ProgrammedChip,
    make_backend,
    register_backend,
)
from repro.backends.circuit import CircuitBackend, CircuitChip, layer_epsilon
from repro.backends.fakequant import (
    FakeQuantBackend,
    FakeQuantChip,
    replicate_for_programming,
)
from repro.backends.fused import FusedFleetForward, UnstackableError

__all__ = [
    "BACKENDS",
    "ChipBackend",
    "ProgrammedChip",
    "make_backend",
    "register_backend",
    "FakeQuantBackend",
    "FakeQuantChip",
    "replicate_for_programming",
    "CircuitBackend",
    "CircuitChip",
    "layer_epsilon",
    "FusedFleetForward",
    "UnstackableError",
]
