"""Learning-rate schedules (mutate ``optimizer.lr`` per epoch)."""

from __future__ import annotations

import math

from repro.training.optim import Optimizer


class LRSchedule:
    """Base schedule; call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.lr_at(self.epoch)

    def lr_at(self, epoch: int) -> float:  # pragma: no cover
        raise NotImplementedError


class ConstantLR(LRSchedule):
    """No decay."""

    def lr_at(self, epoch: int) -> float:
        return self.base_lr


class StepLR(LRSchedule):
    """Multiply the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class CosineLR(LRSchedule):
    """Cosine annealing to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def lr_at(self, epoch: int) -> float:
        progress = min(epoch / max(self.total_epochs, 1), 1.0)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * progress)
        )


class WarmupCosineLR(LRSchedule):
    """Linear warmup from ``warmup_start * base_lr``, then cosine annealing.

    Warmup matters more than usual for QAVAT: early steps see both raw
    quantization error and injected variability, and a full-size first step
    can push weights across several quantization levels at once.
    """

    def __init__(
        self,
        optimizer: Optimizer,
        total_epochs: int,
        warmup_epochs: int = 0,
        warmup_start: float = 0.1,
        min_lr: float = 0.0,
    ) -> None:
        super().__init__(optimizer)
        if warmup_epochs < 0 or warmup_epochs > total_epochs:
            raise ValueError("need 0 <= warmup_epochs <= total_epochs")
        self.total_epochs = total_epochs
        self.warmup_epochs = warmup_epochs
        self.warmup_start = warmup_start
        self.min_lr = min_lr

    def lr_at(self, epoch: int) -> float:
        if self.warmup_epochs and epoch < self.warmup_epochs:
            fraction = epoch / self.warmup_epochs
            start = self.warmup_start * self.base_lr
            return start + (self.base_lr - start) * fraction
        remaining = max(self.total_epochs - self.warmup_epochs, 1)
        progress = min((epoch - self.warmup_epochs) / remaining, 1.0)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * progress)
        )
