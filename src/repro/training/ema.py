"""Exponential moving average of model parameters.

Under variability injection the per-step gradient is noisy even at the
optimum, so the SGD iterates orbit the minimum instead of settling into it.
Averaging the iterates (Polyak averaging / EMA) removes most of that orbit
noise and typically buys a fraction of a percent of robust accuracy for
free.  Kept out of the default pipelines to stay faithful to the paper;
used by the ablation benchmarks.
"""

from __future__ import annotations

import numpy as np


class ModelEMA:
    """Tracks ``shadow = decay * shadow + (1 - decay) * parameter``.

    :meth:`apply_shadow` swaps the averaged weights into the model
    (stashing the live ones); :meth:`restore` swaps back.  Typical use::

        ema = ModelEMA(model, decay=0.99)
        for batch in ...:
            train_step(...)
            ema.update()
        ema.apply_shadow()   # evaluate with averaged weights
        ...
        ema.restore()        # continue training with live weights
    """

    def __init__(self, model, decay: float = 0.99) -> None:
        if not 0.0 <= decay < 1.0:
            raise ValueError("decay must be in [0, 1)")
        self.model = model
        self.decay = decay
        self._shadow = {
            name: parameter.data.copy() for name, parameter in model.named_parameters()
        }
        self._backup: dict[str, np.ndarray] | None = None
        self.updates = 0

    def update(self) -> None:
        """Fold the current parameters into the running average."""
        if self._backup is not None:
            raise RuntimeError("update() while shadow weights are applied")
        # Bias-corrected effective decay so early updates are not dominated
        # by the random initialization stored at construction.
        self.updates += 1
        decay = min(self.decay, (1.0 + self.updates) / (10.0 + self.updates))
        for name, parameter in self.model.named_parameters():
            shadow = self._shadow[name]
            shadow *= decay
            shadow += (1.0 - decay) * parameter.data

    def apply_shadow(self) -> None:
        """Install the averaged weights (saving the live ones)."""
        if self._backup is not None:
            raise RuntimeError("shadow weights already applied")
        self._backup = {}
        for name, parameter in self.model.named_parameters():
            self._backup[name] = parameter.data
            parameter.data = self._shadow[name].copy()

    def restore(self) -> None:
        """Swap the live training weights back in."""
        if self._backup is None:
            raise RuntimeError("restore() without apply_shadow()")
        for name, parameter in self.model.named_parameters():
            parameter.data = self._backup[name]
        self._backup = None

    @property
    def applied(self) -> bool:
        return self._backup is not None
