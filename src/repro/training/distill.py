"""Knowledge-distillation baseline ("Noisy Machines", paper ref [16]).

Zhou et al. propose enhancing noisy-hardware robustness by distilling a
clean float teacher into the noise-injected student: the student's loss is
a convex combination of the task cross-entropy and the KL divergence to
the teacher's temperature-softened outputs,

    ``L = (1 - lambda) * CE(student, y)
        + lambda * T^2 * KL(softmax(teacher/T) || softmax(student/T))``.

The paper cites this as one of the prior implicit-robustification methods
(single-sample, naive injection); implementing it lets the benchmark suite
compare QAVAT against the strongest prior training-time recipe.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.autograd.ops import log_softmax
from repro.nn import functional as F


def distillation_loss(
    student_logits: Tensor,
    teacher_logits: np.ndarray,
    targets: np.ndarray,
    temperature: float = 4.0,
    alpha: float = 0.5,
) -> Tensor:
    """Combined hard-label CE + soft-label KD loss.

    ``alpha`` is the soft-label weight (``lambda`` above); the ``T^2``
    factor keeps gradient magnitudes comparable across temperatures.
    ``teacher_logits`` is a constant (no gradient flows to the teacher).
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    if temperature <= 0.0:
        raise ValueError("temperature must be positive")
    hard = F.cross_entropy(student_logits, targets)
    if alpha == 0.0:
        return hard
    # Teacher probabilities at temperature T (plain numpy, constant).
    t_shift = teacher_logits / temperature
    t_shift = t_shift - t_shift.max(axis=-1, keepdims=True)
    t_probs = np.exp(t_shift)
    t_probs /= t_probs.sum(axis=-1, keepdims=True)
    # KL(teacher || student) = sum t * (log t - log s); the log t term is
    # constant, so the differentiable part is the soft cross-entropy.
    student_log_probs = log_softmax(student_logits * (1.0 / temperature))
    soft_ce = -(Tensor(t_probs) * student_log_probs).sum(axis=-1).mean()
    entropy = float(-(t_probs * np.log(np.clip(t_probs, 1e-12, None))).sum(axis=-1).mean())
    soft = (soft_ce - entropy) * (temperature**2)
    return hard * (1.0 - alpha) + soft * alpha


class DistillationTrainer:
    """Noisy-student training with a frozen clean teacher.

    The student model must have variability installed per step by the
    caller-supplied ``injector`` (naive, single-sample injection — the
    prior-work recipe), while the teacher always runs clean.
    """

    def __init__(
        self,
        student,
        teacher,
        optimizer,
        injector,
        temperature: float = 4.0,
        alpha: float = 0.5,
    ) -> None:
        self.student = student
        self.teacher = teacher
        self.optimizer = optimizer
        self.injector = injector
        self.temperature = temperature
        self.alpha = alpha

    def train_step(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        self.teacher.eval()
        with no_grad():
            teacher_logits = self.teacher(Tensor(inputs)).data
        self.optimizer.zero_grad()
        self.injector.resample(self.student)
        loss = distillation_loss(
            self.student(Tensor(inputs)),
            teacher_logits,
            targets,
            temperature=self.temperature,
            alpha=self.alpha,
        )
        loss.backward()
        self.injector.clear(self.student)
        self.optimizer.step()
        return float(loss.data)

    def train_epoch(self, batches) -> float:
        self.student.train()
        losses = [self.train_step(inputs, targets) for inputs, targets in batches]
        return float(np.mean(losses)) if losses else 0.0


def train_distilled(
    student,
    teacher,
    batch_source,
    qconfig,
    spec,
    epochs: int = 5,
    lr: float = 0.05,
    temperature: float = 4.0,
    alpha: float = 0.5,
    calibration_batches: int = 8,
    seed: int = 0,
):
    """Full Noisy-Machines pipeline: quantize student, calibrate, distill.

    The teacher stays float and clean; the student is quantization-prepared
    and trained under naive variability injection with the KD loss.
    """
    from repro.quant.calibration import calibrate_model
    from repro.quant.ptq import convert_to_quantized
    from repro.training.optim import SGD
    from repro.variability.injection import VariabilityInjector

    convert_to_quantized(student, qconfig)
    calibrate_model(student, batch_source(), max_batches=calibration_batches)
    injector = VariabilityInjector(spec, seed=seed, mode="naive")
    optimizer = SGD(student.parameters(), lr=lr, momentum=0.9)
    trainer = DistillationTrainer(
        student, teacher, optimizer, injector, temperature=temperature, alpha=alpha
    )
    for _ in range(epochs):
        trainer.train_epoch(batch_source())
    return student
