"""QAVAT: multi-variation-sampling joint QAT + VAT (paper Algorithm 1)."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.nn import functional as F
from repro.quant.ptq import quantized_layers, refresh_weight_scales
from repro.training.optim import clip_grad_norm
from repro.variability.injection import VariabilityInjector


class QavatTrainer:
    """Implements Algorithm 1 (Multi-Variation Sampling QAVAT).

    Each optimizer step samples a mini-batch, then accumulates the gradients
    of ``n_variation_samples`` independent variability draws before updating.
    Losses are averaged over the draws (an unbiased estimate of the expected
    loss whose variance shrinks with ``n``), keeping the effective step size
    independent of ``n`` so that the Fig. 7a multi-sampling comparison
    isolates the variance-reduction effect.

    The model must already be quantization-prepared
    (:func:`repro.quant.convert_to_quantized`) and activation-calibrated.
    MMSE weight scales are computed once up front (the paper's default); set
    ``qconfig.weight_scale_refresh`` to recompute them every that-many steps.
    """

    def __init__(
        self,
        model,
        optimizer,
        injector: VariabilityInjector,
        n_variation_samples: int = 1,
        loss_fn=F.cross_entropy,
        lr_schedule=None,
        max_grad_norm: float = 5.0,
    ) -> None:
        if n_variation_samples < 1:
            raise ValueError("n_variation_samples must be >= 1")
        self.model = model
        self.optimizer = optimizer
        self.injector = injector
        self.n_variation_samples = n_variation_samples
        self.loss_fn = loss_fn
        self.lr_schedule = lr_schedule
        # Heavy injected noise (layer-fixed variance at high sigma in
        # particular) occasionally produces exploding batches; without the
        # clip a single such batch can destroy the pretrained weights.
        self.max_grad_norm = max_grad_norm
        self.step_count = 0
        self._refresh_every = self._weight_scale_refresh()

    def _weight_scale_refresh(self) -> int:
        for _, layer in quantized_layers(self.model):
            return layer.qconfig.weight_scale_refresh
        return 0

    def train_step(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """One optimizer step (lines 9-13 of Algorithm 1); returns mean loss."""
        self.optimizer.zero_grad()
        total_loss = 0.0
        for _ in range(self.n_variation_samples):
            self.injector.resample(self.model)
            loss = self.loss_fn(self.model(Tensor(inputs)), targets)
            if self.n_variation_samples > 1:
                loss = loss * (1.0 / self.n_variation_samples)
            loss.backward()
            total_loss += float(loss.data)
        self.injector.clear(self.model)
        if self.max_grad_norm:
            clip_grad_norm(self.optimizer.parameters, self.max_grad_norm)
        self.optimizer.step()
        self.step_count += 1
        if self._refresh_every and self.step_count % self._refresh_every == 0:
            refresh_weight_scales(self.model)
        return total_loss

    def train_epoch(self, batches) -> float:
        """One pass over an iterable of (inputs, targets); returns mean loss."""
        self.model.train()
        losses = [self.train_step(inputs, targets) for inputs, targets in batches]
        return float(np.mean(losses)) if losses else 0.0

    def fit(self, batch_source, epochs: int, verbose: bool = False) -> list[float]:
        """Train for ``epochs`` passes; ``batch_source()`` yields fresh batches."""
        history = []
        for epoch in range(epochs):
            mean_loss = self.train_epoch(batch_source())
            if self.lr_schedule is not None:
                self.lr_schedule.step()
            history.append(mean_loss)
            if verbose:
                print(f"epoch {epoch + 1}/{epochs}: loss {mean_loss:.4f}")
        return history
