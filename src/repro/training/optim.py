"""First-order optimizers over :class:`repro.nn.Parameter` lists."""

from __future__ import annotations

import numpy as np


def clip_grad_norm(parameters, max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.  Non-finite gradients are zeroed (a diverged
    noisy forward pass should not destroy the parameters).
    """
    parameters = [p for p in parameters if p.grad is not None]
    for parameter in parameters:
        if not np.all(np.isfinite(parameter.grad)):
            parameter.grad = np.where(np.isfinite(parameter.grad), parameter.grad, 0.0)
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in parameters)))
    if total > max_norm and total > 0.0:
        factor = max_norm / total
        for parameter in parameters:
            parameter.grad = parameter.grad * factor
    return total


class Optimizer:
    """Base optimizer: holds parameters and a mutable learning rate."""

    def __init__(self, parameters, lr: float) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:  # pragma: no cover
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with classical (or Nesterov) momentum and L2 weight decay."""

    def __init__(
        self,
        parameters,
        lr: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(parameters, lr)
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            velocity *= self.momentum
            velocity += grad
            if self.nesterov:
                parameter.data -= self.lr * (grad + self.momentum * velocity)
            else:
                parameter.data -= self.lr * velocity

    def state_dict(self) -> dict:
        return {"velocity": [v.copy() for v in self._velocity]}

    def load_state_dict(self, state: dict) -> None:
        for velocity, saved in zip(self._velocity, state["velocity"]):
            velocity[...] = saved


class Adam(Optimizer):
    """Adam with bias correction (L2 weight decay coupled into the gradient)."""

    decoupled_weight_decay = False

    def __init__(
        self,
        parameters,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._step_count = 0

    def step(self) -> None:
        self._step_count += 1
        beta1, beta2 = self.betas
        correction1 = 1.0 - beta1**self._step_count
        correction2 = 1.0 - beta2**self._step_count
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay and not self.decoupled_weight_decay:
                grad = grad + self.weight_decay * parameter.data
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad * grad
            m_hat = m / correction1
            v_hat = v / correction2
            if self.weight_decay and self.decoupled_weight_decay:
                parameter.data -= self.lr * self.weight_decay * parameter.data
            parameter.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        return {
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
            "step_count": self._step_count,
        }

    def load_state_dict(self, state: dict) -> None:
        for m, saved in zip(self._m, state["m"]):
            m[...] = saved
        for v, saved in zip(self._v, state["v"]):
            v[...] = saved
        self._step_count = int(state["step_count"])


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    decoupled_weight_decay = True
