"""Baselines and end-to-end training pipelines.

The paper compares three ways of producing a deployable quantized model:

* **QAVAT** (ours): quantization-prepared training with reparameterized
  variability injection (Algorithm 1).
* **QAT** (variability-oblivious): identical pipeline with zero injected
  variability.
* **PTQ-VAT**: full-precision variability-aware training (noise added to
  float weights, as in prior work [2], [3], [16]) followed by post-training
  quantization with MMSE weight scales and moving-average min-max activation
  calibration.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.nn import Conv2d, Linear
from repro.nn import functional as F
from repro.nn.norm import reestimate_bn_statistics
from repro.quant.calibration import calibrate_model
from repro.quant.ptq import convert_to_quantized
from repro.quant.qconfig import QConfig
from repro.training.optim import SGD, clip_grad_norm
from repro.training.qavat import QavatTrainer
from repro.variability.injection import VariabilityInjector
from repro.variability.sampler import VariabilitySpec


class FloatVatTrainer:
    """Variability-aware training of a *float* model (the PTQ-VAT stage 1).

    Mirrors the prior-work recipe: per forward pass, sample a noise vector
    and add it numerically onto the float weights (the naive/biased scheme
    the paper improves on), compute the loss, backpropagate at the perturbed
    point, restore the weights, and step.
    """

    def __init__(
        self,
        model,
        optimizer,
        spec: VariabilitySpec,
        seed: int = 0,
        loss_fn=F.cross_entropy,
        max_grad_norm: float = 5.0,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.spec = spec
        self.loss_fn = loss_fn
        self.max_grad_norm = max_grad_norm
        self._rng = np.random.default_rng(seed)

    def _noise_targets(self):
        for module in self.model.modules():
            if isinstance(module, (Conv2d, Linear)):
                yield module.weight

    def train_step(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        saved = []
        if not self.spec.is_null:
            eps_b = (
                self._rng.normal(0.0, self.spec.sigma_between)
                if self.spec.sigma_between > 0.0
                else 0.0
            )
            model_fn = self.spec.variance_model
            for weight in self._noise_targets():
                saved.append((weight, weight.data.copy()))
                eps = eps_b + self._rng.normal(0.0, self.spec.sigma_within, weight.data.shape)
                weight.data = weight.data + model_fn.reparameterize_data(eps, weight.data)
        self.optimizer.zero_grad()
        loss = self.loss_fn(self.model(Tensor(inputs)), targets)
        loss.backward()
        for weight, original in saved:
            weight.data = original
        # Heavy weight noise occasionally produces exploding batches; the
        # clip keeps the prior-work baseline trainable at sigma = 0.5.
        clip_grad_norm(self.optimizer.parameters, self.max_grad_norm)
        self.optimizer.step()
        return float(loss.data)

    def train_epoch(self, batches) -> float:
        self.model.train()
        losses = [self.train_step(inputs, targets) for inputs, targets in batches]
        return float(np.mean(losses)) if losses else 0.0


def _float_pretrain(model, batch_source, epochs: int, lr: float) -> None:
    """Plain float training used to initialize the QAT/QAVAT pipelines."""
    from repro.training.loop import train_epoch

    if epochs <= 0:
        return
    optimizer = SGD(model.parameters(), lr=lr, momentum=0.9)
    for _ in range(epochs):
        train_epoch(model, batch_source(), optimizer)


def _as_batch_source(data, batch_size: int, seed: int):
    """Accept either a zero-argument batch source or a plain dataset.

    The pipelines' native input is a callable yielding fresh epochs; for
    convenience an :class:`repro.datasets.ArrayDataset` (or anything with
    ``images``/``labels``) is wrapped automatically.
    """
    if callable(data):
        return data
    from repro.datasets.loaders import batch_source as make_source

    return make_source(data, batch_size, seed=seed)


def train_qavat(
    model,
    batch_source,
    qconfig: QConfig,
    spec: VariabilitySpec,
    epochs: int = 5,
    lr: float = 0.05,
    n_variation_samples: int = 1,
    float_pretrain_epochs: int = 2,
    calibration_batches: int = 8,
    injection_mode: str = "reparameterized",
    seed: int = 0,
    batch_size: int = 32,
):
    """Full QAVAT pipeline: float pretrain -> quantize+calibrate -> Algorithm 1.

    ``batch_source`` is a zero-argument callable yielding an iterable of
    ``(inputs, targets)`` mini-batches (fresh shuffling per call), or a
    plain :class:`repro.datasets.ArrayDataset` (wrapped with ``batch_size``).
    Returns the trained quantized model.
    """
    batch_source = _as_batch_source(batch_source, batch_size, seed)
    _float_pretrain(model, batch_source, float_pretrain_epochs, lr)
    convert_to_quantized(model, qconfig)
    calibrate_model(model, batch_source(), max_batches=calibration_batches)
    injector = VariabilityInjector(spec, seed=seed, mode=injection_mode)
    optimizer = SGD(model.parameters(), lr=lr, momentum=0.9)
    trainer = QavatTrainer(
        model, optimizer, injector, n_variation_samples=n_variation_samples
    )
    trainer.fit(batch_source, epochs)
    # Noisy training corrupts BatchNorm running statistics; re-estimate them
    # with clean forward passes before the model is evaluated or deployed.
    if not spec.is_null:
        reestimate_bn_statistics(model, batch_source, passes=2)
    return model


def train_qat(
    model,
    batch_source,
    qconfig: QConfig,
    epochs: int = 5,
    lr: float = 0.05,
    float_pretrain_epochs: int = 2,
    calibration_batches: int = 8,
    seed: int = 0,
):
    """Variability-oblivious QAT = QAVAT with a null variability spec."""
    return train_qavat(
        model,
        batch_source,
        qconfig,
        VariabilitySpec.null(),
        epochs=epochs,
        lr=lr,
        n_variation_samples=1,
        float_pretrain_epochs=float_pretrain_epochs,
        calibration_batches=calibration_batches,
        seed=seed,
    )


def train_ptq_vat(
    model,
    batch_source,
    qconfig: QConfig,
    spec: VariabilitySpec,
    epochs: int = 7,
    lr: float = 0.05,
    calibration_batches: int = 8,
    seed: int = 0,
):
    """PTQ-VAT baseline: float VAT training, then post-training quantization."""
    batch_source = _as_batch_source(batch_source, 32, seed)
    optimizer = SGD(model.parameters(), lr=lr, momentum=0.9)
    trainer = FloatVatTrainer(model, optimizer, spec, seed=seed)
    for _ in range(epochs):
        trainer.train_epoch(batch_source())
    if not spec.is_null:
        reestimate_bn_statistics(model, batch_source, passes=2)
    convert_to_quantized(model, qconfig)
    calibrate_model(model, batch_source(), max_batches=calibration_batches)
    return model
