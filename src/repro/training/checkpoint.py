"""Checkpointing: save/load models (and optimizer state) as ``.npz`` files.

Keeps long QAVAT sweeps restartable and lets the benchmark harness cache
trained models between runs.  The format is a flat numpy archive:

* ``model/<dotted parameter or buffer name>`` — arrays from ``state_dict``;
* ``optim/<index>/<slot>`` — optimizer slot arrays (velocity, m, v, ...);
* ``meta/<key>`` — scalar metadata (stored as 0-d arrays / strings).
"""

from __future__ import annotations

import os

import numpy as np


def save_checkpoint(
    path: str,
    model,
    optimizer=None,
    metadata: dict | None = None,
) -> None:
    """Write model (+ optional optimizer state and metadata) to ``path``."""
    arrays: dict[str, np.ndarray] = {}
    for name, value in model.state_dict().items():
        arrays[f"model/{name}"] = value
    if optimizer is not None:
        state = optimizer.state_dict()
        for slot, values in state.items():
            if isinstance(values, list):
                for index, array in enumerate(values):
                    arrays[f"optim/{slot}/{index}"] = array
            else:
                arrays[f"optim/{slot}"] = np.asarray(values)
    for key, value in (metadata or {}).items():
        arrays[f"meta/{key}"] = np.asarray(value)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **arrays)


def load_checkpoint(path: str, model, optimizer=None) -> dict:
    """Restore model (+ optional optimizer) from ``path``; returns metadata.

    The model must already have the same architecture (parameter names and
    shapes) as the saved one; quantizer scales and BN statistics are buffers
    in the state dict and are restored too.
    """
    with np.load(path, allow_pickle=False) as archive:
        model_state = {
            key[len("model/"):]: archive[key]
            for key in archive.files
            if key.startswith("model/")
        }
        model.load_state_dict(model_state)
        if optimizer is not None:
            slots: dict[str, object] = {}
            scalar_keys = [
                key for key in archive.files
                if key.startswith("optim/") and key.count("/") == 1
            ]
            list_keys = [
                key for key in archive.files
                if key.startswith("optim/") and key.count("/") == 2
            ]
            for key in scalar_keys:
                slots[key.split("/")[1]] = archive[key].item()
            grouped: dict[str, list[tuple[int, np.ndarray]]] = {}
            for key in list_keys:
                _, slot, index = key.split("/")
                grouped.setdefault(slot, []).append((int(index), archive[key]))
            for slot, items in grouped.items():
                slots[slot] = [array for _, array in sorted(items)]
            if slots:
                optimizer.load_state_dict(slots)
        metadata = {
            key[len("meta/"):]: archive[key][()]
            for key in archive.files
            if key.startswith("meta/")
        }
    return metadata
