"""Training: optimizers, schedules, the QAVAT algorithm, and baselines."""

from repro.training.optim import SGD, Adam, AdamW, Optimizer, clip_grad_norm
from repro.training.schedule import ConstantLR, CosineLR, StepLR, WarmupCosineLR
from repro.training.loop import evaluate_model, train_epoch
from repro.training.qavat import QavatTrainer
from repro.training.baselines import FloatVatTrainer, train_ptq_vat, train_qat, train_qavat
from repro.training.distill import DistillationTrainer, distillation_loss, train_distilled
from repro.training.ema import ModelEMA
from repro.training.checkpoint import load_checkpoint, save_checkpoint

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "clip_grad_norm",
    "ConstantLR",
    "StepLR",
    "CosineLR",
    "WarmupCosineLR",
    "train_epoch",
    "evaluate_model",
    "QavatTrainer",
    "FloatVatTrainer",
    "train_qavat",
    "train_qat",
    "train_ptq_vat",
    "DistillationTrainer",
    "distillation_loss",
    "train_distilled",
    "ModelEMA",
    "save_checkpoint",
    "load_checkpoint",
]
