"""Plain train/eval loops for float models."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.nn import functional as F


def train_epoch(model, batches, optimizer, loss_fn=F.cross_entropy) -> float:
    """One epoch of standard training; returns the mean batch loss."""
    model.train()
    losses = []
    for inputs, targets in batches:
        optimizer.zero_grad()
        loss = loss_fn(model(Tensor(inputs)), targets)
        loss.backward()
        optimizer.step()
        losses.append(float(loss.data))
    return float(np.mean(losses)) if losses else 0.0


def evaluate_model(model, batches) -> float:
    """Top-1 accuracy of ``model`` over an iterable of (inputs, targets)."""
    model.eval()
    correct = 0
    total = 0
    with no_grad():
        for inputs, targets in batches:
            logits = model(Tensor(inputs))
            predicted = logits.data.argmax(axis=-1)
            correct += int((predicted == np.asarray(targets)).sum())
            total += len(targets)
    return correct / total if total else 0.0
