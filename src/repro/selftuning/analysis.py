"""Closed-form estimator statistics for sizing self-tuning modules.

Fig. 7b explores the GTM/LTM size-quality trade-off empirically; this
module gives the matching analytic quantities so a designer can size the
modules without a Monte Carlo sweep:

* the GTM estimate of ``eps_B`` averages ``n`` cells whose fabrication
  noise has std ``sigma_W``, so its standard error is ``sigma_W / sqrt(n)``;
* an LTM column measuring ``sum_j x_j`` carries per-cell noise
  ``eps_{W,j} * W_max``, so the measurement noise std for input vector
  ``x`` is ``sigma_W * W_max * ||x||_2 / sqrt(columns)``.

These formulas are cross-validated against the simulated modules in the
test suite.
"""

from __future__ import annotations

import math

import numpy as np

from repro.selftuning.tuner import SelfTuningConfig, correct_kind_for


def gtm_standard_error(sigma_within: float, gtm_cells: int) -> float:
    """Standard error of the GTM's eps_B estimate."""
    if gtm_cells < 1:
        raise ValueError("need at least one GTM cell")
    return sigma_within / math.sqrt(gtm_cells)


def gtm_cells_for_target(sigma_within: float, target_error: float) -> int:
    """Smallest GTM size whose standard error is at most ``target_error``."""
    if target_error <= 0.0:
        raise ValueError("target_error must be positive")
    if sigma_within == 0.0:
        return 1
    return max(1, math.ceil((sigma_within / target_error) ** 2))


def residual_epsilon_std(sigma_within: float, gtm_cells: int) -> float:
    """Std of the *residual* correlated error after GTM correction.

    Without correction the correlated error is ``sigma_B``; with it, the
    residual is the GTM estimation error, ``sigma_W / sqrt(n)`` —
    independent of ``sigma_B``.  This is why self-tuning keeps working at
    arbitrarily large between-chip variation (Table II).
    """
    return gtm_standard_error(sigma_within, gtm_cells)


def correction_gain_db(sigma_between: float, sigma_within: float, gtm_cells: int) -> float:
    """Suppression of correlated error by the GTM correction, in dB."""
    residual = residual_epsilon_std(sigma_within, gtm_cells)
    if residual == 0.0:
        return math.inf
    if sigma_between == 0.0:
        return 0.0
    return 20.0 * math.log10(sigma_between / residual)


def ltm_measurement_noise_std(
    sigma_within: float,
    w_max: float,
    input_norm: float,
    columns: int,
) -> float:
    """Std of one LTM sum-measurement's within-chip noise term.

    ``input_norm`` is the L2 norm of the driving activation vector; the
    averaged columns cut the noise by ``sqrt(columns)``.
    """
    if columns < 1:
        raise ValueError("need at least one LTM column")
    return sigma_within * w_max * input_norm / math.sqrt(columns)


def ltm_columns_for_target(
    sigma_within: float,
    w_max: float,
    typical_input_norm: float,
    target_std: float,
) -> int:
    """Smallest LTM column count meeting a measurement-noise target."""
    if target_std <= 0.0:
        raise ValueError("target_std must be positive")
    if sigma_within == 0.0 or w_max == 0.0:
        return 1
    needed = (sigma_within * w_max * typical_input_norm / target_std) ** 2
    return max(1, math.ceil(needed))


def check_st_matches_variance_model(
    config: SelfTuningConfig, variance_model_name: str
) -> tuple[bool, str]:
    """Diagnose the Fig. 6 "Wrong ST" failure mode before deployment.

    Returns ``(matches, message)``.  Mismatched self-tuning is *worse* than
    none (Table II: 3.78% vs 19.89% at sigma 0.5), so this check belongs in
    any deployment pipeline.
    """
    expected = correct_kind_for(variance_model_name)
    if config.kind == expected:
        return True, (
            f"self-tuning kind {config.kind!r} matches variance model "
            f"{variance_model_name!r}"
        )
    return False, (
        f"self-tuning kind {config.kind!r} does NOT match variance model "
        f"{variance_model_name!r} (expected {expected!r}); the paper shows "
        "mismatched tuning degrades accuracy below the untuned model"
    )


def size_quality_table(
    sigma_within: float,
    sigma_between: float,
    gtm_sizes=(10, 100, 1_000, 10_000, 100_000),
) -> list[dict]:
    """The analytic backbone of Fig. 7b: residual error per GTM size."""
    rows = []
    for cells in gtm_sizes:
        rows.append(
            {
                "gtm_cells": int(cells),
                "standard_error": gtm_standard_error(sigma_within, cells),
                "residual_std": residual_epsilon_std(sigma_within, cells),
                "gain_db": correction_gain_db(sigma_between, sigma_within, cells),
            }
        )
    return rows
