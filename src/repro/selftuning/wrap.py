"""Attach/detach self-tuning modules on a quantized model.

Per the paper's deployment flow (Sec. III-B): the network is first trained
with QAVAT capturing only the within-chip variation; the self-tuning
modules are then *appended* to the trained model — no retraining.
"""

from __future__ import annotations

from repro.quant.ptq import quantized_layers
from repro.selftuning.tuner import SelfTuner, SelfTuningConfig


def attach_self_tuning(model, config: SelfTuningConfig) -> SelfTuner:
    """Install one shared :class:`SelfTuner` on every quantized layer.

    Returns the tuner so callers can inspect the GTM estimate, swap
    configurations, etc.  Reprogramming cycles may attach a fresh tuner
    freely: the physically-fixed measurements (GTM/LTM reads) are cached
    on the chip object, not the tuner, so corrections stay reproducible.
    """
    tuner = SelfTuner(config)
    for name, layer in quantized_layers(model):
        layer.self_tuner = tuner
        layer._st_key = name
    return tuner


def detach_self_tuning(model) -> None:
    """Remove self-tuning from every quantized layer."""
    for _, layer in quantized_layers(model):
        layer.self_tuner = None
