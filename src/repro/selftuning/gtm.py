"""Global Tuning Module: crossbar-column estimator of eps_B (Fig. 3, left)."""

from __future__ import annotations

import numpy as np

from repro.variability.sampler import ChipVariation


class GlobalTuningModule:
    """A single reference column of ``num_cells`` identical cells.

    With fixed inputs ``x_G`` and programmed conductances ``w_G``, the
    variation-free output ``y_0 = n * w_G * x_G`` is stored digitally.  Under
    variation the measured output is

        ``y_GTM = x_G * sum_i w_G * (1 + eps_B + eps_{W,i})``

    so ``y_GTM / y_0 - 1 = eps_B + mean_i(eps_{W,i})`` — an unbiased
    estimator of ``eps_B`` whose standard error is ``sigma_W / sqrt(n)``.
    One GTM serves the whole chip; its measurement is physically fixed, so
    it is cached on the chip object.
    """

    def __init__(self, num_cells: int = 1000, tag: str = "gtm") -> None:
        if num_cells < 1:
            raise ValueError("GTM needs at least one cell")
        self.num_cells = int(num_cells)
        self.tag = tag

    def estimate(self, chip: ChipVariation) -> float:
        """Measured estimate of eps_B for this chip (cached per chip)."""
        key = f"{self.tag}:{self.num_cells}"
        if key not in chip.measurements:
            if chip.sigma_within > 0.0:
                rng = chip.rng_for(key)
                standard_error = chip.sigma_within / np.sqrt(self.num_cells)
                noise = rng.normal(0.0, standard_error)
            else:
                noise = 0.0
            chip.measurements[key] = chip.eps_between + noise
        return chip.measurements[key]

    def standard_error(self, sigma_within: float) -> float:
        """Theoretical standard error of the estimate."""
        return sigma_within / np.sqrt(self.num_cells)

    def __repr__(self) -> str:
        return f"GlobalTuningModule(num_cells={self.num_cells})"
