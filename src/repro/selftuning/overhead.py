"""Area and compute overhead accounting for self-tuning (paper Sec. III-B)."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.quant.qlayers import QuantConv2d, QuantLinear
from repro.quant.ptq import quantized_layers


def area_overhead(ltm_columns: int, array_size: int = 512) -> float:
    """Per-array area overhead of LTM columns (fraction).

    LTMs add ``ltm_columns`` columns to each ``array_size x array_size``
    crossbar: 1/512 = 0.2% for LTM=1, 16/512 = 3.1% for LTM=16 — the numbers
    quoted in the paper.
    """
    return ltm_columns / array_size


def gtm_area_overhead(gtm_cells: int, total_chip_cells: int) -> float:
    """Chip-level area overhead of the (single) GTM column (fraction)."""
    return gtm_cells / total_chip_cells


def model_flops(model, input_shape: tuple[int, ...]) -> int:
    """Total MVM FLOPs of one inference (2 x MACs), via a traced forward.

    ``input_shape`` is a single sample's shape, e.g. ``(3, 32, 32)``.  Only
    quantized conv/linear layers are counted — they dominate and are the
    layers that live on the PIM arrays.
    """
    with no_grad():
        model(Tensor(np.zeros((1, *input_shape))))
    total = 0
    for _, layer in quantized_layers(model):
        if isinstance(layer, QuantConv2d):
            total += layer.flops_per_input()
        elif isinstance(layer, QuantLinear):
            total += layer.flops_per_input()
    return total


def tuning_flops(model, gtm_cells: int, ltm_columns: int) -> int:
    """FLOPs spent in GTM + LTM columns and digital corrections per inference.

    Requires a prior traced forward (e.g. via :func:`model_flops`).  Counts:

    * the GTM column read: ``2 * gtm_cells`` (once per inference),
    * per layer, each LTM column as one extra output channel of the MVM,
    * the digital correction arithmetic (one multiply-subtract or divide per
      output element).
    """
    total = 2 * gtm_cells
    for _, layer in quantized_layers(model):
        if isinstance(layer, QuantConv2d):
            h, w = layer.output_hw(layer._last_input_hw)
            positions = h * w
            total += 2 * layer.mvm_input_dim() * ltm_columns * positions
            total += 2 * layer.out_channels * positions  # digital correction
        elif isinstance(layer, QuantLinear):
            total += 2 * layer.mvm_input_dim() * ltm_columns
            total += 2 * layer.out_features
    return total


def flops_overhead(
    model,
    input_shape: tuple[int, ...],
    gtm_cells: int = 100_000,
    ltm_columns: int = 1,
) -> float:
    """Self-tuning compute overhead as a fraction of base-model FLOPs."""
    base = model_flops(model, input_shape)
    extra = tuning_flops(model, gtm_cells, ltm_columns)
    return extra / base
