"""Drift compensation: self-tuning against time-varying correlated variation.

The paper's footnote 2 claims the self-tuning architecture "can be
generalized to compensate for any correlated weight variation, e.g., due to
temperature drifts or aging".  This module operationalizes that claim: a
:class:`DriftCompensator` wraps a deployed model's tuner and decides *when*
to re-measure the GTM as the chip's effective ``eps_B`` drifts
(:class:`repro.pim.drift.DriftingChip`).

Because a GTM read costs one column activation, re-measuring on every
inference is nearly free in FLOPs but may be awkward operationally (the
reference column competes with the layer's MVM for the ADC).  Three
policies are provided:

* ``"every"`` — re-measure at each inference (oracle-fresh estimate);
* ``"periodic"`` — re-measure every ``period`` time units;
* ``"never"`` — measure once at deployment (shows how fabrication-only
  self-tuning goes stale under drift).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pim.drift import DriftingChip


@dataclass
class DriftCompensator:
    """Re-measurement policy for a drifting deployment.

    Call :meth:`maybe_remeasure` with the chip each time the operating time
    advances; it clears the chip's cached tuning-module measurements when
    the policy says so, forcing the next correction to read a fresh GTM
    value.
    """

    policy: str = "periodic"
    period: float = 1.0

    def __post_init__(self) -> None:
        if self.policy not in ("every", "periodic", "never"):
            raise ValueError(f"unknown policy {self.policy!r}")
        if self.period <= 0.0:
            raise ValueError("period must be positive")
        self._last_measured: float | None = None
        self.remeasure_count = 0

    def maybe_remeasure(self, chip: DriftingChip) -> bool:
        """Apply the policy at the chip's current time; True if re-measured."""
        now = chip.time
        if self.policy == "never":
            if self._last_measured is None:
                self._last_measured = now
                self.remeasure_count += 1
            return False
        if self.policy == "every":
            chip.remeasure()
            self._last_measured = now
            self.remeasure_count += 1
            return True
        if self._last_measured is None or now - self._last_measured >= self.period:
            chip.remeasure()
            self._last_measured = now
            self.remeasure_count += 1
            return True
        return False

    def staleness(self, chip: DriftingChip) -> float:
        """Time since the estimate was last refreshed."""
        if self._last_measured is None:
            return float("inf")
        return chip.time - self._last_measured


def run_drift_timeline(
    model,
    dataset,
    chip: DriftingChip,
    spec,
    times,
    compensator: DriftCompensator | None = None,
    batch_size: int = 64,
):
    """Evaluate a deployed model along a drift timeline.

    At each time in ``times`` the chip is advanced, the compensation policy
    is applied, and test accuracy is measured with the drifted variation
    installed.  Returns a list of ``(time, eps_B, accuracy)`` tuples.

    The model should already carry self-tuning modules
    (:func:`repro.selftuning.attach_self_tuning`) for compensation to have
    any effect; without a tuner this traces the uncompensated degradation.
    """
    from repro.eval.robustness import _dataset_accuracy
    from repro.variability.injection import clear_variation, inject_variation

    model.eval()
    timeline = []
    for time in times:
        chip.advance_to(float(time))
        if compensator is not None:
            compensator.maybe_remeasure(chip)
        inject_variation(model, chip, spec)
        accuracy = _dataset_accuracy(model, dataset, batch_size)
        timeline.append((float(time), chip.eps_between, accuracy))
    clear_variation(model)
    return timeline
