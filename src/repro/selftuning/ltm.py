"""Layer Tuning Module: per-layer input-sum estimator (Fig. 3, right)."""

from __future__ import annotations

import numpy as np

from repro.variability.sampler import ChipVariation


class LayerTuningModule:
    """``columns`` extra crossbar columns with all cells set to ``w_L``.

    Under the layer-fixed variance model each LTM cell's conductance becomes
    ``w_L + (eps_B + eps_W) * W_max``, so a column driven by the layer's
    input activations measures

        ``y_LTM = (w_L + eps_B * W_max) * sum_j(x_j) + W_max * sum_j(eps_W,j * x_j)``

    Averaging several columns reduces the within-chip estimation noise.
    Cell noise is fabrication-fixed: the per-column epsilon vectors are
    drawn deterministically per (chip, layer) and reused for every input.
    """

    def __init__(self, columns: int = 1, w_l_relative: float = 1.0, tag: str = "ltm") -> None:
        if columns < 1:
            raise ValueError("LTM needs at least one column")
        self.columns = int(columns)
        self.w_l_relative = float(w_l_relative)
        self.tag = tag

    def _cell_noise(self, chip: ChipVariation, layer_key: str, input_dim: int) -> np.ndarray:
        """Fixed per-chip epsilon matrix of shape (input_dim, columns)."""
        rng = chip.rng_for(f"{self.tag}:{layer_key}:{self.columns}")
        if chip.sigma_within == 0.0:
            return np.zeros((input_dim, self.columns))
        return rng.normal(0.0, chip.sigma_within, size=(input_dim, self.columns))

    def measure(
        self,
        chip: ChipVariation,
        layer_key: str,
        patches: np.ndarray,
        w_max: float,
    ) -> np.ndarray:
        """Mean measured LTM output for each MVM input row.

        ``patches`` has shape ``(..., input_dim)`` (im2col rows for a conv,
        the input matrix for a linear layer); the return has shape ``(...)``.
        """
        w_l = self.w_l_relative * w_max
        sums = patches.sum(axis=-1)
        clean = (w_l + chip.eps_between * w_max) * sums
        eps = self._cell_noise(chip, layer_key, patches.shape[-1])
        noise = (patches @ eps).mean(axis=-1) * w_max
        return clean + noise

    def w_l(self, w_max: float) -> float:
        """Programmed LTM cell conductance (relative to the layer's W_max)."""
        return self.w_l_relative * w_max

    def __repr__(self) -> str:
        return (
            f"LayerTuningModule(columns={self.columns}, "
            f"w_l_relative={self.w_l_relative})"
        )
