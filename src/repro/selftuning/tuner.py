"""The self-tuning controller: applies GTM/LTM corrections to MVM outputs."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autograd import Tensor
from repro.selftuning.gtm import GlobalTuningModule
from repro.selftuning.ltm import LayerTuningModule

TUNER_KINDS = ("global", "layer")


def correct_kind_for(variance_model_name: str) -> str:
    """The ST architecture matching a variance model (Fig. 2).

    Weight-proportional variance needs only the GTM ("global"); layer-fixed
    variance needs GTM + per-layer LTMs ("layer").
    """
    if "proportional" in variance_model_name:
        return "global"
    if "fixed" in variance_model_name:
        return "layer"
    raise KeyError(f"no self-tuning architecture for {variance_model_name!r}")


@dataclass(frozen=True)
class SelfTuningConfig:
    """Sizing and kind of the self-tuning architecture.

    ``kind="global"`` divides every MVM output by ``1 + eps_hat_B``
    (weight-proportional variance); ``kind="layer"`` subtracts the
    LTM-estimated additive error (layer-fixed variance).  The paper's default
    deployment is 10^3 GTM cells and 1 LTM column; the hardest layer-fixed
    settings use 10^5 cells and 16 columns.
    """

    kind: str = "global"
    gtm_cells: int = 1000
    ltm_columns: int = 1
    w_l_relative: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in TUNER_KINDS:
            raise ValueError(f"kind must be one of {TUNER_KINDS}, got {self.kind!r}")


class SelfTuner:
    """Applies the configured correction to each quantized layer's output.

    One instance is shared by all layers of a model (mirroring "one GTM per
    chip"); it is installed by :func:`repro.selftuning.wrap.attach_self_tuning`.
    """

    def __init__(self, config: SelfTuningConfig) -> None:
        self.config = config
        self.gtm = GlobalTuningModule(config.gtm_cells)
        self.ltm = LayerTuningModule(config.ltm_columns, config.w_l_relative)

    def correct(self, layer, y_mvm: Tensor, x_q: Tensor) -> Tensor:
        """Corrected MVM output (pre-bias) for one layer on the current chip."""
        chip = layer.current_chip
        if chip is None:
            return y_mvm
        if self.config.kind == "global":
            return self._correct_global(chip, y_mvm)
        return self._correct_layer(layer, chip, y_mvm, x_q)

    # ------------------------------------------------------------------
    def _correct_global(self, chip, y_mvm: Tensor) -> Tensor:
        eps_hat = self.gtm.estimate(chip)
        denominator = 1.0 + eps_hat
        # A chip with eps_B near -1 has lost essentially all conductance;
        # clamp to keep the correction finite.
        if abs(denominator) < 1e-3:
            denominator = np.sign(denominator or 1.0) * 1e-3
        return y_mvm * (1.0 / denominator)

    def _correct_layer(self, layer, chip, y_mvm: Tensor, x_q: Tensor) -> Tensor:
        eps_hat = self.gtm.estimate(chip)
        w_max = layer.ideal_weight_max()
        if w_max == 0.0:
            return y_mvm
        patches = layer.patch_matrix(x_q.data)
        layer_key = getattr(layer, "_st_key", layer.__class__.__name__)
        y_ltm = self.ltm.measure(chip, layer_key, patches, w_max)
        w_l = self.ltm.w_l(w_max)
        denominator = w_l + eps_hat * w_max
        if abs(denominator) < 1e-12:
            return y_mvm
        correction = (eps_hat * w_max / denominator) * y_ltm
        if y_mvm.ndim == 4:  # conv: (N, C, H, W), correction (N, H, W)
            correction = correction[:, None, :, :]
        elif y_mvm.ndim == 2:  # linear: (N, out), correction (N,)
            correction = correction[:, None]
        return y_mvm - Tensor(correction)

    def __repr__(self) -> str:
        return f"SelfTuner({self.config})"
