"""Self-tuning DNN architecture (paper Sec. III).

A trained QAVAT model is wrapped with tuning modules that measure the
correlated (between-chip) component of variation at inference time and
correct each layer's MVM outputs in the digital domain:

* :class:`~repro.selftuning.gtm.GlobalTuningModule` — one per chip;
  estimates ``eps_B`` from a reference crossbar column.
* :class:`~repro.selftuning.ltm.LayerTuningModule` — one (or more columns)
  per layer; estimates the per-output-position input-activation sums needed
  under the layer-fixed variance model.
* :class:`~repro.selftuning.tuner.SelfTuner` — applies the correction that
  matches the variance model ("global" for weight-proportional, "layer" for
  layer-fixed); applying the wrong one reproduces the destructive
  "QAVAT + Wrong ST" rows of Fig. 6 / Table II.
"""

from repro.selftuning.gtm import GlobalTuningModule
from repro.selftuning.ltm import LayerTuningModule
from repro.selftuning.tuner import SelfTuner, SelfTuningConfig, correct_kind_for
from repro.selftuning.wrap import attach_self_tuning, detach_self_tuning
from repro.selftuning.overhead import (
    area_overhead,
    flops_overhead,
    gtm_area_overhead,
    model_flops,
)
from repro.selftuning.analysis import (
    check_st_matches_variance_model,
    correction_gain_db,
    gtm_cells_for_target,
    gtm_standard_error,
    ltm_columns_for_target,
    ltm_measurement_noise_std,
    residual_epsilon_std,
    size_quality_table,
)
from repro.selftuning.driftcomp import DriftCompensator, run_drift_timeline

__all__ = [
    "GlobalTuningModule",
    "LayerTuningModule",
    "SelfTuner",
    "SelfTuningConfig",
    "correct_kind_for",
    "attach_self_tuning",
    "detach_self_tuning",
    "area_overhead",
    "gtm_area_overhead",
    "flops_overhead",
    "model_flops",
    "gtm_standard_error",
    "gtm_cells_for_target",
    "residual_epsilon_std",
    "correction_gain_db",
    "ltm_measurement_noise_std",
    "ltm_columns_for_target",
    "check_st_matches_variance_model",
    "size_quality_table",
    "DriftCompensator",
    "run_drift_timeline",
]
