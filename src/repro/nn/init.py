"""Weight initialization schemes.

A module-level generator keeps initialization reproducible; call
:func:`seed` before building a model to fix all parameter draws.
"""

from __future__ import annotations

import numpy as np

_GENERATOR = np.random.default_rng(0)


def seed(value: int) -> None:
    """Re-seed the initializer RNG (makes model construction deterministic)."""
    global _GENERATOR
    _GENERATOR = np.random.default_rng(value)


def _fan_in(shape: tuple[int, ...]) -> int:
    if len(shape) == 2:  # (out, in)
        return shape[1]
    if len(shape) == 4:  # (out, in, kh, kw)
        return shape[1] * shape[2] * shape[3]
    return int(np.prod(shape[1:])) if len(shape) > 1 else shape[0]


def kaiming_normal(shape: tuple[int, ...]) -> np.ndarray:
    """He-normal init appropriate for ReLU networks."""
    std = np.sqrt(2.0 / _fan_in(shape))
    return _GENERATOR.normal(0.0, std, size=shape)


def kaiming_uniform(shape: tuple[int, ...]) -> np.ndarray:
    """He-uniform init."""
    bound = np.sqrt(6.0 / _fan_in(shape))
    return _GENERATOR.uniform(-bound, bound, size=shape)


def xavier_normal(shape: tuple[int, ...]) -> np.ndarray:
    """Glorot-normal init (tanh/linear layers)."""
    fan_in = _fan_in(shape)
    fan_out = shape[0] if len(shape) > 1 else shape[0]
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return _GENERATOR.normal(0.0, std, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def constant(shape: tuple[int, ...], value: float) -> np.ndarray:
    return np.full(shape, float(value))
