"""Spatial pooling layers."""

from __future__ import annotations

import numpy as np

from repro.autograd import Function, Tensor, is_grad_enabled
from repro.nn.conv import conv_output_size, im2col
from repro.nn.module import Module


class MaxPool2dFunction(Function):
    def forward(self, x, kernel: int, stride: int):
        n, c, h, w = x.shape
        h_out = conv_output_size(h, kernel, stride, 0)
        w_out = conv_output_size(w, kernel, stride, 0)
        if not is_grad_enabled():
            # Inference fast path: a tournament of strided views needs no
            # window materialization and no argmax bookkeeping, and the max
            # of the same floats is bit-identical either way.
            out = None
            for i in range(kernel):
                for j in range(kernel):
                    view = x[:, :, i : i + stride * h_out : stride, j : j + stride * w_out : stride]
                    out = view.copy() if out is None else np.maximum(out, view, out=out)
            self.kernel = kernel
            self.stride = stride
            return out
        windows = np.lib.stride_tricks.sliding_window_view(x, (kernel, kernel), axis=(2, 3))
        windows = windows[:, :, ::stride, ::stride, :, :]
        flat = windows.reshape(n, c, h_out, w_out, kernel * kernel)
        argmax = flat.argmax(axis=-1)
        out = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]
        self.save_for_backward(argmax, x.shape)
        self.kernel = kernel
        self.stride = stride
        return out

    def backward(self, grad):
        argmax, x_shape = self.saved
        n, c, h, w = x_shape
        kernel, stride = self.kernel, self.stride
        h_out, w_out = argmax.shape[2], argmax.shape[3]
        grad_x = np.zeros(x_shape, dtype=grad.dtype)
        # Recover (row, col) offsets inside each pooling window and scatter.
        off_r = argmax // kernel
        off_c = argmax % kernel
        base_r = (np.arange(h_out) * stride)[None, None, :, None]
        base_c = (np.arange(w_out) * stride)[None, None, None, :]
        rows = (base_r + off_r).reshape(n, c, -1)
        cols = (base_c + off_c).reshape(n, c, -1)
        n_idx = np.arange(n)[:, None, None]
        c_idx = np.arange(c)[None, :, None]
        np.add.at(grad_x, (n_idx, c_idx, rows, cols), grad.reshape(n, c, -1))
        return (grad_x,)


class MaxPool2d(Module):
    """Max pooling with square window; ``stride`` defaults to the window size."""

    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return MaxPool2dFunction.apply(x, kernel=self.kernel_size, stride=self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d(kernel_size={self.kernel_size}, stride={self.stride})"


class AvgPool2dFunction(Function):
    def forward(self, x, kernel: int, stride: int):
        cols = im2col(x[:, :, :, :], (kernel, kernel), stride, 0)
        # im2col flattens channels with the window; recover per-channel means.
        n, h_out, w_out, _ = cols.shape
        c = x.shape[1]
        cols = cols.reshape(n, h_out, w_out, c, kernel * kernel)
        out = cols.mean(axis=-1).transpose(0, 3, 1, 2)
        self.kernel = kernel
        self.stride = stride
        self.x_shape = x.shape
        return out

    def backward(self, grad):
        kernel, stride = self.kernel, self.stride
        n, c, h, w = self.x_shape
        h_out, w_out = grad.shape[2], grad.shape[3]
        grad_x = np.zeros(self.x_shape, dtype=grad.dtype)
        share = grad / (kernel * kernel)
        for i in range(kernel):
            for j in range(kernel):
                grad_x[
                    :, :, i : i + stride * h_out : stride, j : j + stride * w_out : stride
                ] += share
        return (grad_x,)


class AvgPool2d(Module):
    """Average pooling with square window; ``stride`` defaults to window size."""

    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return AvgPool2dFunction.apply(x, kernel=self.kernel_size, stride=self.stride)

    def __repr__(self) -> str:
        return f"AvgPool2d(kernel_size={self.kernel_size}, stride={self.stride})"


class GlobalAvgPool2d(Module):
    """Mean over the spatial dimensions: NCHW -> NC."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=(2, 3))
