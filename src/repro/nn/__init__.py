"""Neural-network building blocks on top of :mod:`repro.autograd`.

Mirrors the subset of a torch-like API needed by the paper's models:
``Module``/``Parameter``, ``Linear``, ``Conv2d``, ``BatchNorm2d``, pooling,
activations, containers, weight init, and the loss/functional helpers.
"""

from repro.nn.module import Module, Parameter
from repro.nn.linear import Linear
from repro.nn.conv import Conv2d
from repro.nn.norm import BatchNorm2d, reestimate_bn_statistics
from repro.nn.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d
from repro.nn.activations import Dropout, LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.container import Flatten, Sequential
from repro.nn import functional, init

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "reestimate_bn_statistics",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "LeakyReLU",
    "Dropout",
    "Sequential",
    "Flatten",
    "functional",
    "init",
]
