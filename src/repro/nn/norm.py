"""Batch normalization (2-D feature maps)."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.nn.module import Module, Parameter


class BatchNorm2d(Module):
    """Batch normalization over NCHW feature maps.

    Composed from autograd primitives, so the backward pass needs no bespoke
    derivation.  Running statistics are buffers updated in training mode and
    used in eval mode (standard torch semantics).
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects NCHW input, got ndim={x.ndim}")
        axes = (0, 2, 3)
        if self.training:
            mean = x.mean(axis=axes, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=axes, keepdims=True)
            batch_mean = mean.data.reshape(-1)
            batch_var = var.data.reshape(-1)
            m = self.momentum
            self.set_buffer("running_mean", (1 - m) * self.running_mean + m * batch_mean)
            self.set_buffer("running_var", (1 - m) * self.running_var + m * batch_var)
            normalized = centered / (var + self.eps) ** 0.5
        else:
            shape = (1, self.num_features, 1, 1)
            mean = self.running_mean.reshape(shape)
            std = np.sqrt(self.running_var.reshape(shape) + self.eps)
            normalized = (x - mean) / std
        scale = self.weight.reshape((1, self.num_features, 1, 1))
        shift = self.bias.reshape((1, self.num_features, 1, 1))
        return normalized * scale + shift

    def reset_running_stats(self) -> None:
        """Forget accumulated running statistics (mean 0, var 1)."""
        self.set_buffer("running_mean", np.zeros(self.num_features))
        self.set_buffer("running_var", np.ones(self.num_features))

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


def reestimate_bn_statistics(model, batches, passes: int = 1) -> int:
    """Re-estimate BatchNorm running statistics with clean forward passes.

    Training under injected variability feeds the running mean/variance EMAs
    with heavily perturbed activations; evaluating with those corrupted
    statistics can destroy a model that the noisy training itself left
    intact (the effect is catastrophic under the layer-fixed variance model
    at high sigma).  The standard remedy — also applied by analog-hardware
    training frameworks — is a handful of noise-free forward passes over
    training data after training, with the EMAs replaced by a cumulative
    average over the observed batches.

    ``batches`` is a zero-argument callable yielding an epoch of
    ``(inputs, targets)`` batches (one fresh epoch per pass).  Returns the
    number of BatchNorm layers refreshed.
    """
    from repro.autograd import Tensor, no_grad

    bn_layers = [m for m in model.modules() if isinstance(m, BatchNorm2d)]
    if not bn_layers:
        return 0
    saved_momentum = [(layer, layer.momentum) for layer in bn_layers]
    for layer in bn_layers:
        layer.reset_running_stats()
    was_training = model.training
    model.train()
    try:
        batch_index = 0
        for _ in range(passes):
            for inputs, _targets in batches():
                # Cumulative average: the k-th observed batch contributes
                # with weight 1/k, so the result is the plain mean over all
                # observed batch statistics rather than an EMA.
                batch_index += 1
                for layer in bn_layers:
                    layer.momentum = 1.0 / batch_index
                with no_grad():
                    model(Tensor(inputs))
    finally:
        for layer, momentum in saved_momentum:
            layer.momentum = momentum
        model.train(was_training)
    return len(bn_layers)
