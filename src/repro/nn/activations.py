"""Activation layers."""

from __future__ import annotations

import numpy as np

from repro.autograd import Function, Tensor
from repro.nn.module import Module


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:
        return "ReLU()"


class TanhFunction(Function):
    def forward(self, a):
        out = np.tanh(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad):
        (out,) = self.saved
        return (grad * (1.0 - out * out),)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return TanhFunction.apply(x)

    def __repr__(self) -> str:
        return "Tanh()"


class SigmoidFunction(Function):
    def forward(self, a):
        out = 1.0 / (1.0 + np.exp(-a))
        self.save_for_backward(out)
        return out

    def backward(self, grad):
        (out,) = self.saved
        return (grad * out * (1.0 - out),)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return SigmoidFunction.apply(x)

    def __repr__(self) -> str:
        return "Sigmoid()"


class LeakyReLUFunction(Function):
    def forward(self, a, slope: float):
        self.save_for_backward(np.where(a > 0, 1.0, slope))
        return np.where(a > 0, a, slope * a)

    def backward(self, grad):
        (factor,) = self.saved
        return (grad * factor,)


class LeakyReLU(Module):
    """ReLU with a small negative-side slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return LeakyReLUFunction.apply(x, slope=self.negative_slope)

    def __repr__(self) -> str:
        return f"LeakyReLU({self.negative_slope})"


class Dropout(Module):
    """Inverted dropout: active in training mode, identity in eval mode."""

    def __init__(self, p: float = 0.5, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = (self._rng.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * Tensor(keep)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
