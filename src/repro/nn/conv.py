"""2-D convolution via im2col, as a single fused autograd Function.

The analog-PIM mapping in the paper lowers convolutions to matrix-vector
products over im2col patches; this implementation mirrors that lowering,
which also makes it the natural integration point for crossbar simulation
(:mod:`repro.pim`) and the LTM patch-sum estimation (:mod:`repro.selftuning`).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Function, Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter


def im2col(x: np.ndarray, kernel: tuple[int, int], stride: int, padding: int) -> np.ndarray:
    """Lower NCHW input to patch matrix of shape ``(N, H_out, W_out, C*kh*kw)``."""
    kh, kw = kernel
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]
    # (N, C, Ho, Wo, kh, kw) -> (N, Ho, Wo, C, kh, kw)
    windows = windows.transpose(0, 2, 3, 1, 4, 5)
    n, h_out, w_out = windows.shape[:3]
    return np.ascontiguousarray(windows).reshape(n, h_out, w_out, -1)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, ...],
    kernel: tuple[int, int],
    stride: int,
    padding: int,
) -> np.ndarray:
    """Scatter-add patch gradients back to input shape (inverse of im2col)."""
    n, c, h, w = x_shape
    kh, kw = kernel
    h_pad, w_pad = h + 2 * padding, w + 2 * padding
    h_out = (h_pad - kh) // stride + 1
    w_out = (w_pad - kw) // stride + 1
    cols = cols.reshape(n, h_out, w_out, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    out = np.zeros((n, c, h_pad, w_pad), dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            out[:, :, i : i + stride * h_out : stride, j : j + stride * w_out : stride] += cols[
                :, :, :, :, i, j
            ]
    if padding:
        out = out[:, :, padding : padding + h, padding : padding + w]
    return out


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    return (size + 2 * padding - kernel) // stride + 1


class Conv2dFunction(Function):
    """Fused conv2d: forward + backward w.r.t. input, weight, and bias."""

    def forward(self, x, weight, bias, stride: int = 1, padding: int = 0):
        out_channels, in_channels, kh, kw = weight.shape
        cols = im2col(x, (kh, kw), stride, padding)  # (N, Ho, Wo, C*kh*kw)
        w_mat = weight.reshape(out_channels, -1)
        n, h_out, w_out, patch = cols.shape
        # One flat GEMM over all output positions beats a broadcast of
        # (Wo, patch) @ (patch, C_out) micro-GEMMs by a wide margin when
        # C_out is small (the BLAS call overhead dominates tiny matmuls).
        out = (cols.reshape(-1, patch) @ w_mat.T).reshape(n, h_out, w_out, out_channels)
        if bias is not None:
            out = out + bias
        self.save_for_backward(cols, w_mat, x.shape, weight.shape)
        self.stride = stride
        self.padding = padding
        self.has_bias = bias is not None
        return out.transpose(0, 3, 1, 2)

    def backward(self, grad):
        cols, w_mat, x_shape, w_shape = self.saved
        out_channels = w_shape[0]
        # grad: (N, out_channels, Ho, Wo) -> (N, Ho, Wo, out_channels)
        grad_nhwc = grad.transpose(0, 2, 3, 1)
        grad_flat = grad_nhwc.reshape(-1, out_channels)
        cols_flat = cols.reshape(-1, cols.shape[-1])
        grad_weight = (grad_flat.T @ cols_flat).reshape(w_shape)
        grad_cols = grad_nhwc @ w_mat  # (N, Ho, Wo, C*kh*kw)
        grad_x = col2im(grad_cols, x_shape, w_shape[2:], self.stride, self.padding)
        grad_bias = grad_flat.sum(axis=0) if self.has_bias else None
        return grad_x, grad_weight, grad_bias


def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None, stride: int = 1, padding: int = 0):
    """Functional differentiable 2-D convolution (NCHW)."""
    if bias is None:
        return Conv2dFunction.apply(x, weight, stride=stride, padding=padding, bias=None)
    return Conv2dFunction.apply(x, weight, bias, stride=stride, padding=padding)


class Conv2d(Module):
    """Standard 2-D convolution layer.

    Parameters follow the usual convention: weight ``(C_out, C_in, kh, kw)``,
    optional bias ``(C_out,)``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels, kernel_size, kernel_size))
        )
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(x, self.weight, self.bias, self.stride, self.padding)

    def output_shape(self, input_hw: tuple[int, int]) -> tuple[int, int, int]:
        """(C_out, H_out, W_out) for a given input spatial size."""
        h = conv_output_size(input_hw[0], self.kernel_size, self.stride, self.padding)
        w = conv_output_size(input_hw[1], self.kernel_size, self.stride, self.padding)
        return self.out_channels, h, w

    def flops_per_input(self, input_hw: tuple[int, int]) -> int:
        """Multiply-accumulate count for one NCHW sample (used by overhead bench)."""
        _, h, w = self.output_shape(input_hw)
        macs_per_position = self.in_channels * self.kernel_size * self.kernel_size
        return 2 * macs_per_position * self.out_channels * h * w

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding})"
        )
