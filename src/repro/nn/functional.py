"""Functional helpers: losses and stateless transforms."""

from __future__ import annotations

import numpy as np

from repro.autograd import Function, Tensor
from repro.autograd.ops import log_softmax


def softmax(x: Tensor) -> Tensor:
    """Softmax over the last axis (via the stable log-softmax)."""
    return log_softmax(x).exp()


class CrossEntropyFunction(Function):
    """Fused log-softmax + negative log-likelihood with integer targets."""

    def forward(self, logits, targets: np.ndarray):
        shifted = logits - logits.max(axis=-1, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        log_probs = shifted - log_z
        n = logits.shape[0]
        self.save_for_backward(np.exp(log_probs), targets, n)
        picked = log_probs[np.arange(n), targets]
        return -picked.mean()

    def backward(self, grad):
        probs, targets, n = self.saved
        grad_logits = probs.copy()
        grad_logits[np.arange(n), targets] -= 1.0
        return (grad * grad_logits / n,)


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy loss for integer class targets."""
    targets = np.asarray(targets, dtype=np.int64)
    return CrossEntropyFunction.apply(logits, targets=targets)


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    diff = prediction - target
    return (diff * diff).mean()


def accuracy(logits: Tensor | np.ndarray, targets: np.ndarray) -> float:
    """Top-1 classification accuracy in [0, 1]."""
    scores = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    predicted = scores.argmax(axis=-1)
    return float((predicted == np.asarray(targets)).mean())


def one_hot(targets: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels -> one-hot float matrix."""
    targets = np.asarray(targets, dtype=np.int64)
    out = np.zeros((targets.shape[0], num_classes))
    out[np.arange(targets.shape[0]), targets] = 1.0
    return out
