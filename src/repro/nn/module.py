"""Module/Parameter system: registration, traversal, state dicts."""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.autograd import Tensor


class Parameter(Tensor):
    """A tensor that is a trainable parameter of a :class:`Module`."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` attributes in
    ``__init__``; they are auto-registered for :meth:`parameters`,
    :meth:`state_dict`, train/eval mode propagation, etc.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state saved in :meth:`state_dict`
        (e.g. batch-norm running statistics or quantizer scales)."""
        self._buffers[name] = np.asarray(value, dtype=np.float64)
        object.__setattr__(self, name, self._buffers[name])

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        """Overwrite a previously registered buffer."""
        if name not in self._buffers:
            raise KeyError(f"no buffer named {name!r}")
        self._buffers[name] = np.asarray(value, dtype=np.float64)
        object.__setattr__(self, name, self._buffers[name])

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        for _, parameter in self.named_parameters():
            yield parameter

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, parameter in self._parameters.items():
            yield prefix + name, parameter
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            yield from module.named_modules(prefix + name + ".")

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def apply(self, fn) -> "Module":
        """Apply ``fn`` to self and every submodule (torch-style)."""
        for module in self.modules():
            fn(module)
        return self

    # ------------------------------------------------------------------
    # Mode and gradients
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self, prefix: str = "") -> "OrderedDict[str, np.ndarray]":
        state: OrderedDict[str, np.ndarray] = OrderedDict()
        for name, parameter in self._parameters.items():
            state[prefix + name] = parameter.data.copy()
        for name, buffer in self._buffers.items():
            state[prefix + name] = np.asarray(buffer).copy()
        for name, module in self._modules.items():
            state.update(module.state_dict(prefix + name + "."))
        return state

    def load_state_dict(self, state: dict, prefix: str = "") -> None:
        for name, parameter in self._parameters.items():
            key = prefix + name
            if key not in state:
                raise KeyError(f"missing parameter {key!r} in state dict")
            parameter.data = np.asarray(state[key], dtype=np.float64).reshape(
                parameter.data.shape
            ).copy()
        for name in self._buffers:
            key = prefix + name
            if key not in state:
                raise KeyError(f"missing buffer {key!r} in state dict")
            self.set_buffer(name, state[key])
        for name, module in self._modules.items():
            module.load_state_dict(state, prefix + name + ".")

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        lines = [self.__class__.__name__ + "("]
        for name, module in self._modules.items():
            child = repr(module).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child}")
        lines.append(")")
        return "\n".join(lines) if len(lines) > 2 else self.__class__.__name__ + "()"

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return sum(p.size for p in self.parameters())
