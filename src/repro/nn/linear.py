"""Fully connected layer."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter


class Linear(Module):
    """Affine map ``y = x @ W.T + b`` with weight shape ``(out, in)``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_normal((out_features, in_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def flops_per_input(self) -> int:
        """Multiply-accumulate count for a single input row."""
        return 2 * self.in_features * self.out_features

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"
