"""Module containers."""

from __future__ import annotations

from repro.nn.module import Module


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for index, module in enumerate(modules):
            setattr(self, str(index), module)

    def forward(self, x):
        for module in self._modules.values():
            x = module(x)
        return x

    def __iter__(self):
        return iter(self._modules.values())

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def __len__(self) -> int:
        return len(self._modules)

    def append(self, module: Module) -> "Sequential":
        setattr(self, str(len(self._modules)), module)
        return self


class Flatten(Module):
    """Flatten all dimensions from ``start_dim`` onward."""

    def __init__(self, start_dim: int = 1) -> None:
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x):
        return x.flatten(self.start_dim)

    def __repr__(self) -> str:
        return f"Flatten(start_dim={self.start_dim})"
