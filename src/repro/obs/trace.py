"""Request-scoped tracing: lightweight spans over an injectable clock.

A :class:`Span` is one named, timed region with free-form attributes —
the serving engine emits one per stage of a request's life
(``enqueue -> batch -> schedule -> mapping/program -> forward ->
lifecycle.probe``).  Spans land in a bounded in-memory
:class:`SpanRecorder` (oldest dropped first, so a long-running fleet
never grows without bound) and can be exported as JSONL or aggregated
into a per-stage breakdown.

When tracing is off the engine talks to a :class:`NullRecorder` instead:
``span()`` returns a shared no-op context manager and ``event()`` returns
immediately, so the disabled path costs a method call and nothing else —
the overhead bound ``tests/test_obs_overhead.py`` enforces.
"""

from __future__ import annotations

import json
from collections import deque

from repro.obs.clock import Clock, MonotonicClock


class Span:
    """One completed timed region: name, start/end seconds, attributes."""

    __slots__ = ("name", "start", "end", "attrs")

    def __init__(self, name: str, start: float, end: float, attrs: dict) -> None:
        self.name = name
        self.start = start
        self.end = end
        self.attrs = attrs

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            **self.attrs,
        }

    def __repr__(self) -> str:
        return f"Span({self.name}, {1e3 * self.duration:.3f} ms, {self.attrs})"


class _LiveSpan:
    """Context manager that records one span into its recorder on exit."""

    __slots__ = ("_recorder", "_name", "_attrs", "_start")

    def __init__(self, recorder: "SpanRecorder", name: str, attrs: dict) -> None:
        self._recorder = recorder
        self._name = name
        self._attrs = attrs
        self._start = 0.0

    def set(self, **attrs) -> "_LiveSpan":
        """Attach attributes mid-span (e.g. the chip a scheduler chose)."""
        self._attrs.update(attrs)
        return self

    def __enter__(self) -> "_LiveSpan":
        self._start = self._recorder.clock.now()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = self._recorder.clock.now()
        self._recorder.record(Span(self._name, self._start, end, self._attrs))


class _NullSpan:
    """Shared no-op span: the fast path when tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()


class SpanRecorder:
    """Bounded in-memory span sink with JSONL export and stage aggregation.

    ``max_spans`` caps memory: once full, the oldest span is dropped per
    new one (``dropped`` counts them), so tracing can stay on under
    production traffic without unbounded growth.
    """

    enabled = True

    def __init__(self, clock: Clock | None = None, max_spans: int = 4096) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.clock = clock if clock is not None else MonotonicClock()
        self.max_spans = int(max_spans)
        self._spans: deque[Span] = deque(maxlen=self.max_spans)
        self.dropped = 0

    def span(self, name: str, **attrs) -> _LiveSpan:
        """A context manager timing one named region."""
        return _LiveSpan(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record an instantaneous (zero-duration) span."""
        now = self.clock.now()
        self.record(Span(name, now, now, attrs))

    def record(self, span: Span) -> None:
        if len(self._spans) == self.max_spans:
            self.dropped += 1
        self._spans.append(span)

    @property
    def spans(self) -> list[Span]:
        """Recorded spans, oldest first."""
        return list(self._spans)

    def named(self, name: str) -> list[Span]:
        """Every recorded span called ``name``, oldest first."""
        return [span for span in self._spans if span.name == name]

    def breakdown(self) -> dict:
        """Per-stage aggregate: ``{name: {count, total_s, mean_s, max_s}}``.

        This is the "where does a request's time go" table ``serve-bench``
        prints — queue vs schedule vs program vs forward at a glance.
        """
        stages: dict[str, dict] = {}
        for span in self._spans:
            stage = stages.setdefault(
                span.name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
            )
            stage["count"] += 1
            stage["total_s"] += span.duration
            stage["max_s"] = max(stage["max_s"], span.duration)
        for stage in stages.values():
            stage["mean_s"] = stage["total_s"] / stage["count"]
        return stages

    def export_jsonl(self, path) -> int:
        """Write every recorded span as one JSON object per line.

        Returns the number of spans written.  ``path`` may be a filesystem
        path or an open text file object.
        """
        if hasattr(path, "write"):
            for span in self._spans:
                path.write(json.dumps(span.as_dict()) + "\n")
            return len(self._spans)
        with open(path, "w", encoding="utf-8") as handle:
            return self.export_jsonl(handle)

    def clear(self) -> None:
        self._spans.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._spans)

    def __repr__(self) -> str:
        return f"SpanRecorder({len(self)} spans, dropped={self.dropped})"


class NullRecorder:
    """Recorder with the :class:`SpanRecorder` surface and no storage.

    Every operation is a no-op; ``span()`` hands back one shared
    :data:`NULL_SPAN` so the disabled-tracing hot path allocates nothing
    per call beyond the kwargs dict Python builds for the call itself.
    """

    enabled = False
    dropped = 0
    max_spans = 0

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock if clock is not None else MonotonicClock()

    def span(self, name: str, **attrs) -> _NullSpan:
        return NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        return None

    def record(self, span: Span) -> None:
        return None

    @property
    def spans(self) -> list[Span]:
        return []

    def named(self, name: str) -> list[Span]:
        return []

    def breakdown(self) -> dict:
        return {}

    def export_jsonl(self, path) -> int:
        if hasattr(path, "write"):
            return 0
        with open(path, "w", encoding="utf-8"):
            return 0

    def clear(self) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullRecorder()"
