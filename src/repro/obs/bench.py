"""Perf-regression gate over the ``BENCH_*.json`` trajectory.

The :class:`~repro.obs.export.BenchRecorder` turns benchmark numbers into
a trajectory — consecutive commits append comparable runs.  This module
is the *gate* on that trajectory: :func:`compare_latest` checks the most
recent run(s) against the last earlier run recorded at the **same
workload scale** (the ``scale`` dict, compared whole — a run with a
different backend, chip count, or batch size is a different experiment,
not a baseline), and flags a regression when the metric dropped by more
than ``threshold``.

CI runs it as a module::

    python -m repro.obs.bench BENCH_serving.json --check-last 2

which exits non-zero iff any checked run regressed against its baseline.
A run with no same-scale predecessor passes (first data point at a new
scale), so adding a new benchmark configuration never trips the gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass

from repro.obs.export import BENCH_SCHEMA


@dataclass(frozen=True)
class BenchCheck:
    """Verdict for one benchmark run against its same-scale baseline.

    ``baseline`` is ``None`` when the run is the first at its scale (the
    check passes vacuously); otherwise ``ratio = current / baseline`` and
    ``regressed`` is whether the drop exceeded the gate's threshold.
    """

    index: int
    metric: str
    current: float
    baseline: float | None
    threshold: float
    scale: dict

    @property
    def ratio(self) -> float | None:
        """current/baseline, or ``None`` without a baseline."""
        if self.baseline is None or self.baseline == 0:
            return None
        return self.current / self.baseline

    @property
    def regressed(self) -> bool:
        """Whether this run dropped more than ``threshold`` below baseline."""
        if self.baseline is None:
            return False
        return self.current < self.baseline * (1.0 - self.threshold)

    def describe(self) -> str:
        """One human-readable verdict line (the CLI's output format)."""
        scale = json.dumps(self.scale, sort_keys=True)
        if self.baseline is None:
            return f"PASS  run[{self.index}] {self.metric}={self.current:.6g} (no same-scale baseline) {scale}"
        verdict = "FAIL" if self.regressed else "PASS"
        return (
            f"{verdict}  run[{self.index}] {self.metric}={self.current:.6g} "
            f"baseline={self.baseline:.6g} ratio={self.ratio:.3f} "
            f"(floor {1.0 - self.threshold:.2f}) {scale}"
        )


def load_runs(path: str) -> list[dict]:
    """The run list of one ``BENCH_*.json`` file (schema-checked).

    Raises ``ValueError`` on a foreign schema or malformed payload —
    the gate must never silently pass because the file it guards became
    unreadable.
    """
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if (
        not isinstance(payload, dict)
        or payload.get("schema") != BENCH_SCHEMA
        or not isinstance(payload.get("runs"), list)
    ):
        raise ValueError(f"{path}: not a {BENCH_SCHEMA!r} bench file")
    return payload["runs"]


def scale_key(scale: dict) -> str:
    """Canonical identity of one workload scale (whole-dict comparison).

    Any difference — an added key like ``fused``, a changed chip count —
    makes a run a different experiment with its own baseline lineage.
    """
    return json.dumps(scale or {}, sort_keys=True, default=str)


def baseline_for(runs: list[dict], index: int, metric: str) -> float | None:
    """The most recent earlier run at ``runs[index]``'s scale, as a metric value.

    Scans backwards from ``index``; returns ``None`` when no earlier run
    has the same scale dict *and* carries the metric.
    """
    target = scale_key(runs[index].get("scale", {}))
    for run in reversed(runs[:index]):
        if scale_key(run.get("scale", {})) != target:
            continue
        value = run.get("metrics", {}).get(metric)
        if value is not None:
            return float(value)
    return None


def compare_latest(
    runs: list[dict],
    metric: str = "throughput_sps",
    threshold: float = 0.2,
    check_last: int = 1,
) -> list[BenchCheck]:
    """Gate the last ``check_last`` runs against their same-scale baselines.

    Runs missing the metric entirely are skipped (they measure something
    else — e.g. a chaos run recording goodput, not throughput).  Returns
    one :class:`BenchCheck` per gated run, oldest first.
    """
    if not 0.0 <= threshold < 1.0:
        raise ValueError(f"threshold must be in [0, 1), got {threshold}")
    checks = []
    start = max(0, len(runs) - max(1, int(check_last)))
    for index in range(start, len(runs)):
        value = runs[index].get("metrics", {}).get(metric)
        if value is None:
            continue
        checks.append(
            BenchCheck(
                index=index,
                metric=metric,
                current=float(value),
                baseline=baseline_for(runs, index, metric),
                threshold=float(threshold),
                scale=dict(runs[index].get("scale", {})),
            )
        )
    return checks


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: ``python -m repro.obs.bench <file> [--check-last N]``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.bench",
        description="Fail when the latest BENCH runs regress vs their same-scale baselines.",
    )
    parser.add_argument("path", help="BENCH_*.json trajectory file")
    parser.add_argument(
        "--check-last", type=int, default=1, metavar="N",
        help="gate the N most recent runs (default 1)",
    )
    parser.add_argument(
        "--metric", default="throughput_sps",
        help="metric to gate on (default throughput_sps)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.2,
        help="max allowed fractional drop vs baseline (default 0.2)",
    )
    args = parser.parse_args(argv)
    runs = load_runs(args.path)
    checks = compare_latest(
        runs, metric=args.metric, threshold=args.threshold, check_last=args.check_last
    )
    if not checks:
        print(f"no runs carrying {args.metric!r} in the last {args.check_last}")
        return 0
    failed = False
    for check in checks:
        print(check.describe())
        failed = failed or check.regressed
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
