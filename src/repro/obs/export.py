"""Exporters: Prometheus text dump, span JSONL, and ``BENCH_*.json``.

Three ways the in-memory observability state leaves the process:

* :func:`to_prometheus` — the standard text exposition format, so a
  scrape endpoint (or a human) can read every registered metric;
* :meth:`repro.obs.trace.SpanRecorder.export_jsonl` — the span timeline
  (re-exported here for discoverability);
* :class:`BenchRecorder` — schema-versioned ``BENCH_*.json`` files that
  accumulate a *perf trajectory*: every benchmark run appends one entry
  (metrics + git SHA + workload scale), so a future "made the hot path
  faster" PR is measured against recorded history instead of a claim.
"""

from __future__ import annotations

import json
import os
import subprocess
import time

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

#: Version tag every BENCH file carries; bump on breaking layout changes.
BENCH_SCHEMA = "repro.bench/v1"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render every registered metric in Prometheus text format."""
    lines: list[str] = []
    for metric in registry:
        name = metric.name.replace("-", "_").replace(".", "_")
        if metric.help:
            lines.append(f"# HELP {name} {metric.help}")
        lines.append(f"# TYPE {name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            lines.append(f"{name} {_format_value(metric.value)}")
        elif isinstance(metric, Histogram):
            cumulative = 0
            for bound, count in zip(metric.bucket_bounds(), metric.counts):
                cumulative += count
                label = "+Inf" if bound == float("inf") else repr(float(bound))
                lines.append(f'{name}_bucket{{le="{label}"}} {cumulative}')
            lines.append(f"{name}_sum {_format_value(metric.total)}")
            lines.append(f"{name}_count {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def git_sha(root: str | None = None) -> str:
    """The current commit SHA, or ``"unknown"`` outside a git checkout."""
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=root or os.getcwd(),
                capture_output=True,
                text=True,
                timeout=5,
                check=True,
            ).stdout.strip()
            or "unknown"
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"


class BenchRecorder:
    """Appends schema-versioned benchmark runs to a ``BENCH_*.json`` file.

    The file holds one JSON object::

        {"schema": "repro.bench/v1", "bench": "serving",
         "runs": [{"recorded_unix": ..., "git_sha": ..., "scale": {...},
                   "metrics": {...}}, ...]}

    Existing runs with a matching schema are preserved (bounded to the most
    recent ``max_runs``), which is what turns isolated benchmark numbers
    into a trajectory: consecutive commits append comparable entries.
    A file with a foreign schema or unparsable content is replaced, never
    merged.
    """

    def __init__(self, path, bench: str, max_runs: int = 100) -> None:
        if max_runs < 1:
            raise ValueError(f"max_runs must be >= 1, got {max_runs}")
        self.path = os.fspath(path)
        self.bench = str(bench)
        self.max_runs = int(max_runs)

    def _existing_runs(self) -> list[dict]:
        try:
            with open(self.path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return []
        if (
            isinstance(payload, dict)
            and payload.get("schema") == BENCH_SCHEMA
            and payload.get("bench") == self.bench
            and isinstance(payload.get("runs"), list)
        ):
            return payload["runs"]
        return []

    def record(self, metrics: dict, scale: dict | None = None) -> dict:
        """Append one run (metrics + workload scale) and rewrite the file.

        Returns the run entry written.  ``metrics`` must already be
        JSON-serializable — the recorder round-trips it through ``json``
        to fail fast on numpy scalars and friends.
        """
        run = {
            "recorded_unix": time.time(),
            "git_sha": git_sha(),
            "scale": dict(scale or {}),
            "metrics": json.loads(json.dumps(metrics)),
        }
        runs = (self._existing_runs() + [run])[-self.max_runs :]
        payload = {"schema": BENCH_SCHEMA, "bench": self.bench, "runs": runs}
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return run

    def runs(self) -> list[dict]:
        """Every recorded run, oldest first."""
        return list(self._existing_runs())

    def latest(self) -> dict | None:
        runs = self._existing_runs()
        return runs[-1] if runs else None

    def __repr__(self) -> str:
        return f"BenchRecorder({self.path!r}, bench={self.bench!r})"
