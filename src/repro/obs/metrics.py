"""Metric primitives: counters, gauges, and streaming quantile histograms.

The serving telemetry previously reported mean/min/max/std only — enough
for load balance, useless for latency SLOs, which are stated in tail
quantiles (p95/p99).  :class:`Histogram` fills that gap with the standard
production trick: a fixed set of log-spaced buckets (O(1) memory however
much traffic flows through), with quantiles recovered by interpolating
inside the bucket the rank falls in.  Bucket resolution bounds the
quantile error: with the default 10 buckets per decade any reported
quantile is within one bucket width (~26%) of the exact order statistic,
and the min/max are tracked exactly so q=0/q=1 are always sharp.

A :class:`MetricsRegistry` names and owns metric instances so exporters
(:mod:`repro.obs.export`) can walk everything the stack recorded.
"""

from __future__ import annotations

import math


class Counter:
    """A monotonically increasing integer count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def as_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A value that can go up and down (queue depth, resident mappings)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += float(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= float(amount)

    def as_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value:.6g})"


class Histogram:
    """Streaming histogram over fixed log-spaced buckets with quantiles.

    Buckets cover ``[lo, hi)`` with ``buckets_per_decade`` log-spaced bins
    per decade, plus an underflow bucket ``[0, lo)`` and an overflow bucket
    ``[hi, inf)`` — memory is fixed at construction no matter how many
    values stream through.  Alongside the buckets the exact count / sum /
    sum-of-squares / min / max are kept, so the meter surface of
    :class:`repro.eval.metrics.AverageMeter` (``mean``/``min``/``max``/
    ``std``/``total``/``count``) is a strict subset of this one —
    :class:`~repro.serve.telemetry.ServeTelemetry` swaps meters for
    histograms without changing a caller.

    :meth:`quantile` finds the bucket the requested rank lands in and
    interpolates linearly inside it (clamped to the exact observed
    min/max), which makes p50/p95/p99 deterministic functions of the
    recorded distribution.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        lo: float = 1e-6,
        hi: float = 1e6,
        buckets_per_decade: int = 10,
    ) -> None:
        if lo <= 0.0 or hi <= lo:
            raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
        if buckets_per_decade < 1:
            raise ValueError("buckets_per_decade must be >= 1")
        self.name = name
        self.help = help
        self.lo = float(lo)
        self.hi = float(hi)
        self.buckets_per_decade = int(buckets_per_decade)
        decades = math.log10(self.hi / self.lo)
        self._n_log = max(1, int(math.ceil(decades * self.buckets_per_decade - 1e-9)))
        # counts[0] is the underflow bucket [0, lo); counts[-1] is overflow.
        self.counts = [0] * (self._n_log + 2)
        self.count = 0
        self.total = 0.0
        self._total_sq = 0.0
        self._min: float | None = None
        self._max: float | None = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _bucket_index(self, value: float) -> int:
        if value < self.lo:
            return 0
        if value >= self.hi:
            return self._n_log + 1
        index = int(math.log10(value / self.lo) * self.buckets_per_decade)
        return min(max(index, 0), self._n_log - 1) + 1

    def observe(self, value: float, weight: int = 1) -> None:
        value = float(value)
        if weight < 1:
            raise ValueError(f"weight must be >= 1, got {weight}")
        self.counts[self._bucket_index(value)] += weight
        self.count += weight
        self.total += value * weight
        self._total_sq += value * value * weight
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)

    # AverageMeter-compatible alias: telemetry call sites say update().
    update = observe

    # ------------------------------------------------------------------
    # Meter surface (AverageMeter-compatible)
    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._min is not None else 0.0

    @property
    def max(self) -> float:
        return self._max if self._max is not None else 0.0

    @property
    def std(self) -> float:
        if not self.count:
            return 0.0
        variance = self._total_sq / self.count - self.mean**2
        return math.sqrt(max(variance, 0.0))

    # ------------------------------------------------------------------
    # Quantiles
    # ------------------------------------------------------------------
    def _edges(self, index: int) -> tuple[float, float]:
        """The value range ``[left, right)`` of bucket ``index``."""
        if index == 0:
            return (0.0, self.lo)
        if index == self._n_log + 1:
            return (self.hi, self.max if self._max is not None else self.hi)
        growth = 10.0 ** (1.0 / self.buckets_per_decade)
        left = self.lo * growth ** (index - 1)
        return (left, min(left * growth, self.hi))

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0..1) by linear interpolation in its bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        if q == 0.0:
            return float(self.min)
        if q == 1.0:
            return float(self.max)
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if seen + bucket_count >= rank:
                left, right = self._edges(index)
                inside = (rank - seen) / bucket_count
                value = left + (right - left) * inside
                return float(min(max(value, self.min), self.max))
            seen += bucket_count
        return float(self.max)

    def percentiles(self, points: tuple[float, ...] = (50.0, 95.0, 99.0)) -> dict:
        """``{"p50": ..., "p95": ..., "p99": ...}`` for the given points."""
        return {f"p{point:g}": self.quantile(point / 100.0) for point in points}

    def as_dict(self) -> dict:
        """JSON-friendly snapshot: meter stats + standard quantiles."""
        return {
            "kind": self.kind,
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "std": self.std,
            **self.percentiles(),
        }

    def bucket_bounds(self) -> list[float]:
        """Upper bounds of every bucket (the Prometheus ``le`` labels)."""
        return [self._edges(index)[1] for index in range(self._n_log + 1)] + [
            float("inf")
        ]

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name}, count={self.count}, mean={self.mean:.4g}, "
            f"p99={self.quantile(0.99):.4g})"
        )


class MetricsRegistry:
    """Named metric store: get-or-create semantics, walkable by exporters."""

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}

    def _get_or_create(self, name: str, factory, kind: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
            return metric
        if metric.kind != kind:
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, not {kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, help), "counter")

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help), "gauge")

    def histogram(self, name: str, help: str = "", **kwargs) -> Histogram:
        return self._get_or_create(name, lambda: Histogram(name, help, **kwargs), "histogram")

    def get(self, name: str):
        """The registered metric, or ``None``."""
        return self._metrics.get(name)

    @property
    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __iter__(self):
        for name in self.names:
            yield self._metrics[name]

    def __len__(self) -> int:
        return len(self._metrics)

    def as_dict(self) -> dict:
        """JSON-friendly snapshot of every registered metric."""
        return {name: self._metrics[name].as_dict() for name in self.names}

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self)} metrics)"
