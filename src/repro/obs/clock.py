"""Injectable monotonic clocks for the serving stack.

Every latency measurement in :mod:`repro.serve` reads time through one of
these objects instead of calling :func:`time.perf_counter` inline, so the
whole latency path can be driven by a :class:`FakeClock` in tests —
timing assertions become exact equalities instead of wall-clock races.
"""

from __future__ import annotations

import time


class Clock:
    """Interface: a monotonically non-decreasing time source in seconds."""

    def now(self) -> float:
        raise NotImplementedError


class MonotonicClock(Clock):
    """The production clock: :func:`time.perf_counter`."""

    def now(self) -> float:
        return time.perf_counter()

    def __repr__(self) -> str:
        return "MonotonicClock()"


class FakeClock(Clock):
    """A deterministic clock for tests.

    ``step`` is the virtual time that elapses on every :meth:`now` read
    (``0.0`` freezes time entirely); :meth:`advance` moves time explicitly.
    With a nonzero ``step`` every timed region measures an exact, replayable
    number of seconds, so latency-path tests assert equalities rather than
    tolerances on wall time.
    """

    def __init__(self, start: float = 0.0, step: float = 0.0) -> None:
        if step < 0.0:
            raise ValueError(f"step must be >= 0, got {step}")
        self._now = float(start)
        self.step = float(step)
        self.reads = 0

    def now(self) -> float:
        current = self._now
        self._now += self.step
        self.reads += 1
        return current

    def advance(self, dt: float) -> float:
        """Move virtual time forward by ``dt`` seconds; returns the new time."""
        if dt < 0.0:
            raise ValueError(f"dt must be >= 0, got {dt}")
        self._now += float(dt)
        return self._now

    def __repr__(self) -> str:
        return f"FakeClock(now={self._now:.6g}, step={self.step:.6g})"
