"""``repro.obs`` — observability for the serving stack.

Production-shaped instrumentation in three layers, all engine-agnostic:

* **metrics** (:mod:`repro.obs.metrics`) — :class:`Counter`,
  :class:`Gauge`, and a streaming log-bucketed :class:`Histogram` with
  O(1) memory and interpolated p50/p95/p99, owned by a
  :class:`MetricsRegistry`;
* **tracing** (:mod:`repro.obs.trace`) — request-scoped :class:`Span`
  context managers over an injectable clock, collected by a bounded
  :class:`SpanRecorder` (or a free :class:`NullRecorder` when tracing is
  off);
* **exporters** (:mod:`repro.obs.export`) — Prometheus text, span JSONL,
  and the schema-versioned :class:`BenchRecorder` behind the repo's
  ``BENCH_*.json`` perf trajectory — gated in CI by the same-scale
  regression comparator in :mod:`repro.obs.bench`.

:class:`Observability` bundles one registry + recorder + clock; the
serving engine owns one and threads it through every stage of a
request's life.
"""

from __future__ import annotations

from repro.obs.clock import Clock, FakeClock, MonotonicClock
from repro.obs.export import BENCH_SCHEMA, BenchRecorder, git_sha, to_prometheus
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import NULL_SPAN, NullRecorder, Span, SpanRecorder


class Observability:
    """One metrics registry + span recorder + clock, threaded as a unit.

    ``tracing=True`` (the default) records spans into a bounded
    :class:`SpanRecorder`; ``tracing=False`` swaps in a
    :class:`NullRecorder`, whose no-op spans are the disabled fast path —
    metrics and the injectable clock stay live either way, because they
    are O(1) and the telemetry layer depends on them.
    """

    def __init__(
        self,
        tracing: bool = True,
        clock: Clock | None = None,
        max_spans: int = 4096,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.clock = clock if clock is not None else MonotonicClock()
        self.registry = registry if registry is not None else MetricsRegistry()
        self.recorder = (
            SpanRecorder(self.clock, max_spans=max_spans)
            if tracing
            else NullRecorder(self.clock)
        )

    @classmethod
    def default(cls, tracing: bool = True, clock: Clock | None = None) -> "Observability":
        return cls(tracing=tracing, clock=clock)

    @classmethod
    def disabled(cls, clock: Clock | None = None) -> "Observability":
        """Metrics-only observability: tracing fully off (NullRecorder)."""
        return cls(tracing=False, clock=clock)

    @property
    def tracing(self) -> bool:
        return self.recorder.enabled

    def span(self, name: str, **attrs):
        """A timed-region context manager (no-op when tracing is off)."""
        return self.recorder.span(name, **attrs)

    def event(self, name: str, **attrs) -> None:
        """An instantaneous span (no-op when tracing is off)."""
        self.recorder.event(name, **attrs)

    def __repr__(self) -> str:
        return (
            f"Observability(tracing={self.tracing}, "
            f"metrics={len(self.registry)}, spans={len(self.recorder)})"
        )


__all__ = [
    "BENCH_SCHEMA",
    "BenchCheck",
    "BenchRecorder",
    "Clock",
    "Counter",
    "FakeClock",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MonotonicClock",
    "NULL_SPAN",
    "NullRecorder",
    "Observability",
    "Span",
    "SpanRecorder",
    "baseline_for",
    "compare_latest",
    "git_sha",
    "load_runs",
    "to_prometheus",
]

#: Names served lazily from :mod:`repro.obs.bench` — the bench gate is
#: also a ``python -m repro.obs.bench`` entry point, and an eager import
#: here would make runpy warn about the module already being loaded.
_BENCH_GATE_EXPORTS = frozenset(
    {"BenchCheck", "baseline_for", "compare_latest", "load_runs"}
)


def __getattr__(name: str):
    """Lazy re-exports of the :mod:`repro.obs.bench` gate API."""
    if name in _BENCH_GATE_EXPORTS:
        from repro.obs import bench

        return getattr(bench, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
