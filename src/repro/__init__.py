"""Reproduction of Deng & Orshansky, "Variability-Aware Training and
Self-Tuning of Highly Quantized DNNs for Analog PIM" (DATE 2022).

Top-level convenience re-exports; see DESIGN.md for the package map.
"""

from repro import (
    autograd,
    datasets,
    eval,
    models,
    nn,
    obs,
    pim,
    quant,
    selftuning,
    serve,
    training,
    variability,
)
from repro.quant import QConfig, calibrate_model, convert_to_quantized
from repro.variability import (
    LayerFixedVariance,
    VariabilityInjector,
    VariabilitySpec,
    WeightProportionalVariance,
)
from repro.selftuning import SelfTuningConfig, attach_self_tuning
from repro.training import QavatTrainer, train_ptq_vat, train_qat, train_qavat
from repro.eval import evaluate_clean, evaluate_robustness
from repro.nn import reestimate_bn_statistics
from repro.variability import FaultSpec, evaluate_fault_robustness
from repro.serve import InferenceEngine, ServeConfig

__version__ = "1.0.0"

__all__ = [
    "autograd",
    "nn",
    "models",
    "quant",
    "variability",
    "pim",
    "selftuning",
    "serve",
    "training",
    "eval",
    "datasets",
    "obs",
    "QConfig",
    "convert_to_quantized",
    "calibrate_model",
    "VariabilitySpec",
    "VariabilityInjector",
    "WeightProportionalVariance",
    "LayerFixedVariance",
    "SelfTuningConfig",
    "attach_self_tuning",
    "QavatTrainer",
    "train_qavat",
    "train_qat",
    "train_ptq_vat",
    "evaluate_clean",
    "evaluate_robustness",
    "reestimate_bn_statistics",
    "FaultSpec",
    "evaluate_fault_robustness",
    "InferenceEngine",
    "ServeConfig",
]
