"""Reverse-mode automatic differentiation on numpy arrays.

This subpackage is the training substrate for the whole reproduction: a
small, well-tested autodiff engine providing exactly what quantization- and
variability-aware training needs — broadcasting arithmetic, matmul, efficient
im2col convolution, reductions, and the ability to define custom
:class:`Function` nodes (used for the straight-through estimator).

Public surface:

* :class:`~repro.autograd.tensor.Tensor` — the differentiable array type.
* :class:`~repro.autograd.function.Function` — base class for custom ops.
* :func:`~repro.autograd.tensor.no_grad` — context manager disabling graph
  construction.
* :func:`~repro.autograd.grad_check.gradcheck` — finite-difference validation.
"""

from repro.autograd.function import Function
from repro.autograd.tensor import Tensor, no_grad, is_grad_enabled, tensor
from repro.autograd.grad_check import gradcheck

__all__ = [
    "Tensor",
    "Function",
    "no_grad",
    "is_grad_enabled",
    "tensor",
    "gradcheck",
]
