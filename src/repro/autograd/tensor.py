"""The :class:`Tensor` type: a numpy array with reverse-mode gradients."""

from __future__ import annotations

import contextlib

import numpy as np

_GRAD_ENABLED = True

DEFAULT_DTYPE = np.float64


def is_grad_enabled() -> bool:
    """Return whether graph construction is currently enabled."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (inference mode)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def tensor(data, requires_grad: bool = False) -> "Tensor":
    """Create a :class:`Tensor` from array-like ``data``."""
    return Tensor(data, requires_grad=requires_grad)


def ensure_tensor(value) -> "Tensor":
    """Wrap plain scalars/arrays as constant tensors; pass tensors through."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


class Tensor:
    """A differentiable wrapper around ``numpy.ndarray``.

    Gradients are accumulated into ``.grad`` by :meth:`backward`.  Graph
    recording follows the usual reverse-mode convention: each tensor produced
    by an op keeps a reference to the op instance (``_ctx``) which in turn
    references its parent tensors.
    """

    __slots__ = ("data", "grad", "requires_grad", "_ctx")

    def __init__(self, data, requires_grad: bool = False) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=DEFAULT_DTYPE)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._ctx = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a constant tensor sharing this tensor's data."""
        out = Tensor.__new__(Tensor)
        out.data = self.data
        out.grad = None
        out.requires_grad = False
        out._ctx = None
        return out

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to ones (appropriate for scalar losses).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)

        order = self._topological_order()
        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._ctx is None:
                # Leaf: accumulate.
                node.grad = node_grad if node.grad is None else node.grad + node_grad
                continue
            ctx = node._ctx
            if ctx is None:
                continue
            parent_grads = ctx.backward(node_grad)
            if not isinstance(parent_grads, tuple):
                parent_grads = (parent_grads,)
            for parent, pgrad in zip(ctx.parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad

    def _topological_order(self) -> list["Tensor"]:
        """Return tensors in reverse-topological (output-first) order."""
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            if node._ctx is not None:
                for parent in node._ctx.parents:
                    if id(parent) not in visited:
                        stack.append((parent, False))
        order.reverse()
        return order

    # ------------------------------------------------------------------
    # Operators (implementations live in repro.autograd.ops)
    # ------------------------------------------------------------------
    def __add__(self, other):
        from repro.autograd import ops

        return ops.Add.apply(self, ensure_tensor(other))

    __radd__ = __add__

    def __sub__(self, other):
        from repro.autograd import ops

        return ops.Sub.apply(self, ensure_tensor(other))

    def __rsub__(self, other):
        from repro.autograd import ops

        return ops.Sub.apply(ensure_tensor(other), self)

    def __mul__(self, other):
        from repro.autograd import ops

        return ops.Mul.apply(self, ensure_tensor(other))

    __rmul__ = __mul__

    def __truediv__(self, other):
        from repro.autograd import ops

        return ops.Div.apply(self, ensure_tensor(other))

    def __rtruediv__(self, other):
        from repro.autograd import ops

        return ops.Div.apply(ensure_tensor(other), self)

    def __neg__(self):
        from repro.autograd import ops

        return ops.Neg.apply(self)

    def __pow__(self, exponent):
        from repro.autograd import ops

        return ops.Pow.apply(self, exponent=float(exponent))

    def __matmul__(self, other):
        from repro.autograd import ops

        return ops.MatMul.apply(self, ensure_tensor(other))

    def __getitem__(self, index):
        from repro.autograd import ops

        return ops.GetItem.apply(self, index=index)

    # Reductions ---------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False):
        from repro.autograd import ops

        return ops.Sum.apply(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        from repro.autograd import ops

        return ops.Mean.apply(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False):
        from repro.autograd import ops

        return ops.Max.apply(self, axis=axis, keepdims=keepdims)

    def min(self, axis=None, keepdims: bool = False):
        from repro.autograd import ops

        return ops.Min.apply(self, axis=axis, keepdims=keepdims)

    # Shape ops ----------------------------------------------------------
    def reshape(self, *shape):
        from repro.autograd import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.Reshape.apply(self, shape=shape)

    def transpose(self, *axes):
        from repro.autograd import ops

        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        return ops.Transpose.apply(self, axes=axes)

    def flatten(self, start_dim: int = 0):
        lead = self.shape[:start_dim]
        return self.reshape(lead + (-1,))

    # Elementwise --------------------------------------------------------
    def exp(self):
        from repro.autograd import ops

        return ops.Exp.apply(self)

    def log(self):
        from repro.autograd import ops

        return ops.Log.apply(self)

    def sqrt(self):
        from repro.autograd import ops

        return ops.Sqrt.apply(self)

    def abs(self):
        from repro.autograd import ops

        return ops.Abs.apply(self)

    def relu(self):
        from repro.autograd import ops

        return ops.ReLU.apply(self)

    def clip(self, low: float, high: float):
        from repro.autograd import ops

        return ops.Clip.apply(self, low=float(low), high=float(high))
