"""Base class for differentiable operations.

Every primitive op is a subclass of :class:`Function` implementing
``forward`` (numpy in, numpy out) and ``backward`` (incoming gradient in,
per-parent gradients out).  ``Function.apply`` builds the graph edge.
"""

from __future__ import annotations

import numpy as np


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    Numpy broadcasting may have expanded an operand during the forward pass;
    the chain rule then requires summing the gradient over the broadcast
    dimensions.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad


class Function:
    """A node in the autodiff graph.

    Subclasses implement :meth:`forward` and :meth:`backward`.  Instances
    store whatever the backward pass needs via :meth:`save_for_backward`
    or plain attributes.
    """

    def __init__(self) -> None:
        self.parents: tuple = ()
        self.saved: tuple = ()
        self.needs_input_grad: tuple[bool, ...] = ()

    def save_for_backward(self, *items) -> None:
        """Stash arrays/values needed by :meth:`backward`."""
        self.saved = items

    def forward(self, *args, **kwargs) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def backward(self, grad: np.ndarray):  # pragma: no cover
        raise NotImplementedError

    @classmethod
    def apply(cls, *args, **kwargs):
        """Run the op and, if tracing is enabled, record the graph edge.

        Positional ``args`` may mix :class:`~repro.autograd.tensor.Tensor`
        operands with plain python/numpy constants; only tensor operands
        participate in differentiation.
        """
        from repro.autograd.tensor import Tensor, is_grad_enabled

        ctx = cls()
        tensors = [a for a in args if isinstance(a, Tensor)]
        raw = [a.data if isinstance(a, Tensor) else a for a in args]
        out_data = ctx.forward(*raw, **kwargs)
        requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
        out = Tensor(out_data, requires_grad=requires)
        if requires:
            ctx.parents = tuple(tensors)
            ctx.needs_input_grad = tuple(t.requires_grad for t in tensors)
            out._ctx = ctx
        return out
