"""Primitive differentiable operations.

Each class implements a forward pass on raw numpy arrays and the matching
backward pass.  Broadcasting operands are handled by
:func:`repro.autograd.function.unbroadcast`.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.function import Function, unbroadcast


class Add(Function):
    def forward(self, a, b):
        self.save_for_backward(a.shape, b.shape)
        return a + b

    def backward(self, grad):
        a_shape, b_shape = self.saved
        return unbroadcast(grad, a_shape), unbroadcast(grad, b_shape)


class Sub(Function):
    def forward(self, a, b):
        self.save_for_backward(a.shape, b.shape)
        return a - b

    def backward(self, grad):
        a_shape, b_shape = self.saved
        return unbroadcast(grad, a_shape), unbroadcast(-grad, b_shape)


class Mul(Function):
    def forward(self, a, b):
        self.save_for_backward(a, b)
        return a * b

    def backward(self, grad):
        a, b = self.saved
        return unbroadcast(grad * b, a.shape), unbroadcast(grad * a, b.shape)


class Div(Function):
    def forward(self, a, b):
        self.save_for_backward(a, b)
        return a / b

    def backward(self, grad):
        a, b = self.saved
        grad_a = unbroadcast(grad / b, a.shape)
        grad_b = unbroadcast(-grad * a / (b * b), b.shape)
        return grad_a, grad_b


class Neg(Function):
    def forward(self, a):
        return -a

    def backward(self, grad):
        return (-grad,)


class Pow(Function):
    """Elementwise power with a python-scalar exponent."""

    def forward(self, a, exponent: float):
        self.save_for_backward(a)
        self.exponent = exponent
        return a**exponent

    def backward(self, grad):
        (a,) = self.saved
        return (grad * self.exponent * a ** (self.exponent - 1.0),)


class Exp(Function):
    def forward(self, a):
        out = np.exp(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad):
        (out,) = self.saved
        return (grad * out,)


class Log(Function):
    def forward(self, a):
        self.save_for_backward(a)
        return np.log(a)

    def backward(self, grad):
        (a,) = self.saved
        return (grad / a,)


class Sqrt(Function):
    def forward(self, a):
        out = np.sqrt(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad):
        (out,) = self.saved
        return (grad / (2.0 * out),)


class Abs(Function):
    def forward(self, a):
        self.save_for_backward(np.sign(a))
        return np.abs(a)

    def backward(self, grad):
        (sign,) = self.saved
        return (grad * sign,)


class ReLU(Function):
    def forward(self, a):
        mask = a > 0
        self.save_for_backward(mask)
        return a * mask

    def backward(self, grad):
        (mask,) = self.saved
        return (grad * mask,)


class Clip(Function):
    """Clamp to ``[low, high]``; gradient is zero outside the range."""

    def forward(self, a, low: float, high: float):
        mask = (a >= low) & (a <= high)
        self.save_for_backward(mask)
        return np.clip(a, low, high)

    def backward(self, grad):
        (mask,) = self.saved
        return (grad * mask,)


class MatMul(Function):
    """Matrix product supporting batched operands like ``numpy.matmul``."""

    def forward(self, a, b):
        self.save_for_backward(a, b)
        return a @ b

    def backward(self, grad):
        a, b = self.saved
        if a.ndim == 1 and b.ndim == 1:
            return grad * b, grad * a
        if a.ndim == 1:
            grad_a = grad @ np.swapaxes(b, -1, -2)
            grad_b = np.outer(a, grad)
            return grad_a, grad_b
        if b.ndim == 1:
            grad_a = np.expand_dims(grad, -1) * b
            grad_b = np.swapaxes(a, -1, -2) @ grad
            return grad_a, grad_b
        grad_a = grad @ np.swapaxes(b, -1, -2)
        grad_b = np.swapaxes(a, -1, -2) @ grad
        return unbroadcast(grad_a, a.shape), unbroadcast(grad_b, b.shape)


class Sum(Function):
    def forward(self, a, axis=None, keepdims: bool = False):
        self.in_shape = a.shape
        self.axis = axis
        self.keepdims = keepdims
        return a.sum(axis=axis, keepdims=keepdims)

    def backward(self, grad):
        grad = _restore_reduced_dims(grad, self.in_shape, self.axis, self.keepdims)
        return (np.broadcast_to(grad, self.in_shape).copy(),)


class Mean(Function):
    def forward(self, a, axis=None, keepdims: bool = False):
        self.in_shape = a.shape
        self.axis = axis
        self.keepdims = keepdims
        self.count = a.size if axis is None else np.prod(
            [a.shape[ax] for ax in _normalize_axes(axis, a.ndim)]
        )
        return a.mean(axis=axis, keepdims=keepdims)

    def backward(self, grad):
        grad = _restore_reduced_dims(grad, self.in_shape, self.axis, self.keepdims)
        return (np.broadcast_to(grad / self.count, self.in_shape).copy(),)


class _MinMaxReduce(Function):
    """Shared machinery for Max/Min: gradient flows to the arg-extreme.

    Ties split the gradient equally among tied entries (matches the
    subgradient convention used by common frameworks closely enough for
    training purposes).
    """

    ufunc = None  # type: ignore[assignment]

    def forward(self, a, axis=None, keepdims: bool = False):
        out = self.ufunc(a, axis=axis, keepdims=keepdims)
        self.in_shape = a.shape
        self.axis = axis
        self.keepdims = keepdims
        out_keep = self.ufunc(a, axis=axis, keepdims=True)
        mask = (a == out_keep).astype(a.dtype)
        mask /= mask.sum(axis=axis, keepdims=True)
        self.save_for_backward(mask)
        return out

    def backward(self, grad):
        (mask,) = self.saved
        grad = _restore_reduced_dims(grad, self.in_shape, self.axis, self.keepdims)
        return (mask * grad,)


class Max(_MinMaxReduce):
    ufunc = staticmethod(np.max)


class Min(_MinMaxReduce):
    ufunc = staticmethod(np.min)


class Reshape(Function):
    def forward(self, a, shape):
        self.in_shape = a.shape
        return a.reshape(shape)

    def backward(self, grad):
        return (grad.reshape(self.in_shape),)


class Transpose(Function):
    def forward(self, a, axes):
        self.axes = axes
        return np.transpose(a, axes)

    def backward(self, grad):
        inverse = np.argsort(self.axes)
        return (np.transpose(grad, inverse),)


class GetItem(Function):
    def forward(self, a, index):
        self.in_shape = a.shape
        self.index = index
        return a[index]

    def backward(self, grad):
        out = np.zeros(self.in_shape, dtype=grad.dtype)
        np.add.at(out, self.index, grad)
        return (out,)


class Concat(Function):
    """Concatenate tensors along ``axis`` (all operands differentiable)."""

    def forward(self, *arrays, axis: int = 0):
        self.axis = axis
        self.sizes = [a.shape[axis] for a in arrays]
        return np.concatenate(arrays, axis=axis)

    def backward(self, grad):
        splits = np.cumsum(self.sizes)[:-1]
        return tuple(np.split(grad, splits, axis=self.axis))


class Pad2d(Function):
    """Zero-pad the last two (spatial) axes of an NCHW tensor."""

    def forward(self, a, padding: tuple[int, int]):
        ph, pw = padding
        self.padding = (ph, pw)
        pad_spec = [(0, 0)] * (a.ndim - 2) + [(ph, ph), (pw, pw)]
        return np.pad(a, pad_spec)

    def backward(self, grad):
        ph, pw = self.padding
        sl = [slice(None)] * (grad.ndim - 2)
        sl += [slice(ph, grad.shape[-2] - ph), slice(pw, grad.shape[-1] - pw)]
        return (grad[tuple(sl)],)


class LogSoftmax(Function):
    """Numerically stable log-softmax along the last axis."""

    def forward(self, a):
        shifted = a - a.max(axis=-1, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        out = shifted - log_z
        self.save_for_backward(np.exp(out))
        return out

    def backward(self, grad):
        (softmax,) = self.saved
        return (grad - softmax * grad.sum(axis=-1, keepdims=True),)


def _normalize_axes(axis, ndim: int) -> tuple[int, ...]:
    if axis is None:
        return tuple(range(ndim))
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(ax % ndim for ax in axis)


def _restore_reduced_dims(grad, in_shape, axis, keepdims: bool):
    """Reshape a reduced gradient so it broadcasts back over ``in_shape``."""
    if keepdims or axis is None and grad.ndim == 0:
        if axis is None and not keepdims:
            return grad.reshape((1,) * len(in_shape))
        return grad
    axes = _normalize_axes(axis, len(in_shape))
    shape = [1 if i in axes else s for i, s in enumerate(in_shape)]
    return grad.reshape(shape)


def concat(tensors, axis: int = 0):
    """Differentiable concatenation of a sequence of tensors."""
    return Concat.apply(*tensors, axis=axis)


def pad2d(tensor, padding: tuple[int, int]):
    """Differentiable zero padding of the two trailing spatial axes."""
    return Pad2d.apply(tensor, padding=padding)


def log_softmax(tensor):
    """Differentiable, numerically stable log-softmax over the last axis."""
    return LogSoftmax.apply(tensor)
