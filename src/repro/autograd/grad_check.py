"""Finite-difference gradient checking for the autodiff engine."""

from __future__ import annotations

import numpy as np


def numerical_gradient(fn, inputs, index: int, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn(*inputs)`` w.r.t. one input.

    ``inputs`` are :class:`~repro.autograd.tensor.Tensor` objects; ``fn`` must
    return a scalar tensor.
    """
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data)
        flat[i] = original - eps
        minus = float(fn(*inputs).data)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(fn, inputs, eps: float = 1e-6, atol: float = 1e-4, rtol: float = 1e-3) -> bool:
    """Verify analytic gradients of scalar ``fn(*inputs)`` against finite differences.

    Raises ``AssertionError`` with a diagnostic message on mismatch, returns
    ``True`` otherwise (so it can be used directly in test assertions).
    """
    for tensor_input in inputs:
        tensor_input.zero_grad()
    out = fn(*inputs)
    if out.size != 1:
        raise ValueError("gradcheck requires a scalar-valued function")
    out.backward()
    for i, tensor_input in enumerate(inputs):
        if not tensor_input.requires_grad:
            continue
        analytic = tensor_input.grad
        if analytic is None:
            raise AssertionError(f"input {i}: no gradient was accumulated")
        numeric = numerical_gradient(fn, inputs, i, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"input {i}: analytic/numeric gradient mismatch "
                f"(max abs diff {worst:.3e})"
            )
    return True
