"""Distributional statistics over Monte Carlo robustness results.

The paper reports the *mean* accuracy over 2000 sampled chips.  For a
manufacturer the distribution matters as much as the mean: parametric yield
is the fraction of fabricated chips meeting an accuracy specification, and
the low quantiles tell you what the worst shipping parts look like.  These
helpers turn a :class:`repro.eval.RobustnessResult` into those quantities,
plus the conditional accuracy-vs-``eps_B`` profile that explains *why*
correlated variation is so destructive (Sec. III-A).
"""

from __future__ import annotations

import numpy as np

from repro.eval.robustness import RobustnessResult


def accuracy_quantiles(
    result: RobustnessResult, quantiles=(0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99)
) -> dict[float, float]:
    """Accuracy at the given chip-population quantiles."""
    if not result.accuracies:
        raise ValueError("empty robustness result")
    values = np.quantile(result.accuracies, list(quantiles))
    return {float(q): float(v) for q, v in zip(quantiles, values)}


def mean_confidence_interval(
    result: RobustnessResult, confidence: float = 0.95
) -> tuple[float, float]:
    """Normal-approximation CI for the mean accuracy over chips."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    accuracies = np.asarray(result.accuracies)
    if accuracies.size < 2:
        raise ValueError("need at least two chips for a confidence interval")
    from scipy import stats

    half_width = stats.norm.ppf(0.5 + confidence / 2.0) * accuracies.std(ddof=1) / np.sqrt(
        accuracies.size
    )
    return float(accuracies.mean() - half_width), float(accuracies.mean() + half_width)


def bootstrap_mean_interval(
    result: RobustnessResult,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Bootstrap percentile CI for the mean (no normality assumption)."""
    accuracies = np.asarray(result.accuracies)
    if accuracies.size < 2:
        raise ValueError("need at least two chips")
    rng = np.random.default_rng(seed)
    indexes = rng.integers(0, accuracies.size, size=(resamples, accuracies.size))
    means = accuracies[indexes].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(means, alpha)),
        float(np.quantile(means, 1.0 - alpha)),
    )


def parametric_yield(result: RobustnessResult, accuracy_spec: float) -> float:
    """Fraction of chips meeting an accuracy specification.

    The manufacturing-facing summary: ``parametric_yield(result, 0.6)`` is
    the share of fabricated parts a vendor could ship against a 60%
    accuracy floor.
    """
    if not result.accuracies:
        raise ValueError("empty robustness result")
    return float((np.asarray(result.accuracies) >= accuracy_spec).mean())


def accuracy_spec_at_yield(result: RobustnessResult, target_yield: float) -> float:
    """The tightest accuracy spec achievable at a target yield.

    Inverse of :func:`parametric_yield`: the (1 - yield)-quantile of the
    chip accuracy distribution.
    """
    if not 0.0 < target_yield <= 1.0:
        raise ValueError("target_yield must be in (0, 1]")
    if not result.accuracies:
        raise ValueError("empty robustness result")
    return float(np.quantile(result.accuracies, 1.0 - target_yield))


def worst_k_mean(result: RobustnessResult, k: int) -> float:
    """Mean accuracy of the ``k`` worst chips (tail risk summary)."""
    if k < 1 or k > len(result.accuracies):
        raise ValueError(f"k must be in [1, {len(result.accuracies)}]")
    return float(np.sort(result.accuracies)[:k].mean())


def epsilon_profile(result: RobustnessResult, bins: int = 8) -> list[dict]:
    """Accuracy conditioned on the chip's sampled ``eps_B``.

    Requires the result to carry per-chip epsilons
    (``evaluate_robustness`` records them whenever the spec has a
    between-chip component).  The profile makes Sec. III-A quantitative:
    accuracy is high near ``eps_B = 0`` and collapses in the tails, which
    averaging over chips hides.
    """
    if not result.eps_between:
        raise ValueError("result carries no per-chip eps_B values")
    eps = np.asarray(result.eps_between)
    accuracy = np.asarray(result.accuracies)
    edges = np.linspace(eps.min(), eps.max() + 1e-12, bins + 1)
    profile = []
    for low, high in zip(edges[:-1], edges[1:]):
        mask = (eps >= low) & (eps < high)
        if not mask.any():
            continue
        profile.append(
            {
                "eps_low": float(low),
                "eps_high": float(high),
                "chips": int(mask.sum()),
                "mean_accuracy": float(accuracy[mask].mean()),
            }
        )
    return profile


def summarize(result: RobustnessResult, accuracy_spec: float = 0.5) -> dict:
    """One-call summary used by the CLI and benchmark reports."""
    quantiles = accuracy_quantiles(result, (0.05, 0.5, 0.95))
    summary = {
        "chips": len(result.accuracies),
        "mean": result.mean,
        "std": result.std,
        "worst": result.worst,
        "p05": quantiles[0.05],
        "median": quantiles[0.5],
        "p95": quantiles[0.95],
        "yield_at_spec": parametric_yield(result, accuracy_spec),
        "accuracy_spec": accuracy_spec,
    }
    if len(result.accuracies) >= 2:
        low, high = mean_confidence_interval(result)
        summary["mean_ci95"] = (low, high)
    return summary
