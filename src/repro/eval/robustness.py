"""Monte Carlo robustness evaluation (the paper's testing protocol).

The paper evaluates each trained model under 2000 sampled variability
vectors and reports the mean test accuracy of the resulting 2000 "chips".
``evaluate_robustness`` reproduces that protocol with a configurable chip
count (the default is scaled down for CPU budgets; pass ``num_chips=2000``
for the paper protocol).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.datasets.loaders import batch_iterator
from repro.datasets.synthetic import ArrayDataset
from repro.variability.injection import clear_variation, inject_variation
from repro.variability.sampler import VariabilitySampler, VariabilitySpec


@dataclass
class RobustnessResult:
    """Accuracy distribution over sampled chips.

    ``eps_between`` records each chip's sampled between-chip epsilon (empty
    when the spec has no correlated component); it feeds the conditional
    statistics in :mod:`repro.eval.statistics`.
    """

    accuracies: list[float] = field(default_factory=list)
    eps_between: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return float(np.mean(self.accuracies)) if self.accuracies else 0.0

    @property
    def std(self) -> float:
        return float(np.std(self.accuracies)) if self.accuracies else 0.0

    @property
    def worst(self) -> float:
        return float(np.min(self.accuracies)) if self.accuracies else 0.0

    def __repr__(self) -> str:
        return (
            f"RobustnessResult(mean={100 * self.mean:.2f}%, "
            f"std={100 * self.std:.2f}%, chips={len(self.accuracies)})"
        )


def _dataset_accuracy(model, dataset: ArrayDataset, batch_size: int) -> float:
    correct = 0
    with no_grad():
        for inputs, targets in batch_iterator(dataset, batch_size, shuffle=False):
            logits = model(Tensor(inputs))
            correct += int((logits.data.argmax(axis=-1) == targets).sum())
    return correct / len(dataset)


def evaluate_clean(model, dataset: ArrayDataset, batch_size: int = 64) -> float:
    """Accuracy with no variability installed (the variation-free reference)."""
    model.eval()
    clear_variation(model)
    return _dataset_accuracy(model, dataset, batch_size)


def evaluate_robustness(
    model,
    dataset: ArrayDataset,
    spec: VariabilitySpec,
    num_chips: int = 50,
    batch_size: int = 64,
    seed: int = 1234,
) -> RobustnessResult:
    """Mean accuracy over ``num_chips`` independently sampled chips.

    For each chip the full variability vector (shared eps_B + per-cell
    eps_W) is installed on the model's quantized layers, the test set is
    evaluated, and the variation is removed again.  Self-tuning modules, if
    attached, see the chip through ``layer.current_chip`` and correct
    accordingly.
    """
    model.eval()
    sampler = VariabilitySampler(spec, seed=seed)
    result = RobustnessResult()
    for _ in range(num_chips):
        chip = sampler.sample_chip()
        inject_variation(model, chip, spec)
        result.accuracies.append(_dataset_accuracy(model, dataset, batch_size))
        if spec.sigma_between > 0.0:
            result.eps_between.append(chip.eps_between)
    clear_variation(model)
    return result
