"""Monte Carlo robustness evaluation (the paper's testing protocol).

The paper evaluates each trained model under 2000 sampled variability
vectors and reports the mean test accuracy of the resulting 2000 "chips".
``evaluate_robustness`` reproduces that protocol with a configurable chip
count (the default is scaled down for CPU budgets; pass ``num_chips=2000``
for the paper protocol).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.datasets.loaders import batch_iterator
from repro.datasets.synthetic import ArrayDataset
from repro.variability.injection import clear_variation, inject_variation
from repro.variability.sampler import VariabilitySampler, VariabilitySpec


@dataclass
class RobustnessResult:
    """Accuracy distribution over sampled chips.

    ``eps_between`` records each chip's sampled between-chip epsilon (empty
    when the spec has no correlated component); it feeds the conditional
    statistics in :mod:`repro.eval.statistics`.
    """

    accuracies: list[float] = field(default_factory=list)
    eps_between: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return float(np.mean(self.accuracies)) if self.accuracies else 0.0

    @property
    def std(self) -> float:
        return float(np.std(self.accuracies)) if self.accuracies else 0.0

    @property
    def worst(self) -> float:
        return float(np.min(self.accuracies)) if self.accuracies else 0.0

    def __repr__(self) -> str:
        return (
            f"RobustnessResult(mean={100 * self.mean:.2f}%, "
            f"std={100 * self.std:.2f}%, chips={len(self.accuracies)})"
        )


def _dataset_accuracy(model, dataset: ArrayDataset, batch_size: int) -> float:
    correct = 0
    with no_grad():
        for inputs, targets in batch_iterator(dataset, batch_size, shuffle=False):
            logits = model(Tensor(inputs))
            correct += int((logits.data.argmax(axis=-1) == targets).sum())
    return correct / len(dataset)


def evaluate_clean(model, dataset: ArrayDataset, batch_size: int = 64) -> float:
    """Accuracy with no variability installed (the variation-free reference)."""
    model.eval()
    clear_variation(model)
    return _dataset_accuracy(model, dataset, batch_size)


def _programmed_accuracy(programmed, dataset: ArrayDataset, batch_size: int) -> float:
    correct = 0
    for inputs, targets in batch_iterator(dataset, batch_size, shuffle=False):
        logits = programmed.forward(inputs)
        correct += int((logits.argmax(axis=-1) == targets).sum())
    return correct / len(dataset)


def evaluate_robustness(
    model,
    dataset: ArrayDataset,
    spec: VariabilitySpec,
    num_chips: int = 50,
    batch_size: int = 64,
    seed: int = 1234,
    backend=None,
    self_tuning=None,
) -> RobustnessResult:
    """Mean accuracy over ``num_chips`` independently sampled chips.

    Without a ``backend``, each chip's variability vector (shared eps_B +
    per-cell eps_W) is installed on the model's quantized layers in place,
    the test set is evaluated, and the variation is removed again —
    self-tuning modules, if attached, see the chip through
    ``layer.current_chip`` and correct accordingly.

    With a ``backend`` (a :class:`repro.backends.ChipBackend`), each chip
    is instead *programmed* through it — the exact objects the serving
    engine dispatches to — so experiments measure whichever fidelity
    (fake-quant replica or circuit-level ``PimChip``) deployment will use;
    ``self_tuning`` is then handed to the backend rather than pre-attached.
    The fake-quant backend reproduces the in-place path bit-for-bit (same
    sampler, same per-layer epsilon draws, same forward).
    """
    model.eval()
    sampler = VariabilitySampler(spec, seed=seed)
    result = RobustnessResult()
    for index in range(num_chips):
        chip = sampler.sample_chip()
        if backend is not None:
            programmed = backend.program(
                model, chip, spec=spec, chip_id=f"mc{index:04d}", self_tuning=self_tuning
            )
            result.accuracies.append(
                _programmed_accuracy(programmed, dataset, batch_size)
            )
        else:
            inject_variation(model, chip, spec)
            result.accuracies.append(_dataset_accuracy(model, dataset, batch_size))
        if spec.sigma_between > 0.0:
            result.eps_between.append(chip.eps_between)
    if backend is None:
        clear_variation(model)
    return result
