"""Small metric helpers."""

from __future__ import annotations

import numpy as np


def top1_accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Fraction of rows whose argmax matches the target."""
    return float((np.asarray(logits).argmax(axis=-1) == np.asarray(targets)).mean())


class AverageMeter:
    """Streaming weighted mean (and count) of a scalar metric."""

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def update(self, value: float, weight: int = 1) -> None:
        self.total += value * weight
        self.count += weight

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0
