"""Small metric helpers."""

from __future__ import annotations

import numpy as np


def top1_accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Fraction of rows whose argmax matches the target."""
    return float((np.asarray(logits).argmax(axis=-1) == np.asarray(targets)).mean())


def topk_accuracy(logits: np.ndarray, targets: np.ndarray, k: int = 5) -> float:
    """Fraction of rows whose target lands in the top-``k`` logits.

    ``k`` is clamped to the number of classes, so ``k >= logits.shape[-1]``
    degenerates to 1.0 and ``k=1`` matches :func:`top1_accuracy` exactly
    (ties broken identically via a stable sort on the negated logits).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    logits = np.atleast_2d(np.asarray(logits))
    targets = np.asarray(targets).reshape(-1)
    k = min(k, logits.shape[-1])
    # argsort(kind="stable") on -logits mirrors argmax's first-wins tie rule.
    ranked = np.argsort(-logits, axis=-1, kind="stable")[:, :k]
    return float((ranked == targets[:, None]).any(axis=-1).mean())


class AverageMeter:
    """Streaming weighted mean of a scalar metric, with tail statistics.

    Beyond the running mean, the meter tracks the unweighted ``min``/``max``
    of observed values and the weighted standard deviation ``std`` — enough
    for telemetry to report latency tails without storing every sample.
    """

    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0
        self._total_sq = 0.0
        self._min: float | None = None
        self._max: float | None = None

    def update(self, value: float, weight: int = 1) -> None:
        value = float(value)
        self.total += value * weight
        self._total_sq += value * value * weight
        self.count += weight
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._min is not None else 0.0

    @property
    def max(self) -> float:
        return self._max if self._max is not None else 0.0

    @property
    def std(self) -> float:
        if not self.count:
            return 0.0
        variance = self._total_sq / self.count - self.mean**2
        return float(np.sqrt(max(variance, 0.0)))

    def __repr__(self) -> str:
        return (
            f"AverageMeter(mean={self.mean:.4g}, min={self.min:.4g}, "
            f"max={self.max:.4g}, std={self.std:.4g}, count={self.count})"
        )
