"""Evaluation: accuracy metrics and Monte Carlo robustness under variability."""

from repro.eval.metrics import AverageMeter, top1_accuracy
from repro.eval.robustness import RobustnessResult, evaluate_clean, evaluate_robustness
from repro.eval.statistics import (
    accuracy_quantiles,
    accuracy_spec_at_yield,
    bootstrap_mean_interval,
    epsilon_profile,
    mean_confidence_interval,
    parametric_yield,
    summarize,
    worst_k_mean,
)

__all__ = [
    "top1_accuracy",
    "AverageMeter",
    "RobustnessResult",
    "evaluate_robustness",
    "evaluate_clean",
    "accuracy_quantiles",
    "mean_confidence_interval",
    "bootstrap_mean_interval",
    "parametric_yield",
    "accuracy_spec_at_yield",
    "worst_k_mean",
    "epsilon_profile",
    "summarize",
]
