"""Quantized layers: fake-quant forward with variability and self-tuning hooks.

These layers model one analog-PIM MVM array each.  The forward pass follows
the paper's computational graph (Fig. 1):

1. quantize input activations with a static, calibrated scale;
2. quantize weights (MMSE scale) through the straight-through estimator;
3. add the reparameterized variability perturbation ``f(eps, w_D)``;
4. run the MVM;
5. optionally apply the self-tuning correction (GTM/LTM, Sec. III);
6. add the (digital, float) bias.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.nn.conv import conv2d, im2col
from repro.nn.module import Module, Parameter
from repro.quant.calibration import ActivationCalibrator
from repro.quant.qconfig import QConfig
from repro.quant.quantizer import QuantSpec, fake_quantize
from repro.quant.scaling import mmse_scale


class _QuantLayerBase(Module):
    """Shared machinery for :class:`QuantLinear` and :class:`QuantConv2d`."""

    accepts_variation = True

    def _init_quant_state(self, qconfig: QConfig) -> None:
        self.qconfig = qconfig
        self.weight_spec = QuantSpec(qconfig.weight_bits)
        self.act_spec = QuantSpec(qconfig.activation_bits)
        self.register_buffer("weight_scale", np.array(0.0))
        self.register_buffer("act_scale", np.array(0.0))
        self._calibrating = False
        self._calibrator: ActivationCalibrator | None = None
        # Optional hook observing the quantized layer input (bias correction).
        self._input_observer = None
        # Variability state, installed by repro.variability.injection.
        self._epsilon: np.ndarray | None = None
        self._variance_model = None
        self._injection_mode = "reparameterized"
        self.current_chip = None
        # Self-tuning hook, installed by repro.selftuning.wrap.
        self.self_tuner = None
        self.refresh_weight_scale()

    # ------------------------------------------------------------------
    # Scales
    # ------------------------------------------------------------------
    def refresh_weight_scale(self) -> None:
        """(Re)compute the MMSE weight scaling factor(s) from current weights.

        Per-tensor by default (the paper); a per-output-channel scale vector
        when ``qconfig.per_channel_weights`` is set.
        """
        if self.qconfig.per_channel_weights:
            from repro.quant.perchannel import per_channel_mmse_scales

            scales = per_channel_mmse_scales(self.weight.data, self.weight_spec)
        else:
            scales = np.array(mmse_scale(self.weight.data, self.weight_spec))
        self.set_buffer("weight_scale", scales)

    def set_activation_scale(self, scale: float) -> None:
        self.set_buffer("act_scale", np.array(float(scale)))

    # ------------------------------------------------------------------
    # Calibration protocol
    # ------------------------------------------------------------------
    def begin_calibration(self) -> None:
        from repro.quant.estimators import make_calibrator

        self._calibrating = True
        self._calibrator = make_calibrator(
            self.qconfig.calibrator, self.qconfig.momentum, self.qconfig.percentile
        )

    def finish_calibration(self) -> None:
        if self._calibrator is None or not self._calibrator.calibrated:
            raise RuntimeError(
                f"{self.__class__.__name__}: finish_calibration before any data was observed"
            )
        self.set_activation_scale(self._calibrator.scale(self.act_spec))
        self._calibrating = False
        self._calibrator = None

    # ------------------------------------------------------------------
    # Variability protocol (see repro.variability.injection)
    # ------------------------------------------------------------------
    def set_variation(self, epsilon, variance_model, mode: str) -> None:
        self._epsilon = epsilon
        self._variance_model = variance_model
        self._injection_mode = mode

    @property
    def has_variation(self) -> bool:
        return self._epsilon is not None

    # ------------------------------------------------------------------
    # Forward building blocks
    # ------------------------------------------------------------------
    def _quantize_input(self, x: Tensor) -> Tensor:
        if self._calibrating:
            self._calibrator.observe(x.data)
            return x
        if not self.qconfig.quantize_activations:
            if self._input_observer is not None:
                self._input_observer(self, x.data)
            return x
        scale = float(self.act_scale)
        if scale == 0.0:
            raise RuntimeError(
                f"{self.__class__.__name__}: activation scale not calibrated; "
                "run repro.quant.calibrate_model first"
            )
        x_q = fake_quantize(x, scale, self.act_spec, clip_gradient=True)
        if self._input_observer is not None:
            self._input_observer(self, x_q.data)
        return x_q

    def _quantize_weight(self) -> Tensor:
        if self._calibrating:
            return self.weight
        if self.qconfig.per_channel_weights:
            from repro.quant.perchannel import fake_quantize_per_channel

            w_dequant = fake_quantize_per_channel(
                self.weight, np.asarray(self.weight_scale), self.weight_spec
            )
        else:
            scale = float(self.weight_scale)
            w_dequant = fake_quantize(self.weight, scale, self.weight_spec, clip_gradient=False)
        if self._epsilon is None:
            return w_dequant
        eps = self._epsilon
        if self._injection_mode == "reparameterized":
            delta = self._variance_model.reparameterize(eps, w_dequant)
        else:  # "naive": the biased estimator of Eq. 1 (delta is a constant)
            delta = Tensor(self._variance_model.reparameterize_data(eps, w_dequant.data))
        return w_dequant + delta

    def _apply_self_tuning(self, y_mvm: Tensor, x_q: Tensor) -> Tensor:
        if self.self_tuner is None or self._epsilon is None or self._calibrating:
            return y_mvm
        return self.self_tuner.correct(self, y_mvm, x_q)

    # Interface used by the self-tuning LTM: per-output-position input sums.
    def input_sums(self, x_data: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def input_sqnorms(self, x_data: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def dequantized_weight(self) -> np.ndarray:
        """The ideal (variation-free) dequantized weight values."""
        if self.qconfig.per_channel_weights:
            scales = np.asarray(self.weight_scale).reshape(
                (-1,) + (1,) * (self.weight.ndim - 1)
            )
        else:
            scales = float(self.weight_scale)
        codes = np.clip(
            np.rint(self.weight.data / scales), self.weight_spec.qmin, self.weight_spec.qmax
        )
        return codes * scales

    def ideal_weight_max(self) -> float:
        """|W_max| of the dequantized ideal weights (stored digitally)."""
        return float(np.max(np.abs(self.dequantized_weight())))


class QuantLinear(_QuantLayerBase):
    """Quantized fully connected layer (one PIM array of shape in x out)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        qconfig: QConfig,
        bias: bool = True,
    ) -> None:
        super().__init__()
        from repro.nn import init

        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_normal((out_features, in_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None
        self._init_quant_state(qconfig)

    @classmethod
    def from_float(cls, layer, qconfig: QConfig) -> "QuantLinear":
        """Build from a trained float :class:`repro.nn.Linear`."""
        out = cls(layer.in_features, layer.out_features, qconfig, bias=layer.bias is not None)
        out.weight.data = layer.weight.data.copy()
        if layer.bias is not None:
            out.bias.data = layer.bias.data.copy()
        out.refresh_weight_scale()
        return out

    def forward(self, x: Tensor) -> Tensor:
        x_q = self._quantize_input(x)
        w_tilde = self._quantize_weight()
        y = x_q @ w_tilde.T
        y = self._apply_self_tuning(y, x_q)
        if self.bias is not None:
            y = y + self.bias
        return y

    def input_sums(self, x_data: np.ndarray) -> np.ndarray:
        return x_data.sum(axis=-1)

    def input_sqnorms(self, x_data: np.ndarray) -> np.ndarray:
        return (x_data**2).sum(axis=-1)

    def patch_matrix(self, x_data: np.ndarray) -> np.ndarray:
        """Rows that drive the MVM array (identity for a linear layer)."""
        return x_data

    def mvm_input_dim(self) -> int:
        return self.in_features

    def flops_per_input(self) -> int:
        return 2 * self.in_features * self.out_features

    def __repr__(self) -> str:
        return (
            f"QuantLinear({self.in_features}, {self.out_features}, "
            f"{self.qconfig.notation})"
        )


class QuantConv2d(_QuantLayerBase):
    """Quantized 2-D convolution (im2col-lowered PIM MVM arrays)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        qconfig: QConfig,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
    ) -> None:
        super().__init__()
        from repro.nn import init

        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels, kernel_size, kernel_size))
        )
        self.bias = Parameter(np.zeros(out_channels)) if bias else None
        self._init_quant_state(qconfig)

    @classmethod
    def from_float(cls, layer, qconfig: QConfig) -> "QuantConv2d":
        """Build from a trained float :class:`repro.nn.Conv2d`."""
        out = cls(
            layer.in_channels,
            layer.out_channels,
            layer.kernel_size,
            qconfig,
            stride=layer.stride,
            padding=layer.padding,
            bias=layer.bias is not None,
        )
        out.weight.data = layer.weight.data.copy()
        if layer.bias is not None:
            out.bias.data = layer.bias.data.copy()
        out.refresh_weight_scale()
        return out

    def forward(self, x: Tensor) -> Tensor:
        self._last_input_hw = (x.shape[-2], x.shape[-1])
        x_q = self._quantize_input(x)
        w_tilde = self._quantize_weight()
        y = conv2d(x_q, w_tilde, None, self.stride, self.padding)
        y = self._apply_self_tuning(y, x_q)
        if self.bias is not None:
            y = y + self.bias.reshape((1, -1, 1, 1))
        return y

    def input_sums(self, x_data: np.ndarray) -> np.ndarray:
        """Sum of each im2col patch: shape (N, H_out, W_out)."""
        kernel = (self.kernel_size, self.kernel_size)
        return im2col(x_data, kernel, self.stride, self.padding).sum(axis=-1)

    def input_sqnorms(self, x_data: np.ndarray) -> np.ndarray:
        """Squared L2 norm of each im2col patch: shape (N, H_out, W_out)."""
        kernel = (self.kernel_size, self.kernel_size)
        cols = im2col(x_data, kernel, self.stride, self.padding)
        return (cols**2).sum(axis=-1)

    def patch_matrix(self, x_data: np.ndarray) -> np.ndarray:
        """im2col rows driving the MVM arrays: shape (N, H_out, W_out, C*k*k)."""
        kernel = (self.kernel_size, self.kernel_size)
        return im2col(x_data, kernel, self.stride, self.padding)

    def mvm_input_dim(self) -> int:
        return self.in_channels * self.kernel_size * self.kernel_size

    def output_hw(self, input_hw: tuple[int, int]) -> tuple[int, int]:
        from repro.nn.conv import conv_output_size

        return (
            conv_output_size(input_hw[0], self.kernel_size, self.stride, self.padding),
            conv_output_size(input_hw[1], self.kernel_size, self.stride, self.padding),
        )

    def flops_per_input(self, input_hw: tuple[int, int] | None = None) -> int:
        if input_hw is None:
            input_hw = getattr(self, "_last_input_hw", None)
            if input_hw is None:
                raise RuntimeError("run a forward pass first or pass input_hw")
        h, w = self.output_hw(input_hw)
        return 2 * self.mvm_input_dim() * self.out_channels * h * w

    def __repr__(self) -> str:
        return (
            f"QuantConv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding}, {self.qconfig.notation})"
        )
