"""Post-training-quantization bias correction.

Quantizing weights shifts each output channel's expected pre-activation by
``E[(W_q - W) @ x]`` — a systematic error that batch statistics cannot
absorb after conversion.  The standard PTQ fix folds the empirical shift
into the layer biases.  This measurably helps the paper's PTQ-VAT baseline
at low bitwidths, and the effect is ablated in the benchmark suite.

Usage::

    model = convert_to_quantized(model, qconfig)
    calibrate_model(model, batches)
    apply_bias_correction(model, batches)
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, no_grad
from repro.quant.ptq import quantized_layers


def _mean_patch_vectors(model, batches, max_batches: int | None) -> dict[str, np.ndarray]:
    """Mean MVM input row per quantized layer, measured on calibration data.

    Observers capture each layer's *quantized* input (what the analog array
    actually sees) and reduce it to the running mean of its im2col rows.
    """
    layers = dict(quantized_layers(model))
    sums: dict[str, np.ndarray] = {}
    counts: dict[str, int] = {}

    def make_observer(name):
        def observe(layer, x_data):
            patches = layer.patch_matrix(x_data)
            rows = patches.reshape(-1, patches.shape[-1])
            if name in sums:
                sums[name] += rows.sum(axis=0)
                counts[name] += rows.shape[0]
            else:
                sums[name] = rows.sum(axis=0)
                counts[name] = rows.shape[0]

        return observe

    for name, layer in layers.items():
        layer._input_observer = make_observer(name)
    try:
        with no_grad():
            for index, batch in enumerate(batches):
                if max_batches is not None and index >= max_batches:
                    break
                inputs = batch[0] if isinstance(batch, (tuple, list)) else batch
                model(Tensor(inputs))
    finally:
        for layer in layers.values():
            layer._input_observer = None
    return {name: sums[name] / counts[name] for name in sums}


def quantization_weight_error(layer) -> np.ndarray:
    """``W_q - W`` as a 2-D matrix (out_dim, mvm_in_dim)."""
    error = layer.dequantized_weight() - layer.weight.data
    return error.reshape(error.shape[0], -1)


def apply_bias_correction(model, batches, max_batches: int | None = None) -> dict[str, float]:
    """Fold the measured quantization-induced output shift into biases.

    Returns, per layer, the L2 norm of the applied correction (useful for
    reporting).  Layers without a bias are skipped — correcting them would
    require adding a bias term, which changes the deployed architecture.
    """
    model.eval()
    mean_patches = _mean_patch_vectors(model, batches, max_batches)
    applied: dict[str, float] = {}
    for name, layer in quantized_layers(model):
        if layer.bias is None or name not in mean_patches:
            continue
        error = quantization_weight_error(layer)
        shift = error @ mean_patches[name]
        layer.bias.data = layer.bias.data - shift
        applied[name] = float(np.linalg.norm(shift))
    return applied


def expected_output_shift(layer, x_data: np.ndarray) -> np.ndarray:
    """The per-channel shift ``E[(W_q - W) @ x]`` on one batch (diagnostic)."""
    patches = layer.patch_matrix(x_data)
    rows = patches.reshape(-1, patches.shape[-1])
    return quantization_weight_error(layer) @ rows.mean(axis=0)
