"""Model conversion: float modules -> quantized modules.

``convert_to_quantized`` swaps every ``Conv2d``/``Linear`` for its quantized
counterpart in place.  It is used both to *prepare* a model for
quantization-aware training from scratch and to *post-training quantize*
(PTQ) an already-trained float model — the PTQ-VAT baseline of the paper is
exactly: train float with variability-aware noise, convert, calibrate.
"""

from __future__ import annotations

from typing import Iterator

from repro.nn import Conv2d, Linear, Module
from repro.quant.qconfig import QConfig
from repro.quant.qlayers import QuantConv2d, QuantLinear, _QuantLayerBase


def convert_to_quantized(model: Module, qconfig: QConfig) -> Module:
    """Replace all Conv2d/Linear submodules with quantized versions, in place.

    Weights and biases are copied; MMSE weight scales are computed
    immediately (the paper computes them at the beginning of training).
    Activation scales still need :func:`repro.quant.calibrate_model`.
    """
    _convert_children(model, qconfig)
    return model


def _convert_children(module: Module, qconfig: QConfig) -> None:
    for name, child in list(module._modules.items()):
        if isinstance(child, Conv2d):
            setattr(module, name, QuantConv2d.from_float(child, qconfig))
        elif isinstance(child, Linear):
            setattr(module, name, QuantLinear.from_float(child, qconfig))
        else:
            _convert_children(child, qconfig)


def quantized_layers(model: Module) -> Iterator[tuple[str, _QuantLayerBase]]:
    """Yield (dotted name, layer) for every quantized layer in the model."""
    for name, module in model.named_modules():
        if isinstance(module, _QuantLayerBase):
            yield name, module


def refresh_weight_scales(model: Module) -> None:
    """Recompute MMSE weight scales on every quantized layer."""
    for _, layer in quantized_layers(model):
        layer.refresh_weight_scale()
