"""Static activation-scale calibration (moving-average min-max, [10])."""

from __future__ import annotations

import numpy as np

from repro.quant.quantizer import QuantSpec


class ActivationCalibrator:
    """Tracks an exponential moving average of per-batch |x| maxima.

    The paper fixes activation scaling factors during training ("static
    method"), calibrated as the moving average of min-max values over
    batches of training data.  With a symmetric quantizer only the absolute
    maximum matters.
    """

    def __init__(self, momentum: float = 0.1) -> None:
        self.momentum = momentum
        self.running_peak: float | None = None

    def observe(self, x: np.ndarray) -> None:
        """Update the moving average with one batch of activations."""
        peak = float(np.max(np.abs(x)))
        if self.running_peak is None:
            self.running_peak = peak
        else:
            m = self.momentum
            self.running_peak = (1.0 - m) * self.running_peak + m * peak

    def scale(self, spec: QuantSpec) -> float:
        """Scaling factor that maps the running peak onto the top level."""
        if self.running_peak is None:
            raise RuntimeError("calibrator has observed no data")
        if self.running_peak == 0.0:
            return 1.0
        return self.running_peak / spec.qmax

    @property
    def calibrated(self) -> bool:
        return self.running_peak is not None


def calibrate_model(model, batches, max_batches: int | None = None) -> None:
    """Run calibration batches through a quantized model and freeze scales.

    Layers are switched into calibration mode (float forward + statistics
    collection), the batches are run, then every layer's activation scale
    is frozen from its calibrator.
    """
    from repro.quant.ptq import quantized_layers

    layers = [layer for _, layer in quantized_layers(model)]
    for layer in layers:
        layer.begin_calibration()
    was_training = model.training
    model.eval()
    from repro.autograd import Tensor, no_grad

    with no_grad():
        for index, batch in enumerate(batches):
            if max_batches is not None and index >= max_batches:
                break
            inputs = batch[0] if isinstance(batch, (tuple, list)) else batch
            model(Tensor(inputs))
    for layer in layers:
        layer.finish_calibration()
    model.train(was_training)
