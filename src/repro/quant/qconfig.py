"""Quantization configuration shared by all quantized layers of a model."""

from __future__ import annotations

from dataclasses import dataclass

_CALIBRATORS = ("minmax", "percentile", "kl")


@dataclass(frozen=True)
class QConfig:
    """An "AxWy" configuration in the paper's notation.

    ``activation_bits``/``weight_bits`` select the integer grids;
    ``momentum`` is the moving-average coefficient for activation
    calibration; ``weight_scale_refresh`` > 0 recomputes MMSE weight scales
    every that-many optimizer steps (the paper recomputes only at the start
    of training — the default — and reports that more frequent updates help
    only marginally).

    Ablation knobs beyond the paper's defaults: ``per_channel_weights``
    gives each output channel its own MMSE scale (one extra digital
    multiplier per crossbar column group); ``calibrator`` selects the
    activation-scale estimator (``"minmax"`` — the paper's choice —
    ``"percentile"``, or ``"kl"``), with ``percentile`` setting the clip
    percentile for the percentile calibrator.
    """

    activation_bits: int = 8
    weight_bits: int = 4
    quantize_activations: bool = True
    momentum: float = 0.1
    weight_scale_refresh: int = 0
    per_channel_weights: bool = False
    calibrator: str = "minmax"
    percentile: float = 99.9

    def __post_init__(self) -> None:
        if self.calibrator not in _CALIBRATORS:
            raise ValueError(
                f"unknown calibrator {self.calibrator!r}; options: {_CALIBRATORS}"
            )

    @classmethod
    def from_notation(cls, notation: str, **overrides) -> "QConfig":
        """Parse strings like ``"A4W2"`` into a config."""
        text = notation.upper()
        if not text.startswith("A") or "W" not in text:
            raise ValueError(f"bad AxWy notation: {notation!r}")
        a_part, w_part = text[1:].split("W")
        return cls(activation_bits=int(a_part), weight_bits=int(w_part), **overrides)

    @property
    def notation(self) -> str:
        return f"A{self.activation_bits}W{self.weight_bits}"
