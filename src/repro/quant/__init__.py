"""Quantization: uniform symmetric quantizer, STE, scaling, quant layers.

Implements Eq. 3 of the paper (clip/round uniform symmetric quantizer with
MMSE weight scales and static activation scales) and Eq. 4 (straight-through
gradient estimation, including the reparameterized-variability factor).
"""

from repro.quant.quantizer import (
    QuantSpec,
    dequantize,
    fake_quantize,
    quantize,
    quantization_levels,
)
from repro.quant.scaling import minmax_scale, mmse_scale
from repro.quant.calibration import ActivationCalibrator, calibrate_model
from repro.quant.estimators import HistogramCalibrator, kl_scale, percentile_scale
from repro.quant.qconfig import QConfig
from repro.quant.qlayers import QuantConv2d, QuantLinear
from repro.quant.pact import PactReLU, pact_regularization
from repro.quant.perchannel import fake_quantize_per_channel, per_channel_mmse_scales
from repro.quant.ternary import fake_quantize_ternary, ternarize, twn_threshold_and_scale
from repro.quant.bias_correction import apply_bias_correction
from repro.quant.ptq import convert_to_quantized, quantized_layers

__all__ = [
    "QuantSpec",
    "quantize",
    "dequantize",
    "fake_quantize",
    "quantization_levels",
    "mmse_scale",
    "minmax_scale",
    "percentile_scale",
    "kl_scale",
    "ActivationCalibrator",
    "HistogramCalibrator",
    "calibrate_model",
    "QConfig",
    "QuantConv2d",
    "QuantLinear",
    "PactReLU",
    "pact_regularization",
    "per_channel_mmse_scales",
    "fake_quantize_per_channel",
    "twn_threshold_and_scale",
    "ternarize",
    "fake_quantize_ternary",
    "apply_bias_correction",
    "convert_to_quantized",
    "quantized_layers",
]
