"""PACT: parameterized clipping activation quantization (paper ref [22]).

The paper chose *static* activation scales after observing that dynamic
methods "without extensive fine-tuning ... have shown degraded performance
compared to a static estimation scheme".  PACT (Choi et al.) is the
canonical dynamic method: the clipping threshold ``alpha`` of each
activation quantizer is a trainable parameter, learned jointly with the
weights; an L2 regularizer on ``alpha`` keeps it from growing unboundedly.
This module implements PACT so the paper's design choice can be ablated.

The PACT forward is ``y = quantize(clip(x, 0, alpha))`` with unsigned
``k``-bit levels in ``[0, alpha]``; the STE gradients are

* ``dy/dx = 1`` for ``0 <= x < alpha`` else 0,
* ``dy/dalpha = 1`` for ``x >= alpha`` else 0.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Function, Tensor
from repro.nn.module import Module, Parameter


class PactFunction(Function):
    """Clip-and-quantize with PACT's straight-through gradients."""

    def forward(self, x, alpha, bits: int):
        alpha_value = float(alpha.reshape(-1)[0])
        levels = 2**bits - 1
        clipped = np.clip(x, 0.0, alpha_value)
        if alpha_value > 0.0:
            step = alpha_value / levels
            out = np.rint(clipped / step) * step
        else:
            out = np.zeros_like(x)
        self.save_for_backward(x >= alpha_value, (x > 0.0) & (x < alpha_value))
        return out

    def backward(self, grad):
        above, inside = self.saved
        grad_x = grad * inside
        grad_alpha = np.array([np.sum(grad * above)])
        return grad_x, grad_alpha


class PactReLU(Module):
    """A quantizing ReLU with a learnable clipping threshold.

    Use with ``QConfig(quantize_activations=False)`` so layer-internal
    static activation quantization is disabled and PACT is the only
    activation quantizer.  ``alpha_decay`` is the coefficient of the L2
    penalty on alpha; :meth:`regularization_loss` returns the penalty term
    to be added to the task loss (the "extensive fine-tuning" the paper
    notes PACT needs).
    """

    def __init__(self, bits: int = 4, init_alpha: float = 6.0, alpha_decay: float = 0.0) -> None:
        super().__init__()
        if bits < 2:
            raise ValueError("PACT needs at least 2 bits")
        if init_alpha <= 0.0:
            raise ValueError("init_alpha must be positive")
        self.bits = bits
        self.alpha_decay = alpha_decay
        self.alpha = Parameter(np.array([float(init_alpha)]))

    def forward(self, x: Tensor) -> Tensor:
        return PactFunction.apply(x, self.alpha, bits=self.bits)

    def regularization_loss(self) -> Tensor:
        """L2 penalty ``alpha_decay * alpha^2`` (zero tensor when disabled)."""
        return (self.alpha * self.alpha).sum() * self.alpha_decay

    @property
    def clip_value(self) -> float:
        return float(self.alpha.data[0])

    def __repr__(self) -> str:
        return f"PactReLU(bits={self.bits}, alpha={self.clip_value:.3f})"


def pact_regularization(model: Module) -> Tensor | float:
    """Summed alpha regularization over every PactReLU in a model."""
    total = 0.0
    for module in model.modules():
        if isinstance(module, PactReLU) and module.alpha_decay > 0.0:
            term = module.regularization_loss()
            total = term if isinstance(total, float) and total == 0.0 else total + term
    return total
