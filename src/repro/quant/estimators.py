"""Alternative scale estimators and activation calibrators.

The paper uses MMSE scales for weights and moving-average min-max for
activations (Sec. II-A).  Real deployments frequently trade these for
percentile or information-theoretic (KL) calibration, and the choice
interacts with variability robustness — clipping outliers shrinks the
quantization grid, which shrinks the absolute magnitude of
weight-proportional perturbations.  This module provides the standard
alternatives behind one interface so the choice can be ablated:

* :func:`percentile_scale` — clip at a magnitude percentile;
* :func:`kl_scale` — minimize the KL divergence between the pre- and
  post-quantization magnitude distributions (TensorRT-style);
* :class:`HistogramCalibrator` — streaming activation calibrator computing
  either of the above from an accumulated magnitude histogram, a drop-in
  for :class:`repro.quant.ActivationCalibrator`.
"""

from __future__ import annotations

import numpy as np

from repro.quant.quantizer import QuantSpec


def percentile_scale(x: np.ndarray, spec: QuantSpec, percentile: float = 99.9) -> float:
    """Scale mapping the ``percentile``-th |x| percentile to the top level."""
    if not 0.0 < percentile <= 100.0:
        raise ValueError("percentile must be in (0, 100]")
    magnitudes = np.abs(np.asarray(x, dtype=np.float64)).reshape(-1)
    peak = float(np.percentile(magnitudes, percentile))
    if peak == 0.0:
        peak = float(magnitudes.max())
    if peak == 0.0:
        return 1.0
    return peak / spec.qmax


def _histogram_kl(counts: np.ndarray, edges: np.ndarray, spec: QuantSpec, clip: float) -> float:
    """KL(P || Q) between the reference magnitude distribution P and its
    ``clip``-then-quantize approximation Q (both over the histogram bins)."""
    centers = 0.5 * (edges[:-1] + edges[1:])
    p = counts.astype(np.float64)
    # Drop the near-zero bin: ReLU activations put most of their mass at
    # (or near) zero, which any clip represents exactly; letting it dominate
    # the divergence drives the clip absurdly low.  Reference entropy
    # calibrators apply the same exclusion.
    p[0] = 0.0
    if p.sum() == 0.0:
        return 0.0
    # Clip: mass beyond the threshold collapses into the last kept bin.
    kept = centers <= clip
    # A clip keeping fewer histogram bins than a few per quantization level
    # makes Q trivially equal to P (KL = 0 for arbitrarily harsh clipping),
    # so such candidates are rejected — the same guard TensorRT's entropy
    # calibration applies by starting its sweep at 128 bins.  The cap at a
    # quarter of the histogram keeps high-bit specs (whose 4x-level floor
    # would forbid any clipping) able to clip heavy tails.
    min_kept = min(4 * spec.qmax, len(p) // 4)
    if kept.sum() < min_kept:
        return np.inf
    p_clipped = p.copy()
    overflow = p_clipped[~kept].sum()
    p_clipped = p_clipped[kept]
    p_clipped[-1] += overflow
    # Quantize: the kept range is split into qmax levels; each level's mass
    # is spread uniformly back over its source bins (the standard TensorRT
    # procedure).
    num_levels = spec.qmax
    bin_count = len(p_clipped)
    level_of_bin = np.minimum(
        (np.arange(bin_count) * num_levels) // max(bin_count, 1), num_levels - 1
    )
    q = np.zeros_like(p_clipped)
    for level in range(num_levels):
        members = level_of_bin == level
        if not members.any():
            continue
        mass = p_clipped[members].sum()
        nonzero = members & (p_clipped > 0)
        if nonzero.any():
            q[nonzero] = mass / nonzero.sum()
    p_norm = p_clipped / p_clipped.sum()
    q_norm = q / q.sum() if q.sum() > 0 else q
    mask = (p_norm > 0) & (q_norm > 0)
    if not mask.any():
        return np.inf
    return float(np.sum(p_norm[mask] * np.log(p_norm[mask] / q_norm[mask])))


def kl_scale(
    x: np.ndarray,
    spec: QuantSpec,
    num_bins: int = 512,
    num_candidates: int = 64,
) -> float:
    """KL-minimizing clip threshold -> scale (entropy calibration).

    Builds a magnitude histogram and evaluates candidate clip points between
    the grid's resolution floor and the maximum magnitude, returning the
    scale whose induced quantized distribution is closest (in KL) to the
    original.
    """
    magnitudes = np.abs(np.asarray(x, dtype=np.float64)).reshape(-1)
    peak = float(magnitudes.max())
    if peak == 0.0:
        return 1.0
    counts, edges = np.histogram(magnitudes, bins=num_bins, range=(0.0, peak))
    candidates = np.linspace(peak / num_candidates, peak, num_candidates)
    divergences = [_histogram_kl(counts, edges, spec, float(c)) for c in candidates]
    best = candidates[int(np.argmin(divergences))]
    return float(best) / spec.qmax


class HistogramCalibrator:
    """Streaming activation calibrator over an accumulated |x| histogram.

    Drop-in for :class:`repro.quant.ActivationCalibrator` (same
    ``observe``/``scale``/``calibrated`` protocol).  ``method`` selects how
    the final scale is derived: ``"percentile"`` or ``"kl"``.  The histogram
    range grows dynamically: if a batch exceeds the current range, prior
    counts are re-binned into the wider range (conservative, since re-binned
    mass keeps its bin centroid).
    """

    def __init__(
        self,
        method: str = "percentile",
        percentile: float = 99.9,
        num_bins: int = 512,
    ) -> None:
        if method not in ("percentile", "kl"):
            raise ValueError(f"unknown calibration method {method!r}")
        self.method = method
        self.percentile = percentile
        self.num_bins = num_bins
        self.counts = np.zeros(num_bins)
        self.range_max = 0.0

    @property
    def calibrated(self) -> bool:
        return self.counts.sum() > 0

    def observe(self, x: np.ndarray) -> None:
        magnitudes = np.abs(np.asarray(x, dtype=np.float64)).reshape(-1)
        peak = float(magnitudes.max()) if magnitudes.size else 0.0
        if peak == 0.0 and self.range_max == 0.0:
            return
        if peak > self.range_max:
            self._grow_range(peak)
        counts, _ = np.histogram(magnitudes, bins=self.num_bins, range=(0.0, self.range_max))
        self.counts += counts

    def _grow_range(self, new_max: float) -> None:
        if self.range_max == 0.0:
            self.range_max = new_max
            return
        old_centers = (np.arange(self.num_bins) + 0.5) * (self.range_max / self.num_bins)
        new_counts, _ = np.histogram(
            old_centers, bins=self.num_bins, range=(0.0, new_max), weights=self.counts
        )
        self.counts = new_counts
        self.range_max = new_max

    def scale(self, spec: QuantSpec) -> float:
        if not self.calibrated:
            raise RuntimeError("calibrator has observed no data")
        edges = np.linspace(0.0, self.range_max, self.num_bins + 1)
        if self.method == "percentile":
            cumulative = np.cumsum(self.counts)
            target = cumulative[-1] * self.percentile / 100.0
            index = int(np.searchsorted(cumulative, target))
            clip = edges[min(index + 1, self.num_bins)]
        else:
            candidates = np.linspace(self.range_max / 64, self.range_max, 64)
            divergences = [
                _histogram_kl(self.counts, edges, spec, float(c)) for c in candidates
            ]
            clip = float(candidates[int(np.argmin(divergences))])
        if clip == 0.0:
            return 1.0
        return clip / spec.qmax


def make_calibrator(method: str, momentum: float = 0.1, percentile: float = 99.9):
    """Factory mapping a QConfig calibrator name to a calibrator instance."""
    from repro.quant.calibration import ActivationCalibrator

    if method == "minmax":
        return ActivationCalibrator(momentum)
    if method in ("percentile", "kl"):
        return HistogramCalibrator(method=method, percentile=percentile)
    raise ValueError(f"unknown calibrator {method!r}; options: minmax, percentile, kl")
