"""Scaling-factor estimation: MMSE for weights, min-max for activations."""

from __future__ import annotations

import numpy as np

from repro.quant.quantizer import QuantSpec, quantize


def minmax_scale(x: np.ndarray, spec: QuantSpec) -> float:
    """Scale that maps the largest magnitude onto the last level."""
    peak = float(np.max(np.abs(x)))
    if peak == 0.0:
        return 1.0
    return peak / spec.qmax


def quantization_mse(x: np.ndarray, scale: float, spec: QuantSpec) -> float:
    """Mean squared error of quantize-dequantize at a given scale."""
    reconstructed = quantize(x, scale, spec) * scale
    return float(np.mean((np.asarray(x) - reconstructed) ** 2))


def mmse_scale(
    x: np.ndarray,
    spec: QuantSpec,
    iterations: int = 30,
    tolerance: float = 1e-8,
) -> float:
    """Minimum-MSE scaling factor (Choukroun et al. [21]).

    Alternating minimization: with codes ``q`` fixed, the optimal scale is
    the least-squares fit ``<x, q> / <q, q>``; with the scale fixed, the
    optimal codes are round-and-clip.  The objective is piecewise smooth and
    non-convex in the scale, so the alternation is restarted from several
    fractions of the min-max scale and the lowest-MSE fixed point wins
    (verified against grid search in the test suite).
    """
    x = np.asarray(x, dtype=np.float64)
    if not np.any(x):
        return 1.0
    base = minmax_scale(x, spec)
    best_scale = base
    best_mse = quantization_mse(x, base, spec)
    # Coarse multi-start sweep followed by alternation refinement from each
    # start; cheap (runs once per layer) and reliably finds the global basin.
    for fraction in np.linspace(0.25, 1.1, 18):
        scale = _mmse_fixed_point(x, spec, base * float(fraction), iterations, tolerance)
        mse = quantization_mse(x, scale, spec)
        if mse < best_mse:
            best_mse = mse
            best_scale = scale
    return best_scale


def _mmse_fixed_point(
    x: np.ndarray, spec: QuantSpec, scale: float, iterations: int, tolerance: float
) -> float:
    """Run the Lloyd-style alternation from one starting scale."""
    for _ in range(iterations):
        codes = quantize(x, scale, spec)
        denom = float(np.dot(codes.reshape(-1), codes.reshape(-1)))
        if denom == 0.0:
            break
        new_scale = float(np.dot(x.reshape(-1), codes.reshape(-1))) / denom
        if new_scale <= 0.0:
            break
        if abs(new_scale - scale) < tolerance * max(scale, 1e-30):
            return new_scale
        scale = new_scale
    return scale


def mmse_scale_grid(x: np.ndarray, spec: QuantSpec, points: int = 200) -> float:
    """Brute-force MMSE scale via grid search (reference for tests)."""
    x = np.asarray(x, dtype=np.float64)
    base = minmax_scale(x, spec)
    candidates = np.linspace(0.2 * base, 1.2 * base, points)
    errors = [quantization_mse(x, s, spec) for s in candidates]
    return float(candidates[int(np.argmin(errors))])
