"""Uniform symmetric quantizer with straight-through gradients (Eq. 3-4)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autograd import Function, Tensor


@dataclass(frozen=True)
class QuantSpec:
    """A symmetric ``k``-bit integer grid.

    The level set is ``{-2^(k-1)+1, ..., 2^(k-1)-1}`` (Eq. 3): e.g. ternary
    weights for k = 2, the 15-level grid for k = 4.
    """

    bits: int

    def __post_init__(self) -> None:
        if self.bits < 2:
            raise ValueError("symmetric quantization needs at least 2 bits")

    @property
    def qmax(self) -> int:
        return 2 ** (self.bits - 1) - 1

    @property
    def qmin(self) -> int:
        return -self.qmax

    @property
    def num_levels(self) -> int:
        return 2 * self.qmax + 1


def quantization_levels(spec: QuantSpec, scale: float) -> np.ndarray:
    """All representable dequantized values for a spec/scale pair."""
    return np.arange(spec.qmin, spec.qmax + 1) * scale


def quantize(x: np.ndarray, scale: float, spec: QuantSpec) -> np.ndarray:
    """Real values -> integer codes (round-to-nearest, clipped)."""
    codes = np.rint(np.asarray(x) / scale)
    return np.clip(codes, spec.qmin, spec.qmax)


def dequantize(codes: np.ndarray, scale: float) -> np.ndarray:
    """Integer codes -> dequantized real values."""
    return np.asarray(codes) * scale


class FakeQuantFunction(Function):
    """Quantize-dequantize with straight-through gradients.

    ``clip_gradient=True`` zeroes the gradient outside the representable
    range (the standard choice for activations, where values beyond the clip
    threshold carry no information); ``False`` is the pure identity STE of
    Eq. 4 (used for weights so large weights keep receiving updates).
    """

    def forward(self, x, scale: float, spec: QuantSpec, clip_gradient: bool = False):
        codes = np.clip(np.rint(x / scale), spec.qmin, spec.qmax)
        if clip_gradient:
            bound = spec.qmax * scale
            self.save_for_backward((np.abs(x) <= bound))
        else:
            self.save_for_backward(None)
        return codes * scale

    def backward(self, grad):
        (mask,) = self.saved
        if mask is None:
            return (grad,)
        return (grad * mask,)


def fake_quantize(
    x: Tensor,
    scale: float,
    spec: QuantSpec,
    clip_gradient: bool = False,
) -> Tensor:
    """Differentiable quantize-dequantize (the x_D of Eq. 3)."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return FakeQuantFunction.apply(x, scale=float(scale), spec=spec, clip_gradient=clip_gradient)
