"""Ternary weight networks (TWN) quantization (paper ref [12]).

The paper's W2 configuration is "ternary" through the uniform symmetric
quantizer of Eq. 3 (levels {-1, 0, +1} x scale, MMSE scale).  TWN (Li &
Liu) is the classical alternative: a threshold rule zeroes small weights
and an analytically optimal scale fits the survivors,

    ``delta = 0.7 * E[|w|]``,
    ``alpha = E[|w_i|  :  |w_i| > delta]``,

which approximately minimizes the L2 reconstruction error under the
threshold parameterization.  Implemented here as a drop-in fake quantizer
so the two W2 flavours can be compared under variability.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Function, Tensor


def twn_threshold_and_scale(weights: np.ndarray) -> tuple[float, float]:
    """TWN's (delta, alpha): magnitude threshold and survivor scale."""
    magnitudes = np.abs(np.asarray(weights, dtype=np.float64))
    delta = 0.7 * float(magnitudes.mean())
    survivors = magnitudes[magnitudes > delta]
    if survivors.size == 0:
        # Degenerate tensor (all magnitudes below threshold): fall back to
        # the overall mean so the layer does not collapse to zero.
        alpha = float(magnitudes.mean()) or 1.0
    else:
        alpha = float(survivors.mean())
    return delta, alpha


def ternarize(weights: np.ndarray, delta: float, alpha: float) -> np.ndarray:
    """Hard ternarization: sign(w) * alpha where |w| > delta, else 0."""
    weights = np.asarray(weights, dtype=np.float64)
    return np.where(np.abs(weights) > delta, np.sign(weights) * alpha, 0.0)


class TernaryQuantFunction(Function):
    """TWN quantize-dequantize with identity STE."""

    def forward(self, w, delta: float, alpha: float):
        return ternarize(w, delta, alpha)

    def backward(self, grad):
        return (grad,)


def fake_quantize_ternary(w: Tensor, delta: float | None = None, alpha: float | None = None) -> Tensor:
    """Differentiable TWN quantization.

    ``delta``/``alpha`` default to the TWN-optimal values recomputed from
    the current weights (the usual training-time behaviour).
    """
    if delta is None or alpha is None:
        delta, alpha = twn_threshold_and_scale(w.data)
    if alpha <= 0.0:
        raise ValueError("alpha must be positive")
    return TernaryQuantFunction.apply(w, delta=float(delta), alpha=float(alpha))


def ternary_sparsity(weights: np.ndarray, delta: float | None = None) -> float:
    """Fraction of weights zeroed by the TWN threshold."""
    if delta is None:
        delta, _ = twn_threshold_and_scale(weights)
    magnitudes = np.abs(np.asarray(weights))
    return float((magnitudes <= delta).mean())
