"""Per-channel weight quantization.

The paper quantizes each layer's weights with a single (per-tensor) MMSE
scale.  Per-output-channel scales are the standard refinement: each output
channel (each crossbar column group) gets its own scaling factor, which
costs one extra digital multiplier per column and recovers much of the
accuracy lost at low bitwidths.  Provided here both as standalone
functions and as a drop-in option for the quantized layers
(``QConfig(per_channel_weights=True)``), so the paper's per-tensor choice
can be ablated.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Function, Tensor
from repro.quant.quantizer import QuantSpec
from repro.quant.scaling import mmse_scale


def per_channel_mmse_scales(weights: np.ndarray, spec: QuantSpec) -> np.ndarray:
    """One MMSE scale per output channel (axis 0 of the weight tensor)."""
    weights = np.asarray(weights, dtype=np.float64)
    return np.array([mmse_scale(channel, spec) for channel in weights])


def _broadcast_scales(scales: np.ndarray, ndim: int) -> np.ndarray:
    """Reshape a per-channel scale vector to broadcast over weight dims."""
    return np.asarray(scales).reshape((-1,) + (1,) * (ndim - 1))


class FakeQuantPerChannelFunction(Function):
    """Quantize-dequantize with one scale per output channel; identity STE."""

    def forward(self, x, scales: np.ndarray, spec: QuantSpec):
        s = _broadcast_scales(scales, x.ndim)
        codes = np.clip(np.rint(x / s), spec.qmin, spec.qmax)
        return codes * s

    def backward(self, grad):
        return (grad,)


def fake_quantize_per_channel(x: Tensor, scales: np.ndarray, spec: QuantSpec) -> Tensor:
    """Differentiable per-channel quantize-dequantize of a weight tensor."""
    scales = np.asarray(scales, dtype=np.float64)
    if scales.ndim != 1 or scales.shape[0] != x.shape[0]:
        raise ValueError(
            f"need one scale per output channel ({x.shape[0]}), got shape {scales.shape}"
        )
    if np.any(scales <= 0):
        raise ValueError("scales must be positive")
    return FakeQuantPerChannelFunction.apply(x, scales=scales, spec=spec)


def per_channel_quantization_mse(weights: np.ndarray, spec: QuantSpec) -> float:
    """MSE of per-channel quantization (for comparisons against per-tensor)."""
    weights = np.asarray(weights, dtype=np.float64)
    scales = per_channel_mmse_scales(weights, spec)
    s = _broadcast_scales(scales, weights.ndim)
    codes = np.clip(np.rint(weights / s), spec.qmin, spec.qmax)
    return float(np.mean((weights - codes * s) ** 2))
