"""Engine-level parity tests for fused cross-chip dispatch.

``ServeConfig(fused=True)`` vs ``fused=False`` must be *indistinguishable*
in everything the engine accounts for: per-request logits (bit-equal),
chip assignments, and the telemetry digest — across tick-barrier and
replay-trace admission, under mid-run recalibration, fault maps, and
spare provisioning, on both backends.  Chaos runs fall back to per-chip
dispatch automatically, so parity there is structural, and asserted too.
"""

import numpy as np
import pytest

from repro.datasets.loaders import batch_iterator
from repro.datasets.synthetic import make_pattern_dataset
from repro.models import build_model
from repro.nn import init
from repro.quant.calibration import calibrate_model
from repro.quant.ptq import convert_to_quantized
from repro.quant.qconfig import QConfig
from repro.selftuning.tuner import SelfTuningConfig
from repro.serve import (
    FaultInjector,
    FaultPlan,
    InferenceEngine,
    ReplayTrace,
    ServeConfig,
    UniformTrace,
)
from repro.variability.faults import FaultSpec
from repro.variability.models import WeightProportionalVariance
from repro.variability.sampler import VariabilitySpec


@pytest.fixture(scope="module")
def served_model():
    init.seed(0)
    dataset = make_pattern_dataset(5, 16, (1, 28, 28), seed=7, max_shift=1, noise=0.2)
    model = build_model("lenet5-mini", num_classes=5, in_channels=1)
    convert_to_quantized(model, QConfig.from_notation("A4W2"))
    calibrate_model(model, batch_iterator(dataset, 16, shuffle=False), max_batches=3)
    model.eval()
    return model, dataset


def _spec(sigma=0.2):
    return VariabilitySpec.mixed(sigma, WeightProportionalVariance())


def _engine(model, fused, num_chips=3, **config):
    config.setdefault("max_batch", 4)
    config.setdefault("max_wait", 2)
    config.setdefault("seed", 5)
    return InferenceEngine(
        model,
        _spec(),
        num_chips=num_chips,
        config=ServeConfig(fused=fused, **config),
    )


def _workload(dataset, requests):
    reps = 1 + (requests - 1) // len(dataset.images)
    return np.concatenate([dataset.images] * reps)[:requests]


def _serve_bursty(engine, workload, per_tick=12, deadline_ticks=20):
    """Submit ``per_tick`` requests between steps: several due batches per
    tick, which is what gives the fused path groups to stack."""
    for i, sample in enumerate(workload):
        engine.submit(
            sample, request_id=f"r{i:04d}", deadline=engine.now + deadline_ticks
        )
        if (i + 1) % per_tick == 0:
            engine.step()
    engine.drain()
    return engine


def _snapshot(engine):
    outputs = {rid: done.output for rid, done in engine.completed.items()}
    chips = {rid: done.chip_id for rid, done in engine.completed.items()}
    return outputs, chips, engine.telemetry.digest()


def _assert_equivalent(fused_engine, plain_engine):
    out_f, chips_f, digest_f = _snapshot(fused_engine)
    out_p, chips_p, digest_p = _snapshot(plain_engine)
    assert set(out_f) == set(out_p)
    assert chips_f == chips_p
    assert all(np.array_equal(out_f[rid], out_p[rid]) for rid in out_p)
    assert digest_f == digest_p


@pytest.mark.parametrize("backend", ["fake-quant", "circuit"])
def test_fused_serving_is_bit_identical(served_model, backend):
    model, dataset = served_model
    workload = _workload(dataset, 36)
    fused = _serve_bursty(_engine(model, True, backend=backend), workload)
    plain = _serve_bursty(_engine(model, False, backend=backend), workload)
    _assert_equivalent(fused, plain)
    assert fused.telemetry.fused_groups > 0
    assert fused.telemetry.fused_batches > fused.telemetry.fused_groups
    assert plain.telemetry.fused_groups == 0


@pytest.mark.parametrize("policy", ["round-robin", "least-loaded", "energy-aware"])
def test_fused_parity_across_policies(served_model, policy):
    """Staged counter/energy bumps reproduce every policy's choices."""
    model, dataset = served_model
    workload = _workload(dataset, 36)
    fused = _serve_bursty(_engine(model, True, policy=policy), workload)
    plain = _serve_bursty(_engine(model, False, policy=policy), workload)
    _assert_equivalent(fused, plain)
    assert fused.telemetry.fused_groups > 0


def test_fused_parity_on_replay_trace(served_model):
    model, dataset = served_model
    workload = _workload(dataset, 40)
    ids = [f"t{i:04d}" for i in range(len(workload))]
    trace = ReplayTrace.from_trace(UniformTrace(rate=10.0), len(ids))
    fused = _engine(model, True)
    plain = _engine(model, False)
    out_f = fused.run_trace(workload, trace, ids=ids)
    out_p = plain.run_trace(workload, trace, ids=ids)
    assert set(out_f) == set(out_p)
    assert all(np.array_equal(out_f[rid], out_p[rid]) for rid in out_p)
    assert fused.telemetry.digest() == plain.telemetry.digest()


def test_fused_parity_under_chaos(served_model):
    """An installed fault injector routes every batch per-chip, so a chaos
    run is identical with fusion on or off — schedule, dead letters, bits."""
    model, dataset = served_model
    workload = _workload(dataset, 40)
    ids = [f"c{i:04d}" for i in range(len(workload))]
    trace = ReplayTrace.from_trace(UniformTrace(rate=10.0), len(ids))
    engines = []
    for fused in (True, False):
        engine = _engine(model, fused, num_chips=6)
        engine.warm_up()
        FaultInjector(engine, FaultPlan(seed=3)).install()
        engine.run_trace(workload, trace, ids=ids)
        engines.append(engine)
    chaos_fused, chaos_plain = engines
    assert chaos_fused.faults.schedule == chaos_plain.faults.schedule
    assert set(chaos_fused.dead_letters) == set(chaos_plain.dead_letters)
    _assert_equivalent(chaos_fused, chaos_plain)
    assert chaos_fused.telemetry.fused_groups == 0  # structural fallback


def test_fused_parity_across_recalibration(served_model):
    """Mid-run reprogramming creates new chip objects; the stack rebuilds
    and stays bit-identical."""
    model, dataset = served_model
    workload = _workload(dataset, 48)
    engines = []
    for fused in (True, False):
        engine = _engine(model, fused)
        _serve_bursty(engine, workload[:24])
        engine.reprogram(engine.fleet[0])
        _serve_bursty(engine, workload[24:])
        engines.append(engine)
    _assert_equivalent(*engines)
    assert engines[0].telemetry.fused_groups > 0


def test_fused_parity_across_fault_map_and_replacement(served_model):
    """apply_faults (sticky stuck-at map) and spare provisioning both
    invalidate the stack; serving stays bit-identical through both."""
    model, dataset = served_model
    workload = _workload(dataset, 48)
    engines = []
    for fused in (True, False):
        engine = _engine(model, fused)
        _serve_bursty(engine, workload[:16])
        engine.inject_chip_faults(
            engine.fleet[1], FaultSpec(p_stuck_off=0.05, p_stuck_on=0.02), seed=9
        )
        _serve_bursty(engine, workload[16:32])
        engine.replace_chip(engine.fleet[1], reason="test")
        _serve_bursty(engine, workload[32:])
        engines.append(engine)
    _assert_equivalent(*engines)
    assert engines[0].telemetry.fused_groups > 0


def test_self_tuning_disables_fusion(served_model):
    model, dataset = served_model
    workload = _workload(dataset, 24)
    engine = _engine(
        model, True, backend="fake-quant", self_tuning=SelfTuningConfig()
    )
    _serve_bursty(engine, workload)
    assert engine.telemetry.fused_groups == 0
    assert len(engine.completed) == len(workload)


def test_fused_counters_in_report(served_model):
    model, dataset = served_model
    engine = _serve_bursty(_engine(model, True), _workload(dataset, 24))
    section = engine.telemetry.report()["fused"]
    assert section["groups"] == engine.telemetry.fused_groups
    assert section["batches"] == engine.telemetry.fused_batches
    assert section["fallback_batches"] == engine.telemetry.fused_fallback_batches


def test_digest_is_deterministic_and_workload_sensitive(served_model):
    model, dataset = served_model
    workload = _workload(dataset, 24)
    first = _serve_bursty(_engine(model, True), workload)
    second = _serve_bursty(_engine(model, True), workload)
    assert first.telemetry.digest() == second.telemetry.digest()
    shorter = _serve_bursty(_engine(model, True), workload[:12])
    assert shorter.telemetry.digest() != first.telemetry.digest()
