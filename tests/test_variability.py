"""Variability models and sampler: distributional and structural invariants."""

import numpy as np
import pytest

from repro.variability import (
    ChipVariation,
    LayerFixedVariance,
    VariabilitySampler,
    VariabilitySpec,
    WeightProportionalVariance,
    variance_model_by_name,
)


class TestVarianceModels:
    def test_lookup_by_name(self):
        assert isinstance(
            variance_model_by_name("weight-proportional"), WeightProportionalVariance
        )
        assert isinstance(variance_model_by_name("layer_fixed"), LayerFixedVariance)
        with pytest.raises(KeyError):
            variance_model_by_name("cauchy")

    def test_weight_proportional_std(self):
        model = WeightProportionalVariance()
        w = np.array([-2.0, 0.5, 0.0])
        assert np.allclose(model.std(w, 0.1), [0.2, 0.05, 0.0])

    def test_layer_fixed_std_uses_max(self):
        model = LayerFixedVariance()
        w = np.array([-2.0, 0.5, 0.0])
        assert np.allclose(model.std(w, 0.1), 0.2)

    def test_weight_proportional_reparam_data(self, rng):
        model = WeightProportionalVariance()
        w = rng.normal(size=10)
        eps = rng.normal(size=10)
        assert np.allclose(model.reparameterize_data(eps, w), eps * w)

    def test_layer_fixed_reparam_data(self, rng):
        model = LayerFixedVariance()
        w = np.array([1.0, -3.0, 2.0])
        eps = np.array([0.1, 0.2, -0.1])
        assert np.allclose(model.reparameterize_data(eps, w), eps * 3.0)

    def test_reparam_generates_model_distribution(self, rng):
        # f(eps, w) with eps ~ N(0, sigma^2) must match delta ~ N(0, sigma(w)^2).
        for model in (WeightProportionalVariance(), LayerFixedVariance()):
            w = np.array([0.5, -1.5])
            sigma = 0.3
            draws = np.stack(
                [
                    model.reparameterize_data(rng.normal(0, sigma, size=2), w)
                    for _ in range(4000)
                ]
            )
            assert np.allclose(draws.mean(axis=0), 0.0, atol=0.03)
            assert np.allclose(draws.std(axis=0), model.std(w, sigma), rtol=0.1)


class TestSpec:
    def test_sigma_total(self):
        spec = VariabilitySpec(0.3, 0.4)
        assert spec.sigma_total == pytest.approx(0.5)

    def test_scenario_constructors(self):
        within = VariabilitySpec.within_only(0.2, WeightProportionalVariance())
        assert within.sigma_between == 0.0
        mixed = VariabilitySpec.mixed(0.2, WeightProportionalVariance())
        assert mixed.sigma_between == mixed.sigma_within == 0.2
        assert VariabilitySpec.null().is_null


class TestChipVariation:
    def test_epsilon_cached_and_deterministic(self):
        chip = ChipVariation(0.1, 0.2, seed=42)
        a = chip.epsilon_for("layer1", (3, 3))
        b = chip.epsilon_for("layer1", (3, 3))
        assert np.array_equal(a, b)
        # The frozen within-chip pattern is cached by identity.
        assert chip.within_pattern("layer1", (3, 3)) is chip.within_pattern(
            "layer1", (3, 3)
        )
        chip2 = ChipVariation(0.1, 0.2, seed=42)
        assert np.array_equal(a, chip2.epsilon_for("layer1", (3, 3)))

    def test_different_layers_get_independent_noise(self):
        chip = ChipVariation(0.0, 0.5, seed=1)
        a = chip.epsilon_for("layer1", (100,))
        b = chip.epsilon_for("layer2", (100,))
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.3

    def test_shape_mismatch_raises(self):
        chip = ChipVariation(0.0, 0.1, seed=0)
        chip.epsilon_for("x", (2, 2))
        with pytest.raises(ValueError):
            chip.epsilon_for("x", (3, 3))

    def test_zero_sigma_within_gives_constant(self):
        chip = ChipVariation(0.25, 0.0, seed=0)
        eps = chip.epsilon_for("x", (10,))
        assert np.allclose(eps, 0.25)

    def test_rng_for_stable(self):
        chip = ChipVariation(0.0, 0.1, seed=5)
        a = chip.rng_for("gtm").normal(size=4)
        b = ChipVariation(0.0, 0.1, seed=5).rng_for("gtm").normal(size=4)
        assert np.array_equal(a, b)


class TestSamplerStatistics:
    def test_between_chip_component_shared_within_chip(self):
        # All epsilons on one chip share eps_B: with sigma_W = 0 every entry
        # of every layer equals eps_B exactly.
        spec = VariabilitySpec(0.0, 0.3)
        sampler = VariabilitySampler(spec, seed=0)
        chip = sampler.sample_chip()
        eps1 = chip.epsilon_for("a", (50,))
        eps2 = chip.epsilon_for("b", (50,))
        assert np.allclose(eps1, chip.eps_between)
        assert np.allclose(eps2, chip.eps_between)

    def test_total_variance_decomposition(self):
        # Across many chips, Var(eps_i) ~= sigma_W^2 + sigma_B^2 and
        # Cov(eps_i, eps_j) ~= sigma_B^2 for i != j.
        spec = VariabilitySpec(0.2, 0.3)
        sampler = VariabilitySampler(spec, seed=7)
        draws = np.stack(
            [chip.epsilon_for("w", (200,)) for chip in sampler.sample_chips(600)]
        )
        variances = draws.var(axis=0)
        assert np.mean(variances) == pytest.approx(0.2**2 + 0.3**2, rel=0.15)
        covariance = np.cov(draws[:, 0], draws[:, 1])[0, 1]
        assert covariance == pytest.approx(0.3**2, rel=0.35)

    def test_chips_are_reproducible_by_seed(self):
        spec = VariabilitySpec(0.1, 0.1)
        a = VariabilitySampler(spec, seed=3).sample_chip()
        b = VariabilitySampler(spec, seed=3).sample_chip()
        assert a.eps_between == b.eps_between
        assert np.array_equal(a.epsilon_for("x", (5,)), b.epsilon_for("x", (5,)))

    def test_sample_chips_count(self):
        chips = VariabilitySampler(VariabilitySpec(0.1, 0.0), seed=0).sample_chips(5)
        assert len(chips) == 5
        eps_b = [c.eps_between for c in chips]
        assert all(e == 0.0 for e in eps_b)  # no between-chip component
