"""Tests for ``repro.serve.shard``: lazy fleets and sharded execution.

Two contracts are pinned here.  *Laziness*: a fleet constructs in
O(descriptors) memory, nothing realizes a chip except actual traffic, and
``ServeConfig.max_resident_chips`` is a hard ceiling on resident mappings
with deterministic spill/re-realization (sticky fault maps included).
*Parity*: ``ServeConfig(shards=N)`` must be indistinguishable from serial
execution in everything the engine accounts for — per-request logits
(bit-equal), chip assignments, and the telemetry digest — across
policies, replay traces, drift + recalibration, sticky fault maps, and
spare provisioning, on both backends; chaos and self-tuning runs fall
back to the in-process path structurally.
"""

import numpy as np
import pytest

from repro.datasets.loaders import batch_iterator
from repro.datasets.synthetic import make_pattern_dataset
from repro.models import build_model
from repro.nn import init
from repro.quant.calibration import calibrate_model
from repro.quant.ptq import convert_to_quantized
from repro.quant.qconfig import QConfig
from repro.selftuning.tuner import SelfTuningConfig
from repro.serve import (
    ChipLifecycle,
    FaultInjector,
    FaultPlan,
    FleetSpec,
    InferenceEngine,
    LifecycleConfig,
    ReplayTrace,
    ServeConfig,
    ShardPlan,
    ShardPool,
    UniformTrace,
)
from repro.variability.faults import FaultSpec
from repro.variability.models import WeightProportionalVariance
from repro.variability.sampler import VariabilitySpec

needs_fork = pytest.mark.skipif(
    not ShardPool.available(), reason="fork start method unavailable"
)


@pytest.fixture(scope="module")
def served_model():
    init.seed(0)
    dataset = make_pattern_dataset(5, 16, (1, 28, 28), seed=7, max_shift=1, noise=0.2)
    model = build_model("lenet5-mini", num_classes=5, in_channels=1)
    convert_to_quantized(model, QConfig.from_notation("A4W2"))
    calibrate_model(model, batch_iterator(dataset, 16, shuffle=False), max_batches=3)
    model.eval()
    return model, dataset


def _spec(sigma=0.2):
    return VariabilitySpec.mixed(sigma, WeightProportionalVariance())


def _engine(model, shards=0, num_chips=4, fleet_spec=None, **config):
    config.setdefault("max_batch", 4)
    config.setdefault("max_wait", 2)
    config.setdefault("seed", 5)
    return InferenceEngine(
        model,
        _spec(),
        num_chips=num_chips,
        config=ServeConfig(shards=shards, **config),
        fleet_spec=fleet_spec,
    )


def _workload(dataset, requests):
    reps = 1 + (requests - 1) // len(dataset.images)
    return np.concatenate([dataset.images] * reps)[:requests]


def _serve_bursty(engine, workload, per_tick=12, deadline_ticks=20):
    """Submit ``per_tick`` requests between steps: several due batches per
    tick, which is what gives the sharded path groups to scatter."""
    for i, sample in enumerate(workload):
        engine.submit(
            sample, request_id=f"r{i:04d}", deadline=engine.now + deadline_ticks
        )
        if (i + 1) % per_tick == 0:
            engine.step()
    engine.drain()
    return engine


def _snapshot(engine):
    outputs = {rid: done.output for rid, done in engine.completed.items()}
    chips = {rid: done.chip_id for rid, done in engine.completed.items()}
    return outputs, chips, engine.telemetry.digest()


def _assert_equivalent(sharded_engine, serial_engine):
    out_s, chips_s, digest_s = _snapshot(sharded_engine)
    out_p, chips_p, digest_p = _snapshot(serial_engine)
    assert set(out_s) == set(out_p)
    assert chips_s == chips_p
    assert all(np.array_equal(out_s[rid], out_p[rid]) for rid in out_p)
    assert digest_s == digest_p


# ----------------------------------------------------------------------
# ShardPlan
# ----------------------------------------------------------------------
def test_shard_plan_partitions_contiguously():
    plan = ShardPlan.build(10, 3)
    assert plan.shards == 3
    assert plan.num_chips == 10
    assert [len(plan.members(s)) for s in range(plan.shards)] == [4, 3, 3]
    # Every index maps to exactly the shard whose members contain it.
    for shard in range(plan.shards):
        for index in plan.members(shard):
            assert plan.shard_of(index) == shard
    assert plan.describe() == {"shards": 3, "sizes": [4, 3, 3]}


def test_shard_plan_clamps_shards_to_fleet():
    plan = ShardPlan.build(2, 8)
    assert plan.shards == 2
    assert [len(plan.members(s)) for s in range(plan.shards)] == [1, 1]


def test_shard_plan_rejects_bad_inputs():
    with pytest.raises(ValueError):
        ShardPlan.build(0, 2)
    with pytest.raises(ValueError):
        ShardPlan.build(4, 0)
    plan = ShardPlan.build(4, 2)
    with pytest.raises(IndexError):
        plan.shard_of(4)
    with pytest.raises(IndexError):
        plan.shard_of(-1)


# ----------------------------------------------------------------------
# FleetSpec.parse validation (satellite)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fragment", ["rram:0", "flash:-2"])
def test_fleet_spec_rejects_nonpositive_counts(fragment):
    with pytest.raises(ValueError, match=fragment):
        FleetSpec.parse(f"rram:2,{fragment}")


def test_fleet_spec_still_parses_valid_groups():
    spec = FleetSpec.parse("rram:2,flash:1@0.5")
    assert spec.num_chips == 3
    assert spec.groups[1].sigma_scale == 0.5


# ----------------------------------------------------------------------
# Lazy fleets: construction, realization, spill
# ----------------------------------------------------------------------
def test_thousand_chip_fleet_constructs_unrealized(served_model):
    model, _ = served_model
    engine = _engine(model, num_chips=1000, max_resident_chips=8)
    assert len(engine.fleet) == 1000
    assert not any(chip.realized for chip in engine.fleet)
    # Effective cache capacity is the resident-chip bound.
    assert engine.cache.capacity == 8


def test_chip_lookup_does_not_force_realization(served_model):
    model, _ = served_model
    engine = _engine(model, num_chips=64)
    chip = engine.chip_by_id("chip32")
    assert chip is not None and chip.index == 32
    assert not chip.realized
    # repr / policy-visible bookkeeping must not realize either.
    repr(chip)
    assert not any(c.realized for c in engine.fleet)


def test_only_dispatched_chips_realize(served_model):
    model, dataset = served_model
    engine = _engine(model, num_chips=8)
    engine.submit(dataset.images[0], request_id="solo")
    engine.step()
    engine.drain()
    assert "solo" in engine.completed
    assert sum(chip.realized for chip in engine.fleet) == 1


def test_max_resident_chips_bounds_cache_and_spills(served_model):
    model, dataset = served_model
    engine = _engine(model, num_chips=12, max_resident_chips=4, cache_capacity=64)
    assert engine.cache.capacity == 4  # min(cache_capacity, max_resident_chips)
    _serve_bursty(engine, _workload(dataset, 48))
    stats = engine.cache.stats
    assert stats.peak_resident <= 4
    assert stats.spills > 0
    assert stats.spills <= stats.evictions
    assert len(engine.completed) == 48


def test_spilled_chip_rerealizes_bit_exactly(served_model):
    model, dataset = served_model
    engine = _engine(model, num_chips=2, max_resident_chips=1)
    probe = dataset.images[:3]
    chip0, chip1 = engine.fleet
    before = engine.programmed_for(chip0).forward(probe)
    engine.programmed_for(chip1)  # evicts + spills chip0
    assert engine.cache.stats.spills == 1
    after = engine.programmed_for(chip0).forward(probe)
    assert np.array_equal(before, after)


def test_sticky_faults_survive_spill_and_rerealization(served_model):
    model, dataset = served_model
    engine = _engine(model, num_chips=2, max_resident_chips=1)
    probe = dataset.images[:3]
    chip0, chip1 = engine.fleet
    engine.inject_chip_faults(
        chip0, FaultSpec(p_stuck_off=0.05, p_stuck_on=0.02), seed=9
    )
    faulted = engine.programmed_for(chip0).forward(probe)
    engine.programmed_for(chip1)  # evicts + spills the faulted chip
    refaulted = engine.programmed_for(chip0).forward(probe)
    assert np.array_equal(faulted, refaulted)


def test_replace_chip_on_never_realized_chip(served_model):
    model, dataset = served_model
    engine = _engine(model, num_chips=4)
    victim = engine.fleet[1]
    assert not victim.realized
    replacement = engine.replace_chip(victim, reason="test")
    assert replacement.chip_id == f"{victim.chip_id}+1"
    assert not victim.realized  # replacing never materialized the old chip
    assert not replacement.realized
    _serve_bursty(engine, _workload(dataset, 16))
    assert len(engine.completed) == 16


# ----------------------------------------------------------------------
# Sharded execution parity
# ----------------------------------------------------------------------
@needs_fork
@pytest.mark.parametrize("backend", ["fake-quant", "circuit"])
def test_sharded_serving_is_bit_identical(served_model, backend):
    model, dataset = served_model
    workload = _workload(dataset, 36)
    sharded = _serve_bursty(_engine(model, shards=2, backend=backend), workload)
    serial = _serve_bursty(_engine(model, shards=0, backend=backend), workload)
    try:
        _assert_equivalent(sharded, serial)
        assert sharded.telemetry.shard_groups > 0
        assert sharded.telemetry.shard_batches > sharded.telemetry.shard_groups
        assert serial.telemetry.shard_groups == 0
    finally:
        sharded.close()
        serial.close()


@needs_fork
@pytest.mark.parametrize("policy", ["round-robin", "least-loaded", "energy-aware"])
def test_sharded_parity_across_policies(served_model, policy):
    """Coordinator-side staging books the exact counter/energy state every
    load-aware policy reads, so routing matches serial bit-for-bit."""
    model, dataset = served_model
    workload = _workload(dataset, 36)
    sharded = _serve_bursty(_engine(model, shards=2, policy=policy), workload)
    serial = _serve_bursty(_engine(model, shards=0, policy=policy), workload)
    try:
        _assert_equivalent(sharded, serial)
        assert sharded.telemetry.shard_groups > 0
    finally:
        sharded.close()
        serial.close()


@needs_fork
def test_sharded_parity_on_replay_trace(served_model):
    model, dataset = served_model
    workload = _workload(dataset, 40)
    ids = [f"t{i:04d}" for i in range(len(workload))]
    trace = ReplayTrace.from_trace(UniformTrace(rate=10.0), len(ids))
    sharded = _engine(model, shards=2)
    serial = _engine(model, shards=0)
    try:
        out_s = sharded.run_trace(workload, trace, ids=ids)
        out_p = serial.run_trace(workload, trace, ids=ids)
        assert set(out_s) == set(out_p)
        assert all(np.array_equal(out_s[rid], out_p[rid]) for rid in out_p)
        assert sharded.telemetry.digest() == serial.telemetry.digest()
    finally:
        sharded.close()
        serial.close()


@needs_fork
def test_sharded_parity_across_recalibration(served_model):
    """Reprogramming bumps the chip's shard epoch; workers rebuild their
    copy and stay bit-identical."""
    model, dataset = served_model
    workload = _workload(dataset, 48)
    engines = []
    for shards in (2, 0):
        engine = _engine(model, shards=shards)
        _serve_bursty(engine, workload[:24])
        engine.reprogram(engine.fleet[0])
        _serve_bursty(engine, workload[24:])
        engines.append(engine)
    try:
        _assert_equivalent(*engines)
        assert engines[0].telemetry.shard_groups > 0
    finally:
        for engine in engines:
            engine.close()


@needs_fork
def test_sharded_parity_across_fault_map_and_replacement(served_model):
    """A sticky stuck-at map ships with the ChipStateRef (epoch bumped) and
    spare provisioning swaps the slot in place — both stay bit-identical."""
    model, dataset = served_model
    workload = _workload(dataset, 48)
    engines = []
    for shards in (2, 0):
        engine = _engine(model, shards=shards)
        _serve_bursty(engine, workload[:16])
        engine.inject_chip_faults(
            engine.fleet[1], FaultSpec(p_stuck_off=0.05, p_stuck_on=0.02), seed=9
        )
        _serve_bursty(engine, workload[16:32])
        engine.replace_chip(engine.fleet[1], reason="test")
        _serve_bursty(engine, workload[32:])
        engines.append(engine)
    try:
        _assert_equivalent(*engines)
        assert engines[0].telemetry.shard_groups > 0
    finally:
        for engine in engines:
            engine.close()


@needs_fork
@pytest.mark.parametrize("backend", ["fake-quant", "circuit"])
def test_sharded_parity_under_drifting_lifecycle(served_model, backend):
    """Drift refreshes (eps_between only) and recalibration both reach the
    workers through ChipStateRef — digests match serial on both backends."""
    model, dataset = served_model
    workload = _workload(dataset, 60)
    ids = [f"d{i:04d}" for i in range(len(workload))]
    trace = ReplayTrace.from_trace(UniformTrace(rate=12.0), len(ids))
    lifecycle_config = LifecycleConfig(
        dt=1.0, probe_every=6.0, accuracy_floor=0.95, probe_subset=16, seed=3
    )
    results = []
    for shards in (2, 0):
        engine = InferenceEngine(
            model,
            _spec(),
            num_chips=4,
            config=ServeConfig(
                max_batch=4, max_wait=2, seed=5, backend=backend, shards=shards
            ),
            fleet_spec=FleetSpec.parse("rram:2,flash:2"),
        )
        lifecycle = ChipLifecycle(engine, dataset, lifecycle_config)
        lifecycle.install()
        outputs = engine.run_trace(workload, trace, ids=ids, lifecycle=lifecycle)
        results.append((engine, lifecycle, outputs))
    (sharded, life_s, out_s), (serial, life_p, out_p) = results
    try:
        assert set(out_s) == set(out_p)
        assert all(np.array_equal(out_s[rid], out_p[rid]) for rid in out_p)
        assert sharded.telemetry.digest() == serial.telemetry.digest()
        assert len(life_s.events) == len(life_p.events)
    finally:
        sharded.close()
        serial.close()


@needs_fork
def test_chaos_run_falls_back_to_serial_path(served_model):
    """An installed fault injector makes the tick unshardable, so a chaos
    run is identical with sharding on or off — schedule, letters, bits."""
    model, dataset = served_model
    workload = _workload(dataset, 40)
    ids = [f"c{i:04d}" for i in range(len(workload))]
    trace = ReplayTrace.from_trace(UniformTrace(rate=10.0), len(ids))
    engines = []
    for shards in (2, 0):
        engine = _engine(model, shards=shards, num_chips=6)
        engine.warm_up()
        FaultInjector(engine, FaultPlan(seed=3)).install()
        engine.run_trace(workload, trace, ids=ids)
        engines.append(engine)
    chaos_sharded, chaos_serial = engines
    try:
        assert chaos_sharded.faults.schedule == chaos_serial.faults.schedule
        assert set(chaos_sharded.dead_letters) == set(chaos_serial.dead_letters)
        _assert_equivalent(chaos_sharded, chaos_serial)
        assert chaos_sharded.telemetry.shard_groups == 0  # structural fallback
    finally:
        for engine in engines:
            engine.close()


@needs_fork
def test_self_tuning_disables_sharding(served_model):
    model, dataset = served_model
    engine = _engine(
        model, shards=2, backend="fake-quant", self_tuning=SelfTuningConfig()
    )
    try:
        _serve_bursty(engine, _workload(dataset, 24))
        assert engine.telemetry.shard_groups == 0
        assert len(engine.completed) == 24
    finally:
        engine.close()


@needs_fork
def test_sharded_run_keeps_coordinator_lazy(served_model):
    """Sharded staging never materializes mappings on the coordinator: the
    workers own all heavy chip state, so a sharded thousand-class fleet
    serves with zero coordinator-resident chips."""
    model, dataset = served_model
    engine = _engine(model, shards=2, num_chips=16, max_resident_chips=4)
    serial = _engine(model, shards=0, num_chips=16, max_resident_chips=4)
    workload = _workload(dataset, 36)
    try:
        _serve_bursty(engine, workload)
        _serve_bursty(serial, workload)
        _assert_equivalent(engine, serial)
        assert not any(chip.realized for chip in engine.fleet)
        assert engine.cache.stats.peak_resident == 0
    finally:
        engine.close()
        serial.close()


@needs_fork
def test_shard_deltas_are_reported_not_digested(served_model):
    model, dataset = served_model
    engine = _serve_bursty(_engine(model, shards=2), _workload(dataset, 36))
    try:
        digest_before = engine.telemetry.digest()
        section = engine.telemetry.report()["sharded"]
        assert section["groups"] == engine.telemetry.shard_groups
        assert section["batches"] == engine.telemetry.shard_batches
        workers = section["workers"]
        assert workers  # at least one shard reported a delta
        assert sum(delta["programs"] for delta in workers.values()) >= 2
        assert sum(delta["rows"] for delta in workers.values()) == 36
        # Worker-side deltas are report-only: merging them must never have
        # moved the digest.
        assert engine.telemetry.digest() == digest_before
    finally:
        engine.close()
