"""Tests for Sigmoid, LeakyReLU and Dropout."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.grad_check import gradcheck
from repro.nn import Dropout, LeakyReLU, Sigmoid


class TestSigmoid:
    def test_range_and_symmetry(self):
        x = Tensor(np.linspace(-10, 10, 101))
        y = Sigmoid()(x).data
        assert np.all((y > 0) & (y < 1))
        assert y[50] == pytest.approx(0.5)
        assert np.allclose(y + y[::-1], 1.0)

    def test_gradient_matches_finite_differences(self):
        rng = np.random.default_rng(0)
        assert gradcheck(
            lambda t: Sigmoid()(t).sum(), [Tensor(rng.normal(size=7), requires_grad=True)]
        )


class TestLeakyReLU:
    def test_values(self):
        layer = LeakyReLU(0.1)
        out = layer(Tensor(np.array([-2.0, 0.0, 3.0]))).data
        assert np.allclose(out, [-0.2, 0.0, 3.0])

    def test_gradient(self):
        x = Tensor(np.array([-1.0, 2.0]), requires_grad=True)
        LeakyReLU(0.25)(x).sum().backward()
        assert np.allclose(x.grad, [0.25, 1.0])

    def test_zero_slope_is_relu(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=20)
        out = LeakyReLU(0.0)(Tensor(data)).data
        assert np.allclose(out, np.maximum(data, 0.0))


class TestDropout:
    def test_eval_mode_identity(self):
        layer = Dropout(0.5)
        layer.eval()
        x = Tensor(np.ones(100))
        assert np.array_equal(layer(x).data, x.data)

    def test_training_zeroes_and_rescales(self):
        layer = Dropout(0.5, seed=0)
        out = layer(Tensor(np.ones(10_000))).data
        kept = out != 0.0
        assert 0.4 < kept.mean() < 0.6
        assert np.allclose(out[kept], 2.0)  # inverted scaling by 1/(1-p)

    def test_expectation_preserved(self):
        layer = Dropout(0.3, seed=1)
        out = layer(Tensor(np.ones(100_000))).data
        assert out.mean() == pytest.approx(1.0, abs=0.02)

    def test_p_zero_identity(self):
        layer = Dropout(0.0)
        x = Tensor(np.ones(8))
        assert layer(x) is x

    def test_gradient_masks_dropped_units(self):
        layer = Dropout(0.5, seed=2)
        x = Tensor(np.ones(1000), requires_grad=True)
        out = layer(x)
        out.sum().backward()
        dropped = out.data == 0.0
        assert np.all(x.grad[dropped] == 0.0)
        assert np.allclose(x.grad[~dropped], 2.0)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
