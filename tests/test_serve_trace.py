"""Tests for arrival traces and trace-driven serving."""

import numpy as np
import pytest

from repro.serve.trace import (
    BurstyTrace,
    PoissonTrace,
    ReplayTrace,
    UniformTrace,
    make_trace,
)


class TestUniform:
    def test_constant_rate(self):
        assert UniformTrace(rate=2.0).schedule(6) == [0, 0, 1, 1, 2, 2]

    def test_fractional_rate_spreads_arrivals(self):
        ticks = UniformTrace(rate=0.5).schedule(3)
        assert ticks == [0, 2, 4]

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            UniformTrace(rate=0.0)


class TestPoisson:
    def test_schedule_is_sorted_and_nonnegative(self):
        ticks = PoissonTrace(rate=4.0, seed=1).schedule(200)
        assert ticks == sorted(ticks)
        assert ticks[0] >= 0

    def test_deterministic_from_seed(self):
        assert PoissonTrace(rate=4.0, seed=7).schedule(50) == \
            PoissonTrace(rate=4.0, seed=7).schedule(50)

    def test_different_seeds_differ(self):
        assert PoissonTrace(rate=4.0, seed=1).schedule(50) != \
            PoissonTrace(rate=4.0, seed=2).schedule(50)

    def test_mean_rate_roughly_matches(self):
        ticks = PoissonTrace(rate=5.0, seed=0).schedule(1000)
        observed = len(ticks) / (ticks[-1] + 1)
        assert 3.5 < observed < 7.0


class TestBursty:
    def test_arrivals_cluster_in_burst_phase(self):
        trace = BurstyTrace(rate=0.0, burst_rate=16.0, period=8, duty=0.25, seed=0)
        ticks = trace.schedule(100)
        # duty=0.25 of period 8 => only ticks 0,1 mod 8 are hot; quiet rate 0
        # means every arrival lands in a burst phase.
        assert all(t % 8 < 2 for t in ticks)

    def test_deterministic_from_seed(self):
        kwargs = dict(rate=2.0, burst_rate=24.0, period=16, duty=0.25, seed=3)
        assert BurstyTrace(**kwargs).schedule(80) == BurstyTrace(**kwargs).schedule(80)

    def test_schedule_non_decreasing(self):
        ticks = BurstyTrace(seed=5).schedule(64)
        assert ticks == sorted(ticks)


class TestReplay:
    def test_replays_exact_ticks(self):
        assert ReplayTrace((0, 0, 3, 7)).schedule(3) == [0, 0, 3]

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError):
            ReplayTrace((3, 1))

    def test_rejects_overflow(self):
        with pytest.raises(ValueError, match="arrivals"):
            ReplayTrace((0, 1)).schedule(3)


class TestRegistry:
    def test_make_trace_by_name(self):
        assert isinstance(make_trace("poisson", rate=2.0, seed=1), PoissonTrace)
        assert isinstance(make_trace("uniform", rate=2.0), UniformTrace)
        assert isinstance(make_trace("bursty"), BurstyTrace)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            make_trace("diurnal")


class TestRunTrace:
    @pytest.fixture(scope="class")
    def engine_factory(self):
        from repro.datasets.loaders import batch_iterator
        from repro.datasets.synthetic import make_pattern_dataset
        from repro.models import build_model
        from repro.nn import init
        from repro.quant.calibration import calibrate_model
        from repro.quant.ptq import convert_to_quantized
        from repro.quant.qconfig import QConfig
        from repro.serve import InferenceEngine, ServeConfig
        from repro.variability.models import WeightProportionalVariance
        from repro.variability.sampler import VariabilitySpec

        init.seed(0)
        dataset = make_pattern_dataset(4, 10, (1, 28, 28), seed=3, max_shift=1)
        model = build_model("lenet5-mini", num_classes=4, in_channels=1)
        convert_to_quantized(model, QConfig.from_notation("A4W2"))
        calibrate_model(model, batch_iterator(dataset, 16, shuffle=False), max_batches=2)
        model.eval()
        spec = VariabilitySpec.mixed(0.2, WeightProportionalVariance())

        def factory(num_chips=2, **config):
            config.setdefault("max_batch", 4)
            config.setdefault("max_wait", 2)
            return InferenceEngine(
                model, spec, num_chips=num_chips, config=ServeConfig(**config)
            ), dataset

        return factory

    def test_all_requests_served(self, engine_factory):
        engine, dataset = engine_factory()
        ids = [f"r{i:03d}" for i in range(20)]
        inputs = np.concatenate([dataset.images] * 2)[:20]
        results = engine.run_trace(inputs, UniformTrace(rate=3.0), ids=ids)
        assert sorted(results) == ids
        assert engine.telemetry.requests == 20

    def test_trace_matches_closed_loop_on_single_chip(self, engine_factory):
        """On one chip, arrival timing changes batching but never outputs.

        (With several chips, timing moves batch boundaries and therefore
        *which chip* serves a request — a routing effect, not a numerics
        one.  A single-chip fleet isolates the engine's actual guarantee:
        per-row results are invariant to batch composition.)
        """
        engine_a, dataset = engine_factory(num_chips=1, seed=4)
        engine_b, _ = engine_factory(num_chips=1, seed=4)
        ids = [f"r{i:03d}" for i in range(16)]
        inputs = np.concatenate([dataset.images] * 2)[:16]
        closed = engine_a.run(inputs, ids=ids)
        traced = engine_b.run_trace(inputs, PoissonTrace(rate=2.0, seed=1), ids=ids)
        for rid in ids:
            assert np.array_equal(closed[rid], traced[rid])

    def test_traced_run_reproducible(self, engine_factory):
        """Same engine seed + same trace => identical outputs, twice."""
        ids = [f"r{i:03d}" for i in range(16)]
        trace = PoissonTrace(rate=2.0, seed=6)
        runs = []
        for _ in range(2):
            engine, dataset = engine_factory(seed=4)
            inputs = np.concatenate([dataset.images] * 2)[:16]
            runs.append(engine.run_trace(inputs, trace, ids=ids))
        for rid in ids:
            assert np.array_equal(runs[0][rid], runs[1][rid])

    def test_bursty_trace_builds_queue_depth(self, engine_factory):
        engine, dataset = engine_factory(max_batch=2, max_wait=4)
        ids = [f"r{i:03d}" for i in range(24)]
        inputs = np.concatenate([dataset.images] * 3)[:24]
        trace = BurstyTrace(rate=0.0, burst_rate=12.0, period=12, duty=0.25, seed=2)
        engine.run_trace(inputs, trace, ids=ids)
        assert engine.telemetry.queue_ticks.max >= 1

    def test_id_validation(self, engine_factory):
        engine, dataset = engine_factory()
        with pytest.raises(ValueError, match="mismatch"):
            engine.run_trace(dataset.images[:3], UniformTrace(), ids=["a", "b"])
        with pytest.raises(ValueError, match="unique"):
            engine.run_trace(dataset.images[:2], UniformTrace(), ids=["a", "a"])
