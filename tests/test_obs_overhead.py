"""Observability-in-the-engine tests: overhead bound, determinism, JSON.

The contract this file enforces:

* tracing never changes serving results — only what gets recorded;
* the disabled (``NullRecorder``) path is cheap: the obs calls a request
  triggers cost < 5% of that request's measured service time;
* every stage of a request's life shows up as a span when tracing is on;
* ``ServeTelemetry.report()`` is pure-JSON (no numpy scalars leak), and a
  ``FakeClock`` makes the whole latency path exactly reproducible.
"""

import json
import time

import numpy as np
import pytest

from repro.datasets.loaders import batch_iterator
from repro.datasets.synthetic import make_pattern_dataset
from repro.models import build_model
from repro.nn import init
from repro.obs import FakeClock, NullRecorder, Observability, SpanRecorder
from repro.quant.calibration import calibrate_model
from repro.quant.ptq import convert_to_quantized
from repro.quant.qconfig import QConfig
from repro.serve import InferenceEngine, ServeConfig
from repro.variability.models import WeightProportionalVariance
from repro.variability.sampler import VariabilitySpec


@pytest.fixture(scope="module")
def served_model():
    init.seed(0)
    dataset = make_pattern_dataset(5, 16, (1, 28, 28), seed=7, max_shift=1, noise=0.2)
    model = build_model("lenet5-mini", num_classes=5, in_channels=1)
    convert_to_quantized(model, QConfig.from_notation("A4W2"))
    calibrate_model(model, batch_iterator(dataset, 16, shuffle=False), max_batches=3)
    model.eval()
    return model, dataset


def _engine(model, obs=None, **config):
    config.setdefault("max_batch", 8)
    config.setdefault("max_wait", 2)
    config.setdefault("seed", 0)
    spec = VariabilitySpec.mixed(0.2, WeightProportionalVariance())
    return InferenceEngine(
        model, spec, num_chips=2, config=ServeConfig(**config), obs=obs
    )


def _workload(dataset, requests=32):
    reps = 1 + (requests - 1) // len(dataset)
    workload = np.concatenate([dataset.images] * reps)[:requests]
    ids = [f"r{i:04d}" for i in range(requests)]
    return workload, ids


class TestTracingNeverChangesResults:
    def test_outputs_identical_with_tracing_on_and_off(self, served_model):
        model, dataset = served_model
        workload, ids = _workload(dataset)
        traced = _engine(model, tracing=True).run(workload, ids=ids)
        untraced = _engine(model, tracing=False).run(workload, ids=ids)
        assert all(np.array_equal(traced[rid], untraced[rid]) for rid in ids)

    def test_config_flag_selects_recorder(self, served_model):
        model, _ = served_model
        assert isinstance(_engine(model, tracing=True).obs.recorder, SpanRecorder)
        assert isinstance(_engine(model, tracing=False).obs.recorder, NullRecorder)


class TestDisabledPathOverhead:
    def test_null_obs_cost_under_5pct_of_service_time(self, served_model):
        """The obs calls one request triggers (events + no-op spans) must
        cost < 5% of that request's measured service time."""
        model, dataset = served_model
        workload, ids = _workload(dataset, requests=64)

        obs = Observability.disabled()
        # The 12-ops-per-request model below counts the per-chip path's
        # spans (per-batch dispatch + chip.forward); fused dispatch
        # triggers strictly fewer obs calls, so bound the worst case.
        fused = False
        calls = 20000
        started = time.perf_counter()
        for _ in range(calls):
            with obs.span("stage", chip="chip00", tick=0):
                pass
            obs.event("enqueue", request="r", tick=0)
        per_op_seconds = (time.perf_counter() - started) / (2 * calls)

        engine = _engine(model, tracing=False, fused=fused)
        engine.warm_up()
        started = time.perf_counter()
        engine.run(workload, ids=ids)
        per_request_seconds = (time.perf_counter() - started) / len(ids)

        # Per request: one enqueue event, plus a per-batch share of the
        # batch event and the dispatch/schedule/mapping/forward spans.
        # 12 is a deliberate overestimate of that amortized count.
        obs_ops_per_request = 12
        overhead = obs_ops_per_request * per_op_seconds
        assert overhead < 0.05 * per_request_seconds, (
            f"null-obs overhead {1e6 * overhead:.2f} us/request exceeds 5% of "
            f"{1e6 * per_request_seconds:.2f} us/request service time"
        )

    def test_disabled_tracing_records_nothing(self, served_model):
        model, dataset = served_model
        workload, ids = _workload(dataset)
        engine = _engine(model, tracing=False)
        engine.run(workload, ids=ids)
        assert len(engine.obs.recorder) == 0
        # Metrics still flow when tracing is off.
        assert engine.telemetry.requests == len(ids)
        assert engine.telemetry.report()["latency"]["count"] == len(ids)


class TestSpanCoverage:
    def test_every_stage_appears_in_the_trace(self, served_model):
        """Per-chip dispatch (``fused=False``) emits the full span chain."""
        model, dataset = served_model
        workload, ids = _workload(dataset)
        engine = _engine(model, tracing=True, fused=False)
        engine.run(workload, ids=ids)
        recorder = engine.obs.recorder
        for stage in (
            "enqueue", "batch", "dispatch", "schedule", "mapping",
            "program", "chip.forward",
        ):
            assert recorder.named(stage), f"no {stage!r} spans recorded"
        assert len(recorder.named("enqueue")) == len(ids)
        dispatch = recorder.named("dispatch")[0]
        assert dispatch.attrs["chip"].startswith("chip")
        assert dispatch.attrs["energy_uj"] > 0.0
        forward = recorder.named("chip.forward")[0]
        assert forward.attrs["energy_uj_per_layer"]

    def test_fused_stages_appear_in_the_trace(self, served_model):
        """Fused dispatch (the default) swaps per-batch ``dispatch`` spans
        for one ``dispatch.fused`` group span (plus ``dispatch.fuse`` for
        the stack build); the per-request stages are unchanged."""
        model, dataset = served_model
        workload, ids = _workload(dataset)
        engine = _engine(model, tracing=True)
        # The stack builds from cache-resident chips only, so a cold
        # fleet's first tick dispatches per-chip; warm up as a real
        # deployment would.
        engine.warm_up()
        engine.run(workload, ids=ids)
        recorder = engine.obs.recorder
        for stage in (
            "enqueue", "batch", "schedule", "mapping", "program",
            "dispatch.fuse", "dispatch.fused",
        ):
            assert recorder.named(stage), f"no {stage!r} spans recorded"
        group = recorder.named("dispatch.fused")[0]
        assert group.attrs["batches"] > 1
        assert engine.telemetry.fused_groups == len(recorder.named("dispatch.fused"))

    def test_breakdown_covers_dispatch_time(self, served_model):
        model, dataset = served_model
        workload, ids = _workload(dataset)
        engine = _engine(model, tracing=True, fused=False)
        engine.run(workload, ids=ids)
        breakdown = engine.obs.recorder.breakdown()
        # The dispatch span wraps schedule + mapping + forward.
        inner = sum(
            breakdown[stage]["total_s"]
            for stage in ("schedule", "mapping", "chip.forward")
            if stage in breakdown
        )
        assert breakdown["dispatch"]["total_s"] >= inner


class TestTelemetryJson:
    def test_report_json_round_trips_without_numpy(self, served_model):
        model, dataset = served_model
        workload, ids = _workload(dataset)
        engine = _engine(model, tracing=True)
        engine.probe_fleet(dataset)
        engine.run(workload, ids=ids)
        report = engine.telemetry.report()
        restored = json.loads(json.dumps(report))  # raises on numpy leakage
        assert restored["requests"] == len(ids)
        assert restored["latency"]["p99"] >= restored["latency"]["p50"] > 0.0
        assert restored["cache"]["hit_rate"] > 0.0
        assert "p95" in restored["queue_ticks"]

    def test_format_mentions_quantiles_and_cache(self, served_model):
        model, dataset = served_model
        workload, ids = _workload(dataset)
        engine = _engine(model)
        engine.run(workload, ids=ids)
        text = engine.telemetry.format()
        assert "p50" in text and "p95" in text and "p99" in text
        assert "request latency ms" in text
        assert "mapping cache" in text


class TestFakeClockDeterminism:
    def test_latency_report_is_exactly_reproducible(self, served_model):
        """Two runs through fresh engines driven by identical FakeClocks
        produce bit-identical latency telemetry — no wall-clock races."""
        model, dataset = served_model
        workload, ids = _workload(dataset)

        def run():
            obs = Observability(tracing=True, clock=FakeClock(step=1e-3))
            engine = _engine(model, obs=obs)
            engine.run(workload, ids=ids)
            return engine.telemetry.report()

        first, second = run(), run()
        assert first["latency"] == second["latency"]
        assert first["service_seconds_per_batch"] == second["service_seconds_per_batch"]
        assert first["latency"]["p99"] > 0.0

    def test_fake_clock_drives_span_durations(self, served_model):
        model, dataset = served_model
        workload, ids = _workload(dataset)
        obs = Observability(tracing=True, clock=FakeClock(step=1e-3))
        engine = _engine(model, obs=obs)
        engine.run(workload, ids=ids)
        for span in engine.obs.recorder.named("chip.forward"):
            # Every duration is an exact multiple of the virtual step.
            steps = span.duration / 1e-3
            assert steps == pytest.approx(round(steps))
            assert span.duration > 0.0
