"""Tests for drift-aged fleet serving: lifecycle, recalibration, determinism."""

import numpy as np
import pytest

from repro.datasets.loaders import batch_iterator
from repro.datasets.synthetic import make_pattern_dataset
from repro.models import build_model
from repro.nn import init
from repro.pim.drift import DriftingChip
from repro.quant.calibration import calibrate_model
from repro.quant.ptq import convert_to_quantized
from repro.quant.qconfig import QConfig
from repro.serve import (
    ChipLifecycle,
    FleetSpec,
    InferenceEngine,
    LifecycleConfig,
    ServeConfig,
    UniformTrace,
)
from repro.variability.models import WeightProportionalVariance
from repro.variability.sampler import VariabilitySpec


@pytest.fixture(scope="module")
def served_model():
    init.seed(0)
    dataset = make_pattern_dataset(5, 16, (1, 28, 28), seed=7, max_shift=1, noise=0.2)
    model = build_model("lenet5-mini", num_classes=5, in_channels=1)
    convert_to_quantized(model, QConfig.from_notation("A4W2"))
    calibrate_model(model, batch_iterator(dataset, 16, shuffle=False), max_batches=3)
    model.eval()
    return model, dataset


def _spec(sigma=0.2):
    return VariabilitySpec.mixed(sigma, WeightProportionalVariance())


def _engine(model, num_chips=2, fleet_spec=None, **config):
    config.setdefault("max_batch", 4)
    config.setdefault("max_wait", 1)
    return InferenceEngine(
        model, _spec(), num_chips=num_chips, config=ServeConfig(**config),
        fleet_spec=fleet_spec,
    )


def _lifecycle(engine, dataset, **overrides):
    overrides.setdefault("nu", 0.4)
    overrides.setdefault("probe_every", 4.0)
    overrides.setdefault("probe_subset", 40)
    overrides.setdefault("accuracy_floor", 0.9)
    lifecycle = ChipLifecycle(engine, dataset, LifecycleConfig(**overrides))
    lifecycle.install()
    return lifecycle


class TestInstall:
    def test_wraps_fleet_in_drifting_chips(self, served_model):
        model, dataset = served_model
        engine = _engine(model)
        _lifecycle(engine, dataset)
        assert all(isinstance(chip.variation, DriftingChip) for chip in engine.fleet)
        assert all(chip.age == 0.0 for chip in engine.fleet)

    def test_records_baseline_quality(self, served_model):
        model, dataset = served_model
        engine = _engine(model)
        lifecycle = _lifecycle(engine, dataset)
        assert set(lifecycle.baseline) == {chip.chip_id for chip in engine.fleet}
        for chip in engine.fleet:
            assert chip.quality == lifecycle.baseline[chip.chip_id]

    def test_double_install_rejected(self, served_model):
        model, dataset = served_model
        engine = _engine(model)
        lifecycle = _lifecycle(engine, dataset)
        with pytest.raises(RuntimeError, match="installed"):
            lifecycle.install()

    def test_advance_before_install_rejected(self, served_model):
        model, dataset = served_model
        lifecycle = ChipLifecycle(_engine(model), dataset, LifecycleConfig())
        with pytest.raises(RuntimeError, match="install"):
            lifecycle.advance()


class TestDrift:
    def test_advance_moves_virtual_time_and_eps(self, served_model):
        model, dataset = served_model
        engine = _engine(model)
        lifecycle = _lifecycle(engine, dataset, probe_every=100.0)
        eps_before = [chip.variation.eps_between for chip in engine.fleet]
        lifecycle.advance(2.0)
        assert lifecycle.time == 2.0
        for chip, before in zip(engine.fleet, eps_before):
            assert chip.variation.time == 2.0
            assert chip.age == 2.0
            assert chip.variation.eps_between != before  # aging moved eps

    def test_drift_refreshes_resident_mapping(self, served_model):
        """A cached mapping must track the physical chip's drifted state."""
        model, dataset = served_model
        engine = _engine(model, max_batch=1, max_wait=0)
        lifecycle = _lifecycle(engine, dataset, probe_every=1000.0, nu=0.5)
        sample = dataset.images[:1]
        fresh = engine.run(sample, ids=["t0"])["t0"]
        hits_before = engine.cache.stats.hits
        misses_before = engine.cache.stats.misses
        lifecycle.advance(20.0)
        aged = engine.run(sample, ids=["t1"])["t1"]
        # chip 0 served t0; round-robin means t1 went to chip 1 — force both
        # onto chip 0 by comparing through probe instead: drift must change
        # the resident mapping's outputs without any cache traffic beyond
        # the serving lookups themselves.
        assert engine.cache.stats.misses == misses_before  # no reprogramming
        assert engine.cache.stats.hits > hits_before
        del fresh, aged

    def test_drift_degrades_quality_and_probe_records_series(self, served_model):
        model, dataset = served_model
        engine = _engine(model)
        lifecycle = _lifecycle(
            engine, dataset, nu=0.6, probe_every=5.0, accuracy_floor=0.01,
        )
        for _ in range(5):
            lifecycle.advance(1.0)
        chip_id = engine.fleet[0].chip_id
        series = engine.telemetry.quality_timeline(chip_id)
        assert len(series) == 2  # t=0 baseline + t=5 probe
        assert series[1][0] == 5.0
        # floor=0.01 of baseline: never recalibrates, so decay is visible
        assert not lifecycle.events


class TestRecalibration:
    def test_quality_floor_triggers_recalibration(self, served_model):
        model, dataset = served_model
        engine = _engine(model)
        lifecycle = _lifecycle(
            engine, dataset, nu=0.8, probe_every=4.0, accuracy_floor=0.999,
        )
        for _ in range(8):
            lifecycle.advance(1.0)
        assert lifecycle.events, "aggressive drift + tight floor must recalibrate"
        event = lifecycle.events[0]
        assert event.quality_after >= event.quality_before
        assert event.invalidated >= 0

    def test_recalibration_resets_age_and_restores_eps(self, served_model):
        model, dataset = served_model
        engine = _engine(model)
        lifecycle = _lifecycle(engine, dataset, probe_every=1000.0)
        chip = engine.fleet[0]
        fabrication_eps = chip.variation.fabrication_eps
        lifecycle.advance(10.0)
        assert chip.variation.eps_between != fabrication_eps
        lifecycle.recalibrate(chip)
        assert chip.age == 0.0
        assert chip.recalibrations == 1
        assert chip.variation.eps_between == fabrication_eps
        assert chip.variation.time == 0.0

    def test_recalibration_invalidates_only_that_chip(self, served_model):
        model, dataset = served_model
        engine = _engine(model, num_chips=3)
        lifecycle = _lifecycle(engine, dataset, probe_every=1000.0)
        engine.warm_up()
        assert len(engine.cache) == 3
        lifecycle.recalibrate(engine.fleet[1])
        # the recalibration probe reprograms chip 1; chips 0/2 stayed resident
        assert engine.cache.stats.invalidations == 1
        resident = {key[-1] for key in engine.cache.keys}
        assert engine.fleet[0].chip_id in resident
        assert engine.fleet[2].chip_id in resident

    def test_recalibration_counts_in_telemetry(self, served_model):
        model, dataset = served_model
        engine = _engine(model)
        lifecycle = _lifecycle(engine, dataset, probe_every=1000.0)
        lifecycle.advance(6.0)
        lifecycle.recalibrate(engine.fleet[0])
        lifecycle.recalibrate(engine.fleet[0])
        report = engine.telemetry.report()
        assert report["recalibrations"][engine.fleet[0].chip_id] == 2
        assert len(report["recalibration_events"]) == 2
        assert engine.fleet[0].chip_id in report["quality_series"]

    def test_fresh_drift_path_after_recalibration(self, served_model):
        """The second program cycle must not replay the first drift path."""
        model, dataset = served_model
        engine = _engine(model)
        lifecycle = _lifecycle(
            engine, dataset, drift="temperature", sigma=0.2, probe_every=1000.0,
        )
        chip = engine.fleet[0]
        lifecycle.advance(5.0)
        first_path_eps = chip.variation.eps_between
        lifecycle.recalibrate(chip)
        lifecycle.advance(5.0)
        assert chip.variation.eps_between != first_path_eps


class TestDeterminism:
    def _run(self, served_model, seed=11):
        model, dataset = served_model
        engine = _engine(
            model,
            fleet_spec=FleetSpec.parse("rram:2,flash:1"),
            policy="drift-aware",
            seed=seed,
        )
        lifecycle = _lifecycle(
            engine, dataset, nu=0.6, probe_every=3.0, accuracy_floor=0.95, seed=seed,
        )
        ids = [f"r{i:04d}" for i in range(40)]
        inputs = np.concatenate([dataset.images] * 1)[:40]
        outputs = engine.run_trace(
            inputs, UniformTrace(rate=2.0), ids=ids, lifecycle=lifecycle
        )
        return outputs, lifecycle.recalibration_schedule(), ids

    def test_same_seed_same_trace_identical_run(self, served_model):
        """Same seed + same trace => identical recalibration schedule + outputs."""
        first, schedule_a, ids = self._run(served_model)
        second, schedule_b, _ = self._run(served_model)
        assert schedule_a == schedule_b
        assert all(np.array_equal(first[rid], second[rid]) for rid in ids)

    def test_different_seed_changes_fleet(self, served_model):
        first, _, ids = self._run(served_model, seed=11)
        second, _, _ = self._run(served_model, seed=12)
        assert any(not np.array_equal(first[rid], second[rid]) for rid in ids)


class TestConfigValidation:
    def test_bad_drift_kind_rejected(self):
        with pytest.raises(ValueError, match="drift"):
            LifecycleConfig(drift="cosmic-rays")

    def test_bad_floor_rejected(self):
        with pytest.raises(ValueError):
            LifecycleConfig(accuracy_floor=0.0)
        with pytest.raises(ValueError):
            LifecycleConfig(accuracy_floor=1.5)

    def test_bad_cadence_rejected(self):
        with pytest.raises(ValueError):
            LifecycleConfig(dt=0.0)
        with pytest.raises(ValueError):
            LifecycleConfig(probe_every=-1.0)
