"""End-to-end tests pinning the paper's qualitative claims.

These are the "money" tests: each reproduces one headline phenomenon from
the paper on a scaled-down workload.  They are slower than unit tests
(seconds each) but fast enough for the default suite.
"""

import numpy as np
import pytest

from repro.datasets import batch_source, synthetic_mnist
from repro.eval import evaluate_clean, evaluate_robustness
from repro.models import build_model
from repro.nn import init
from repro.quant import QConfig
from repro.selftuning import SelfTuningConfig, attach_self_tuning, detach_self_tuning
from repro.training.baselines import train_qat, train_qavat
from repro.variability import (
    LayerFixedVariance,
    VariabilitySpec,
    WeightProportionalVariance,
)

QC = QConfig.from_notation("A4W2")
SIGMA = 0.5


@pytest.fixture(scope="module")
def data():
    return synthetic_mnist(train_per_class=32, test_per_class=8)


def fresh_model():
    init.seed(1)
    return build_model("lenet5-mini")


@pytest.fixture(scope="module")
def qavat_model(data):
    """QAVAT trained under within-chip layer-fixed variation (sigma 0.5)."""
    train, _ = data
    spec = VariabilitySpec.within_only(SIGMA, LayerFixedVariance())
    model = fresh_model()
    train_qavat(
        model,
        batch_source(train, 32, seed=0),
        QC,
        spec,
        epochs=12,
        lr=0.02,
        float_pretrain_epochs=6,
        n_variation_samples=4,
    )
    return model


@pytest.fixture(scope="module")
def qat_model(data):
    """Variability-oblivious QAT with the same budget."""
    train, _ = data
    model = fresh_model()
    train_qat(
        model,
        batch_source(train, 32, seed=0),
        QC,
        epochs=12,
        lr=0.02,
        float_pretrain_epochs=6,
    )
    return model


class TestScenario1WithinChip:
    """Paper Sec. IV-A: QAVAT beats QAT under within-chip variation."""

    def test_qat_learns_the_task(self, qat_model, data):
        _, test = data
        assert evaluate_clean(qat_model, test) > 0.85

    def test_qavat_preserves_clean_accuracy(self, qavat_model, data):
        _, test = data
        assert evaluate_clean(qavat_model, test) > 0.85

    def test_qavat_more_robust_than_qat_at_high_sigma(self, qavat_model, qat_model, data):
        _, test = data
        spec = VariabilitySpec.within_only(SIGMA, LayerFixedVariance())
        qavat = evaluate_robustness(qavat_model, test, spec, num_chips=20, seed=7).mean
        qat = evaluate_robustness(qat_model, test, spec, num_chips=20, seed=7).mean
        assert qavat > qat + 0.05

    def test_qat_degrades_as_sigma_grows(self, qat_model, data):
        _, test = data
        accs = []
        for sigma in (0.1, 0.3, 0.5):
            spec = VariabilitySpec.within_only(sigma, LayerFixedVariance())
            accs.append(evaluate_robustness(qat_model, test, spec, num_chips=12, seed=3).mean)
        assert accs[0] > accs[2]


class TestScenario2MixedVariation:
    """Paper Sec. IV-B: training alone fails under between-chip variation;
    self-tuning recovers; the wrong self-tuning is destructive."""

    @pytest.fixture(scope="class")
    def mixed_setup(self, data):
        train, test = data
        sigma_each = SIGMA / np.sqrt(2.0)  # sigma_tot = 0.5
        variance_model = LayerFixedVariance()
        train_spec = VariabilitySpec.within_only(sigma_each, variance_model)
        eval_spec = VariabilitySpec.mixed(sigma_each, variance_model)
        model = fresh_model()
        train_qavat(
            model,
            batch_source(train, 32, seed=0),
            QC,
            train_spec,
            epochs=12,
            lr=0.02,
            float_pretrain_epochs=6,
            n_variation_samples=4,
        )
        return model, test, eval_spec

    def test_mixed_variation_defeats_training_alone(self, mixed_setup):
        model, test, eval_spec = mixed_setup
        clean = evaluate_clean(model, test)
        mixed = evaluate_robustness(model, test, eval_spec, num_chips=20, seed=11).mean
        assert clean - mixed > 0.25  # large loss, as in Fig. 5

    def test_self_tuning_recovers_accuracy(self, mixed_setup):
        model, test, eval_spec = mixed_setup
        base = evaluate_robustness(model, test, eval_spec, num_chips=20, seed=11).mean
        attach_self_tuning(model, SelfTuningConfig(kind="layer", gtm_cells=1000, ltm_columns=1))
        tuned = evaluate_robustness(model, test, eval_spec, num_chips=20, seed=11).mean
        detach_self_tuning(model)
        clean = evaluate_clean(model, test)
        assert tuned > base + 0.2
        assert clean - tuned < 0.15  # loss reduced to near the clean level

    def test_wrong_self_tuning_is_destructive(self, mixed_setup):
        model, test, eval_spec = mixed_setup
        attach_self_tuning(model, SelfTuningConfig(kind="layer", gtm_cells=1000))
        right = evaluate_robustness(model, test, eval_spec, num_chips=15, seed=11).mean
        attach_self_tuning(model, SelfTuningConfig(kind="global", gtm_cells=1000))
        wrong = evaluate_robustness(model, test, eval_spec, num_chips=15, seed=11).mean
        detach_self_tuning(model)
        assert wrong < right - 0.15


class TestMultiSampling:
    """Paper Fig. 7a: more variation samples per step improve the result."""

    def test_multi_sampling_beats_single_at_fixed_epochs(self, data):
        train, test = data
        spec = VariabilitySpec.within_only(SIGMA, LayerFixedVariance())
        results = {}
        for n in (1, 4):
            model = fresh_model()
            train_qavat(
                model,
                batch_source(train, 32, seed=0),
                QC,
                spec,
                epochs=10,
                lr=0.02,
                float_pretrain_epochs=6,
                n_variation_samples=n,
            )
            results[n] = evaluate_robustness(model, test, spec, num_chips=15, seed=5).mean
        assert results[4] > results[1]


class TestGtmSizeTradeoff:
    """Paper Fig. 7b: more GTM cells improve self-tuned accuracy."""

    def test_more_cells_help(self, qavat_model, data):
        _, test = data
        sigma_each = SIGMA / np.sqrt(2.0)
        eval_spec = VariabilitySpec.mixed(sigma_each, LayerFixedVariance())
        means = {}
        for cells in (10, 100_000):
            attach_self_tuning(
                qavat_model, SelfTuningConfig(kind="layer", gtm_cells=cells, ltm_columns=16)
            )
            means[cells] = evaluate_robustness(
                qavat_model, test, eval_spec, num_chips=15, seed=13
            ).mean
        detach_self_tuning(qavat_model)
        assert means[100_000] >= means[10]
