"""Tests for IR-drop and stuck-at-fault models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pim.nonidealities import (
    IRDropModel,
    StuckAtFaultModel,
    expected_fault_error_power,
)


class TestIRDrop:
    def test_zero_resistance_is_identity(self):
        model = IRDropModel(wire_resistance=0.0)
        conductances = np.random.default_rng(0).random((8, 8))
        assert np.array_equal(model.apply(conductances), conductances)
        assert np.all(model.attenuation_map(8, 8) == 1.0)

    def test_attenuation_in_unit_interval(self):
        attenuation = IRDropModel(wire_resistance=0.01).attenuation_map(64, 64)
        assert attenuation.max() <= 1.0
        assert attenuation.min() > 0.0

    def test_near_cell_unattenuated(self):
        attenuation = IRDropModel(wire_resistance=0.05).attenuation_map(16, 16)
        assert attenuation[0, 0] == 1.0

    def test_monotone_along_rows_and_cols(self):
        attenuation = IRDropModel(wire_resistance=0.02).attenuation_map(32, 32)
        assert np.all(np.diff(attenuation, axis=0) < 0)
        assert np.all(np.diff(attenuation, axis=1) < 0)

    def test_worst_case_is_far_corner(self):
        model = IRDropModel(wire_resistance=0.01)
        attenuation = model.attenuation_map(32, 32)
        assert model.worst_case_attenuation(32, 32) == pytest.approx(
            attenuation.min()
        )

    def test_larger_array_suffers_more(self):
        model = IRDropModel(wire_resistance=0.005)
        assert model.worst_case_attenuation(512, 512) < model.worst_case_attenuation(64, 64)

    def test_rejects_negative_resistance(self):
        with pytest.raises(ValueError):
            IRDropModel(wire_resistance=-0.1)


class TestStuckAtFaults:
    def test_zero_rate_is_identity(self):
        model = StuckAtFaultModel()
        g = np.random.default_rng(0).random((10, 10))
        fault_map = model.sample_map(g.shape, np.random.default_rng(1))
        assert np.array_equal(model.apply(g, fault_map), g)

    def test_fault_rates_respected(self):
        model = StuckAtFaultModel(p_stuck_off=0.1, p_stuck_on=0.05)
        rng = np.random.default_rng(2)
        off, on = model.sample_map((1000, 100), rng)
        assert off.mean() == pytest.approx(0.1, abs=0.01)
        assert on.mean() == pytest.approx(0.05, abs=0.01)
        assert not np.any(off & on)  # disjoint

    def test_apply_overrides_values(self):
        model = StuckAtFaultModel(p_stuck_off=0.5, p_stuck_on=0.3, g_off=0.0, g_on=2.0)
        g = np.full((50, 50), 0.7)
        off, on = model.sample_map(g.shape, np.random.default_rng(3))
        faulted = model.apply(g, (off, on))
        assert np.all(faulted[off] == 0.0)
        assert np.all(faulted[on] == 2.0)
        untouched = ~(off | on)
        assert np.all(faulted[untouched] == 0.7)

    def test_apply_does_not_mutate_input(self):
        model = StuckAtFaultModel(p_stuck_off=1.0)
        g = np.full((4, 4), 0.5)
        fault_map = model.sample_map(g.shape, np.random.default_rng(4))
        model.apply(g, fault_map)
        assert np.all(g == 0.5)

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            StuckAtFaultModel(p_stuck_off=-0.1)
        with pytest.raises(ValueError):
            StuckAtFaultModel(p_stuck_off=0.7, p_stuck_on=0.4)

    def test_expected_error_power(self):
        model = StuckAtFaultModel(p_stuck_off=0.1, g_off=0.0)
        g = np.full(1000, 0.5)
        # E[err^2] = p_off * (0.5)^2
        assert expected_fault_error_power(model, g) == pytest.approx(0.1 * 0.25)

    def test_error_power_matches_monte_carlo(self):
        model = StuckAtFaultModel(p_stuck_off=0.05, p_stuck_on=0.02, g_on=1.5)
        g = np.random.default_rng(5).random(200_000)
        rng = np.random.default_rng(6)
        faulted = model.apply(g, model.sample_map(g.shape, rng))
        empirical = float(((faulted - g) ** 2).mean())
        assert empirical == pytest.approx(expected_fault_error_power(model, g), rel=0.05)


@given(
    r=st.floats(min_value=0.0, max_value=0.1),
    rows=st.integers(min_value=1, max_value=64),
    cols=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=50, deadline=None)
def test_attenuation_bounds_property(r, rows, cols):
    attenuation = IRDropModel(wire_resistance=r).attenuation_map(rows, cols)
    assert attenuation.shape == (rows, cols)
    assert np.all(attenuation > 0.0)
    assert np.all(attenuation <= 1.0)
    assert attenuation[0, 0] == 1.0
