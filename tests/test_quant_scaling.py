"""MMSE and min-max scale estimation."""

import numpy as np
import pytest

from repro.quant import QuantSpec, minmax_scale, mmse_scale
from repro.quant.scaling import mmse_scale_grid, quantization_mse


class TestMinMax:
    def test_maps_peak_to_top_level(self, rng):
        spec = QuantSpec(4)
        x = rng.normal(size=100)
        scale = minmax_scale(x, spec)
        assert scale == pytest.approx(np.abs(x).max() / 7)

    def test_zero_tensor(self):
        assert minmax_scale(np.zeros(10), QuantSpec(4)) == 1.0


class TestMmse:
    @pytest.mark.parametrize("bits", [2, 3, 4, 8])
    def test_beats_or_ties_minmax(self, rng, bits):
        spec = QuantSpec(bits)
        x = rng.normal(size=500)
        scale_mmse = mmse_scale(x, spec)
        scale_minmax = minmax_scale(x, spec)
        assert quantization_mse(x, scale_mmse, spec) <= quantization_mse(
            x, scale_minmax, spec
        ) + 1e-12

    @pytest.mark.parametrize("bits", [2, 4])
    def test_close_to_grid_search(self, rng, bits):
        spec = QuantSpec(bits)
        x = rng.normal(size=400)
        mse_alt = quantization_mse(x, mmse_scale(x, spec), spec)
        mse_grid = quantization_mse(x, mmse_scale_grid(x, spec, points=400), spec)
        # Alternating minimization should be at least as good as a fine grid
        # up to grid resolution.
        assert mse_alt <= mse_grid * 1.02 + 1e-12

    def test_exact_for_on_grid_data(self):
        spec = QuantSpec(4)
        x = np.array([-0.6, -0.2, 0.0, 0.2, 0.6, 1.4])  # multiples of 0.2
        scale = mmse_scale(x, spec)
        assert quantization_mse(x, scale, spec) < 1e-20

    def test_zero_tensor(self):
        assert mmse_scale(np.zeros(10), QuantSpec(4)) == 1.0

    def test_scale_positive(self, rng):
        for _ in range(5):
            x = rng.normal(size=50) * rng.uniform(0.01, 100)
            assert mmse_scale(x, QuantSpec(2)) > 0
