"""Tests for two's-complement bit-slicing and the sliced MVM pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pim.bitslicing import (
    BitSlicingScheme,
    assemble_signed,
    slice_signed,
    slice_weights_signed_msb,
)


class TestSliceRoundTrip:
    def test_simple_values(self):
        codes = np.array([-8, -1, 0, 1, 7])
        slices = slice_signed(codes, total_bits=4, bits_per_slice=2)
        assert slices.shape == (2, 5)
        assert np.array_equal(assemble_signed(slices, 4, 2), codes)

    def test_single_slice_degenerate(self):
        codes = np.array([-2, 0, 1])
        slices = slice_signed(codes, total_bits=2, bits_per_slice=2)
        assert slices.shape == (1, 3)
        assert np.array_equal(assemble_signed(slices, 2, 2), codes)

    def test_slices_are_unsigned(self):
        codes = np.arange(-128, 128)
        slices = slice_signed(codes, total_bits=8, bits_per_slice=1)
        assert slices.min() >= 0
        assert slices.max() <= 1

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            slice_signed(np.array([8]), total_bits=4, bits_per_slice=2)
        with pytest.raises(ValueError):
            slice_signed(np.array([-9]), total_bits=4, bits_per_slice=2)

    def test_rejects_non_divisible_bits(self):
        with pytest.raises(ValueError):
            slice_signed(np.array([0]), total_bits=4, bits_per_slice=3)

    def test_rejects_fractional_codes(self):
        with pytest.raises(ValueError):
            slice_signed(np.array([0.5]), total_bits=4, bits_per_slice=2)

    def test_accepts_float_integers(self):
        slices = slice_signed(np.array([3.0, -4.0]), total_bits=4, bits_per_slice=2)
        assert np.array_equal(assemble_signed(slices, 4, 2), [3, -4])

    def test_assemble_validates_slice_count(self):
        with pytest.raises(ValueError):
            assemble_signed(np.zeros((3, 2)), total_bits=4, bits_per_slice=2)


class TestSignedMsbDigits:
    def test_recombination_with_coefficients(self):
        codes = np.arange(-8, 8)
        slices, coeffs = slice_weights_signed_msb(codes, 4, 2)
        recombined = sum(coeffs[i] * slices[i] for i in range(len(coeffs)))
        assert np.array_equal(recombined.astype(int), codes)

    def test_msb_digit_range(self):
        codes = np.arange(-8, 8)
        slices, _ = slice_weights_signed_msb(codes, 4, 2)
        assert slices[-1].min() >= -2
        assert slices[-1].max() <= 1
        # Lower slices stay unsigned.
        assert slices[0].min() >= 0


class TestBitSlicingScheme:
    def test_slice_counts(self):
        scheme = BitSlicingScheme(weight_bits=4, activation_bits=8, bits_per_cell=2, dac_bits=1)
        assert scheme.weight_slices == 2
        assert scheme.input_cycles == 8
        assert scheme.column_expansion == 2

    def test_invalid_combination(self):
        with pytest.raises(ValueError):
            BitSlicingScheme(weight_bits=4, bits_per_cell=3)
        with pytest.raises(ValueError):
            BitSlicingScheme(activation_bits=8, dac_bits=3)

    def test_mvm_exact_small(self):
        scheme = BitSlicingScheme(weight_bits=4, activation_bits=4, bits_per_cell=2, dac_bits=2)
        rng = np.random.default_rng(0)
        a = rng.integers(-8, 8, size=(5, 7))
        w = rng.integers(-8, 8, size=(7, 3))
        assert np.array_equal(scheme.mvm(a, w), a @ w)

    def test_mvm_exact_bit_serial(self):
        scheme = BitSlicingScheme(weight_bits=2, activation_bits=8, bits_per_cell=1, dac_bits=1)
        rng = np.random.default_rng(1)
        a = rng.integers(-128, 128, size=(4, 16))
        w = rng.integers(-2, 2, size=(16, 5))
        assert np.array_equal(scheme.mvm(a, w), a @ w)

    def test_adc_dynamic_range_positive(self):
        scheme = BitSlicingScheme()
        assert scheme.adc_dynamic_range(rows=512) > 0


@given(
    total_bits=st.sampled_from([2, 4, 8]),
    bits_per_slice=st.sampled_from([1, 2]),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=60, deadline=None)
def test_round_trip_property(total_bits, bits_per_slice, seed):
    if total_bits % bits_per_slice != 0:
        return
    rng = np.random.default_rng(seed)
    half = 2 ** (total_bits - 1)
    codes = rng.integers(-half, half, size=20)
    slices = slice_signed(codes, total_bits, bits_per_slice)
    assert np.array_equal(assemble_signed(slices, total_bits, bits_per_slice), codes)


@given(seed=st.integers(min_value=0, max_value=500))
@settings(max_examples=40, deadline=None)
def test_sliced_mvm_equals_integer_matmul(seed):
    rng = np.random.default_rng(seed)
    scheme = BitSlicingScheme(weight_bits=4, activation_bits=4, bits_per_cell=1, dac_bits=2)
    a = rng.integers(-8, 8, size=(3, 9))
    w = rng.integers(-8, 8, size=(9, 4))
    assert np.array_equal(scheme.mvm(a, w), a @ w)
