"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.datasets.synthetic import make_pattern_dataset
from repro.nn import init


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture(autouse=True)
def _deterministic_init():
    """Every test starts from the same parameter-init stream."""
    init.seed(0)


@pytest.fixture
def tiny_dataset():
    """A 5-class learnable dataset small enough for in-test training."""
    return make_pattern_dataset(5, 20, (1, 12, 12), seed=7, max_shift=1, noise=0.2)
