"""Self-tuning modules: estimator statistics and correction exactness."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, no_grad
from repro.quant import QConfig, QuantConv2d, QuantLinear
from repro.selftuning import (
    GlobalTuningModule,
    LayerTuningModule,
    SelfTuner,
    SelfTuningConfig,
    attach_self_tuning,
    correct_kind_for,
    detach_self_tuning,
)
from repro.selftuning.overhead import (
    area_overhead,
    gtm_area_overhead,
    model_flops,
    tuning_flops,
)
from repro.variability import (
    LayerFixedVariance,
    VariabilitySpec,
    WeightProportionalVariance,
    inject_variation,
)
from repro.variability.sampler import ChipVariation, VariabilitySampler


class TestGTM:
    def test_exact_when_no_within_chip_noise(self):
        chip = ChipVariation(0.17, 0.0, seed=0)
        gtm = GlobalTuningModule(num_cells=10)
        assert gtm.estimate(chip) == pytest.approx(0.17)

    def test_estimate_cached_per_chip(self):
        chip = ChipVariation(0.1, 0.3, seed=0)
        gtm = GlobalTuningModule(num_cells=100)
        assert gtm.estimate(chip) == gtm.estimate(chip)

    def test_unbiased_over_chips(self):
        gtm = GlobalTuningModule(num_cells=50)
        errors = []
        for seed in range(400):
            chip = ChipVariation(0.2, 0.3, seed=seed)
            errors.append(gtm.estimate(chip) - 0.2)
        assert np.mean(errors) == pytest.approx(0.0, abs=0.01)
        assert np.std(errors) == pytest.approx(0.3 / np.sqrt(50), rel=0.15)

    def test_more_cells_reduce_error(self):
        small = GlobalTuningModule(num_cells=10, tag="s")
        large = GlobalTuningModule(num_cells=10_000, tag="l")
        err_small, err_large = [], []
        for seed in range(200):
            chip = ChipVariation(0.1, 0.4, seed=seed)
            err_small.append(abs(small.estimate(chip) - 0.1))
            err_large.append(abs(large.estimate(chip) - 0.1))
        assert np.mean(err_large) < np.mean(err_small)

    def test_rejects_zero_cells(self):
        with pytest.raises(ValueError):
            GlobalTuningModule(num_cells=0)


class TestLTM:
    def test_exact_sum_when_noise_free(self, rng):
        ltm = LayerTuningModule(columns=1)
        chip = ChipVariation(0.2, 0.0, seed=0)
        patches = rng.normal(size=(5, 8))
        w_max = 0.7
        measured = ltm.measure(chip, "layer", patches, w_max)
        expected = (ltm.w_l(w_max) + 0.2 * w_max) * patches.sum(axis=-1)
        assert np.allclose(measured, expected)

    def test_columns_reduce_measurement_noise(self, rng):
        patches = rng.normal(size=(50, 30))
        w_max = 1.0
        chip_errors = {1: [], 16: []}
        for seed in range(60):
            chip = ChipVariation(0.0, 0.4, seed=seed)
            for cols in (1, 16):
                ltm = LayerTuningModule(columns=cols)
                measured = ltm.measure(chip, "layer", patches, w_max)
                ideal = ltm.w_l(w_max) * patches.sum(axis=-1)
                chip_errors[cols].append(np.abs(measured - ideal).mean())
        assert np.mean(chip_errors[16]) < np.mean(chip_errors[1])

    def test_cell_noise_fixed_per_chip(self, rng):
        ltm = LayerTuningModule(columns=2)
        chip = ChipVariation(0.1, 0.3, seed=9)
        patches = rng.normal(size=(3, 5))
        assert np.array_equal(
            ltm.measure(chip, "l", patches, 1.0), ltm.measure(chip, "l", patches, 1.0)
        )

    def test_rejects_zero_columns(self):
        with pytest.raises(ValueError):
            LayerTuningModule(columns=0)


class TestKindSelection:
    def test_mapping(self):
        assert correct_kind_for("weight-proportional") == "global"
        assert correct_kind_for("layer-fixed") == "layer"
        with pytest.raises(KeyError):
            correct_kind_for("unknown")

    def test_config_validates_kind(self):
        with pytest.raises(ValueError):
            SelfTuningConfig(kind="sideways")


def _linear_with_chip(rng, spec, bias=False):
    layer = QuantLinear(10, 6, QConfig(activation_bits=8, weight_bits=4), bias=bias)
    layer.set_activation_scale(0.02)
    model = nn.Sequential(layer)
    chip = VariabilitySampler(spec, seed=5).sample_chip()
    inject_variation(model, chip, spec)
    layer._st_key = "0"
    return layer, model, chip


class TestCorrections:
    def test_global_correction_exact_for_pure_between_chip(self, rng):
        # sigma_W = 0, weight-proportional: output is (1+eps_B) * ideal, and
        # the GTM estimate is exact, so correction recovers the ideal output.
        spec = VariabilitySpec(0.0, 0.3, WeightProportionalVariance())
        layer, model, chip = _linear_with_chip(rng, spec)
        x = rng.normal(size=(4, 10)) * 0.1
        with no_grad():
            noisy = layer(Tensor(x)).data.copy()
        layer.self_tuner = SelfTuner(SelfTuningConfig(kind="global", gtm_cells=10))
        with no_grad():
            corrected = layer(Tensor(x)).data
        layer.set_variation(None, None, "reparameterized")
        layer.self_tuner = None
        with no_grad():
            ideal = layer(Tensor(x)).data
        assert not np.allclose(noisy, ideal)
        assert np.allclose(corrected, ideal, atol=1e-10)

    def test_layer_correction_exact_for_pure_between_chip(self, rng):
        # sigma_W = 0, layer-fixed: error is eps_B * W_max * sum(x); the
        # GTM+LTM correction removes it exactly.
        spec = VariabilitySpec(0.0, 0.25, LayerFixedVariance())
        layer, model, chip = _linear_with_chip(rng, spec)
        x = rng.normal(size=(4, 10)) * 0.1
        with no_grad():
            noisy = layer(Tensor(x)).data.copy()
        layer.self_tuner = SelfTuner(SelfTuningConfig(kind="layer", gtm_cells=10))
        with no_grad():
            corrected = layer(Tensor(x)).data
        layer.set_variation(None, None, "reparameterized")
        layer.self_tuner = None
        with no_grad():
            ideal = layer(Tensor(x)).data
        assert not np.allclose(noisy, ideal)
        assert np.allclose(corrected, ideal, atol=1e-10)

    def test_correction_reduces_error_with_within_noise(self, rng):
        spec = VariabilitySpec.mixed(0.2, WeightProportionalVariance())
        layer, model, chip = _linear_with_chip(rng, spec)
        x = rng.normal(size=(16, 10)) * 0.1
        with no_grad():
            noisy = layer(Tensor(x)).data.copy()
        layer.self_tuner = SelfTuner(SelfTuningConfig(kind="global", gtm_cells=10_000))
        with no_grad():
            corrected = layer(Tensor(x)).data
        layer.set_variation(None, None, "reparameterized")
        layer.self_tuner = None
        with no_grad():
            ideal = layer(Tensor(x)).data
        assert np.abs(corrected - ideal).mean() < np.abs(noisy - ideal).mean()

    def test_conv_correction_shape(self, rng):
        spec = VariabilitySpec(0.0, 0.2, LayerFixedVariance())
        layer = QuantConv2d(2, 3, 3, QConfig(activation_bits=8, weight_bits=4), padding=1)
        layer.set_activation_scale(0.02)
        model = nn.Sequential(layer)
        chip = VariabilitySampler(spec, seed=1).sample_chip()
        inject_variation(model, chip, spec)
        tuner = attach_self_tuning(model, SelfTuningConfig(kind="layer", gtm_cells=10))
        x = rng.normal(size=(2, 2, 6, 6)) * 0.1
        with no_grad():
            out = layer(Tensor(x))
        assert out.shape == (2, 3, 6, 6)

    def test_no_chip_no_correction(self, rng):
        layer = QuantLinear(4, 3, QConfig(activation_bits=8, weight_bits=4))
        layer.set_activation_scale(0.05)
        tuner = SelfTuner(SelfTuningConfig())
        layer.self_tuner = tuner
        x = rng.normal(size=(1, 4)) * 0.1
        with no_grad():
            out1 = layer(Tensor(x)).data.copy()
        layer.self_tuner = None
        with no_grad():
            out2 = layer(Tensor(x)).data
        assert np.array_equal(out1, out2)

    def test_attach_detach(self, rng):
        layer = QuantLinear(4, 3, QConfig())
        model = nn.Sequential(layer)
        tuner = attach_self_tuning(model, SelfTuningConfig())
        assert layer.self_tuner is tuner
        assert layer._st_key == "0"
        detach_self_tuning(model)
        assert layer.self_tuner is None


class TestOverhead:
    def test_paper_area_numbers(self):
        assert area_overhead(1, 512) == pytest.approx(0.002, abs=0.0005)
        assert area_overhead(16, 512) == pytest.approx(0.031, abs=0.001)

    def test_gtm_negligible(self):
        # 1e5 cells vs a chip with hundreds of 512x512 arrays.
        total_cells = 400 * 512 * 512
        assert gtm_area_overhead(100_000, total_cells) < 0.001

    def test_flops_overhead_matches_paper_on_full_resnet18(self):
        # Paper Sec. III-B: ~0.3% at LTM=1, ~2.2% at LTM=8, ~4.4% at LTM=16
        # (ResNet-18, 1e5 GTM cells).  The overhead scales ~linearly in the
        # column count because the LTM term dominates.
        from repro.models import build_model
        from repro.quant import QConfig, convert_to_quantized

        model = build_model("resnet18")
        convert_to_quantized(model, QConfig(quantize_activations=False))
        base = model_flops(model, (3, 32, 32))  # one traced forward
        assert base > 0
        ratios = {
            cols: tuning_flops(model, gtm_cells=100_000, ltm_columns=cols) / base
            for cols in (1, 8, 16)
        }
        # Our accounting also includes the digital correction arithmetic, so
        # absolute ratios run ~2-3x the paper's; the claims that must hold:
        # ~1% at LTM=1, growing roughly linearly with the column count.
        assert 0.001 < ratios[1] < 0.02
        assert ratios[1] < ratios[8] < ratios[16] < 0.2
        growth = (ratios[16] - ratios[1]) / (ratios[8] - ratios[1])
        assert growth == pytest.approx(15 / 7, rel=0.2)
