"""Tests for network-level stuck-at fault injection."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.models import build_model
from repro.quant import QConfig, QuantLinear, calibrate_model, convert_to_quantized
from repro.quant.ptq import quantized_layers
from repro.variability import (
    FaultSpec,
    VariabilitySampler,
    VariabilitySpec,
    clear_variation,
    evaluate_fault_robustness,
    inject_faults,
    inject_variation,
    layer_fault_masks,
    stuck_masks,
)
from repro.variability.faults import fault_delta
from repro.variability.models import WeightProportionalVariance


@pytest.fixture
def qmodel():
    rng = np.random.default_rng(0)
    model = convert_to_quantized(build_model("lenet5-mini"), QConfig.from_notation("A8W4"))
    calibrate_model(model, [rng.normal(size=(8, 1, 28, 28))])
    return model


@pytest.fixture
def qlinear():
    rng = np.random.default_rng(1)
    layer = QuantLinear(32, 16, QConfig.from_notation("A8W4"))
    layer.set_activation_scale(0.1)
    return layer


class TestFaultSpec:
    def test_rate(self):
        assert FaultSpec(0.02, 0.01).rate == pytest.approx(0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(p_stuck_off=-0.1)
        with pytest.raises(ValueError):
            FaultSpec(p_stuck_off=0.6, p_stuck_on=0.5)


class TestFaultDelta:
    def test_zero_rate_zero_delta(self, qlinear):
        delta = fault_delta(qlinear, FaultSpec(), np.random.default_rng(0))
        assert np.all(delta == 0.0)

    def test_stuck_off_targets_zero(self, qlinear):
        rng = np.random.default_rng(2)
        delta = fault_delta(qlinear, FaultSpec(p_stuck_off=1.0), rng)
        # Every weight stuck off: perturbed value = w_ideal + delta = 0.
        assert np.allclose(qlinear.dequantized_weight() + delta, 0.0)

    def test_stuck_on_targets_signed_wmax(self, qlinear):
        rng = np.random.default_rng(3)
        delta = fault_delta(qlinear, FaultSpec(p_stuck_on=1.0), rng)
        perturbed = qlinear.dequantized_weight() + delta
        w_max = np.abs(qlinear.dequantized_weight()).max()
        assert np.allclose(np.abs(perturbed), w_max)

    def test_fault_rate_statistics(self, qlinear):
        rng = np.random.default_rng(4)
        deltas = [
            fault_delta(qlinear, FaultSpec(p_stuck_off=0.1), rng) for _ in range(50)
        ]
        rate = np.mean([np.count_nonzero(d) / d.size for d in deltas])
        # Stuck-off on an already-zero weight produces a zero delta, so the
        # measured rate is at most the nominal one.
        assert rate <= 0.1 + 0.01
        assert rate > 0.03


class TestInjection:
    def test_inject_returns_fault_count(self, qmodel):
        count = inject_faults(qmodel, FaultSpec(p_stuck_off=0.05), seed=0)
        assert count > 0

    def test_injection_changes_outputs(self, qmodel):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(4, 1, 28, 28))
        with no_grad():
            clean = qmodel(Tensor(x)).data
        inject_faults(qmodel, FaultSpec(p_stuck_off=0.2), seed=1)
        with no_grad():
            faulted = qmodel(Tensor(x)).data
        assert not np.allclose(clean, faulted)

    def test_clear_restores_outputs(self, qmodel):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(4, 1, 28, 28))
        with no_grad():
            clean = qmodel(Tensor(x)).data
        inject_faults(qmodel, FaultSpec(p_stuck_off=0.2), seed=1)
        clear_variation(qmodel)
        with no_grad():
            restored = qmodel(Tensor(x)).data
        assert np.allclose(clean, restored)

    def test_all_layers_receive_faults(self, qmodel):
        inject_faults(qmodel, FaultSpec(p_stuck_off=0.5), seed=2)
        assert all(layer.has_variation for _, layer in quantized_layers(qmodel))

    def test_seed_reproducibility(self, qmodel):
        a = inject_faults(qmodel, FaultSpec(p_stuck_off=0.1), seed=7)
        clear_variation(qmodel)
        b = inject_faults(qmodel, FaultSpec(p_stuck_off=0.1), seed=7)
        assert a == b


class TestFaultRobustness:
    def test_accuracy_degrades_with_rate(self, qmodel):
        rng = np.random.default_rng(8)
        from repro.datasets.synthetic import ArrayDataset

        dataset = ArrayDataset(
            rng.normal(size=(32, 1, 28, 28)), rng.integers(0, 10, 32), 10
        )
        mild = evaluate_fault_robustness(
            qmodel, dataset, FaultSpec(p_stuck_off=0.01), num_maps=3
        )
        severe = evaluate_fault_robustness(
            qmodel, dataset, FaultSpec(p_stuck_off=0.5, p_stuck_on=0.3), num_maps=3
        )
        assert len(mild.accuracies) == 3
        # An untrained model on random labels hovers near chance either way;
        # the protocol contract is what we check: results are valid fractions
        # and the model is left clean.
        assert all(0.0 <= a <= 1.0 for a in mild.accuracies + severe.accuracies)
        assert not any(layer.has_variation for _, layer in quantized_layers(qmodel))

    def test_restores_prior_variation_instead_of_clearing(self, qmodel):
        """A model already carrying a chip variation must come back with it
        — evaluate_fault_robustness snapshots and restores, not clears."""
        rng = np.random.default_rng(9)
        from repro.datasets.synthetic import ArrayDataset

        dataset = ArrayDataset(
            rng.normal(size=(16, 1, 28, 28)), rng.integers(0, 10, 16), 10
        )
        spec = VariabilitySpec.mixed(0.2, WeightProportionalVariance())
        chip = VariabilitySampler(spec, seed=4).sample_chip()
        inject_variation(qmodel, chip, spec)
        x = rng.normal(size=(4, 1, 28, 28))
        with no_grad():
            before = qmodel(Tensor(x)).data
        evaluate_fault_robustness(qmodel, dataset, FaultSpec(0.1, 0.05), num_maps=2)
        assert all(layer.has_variation for _, layer in quantized_layers(qmodel))
        with no_grad():
            after = qmodel(Tensor(x)).data
        assert np.array_equal(before, after)
        clear_variation(qmodel)

    def test_restore_survives_an_evaluation_error(self, qmodel):
        """The finally-path restore: a crash mid-protocol must not leave the
        model wearing a fault map."""
        with no_grad():
            clean = qmodel(Tensor(np.zeros((1, 1, 28, 28)))).data
        with pytest.raises(TypeError):
            evaluate_fault_robustness(
                qmodel, object(), FaultSpec(p_stuck_off=0.3), num_maps=2
            )
        with no_grad():
            restored = qmodel(Tensor(np.zeros((1, 1, 28, 28)))).data
        assert np.array_equal(clean, restored)


class TestMaskHelpers:
    def test_stuck_masks_are_disjoint_and_rate_exact(self):
        rng = np.random.default_rng(0)
        off, on = stuck_masks((200, 200), FaultSpec(0.1, 0.05), rng)
        assert not np.any(off & on)
        rate = (off.sum() + on.sum()) / off.size
        assert rate == pytest.approx(0.15, abs=0.01)

    def test_layer_masks_keyed_by_name_and_seed(self):
        spec = FaultSpec(0.2, 0.1)
        a = layer_fault_masks("features.0", (8, 8), spec, seed=1)
        b = layer_fault_masks("features.0", (8, 8), spec, seed=1)
        c = layer_fault_masks("features.3", (8, 8), spec, seed=1)
        d = layer_fault_masks("features.0", (8, 8), spec, seed=2)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])
        assert not np.array_equal(a[0], c[0]) or not np.array_equal(a[1], c[1])
        assert not np.array_equal(a[0], d[0]) or not np.array_equal(a[1], d[1])


class TestBackendFaultParity:
    """One (FaultSpec, seed) must pin the same logical cells, with the same
    values, on a fake-quant replica and a circuit-level PimChip."""

    def _programmed_pair(self, seed=3):
        from repro.backends import CircuitBackend, FakeQuantBackend

        rng = np.random.default_rng(0)
        model = convert_to_quantized(
            build_model("lenet5-mini"), QConfig.from_notation("A8W4")
        )
        calibrate_model(model, [rng.normal(size=(8, 1, 28, 28))])
        model.eval()
        spec = VariabilitySpec.within_only(0.05, WeightProportionalVariance())
        variation = VariabilitySampler(spec, seed=seed).sample_chip()
        fq = FakeQuantBackend(costed=False).program(
            model, variation, spec=spec, chip_id="parity"
        )
        circuit = CircuitBackend(array_rows=64, array_cols=64, costed=False).program(
            model, variation, spec=spec, chip_id="parity"
        )
        return fq, circuit

    @staticmethod
    def _fq_codes(fq, name):
        layer = dict(quantized_layers(fq.mapping))[name]
        qspec = layer.weight_spec
        codes = np.clip(
            np.rint(layer.weight.data / float(layer.weight_scale)),
            qspec.qmin, qspec.qmax,
        )
        return codes.reshape(codes.shape[0], -1).T

    def test_fault_rate_accounting_parity(self):
        fq, circuit = self._programmed_pair()
        spec = FaultSpec(0.03, 0.02)
        assert fq.apply_faults(spec, seed=17) == circuit.apply_faults(spec, seed=17) > 0

    def test_faulted_codes_bit_identical_across_backends(self):
        fq, circuit = self._programmed_pair()
        spec = FaultSpec(0.05, 0.03)
        fq.apply_faults(spec, seed=23)
        circuit.apply_faults(spec, seed=23)
        for name in circuit.deployed:
            assert np.array_equal(
                self._fq_codes(fq, name), circuit.chip.layers[name].codes
            ), f"{name}: faulted codes diverge between backends"

    def test_different_seeds_pin_different_cells(self):
        fq, _ = self._programmed_pair()
        _, circuit = self._programmed_pair()
        fq.apply_faults(FaultSpec(0.05, 0.03), seed=23)
        circuit.apply_faults(FaultSpec(0.05, 0.03), seed=24)
        diverged = any(
            not np.array_equal(
                self._fq_codes(fq, name), circuit.chip.layers[name].codes
            )
            for name in circuit.deployed
        )
        assert diverged
