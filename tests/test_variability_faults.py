"""Tests for network-level stuck-at fault injection."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.models import build_model
from repro.quant import QConfig, QuantLinear, calibrate_model, convert_to_quantized
from repro.quant.ptq import quantized_layers
from repro.variability import FaultSpec, clear_variation, evaluate_fault_robustness, inject_faults
from repro.variability.faults import fault_delta


@pytest.fixture
def qmodel():
    rng = np.random.default_rng(0)
    model = convert_to_quantized(build_model("lenet5-mini"), QConfig.from_notation("A8W4"))
    calibrate_model(model, [rng.normal(size=(8, 1, 28, 28))])
    return model


@pytest.fixture
def qlinear():
    rng = np.random.default_rng(1)
    layer = QuantLinear(32, 16, QConfig.from_notation("A8W4"))
    layer.set_activation_scale(0.1)
    return layer


class TestFaultSpec:
    def test_rate(self):
        assert FaultSpec(0.02, 0.01).rate == pytest.approx(0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(p_stuck_off=-0.1)
        with pytest.raises(ValueError):
            FaultSpec(p_stuck_off=0.6, p_stuck_on=0.5)


class TestFaultDelta:
    def test_zero_rate_zero_delta(self, qlinear):
        delta = fault_delta(qlinear, FaultSpec(), np.random.default_rng(0))
        assert np.all(delta == 0.0)

    def test_stuck_off_targets_zero(self, qlinear):
        rng = np.random.default_rng(2)
        delta = fault_delta(qlinear, FaultSpec(p_stuck_off=1.0), rng)
        # Every weight stuck off: perturbed value = w_ideal + delta = 0.
        assert np.allclose(qlinear.dequantized_weight() + delta, 0.0)

    def test_stuck_on_targets_signed_wmax(self, qlinear):
        rng = np.random.default_rng(3)
        delta = fault_delta(qlinear, FaultSpec(p_stuck_on=1.0), rng)
        perturbed = qlinear.dequantized_weight() + delta
        w_max = np.abs(qlinear.dequantized_weight()).max()
        assert np.allclose(np.abs(perturbed), w_max)

    def test_fault_rate_statistics(self, qlinear):
        rng = np.random.default_rng(4)
        deltas = [
            fault_delta(qlinear, FaultSpec(p_stuck_off=0.1), rng) for _ in range(50)
        ]
        rate = np.mean([np.count_nonzero(d) / d.size for d in deltas])
        # Stuck-off on an already-zero weight produces a zero delta, so the
        # measured rate is at most the nominal one.
        assert rate <= 0.1 + 0.01
        assert rate > 0.03


class TestInjection:
    def test_inject_returns_fault_count(self, qmodel):
        count = inject_faults(qmodel, FaultSpec(p_stuck_off=0.05), seed=0)
        assert count > 0

    def test_injection_changes_outputs(self, qmodel):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(4, 1, 28, 28))
        with no_grad():
            clean = qmodel(Tensor(x)).data
        inject_faults(qmodel, FaultSpec(p_stuck_off=0.2), seed=1)
        with no_grad():
            faulted = qmodel(Tensor(x)).data
        assert not np.allclose(clean, faulted)

    def test_clear_restores_outputs(self, qmodel):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(4, 1, 28, 28))
        with no_grad():
            clean = qmodel(Tensor(x)).data
        inject_faults(qmodel, FaultSpec(p_stuck_off=0.2), seed=1)
        clear_variation(qmodel)
        with no_grad():
            restored = qmodel(Tensor(x)).data
        assert np.allclose(clean, restored)

    def test_all_layers_receive_faults(self, qmodel):
        inject_faults(qmodel, FaultSpec(p_stuck_off=0.5), seed=2)
        assert all(layer.has_variation for _, layer in quantized_layers(qmodel))

    def test_seed_reproducibility(self, qmodel):
        a = inject_faults(qmodel, FaultSpec(p_stuck_off=0.1), seed=7)
        clear_variation(qmodel)
        b = inject_faults(qmodel, FaultSpec(p_stuck_off=0.1), seed=7)
        assert a == b


class TestFaultRobustness:
    def test_accuracy_degrades_with_rate(self, qmodel):
        rng = np.random.default_rng(8)
        from repro.datasets.synthetic import ArrayDataset

        dataset = ArrayDataset(
            rng.normal(size=(32, 1, 28, 28)), rng.integers(0, 10, 32), 10
        )
        mild = evaluate_fault_robustness(
            qmodel, dataset, FaultSpec(p_stuck_off=0.01), num_maps=3
        )
        severe = evaluate_fault_robustness(
            qmodel, dataset, FaultSpec(p_stuck_off=0.5, p_stuck_on=0.3), num_maps=3
        )
        assert len(mild.accuracies) == 3
        # An untrained model on random labels hovers near chance either way;
        # the protocol contract is what we check: results are valid fractions
        # and the model is left clean.
        assert all(0.0 <= a <= 1.0 for a in mild.accuracies + severe.accuracies)
        assert not any(layer.has_variation for _, layer in quantized_layers(qmodel))
