"""Tests for distributional robustness statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.robustness import RobustnessResult
from repro.eval.statistics import (
    accuracy_quantiles,
    accuracy_spec_at_yield,
    bootstrap_mean_interval,
    epsilon_profile,
    mean_confidence_interval,
    parametric_yield,
    summarize,
    worst_k_mean,
)


def _result(accuracies, eps=None):
    return RobustnessResult(list(accuracies), list(eps) if eps is not None else [])


class TestQuantiles:
    def test_median_of_symmetric_data(self):
        result = _result(np.linspace(0.0, 1.0, 101))
        assert accuracy_quantiles(result, (0.5,))[0.5] == pytest.approx(0.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy_quantiles(_result([]))

    def test_default_quantile_set(self):
        quantiles = accuracy_quantiles(_result(np.random.default_rng(0).random(100)))
        assert set(quantiles) == {0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99}
        ordered = [quantiles[q] for q in sorted(quantiles)]
        assert ordered == sorted(ordered)


class TestConfidenceIntervals:
    def test_normal_ci_contains_mean(self):
        rng = np.random.default_rng(1)
        result = _result(0.7 + 0.05 * rng.normal(size=200))
        low, high = mean_confidence_interval(result)
        assert low < result.mean < high

    def test_ci_narrows_with_more_chips(self):
        rng = np.random.default_rng(2)
        small = _result(0.7 + 0.05 * rng.normal(size=20))
        large = _result(0.7 + 0.05 * rng.normal(size=2000))
        assert (large.mean - mean_confidence_interval(large)[0]) < (
            small.mean - mean_confidence_interval(small)[0]
        )

    def test_bootstrap_agrees_with_normal(self):
        rng = np.random.default_rng(3)
        result = _result(0.6 + 0.08 * rng.normal(size=500))
        normal = mean_confidence_interval(result)
        boot = bootstrap_mean_interval(result, seed=0)
        assert normal[0] == pytest.approx(boot[0], abs=0.01)
        assert normal[1] == pytest.approx(boot[1], abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            mean_confidence_interval(_result([0.5]))
        with pytest.raises(ValueError):
            mean_confidence_interval(_result([0.5, 0.6]), confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_mean_interval(_result([0.5]))


class TestYield:
    def test_yield_counts_fraction(self):
        result = _result([0.9, 0.8, 0.4, 0.3])
        assert parametric_yield(result, 0.5) == 0.5

    def test_yield_boundary_inclusive(self):
        assert parametric_yield(_result([0.5]), 0.5) == 1.0

    def test_spec_at_yield_inverts(self):
        accuracies = np.random.default_rng(4).random(1000)
        result = _result(accuracies)
        for target in (0.5, 0.9, 0.99):
            spec = accuracy_spec_at_yield(result, target)
            # Feasible: at least `target` of chips meet the derived spec.
            assert parametric_yield(result, spec) >= target - 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            parametric_yield(_result([]), 0.5)
        with pytest.raises(ValueError):
            accuracy_spec_at_yield(_result([0.5]), 0.0)


class TestWorstK:
    def test_worst_one_is_min(self):
        result = _result([0.9, 0.2, 0.7])
        assert worst_k_mean(result, 1) == pytest.approx(0.2)

    def test_worst_all_is_mean(self):
        result = _result([0.9, 0.2, 0.7])
        assert worst_k_mean(result, 3) == pytest.approx(result.mean)

    def test_validation(self):
        with pytest.raises(ValueError):
            worst_k_mean(_result([0.5]), 0)
        with pytest.raises(ValueError):
            worst_k_mean(_result([0.5]), 2)


class TestEpsilonProfile:
    def test_requires_eps_values(self):
        with pytest.raises(ValueError):
            epsilon_profile(_result([0.5, 0.6]))

    def test_profile_shows_tail_collapse(self):
        """Synthetic chips: accuracy high near eps_B = 0, low in the tails —
        the Sec. III-A mechanism."""
        rng = np.random.default_rng(5)
        eps = rng.normal(0, 0.3, size=2000)
        accuracy = np.exp(-8.0 * eps**2) * 0.9 + 0.1
        profile = epsilon_profile(_result(accuracy, eps), bins=9)
        center = max(profile, key=lambda row: row["mean_accuracy"])
        assert abs((center["eps_low"] + center["eps_high"]) / 2) < 0.2
        assert profile[0]["mean_accuracy"] < center["mean_accuracy"]
        assert profile[-1]["mean_accuracy"] < center["mean_accuracy"]

    def test_chip_counts_sum(self):
        rng = np.random.default_rng(6)
        eps = rng.normal(size=500)
        profile = epsilon_profile(_result(rng.random(500), eps), bins=5)
        assert sum(row["chips"] for row in profile) == 500


class TestSummarize:
    def test_keys_present(self):
        rng = np.random.default_rng(7)
        summary = summarize(_result(rng.random(50)))
        for key in ("chips", "mean", "std", "worst", "p05", "median", "p95",
                    "yield_at_spec", "mean_ci95"):
            assert key in summary

    def test_single_chip_has_no_ci(self):
        summary = summarize(_result([0.7]))
        assert "mean_ci95" not in summary


@given(
    spec=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=50, deadline=None)
def test_yield_is_monotone_in_spec(spec, seed):
    accuracies = np.random.default_rng(seed).random(50)
    result = _result(accuracies)
    tighter = min(spec + 0.1, 1.0)
    assert parametric_yield(result, tighter) <= parametric_yield(result, spec)
