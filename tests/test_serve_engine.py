"""End-to-end tests for the fleet inference engine."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.datasets.loaders import batch_iterator
from repro.datasets.synthetic import make_pattern_dataset
from repro.models import build_model
from repro.nn import init
from repro.quant.calibration import calibrate_model
from repro.quant.ptq import convert_to_quantized, quantized_layers
from repro.quant.qconfig import QConfig
from repro.selftuning.tuner import SelfTuningConfig
from repro.serve import FleetSpec, InferenceEngine, ServeConfig, TechnologyGroup
from repro.variability.models import WeightProportionalVariance
from repro.variability.sampler import VariabilitySpec


@pytest.fixture(scope="module")
def served_model():
    """A small calibrated quantized model plus its dataset."""
    init.seed(0)
    dataset = make_pattern_dataset(5, 16, (1, 28, 28), seed=7, max_shift=1, noise=0.2)
    model = build_model("lenet5-mini", num_classes=5, in_channels=1)
    convert_to_quantized(model, QConfig.from_notation("A4W2"))
    calibrate_model(model, batch_iterator(dataset, 16, shuffle=False), max_batches=3)
    model.eval()
    return model, dataset


def _spec(sigma=0.2):
    return VariabilitySpec.mixed(sigma, WeightProportionalVariance())


def _engine(model, spec=None, num_chips=3, **config):
    config.setdefault("max_batch", 8)
    config.setdefault("max_wait", 2)
    return InferenceEngine(
        model, spec or _spec(), num_chips=num_chips, config=ServeConfig(**config)
    )


class TestValidation:
    def test_uncalibrated_model_rejected(self):
        init.seed(0)
        model = build_model("lenet5-mini", num_classes=5, in_channels=1)
        convert_to_quantized(model, QConfig.from_notation("A4W2"))
        with pytest.raises(RuntimeError, match="calibrate"):
            InferenceEngine(model, _spec())

    def test_float_model_rejected(self):
        init.seed(0)
        model = build_model("lenet5-mini", num_classes=5, in_channels=1)
        with pytest.raises(ValueError, match="quantized"):
            InferenceEngine(model, _spec())

    def test_empty_fleet_rejected(self, served_model):
        model, _ = served_model
        with pytest.raises(ValueError):
            InferenceEngine(model, _spec(), num_chips=0)

    def test_duplicate_ids_rejected(self, served_model):
        model, dataset = served_model
        with pytest.raises(ValueError, match="unique"):
            _engine(model).run(dataset.images[:3], ids=["a", "a", "b"])

    def test_mismatched_ids_rejected(self, served_model):
        model, dataset = served_model
        with pytest.raises(ValueError, match="mismatch"):
            _engine(model).run(dataset.images[:3], ids=["a", "b"])


class TestServing:
    def test_every_request_answered_once(self, served_model):
        model, dataset = served_model
        engine = _engine(model)
        results = engine.run(dataset.images[:20])
        assert len(results) == 20
        assert all(logits.shape == (5,) for logits in results.values())
        assert engine.telemetry.requests == 20

    def test_null_fleet_matches_golden_model(self, served_model):
        """sigma=0 chips are the golden model: outputs must match exactly."""
        model, dataset = served_model
        engine = _engine(model, spec=VariabilitySpec.null(), num_chips=2)
        ids = [f"r{i}" for i in range(12)]
        results = engine.run(dataset.images[:12], ids=ids)
        with no_grad():
            expected = model(Tensor(dataset.images[:12])).data
        for row, rid in enumerate(ids):
            assert np.allclose(results[rid], expected[row], atol=1e-12)

    def test_variation_makes_chips_differ(self, served_model):
        model, dataset = served_model
        engine = _engine(model, spec=_spec(0.5), num_chips=2, max_batch=1, max_wait=0)
        sample = dataset.images[:1]
        out0 = engine.run(sample, ids=["a"])["a"]
        out1 = engine.run(sample, ids=["b"])["b"]  # round-robin: next chip
        assert engine.assignments()["a"] != engine.assignments()["b"]
        assert not np.allclose(out0, out1)

    def test_golden_model_never_mutated(self, served_model):
        model, dataset = served_model
        before = {
            name: layer.weight.data.copy() for name, layer in quantized_layers(model)
        }
        engine = _engine(model, spec=_spec(0.5))
        engine.run(dataset.images[:16])
        for name, layer in quantized_layers(model):
            assert np.array_equal(layer.weight.data, before[name])
            assert layer.current_chip is None

    def test_streaming_step_and_flush(self, served_model):
        model, dataset = served_model
        engine = _engine(model, max_batch=4, max_wait=10)
        for i in range(3):  # partial batch: deadline far away
            engine.submit(dataset.images[i])
        assert engine.step() == []
        served = engine.flush()
        assert sorted(done.id for done in served) == sorted(engine.completed)
        assert len(engine.batcher) == 0


class TestDeterminism:
    def test_same_seed_two_runs_identical(self, served_model):
        model, dataset = served_model
        ids = [f"r{i:03d}" for i in range(20)]
        first = _engine(model, seed=5).run(dataset.images[:20], ids=ids)
        second = _engine(model, seed=5).run(dataset.images[:20], ids=ids)
        assert all(np.array_equal(first[rid], second[rid]) for rid in ids)

    def test_arrival_order_does_not_change_outputs(self, served_model):
        model, dataset = served_model
        ids = [f"r{i:03d}" for i in range(20)]
        inputs = dataset.images[:20]
        forward = _engine(model, seed=5).run(inputs, ids=ids)
        perm = np.random.default_rng(3).permutation(20)
        shuffled = _engine(model, seed=5).run(
            inputs[perm], ids=[ids[i] for i in perm]
        )
        for rid in ids:
            assert np.array_equal(forward[rid], shuffled[rid])

    def test_different_seed_samples_different_fleet(self, served_model):
        model, dataset = served_model
        ids = [f"r{i}" for i in range(8)]
        first = _engine(model, spec=_spec(0.5), seed=1).run(dataset.images[:8], ids=ids)
        second = _engine(model, spec=_spec(0.5), seed=2).run(dataset.images[:8], ids=ids)
        assert any(not np.array_equal(first[rid], second[rid]) for rid in ids)


class TestCacheIntegration:
    def test_chips_programmed_once_across_traffic(self, served_model):
        model, dataset = served_model
        engine = _engine(model, num_chips=2, max_batch=4, max_wait=0)
        engine.run(dataset.images[:32])
        assert engine.cache.stats.misses == 2  # one program per chip
        assert engine.cache.stats.evictions == 0
        assert engine.cache.stats.hits == engine.telemetry.batches - 2

    def test_small_cache_forces_reprogramming(self, served_model):
        model, dataset = served_model
        engine = _engine(
            model, num_chips=3, max_batch=4, max_wait=0, cache_capacity=1
        )
        engine.run(dataset.images[:24])
        assert engine.cache.stats.misses > 3
        assert engine.cache.stats.evictions > 0

    def test_reprogrammed_chip_reproduces_outputs(self, served_model):
        """Eviction + reprogram must rebuild the exact same physical chip."""
        model, dataset = served_model
        ids = [f"r{i:03d}" for i in range(24)]
        roomy = _engine(model, num_chips=3, max_batch=4, max_wait=0, seed=5)
        tight = _engine(
            model, num_chips=3, max_batch=4, max_wait=0, seed=5, cache_capacity=1
        )
        full = roomy.run(dataset.images[:24], ids=ids)
        evicting = tight.run(dataset.images[:24], ids=ids)
        assert all(np.array_equal(full[rid], evicting[rid]) for rid in ids)

    def test_warm_up_programs_whole_fleet(self, served_model):
        model, _ = served_model
        engine = _engine(model, num_chips=3)
        engine.warm_up()
        assert len(engine.cache) == 3
        assert engine.cache.stats.misses == 3


class TestPoliciesEndToEnd:
    @pytest.mark.parametrize("policy", ["round-robin", "least-loaded", "accuracy-weighted"])
    def test_policy_serves_all_requests(self, served_model, policy):
        model, dataset = served_model
        engine = _engine(model, policy=policy, max_batch=4, max_wait=0)
        results = engine.run(dataset.images[:16])
        assert len(results) == 16
        assert sum(engine.telemetry.per_chip_samples.values()) == 16

    def test_round_robin_spreads_batches(self, served_model):
        model, dataset = served_model
        engine = _engine(model, num_chips=2, policy="round-robin", max_batch=4, max_wait=0)
        engine.run(dataset.images[:16])
        assert engine.telemetry.per_chip_samples == {"chip00": 8, "chip01": 8}


class TestSelfTuningAndProbe:
    def test_probe_reports_quality_per_chip(self, served_model):
        model, dataset = served_model
        engine = _engine(model, num_chips=3)
        qualities = engine.probe_fleet(dataset, k=2)
        assert set(qualities) == {"chip00", "chip01", "chip02"}
        assert all(0.0 <= quality <= 1.0 for quality in qualities.values())
        assert all(chip.quality is not None for chip in engine.fleet)

    def test_self_tuning_attached_to_mappings(self, served_model):
        model, dataset = served_model
        engine = _engine(
            model, self_tuning=SelfTuningConfig(kind="global", gtm_cells=100)
        )
        engine.run(dataset.images[:8])
        mapping = engine._mapping_for(engine.fleet[0])
        for _, layer in quantized_layers(mapping):
            assert layer.self_tuner is not None
        for _, layer in quantized_layers(model):
            assert layer.self_tuner is None

    def test_self_tuning_changes_outputs_under_variation(self, served_model):
        model, dataset = served_model
        ids = [f"r{i}" for i in range(8)]
        bare = _engine(model, spec=_spec(0.5), seed=9).run(dataset.images[:8], ids=ids)
        tuned = _engine(
            model,
            spec=_spec(0.5),
            seed=9,
            self_tuning=SelfTuningConfig(kind="global", gtm_cells=100),
        ).run(dataset.images[:8], ids=ids)
        assert any(not np.array_equal(bare[rid], tuned[rid]) for rid in ids)


class TestHeterogeneousFleet:
    def test_parse_fleet_spec(self):
        spec = FleetSpec.parse("rram:2,flash:1@0.5")
        assert spec.num_chips == 3
        assert spec.groups[0] == TechnologyGroup("rram", 2)
        assert spec.groups[1] == TechnologyGroup("flash", 1, sigma_scale=0.5)

    def test_parse_rejects_unknown_device(self):
        with pytest.raises(KeyError):
            FleetSpec.parse("memristor:2")

    def test_group_spec_matches_technology(self):
        # rram: weight-proportional residuals; flash: layer-fixed ones.
        rram_spec = TechnologyGroup("rram", 1).variability_spec("mixed")
        flash_spec = TechnologyGroup("flash", 1).variability_spec("mixed")
        assert rram_spec.variance_model.name == "weight-proportional"
        assert flash_spec.variance_model.name == "layer-fixed"
        assert rram_spec.sigma_total > flash_spec.sigma_total  # noisier cells

    def test_mixed_fleet_serves_all_requests(self, served_model):
        model, dataset = served_model
        engine = InferenceEngine(
            model,
            VariabilitySpec.null(),
            config=ServeConfig(max_batch=4, max_wait=1),
            fleet_spec=FleetSpec.parse("rram:2,flash:2"),
        )
        assert [chip.chip_id for chip in engine.fleet] == [
            "rram00", "rram01", "flash00", "flash01",
        ]
        assert [chip.technology for chip in engine.fleet] == [
            "rram", "rram", "flash", "flash",
        ]
        results = engine.run(dataset.images[:16])
        assert len(results) == 16
        assert sum(engine.telemetry.per_chip_samples.values()) == 16

    def test_per_chip_spec_governs_programming(self, served_model):
        """Each technology group is sampled from its own variability spec."""
        model, _ = served_model
        engine = InferenceEngine(
            model,
            VariabilitySpec.null(),
            config=ServeConfig(),
            fleet_spec=FleetSpec.parse("rram:1,ideal:1"),
        )
        rram_chip, ideal_chip = engine.fleet
        assert engine.spec_for(rram_chip).sigma_total > 0.0
        assert engine.spec_for(ideal_chip).sigma_total == 0.0
        assert ideal_chip.variation.eps_between == 0.0

    def test_mixed_fleet_deterministic_from_seed(self, served_model):
        model, dataset = served_model
        ids = [f"r{i:03d}" for i in range(12)]

        def run():
            engine = InferenceEngine(
                model,
                VariabilitySpec.null(),
                config=ServeConfig(max_batch=4, max_wait=1, seed=9),
                fleet_spec=FleetSpec.parse("rram:2,mram:1"),
            )
            return engine.run(dataset.images[:12], ids=ids)

        first, second = run(), run()
        assert all(np.array_equal(first[rid], second[rid]) for rid in ids)

    def test_technologies_produce_distinct_chips(self, served_model):
        """rram noise differs from mram noise on the same sample."""
        model, dataset = served_model
        engine = InferenceEngine(
            model,
            VariabilitySpec.null(),
            config=ServeConfig(max_batch=1, max_wait=0, seed=2),
            fleet_spec=FleetSpec.parse("rram:1,ideal:1"),
        )
        out = engine.run(np.stack([dataset.images[0]] * 2), ids=["a", "b"])
        assert engine.assignments()["a"] != engine.assignments()["b"]
        assert not np.array_equal(out["a"], out["b"])


class TestTelemetry:
    def test_counters_add_up(self, served_model):
        model, dataset = served_model
        engine = _engine(model, max_batch=8, max_wait=1)
        engine.run(dataset.images[:20])
        report = engine.telemetry.report()
        assert report["requests"] == 20
        assert report["batches"] == engine.telemetry.batches
        assert sum(report["per_chip_samples"].values()) == 20
        assert report["throughput_sps"] > 0.0
        assert 0.0 < report["occupancy_mean"] <= 1.0
        assert report["queue_ticks"]["max"] >= report["queue_ticks"]["mean"]

    def test_format_is_printable(self, served_model):
        model, dataset = served_model
        engine = _engine(model)
        engine.run(dataset.images[:10])
        text = engine.telemetry.format()
        assert "throughput" in text and "chip load" in text
