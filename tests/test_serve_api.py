"""Tests for the async request gateway and the deadline/SLO machinery.

The determinism discipline extends to the async path: everything a
gateway session observes — which submissions are accepted or rejected,
which chips serve them, which deadlines are met — must be a pure
function of the submission sequence and the engine seed, and every
accepted session must replay bit-for-bit through
``engine.run_trace(gateway.compiled_trace())``.
"""

import asyncio

import numpy as np
import pytest

from repro.datasets.loaders import batch_iterator
from repro.datasets.synthetic import make_pattern_dataset
from repro.models import build_model
from repro.nn import init
from repro.quant.calibration import calibrate_model
from repro.quant.ptq import convert_to_quantized
from repro.quant.qconfig import QConfig
from repro.serve import (
    DeadlineTrace,
    FaultInjector,
    FaultPlan,
    Gateway,
    GatewayConfig,
    InferenceEngine,
    LatencyAwarePolicy,
    MicroBatcher,
    Overloaded,
    ReplayTrace,
    Request,
    RequestFailed,
    RetryPolicy,
    ServeConfig,
    UniformTrace,
    make_policy,
)
from repro.serve.batcher import Batch
from repro.variability.models import WeightProportionalVariance
from repro.variability.sampler import VariabilitySpec


@pytest.fixture(scope="module")
def served_model():
    init.seed(0)
    dataset = make_pattern_dataset(5, 16, (1, 28, 28), seed=7, max_shift=1, noise=0.2)
    model = build_model("lenet5-mini", num_classes=5, in_channels=1)
    convert_to_quantized(model, QConfig.from_notation("A4W2"))
    calibrate_model(model, batch_iterator(dataset, 16, shuffle=False), max_batches=3)
    model.eval()
    return model, dataset


def _spec(sigma=0.2):
    return VariabilitySpec.mixed(sigma, WeightProportionalVariance())


def _engine(model, num_chips=2, **config):
    config.setdefault("max_batch", 4)
    config.setdefault("max_wait", 2)
    return InferenceEngine(
        model, _spec(), num_chips=num_chips, config=ServeConfig(**config)
    )


class TestBatcherDeadlines:
    def test_deadline_forces_partial_release(self):
        batcher = MicroBatcher(max_batch=8, max_wait=100)
        batcher.submit(Request("a", np.zeros((1, 2, 2)), arrival=0, deadline=2))
        assert batcher.poll(1) == []
        batches = batcher.poll(2)
        assert len(batches) == 1 and batches[0].ids == ["a"]

    def test_ready_releases_only_full_batches(self):
        batcher = MicroBatcher(max_batch=2, max_wait=100)
        batcher.submit(Request("a", np.zeros((1, 2, 2)), arrival=0))
        assert batcher.ready(0) == []
        batcher.submit(Request("b", np.zeros((1, 2, 2)), arrival=0))
        batches = batcher.ready(0)
        assert len(batches) == 1 and batches[0].ids == ["a", "b"]
        assert len(batcher) == 0

    def test_headroom_is_tightest_deadline_minus_formation(self):
        requests = [
            Request("a", np.zeros(2), arrival=0, deadline=9),
            Request("b", np.zeros(2), arrival=0, deadline=5),
            Request("c", np.zeros(2), arrival=0),
        ]
        batch = Batch(requests, formed=3)
        assert batch.min_deadline() == 5
        assert batch.headroom() == 2
        assert Batch(requests[2:], formed=3).headroom() is None


class _StubChip:
    def __init__(self, index, fault_events=0, served_samples=0, quality=None):
        self.index = index
        self.chip_id = f"chip{index:02d}"
        self.fault_events = fault_events
        self.served_samples = served_samples
        self.quality = quality
        self.age = 0.0


class TestLatencyAwarePolicy:
    def _batch(self, deadline, formed=0):
        return Batch([Request("a", np.zeros(2), arrival=0, deadline=deadline)], formed)

    def test_registered(self):
        assert isinstance(make_policy("latency-aware"), LatencyAwarePolicy)

    def test_urgent_batch_avoids_fault_prone_chips(self):
        policy = LatencyAwarePolicy(urgent_ticks=2)
        chips = [
            _StubChip(0, fault_events=3, quality=0.9),
            _StubChip(1, fault_events=0, quality=0.1),
        ]
        urgent = self._batch(deadline=2, formed=0)  # headroom 2 <= urgent_ticks
        assert policy.choose(urgent, chips) is chips[1]

    def test_relaxed_batch_dispatches_quality_first(self):
        policy = LatencyAwarePolicy(urgent_ticks=2)
        chips = [
            _StubChip(0, fault_events=3, quality=0.9),
            _StubChip(1, fault_events=0, quality=0.1),
        ]
        relaxed = self._batch(deadline=50, formed=0)
        assert policy.choose(relaxed, chips) is chips[0]

    def test_no_deadline_means_relaxed(self):
        policy = LatencyAwarePolicy()
        chips = [_StubChip(0, quality=0.9), _StubChip(1, quality=0.5)]
        batch = Batch([Request("a", np.zeros(2), arrival=0)], formed=0)
        assert policy.choose(batch, chips) is chips[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyAwarePolicy(urgent_ticks=-1)
        with pytest.raises(ValueError):
            LatencyAwarePolicy(tie_margin=-0.1)


class TestDeadlineTrace:
    def test_wraps_arrivals_and_attaches_slo(self):
        trace = DeadlineTrace(UniformTrace(rate=2.0), slo_ticks=6)
        assert trace.schedule(4) == UniformTrace(rate=2.0).schedule(4)
        assert trace.deadline_schedule(4) == [6, 6, 7, 7]

    def test_replay_freezes_deadlines(self):
        trace = ReplayTrace.from_trace(
            DeadlineTrace(UniformTrace(rate=2.0), slo_ticks=6), 4
        )
        assert trace.deadlines == (6, 6, 7, 7)
        assert trace.deadline_schedule(3) == [6, 6, 7]

    def test_deadline_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="deadlines"):
            ReplayTrace(ticks=(0, 1), deadlines=(5,))
        with pytest.raises(ValueError, match="slo_ticks"):
            DeadlineTrace(UniformTrace(), slo_ticks=0)


class TestEngineDeadlines:
    def test_expired_at_admit_dead_letters(self, served_model):
        model, dataset = served_model
        engine = _engine(model)
        engine.step(5)  # now = 5
        request = engine.submit(dataset.images[0], "late", deadline=3)
        assert request.id not in engine.completed
        letter = engine.dead_letters["late"]
        assert letter.reason == "deadline"
        assert letter.cause == "expired-at-admit"
        assert engine.telemetry.slo_violations == 1
        assert engine.queue_depth == 0  # never enqueued

    def test_met_deadline_is_accounted(self, served_model):
        model, dataset = served_model
        engine = _engine(model, max_wait=0)
        engine.submit(dataset.images[0], "ok", deadline=5)
        engine.drain()
        done = engine.completed["ok"]
        assert done.deadline == 5 and done.completed_tick <= 5
        assert engine.telemetry.slo_met == 1
        assert engine.telemetry.slo_violations == 0

    def test_deadline_expiring_while_parked_dead_letters_not_hedges(
        self, served_model
    ):
        model, dataset = served_model
        engine = _engine(
            model,
            num_chips=1,
            max_wait=0,
            retry=RetryPolicy(max_attempts=10, hedge=False),
        )
        engine.warm_up()
        FaultInjector(
            engine, FaultPlan(transient_rate=0.999, deaths=0, stuck_chips=0)
        ).install()
        engine.submit(dataset.images[0], "doomed", deadline=5)
        engine.drain()
        letter = engine.dead_letters["doomed"]
        assert letter.reason == "deadline"
        assert letter.cause in ("expired-parked", "expired-queued")
        assert engine.telemetry.hedges == 0
        assert engine.telemetry.slo_violations == 1
        assert not engine._parked

    def test_run_trace_carries_deadlines(self, served_model):
        model, dataset = served_model
        engine = _engine(model, max_wait=1)
        trace = DeadlineTrace(UniformTrace(rate=4.0), slo_ticks=8)
        outputs = engine.run_trace(dataset.images[:8], trace)
        assert len(outputs) == 8
        finished = engine.telemetry.slo_met + engine.telemetry.slo_violations
        assert finished == 8

    def test_continuous_batching_dispatches_at_submit(self, served_model):
        model, dataset = served_model
        continuous = _engine(model, continuous=True, max_batch=2, max_wait=50)
        continuous.submit(dataset.images[0], "a")
        continuous.submit(dataset.images[1], "b")
        assert set(continuous.completed) == {"a", "b"}  # no step() needed
        barrier = _engine(model, max_batch=2, max_wait=50)
        barrier.submit(dataset.images[0], "a")
        barrier.submit(dataset.images[1], "b")
        assert barrier.completed == {}
        barrier.step()
        assert set(barrier.completed) == {"a", "b"}


class TestGateway:
    def _gateway(self, model, **kwargs):
        engine = _engine(model, continuous=True, policy="latency-aware")
        return Gateway(engine, GatewayConfig(**kwargs))

    def test_submit_resolves_with_background_loop(self, served_model):
        model, dataset = served_model
        gateway = self._gateway(model, default_slo=12)

        async def main():
            async with gateway as gw:
                return await gw.submit(dataset.images[0])

        served = asyncio.run(main())
        assert served.id in gateway.engine.completed
        assert served.deadline == 12
        assert gateway.engine.telemetry.slo_met == 1

    def test_pump_mode_serves_deterministically(self, served_model):
        model, dataset = served_model

        def session():
            init.seed(0)
            gateway = self._gateway(model, default_slo=10)

            async def main():
                tasks = [
                    asyncio.create_task(gateway.submit(dataset.images[i], f"r{i:03d}"))
                    for i in range(6)
                ]
                await asyncio.sleep(0)
                await gateway.drain()
                return await asyncio.gather(*tasks)

            results = asyncio.run(main())
            return gateway, results

        first_gw, first = session()
        second_gw, second = session()
        assert [r.id for r in first] == [r.id for r in second]
        assert [r.chip_id for r in first] == [r.chip_id for r in second]
        assert all(
            np.array_equal(a.output, b.output) for a, b in zip(first, second)
        )
        assert first_gw.compiled_trace() == second_gw.compiled_trace()

    def test_overloaded_rejection_is_deterministic(self, served_model):
        model, dataset = served_model

        def session():
            init.seed(0)
            engine = _engine(model, max_batch=8, max_wait=0)
            gateway = Gateway(engine, GatewayConfig(max_queue=2))

            async def main():
                tasks = [
                    asyncio.create_task(gateway.submit(dataset.images[i], f"r{i:03d}"))
                    for i in range(5)
                ]
                await asyncio.sleep(0)  # all five reach admission before any tick
                await gateway.drain()
                outcomes = await asyncio.gather(*tasks, return_exceptions=True)
                return [o for o in outcomes if isinstance(o, Overloaded)]

            rejected = asyncio.run(main())
            return gateway, rejected

        first_gw, first_rejected = session()
        second_gw, second_rejected = session()
        assert len(first_rejected) == 3  # queue bound 2: r000, r001 admitted
        assert len(second_rejected) == 3
        assert all(error.queue_depth == 2 for error in first_rejected)
        assert first_gw.accepted_ids == second_gw.accepted_ids == ["r000", "r001"]
        assert first_gw.engine.telemetry.rejections == 3
        assert first_gw.compiled_trace() == second_gw.compiled_trace()

    def test_request_failed_wraps_dead_letter(self, served_model):
        model, dataset = served_model
        engine = _engine(
            model,
            num_chips=1,
            max_wait=0,
            retry=RetryPolicy(max_attempts=1, hedge=False),
        )
        engine.warm_up()
        FaultInjector(
            engine, FaultPlan(transient_rate=0.999, deaths=0, stuck_chips=0)
        ).install()
        gateway = Gateway(engine)

        async def main():
            task = asyncio.create_task(gateway.submit(dataset.images[0], "doomed"))
            await asyncio.sleep(0)
            await gateway.drain()
            with pytest.raises(RequestFailed) as excinfo:
                await task
            return excinfo.value

        error = asyncio.run(main())
        assert error.letter.id == "doomed"
        assert error.letter.reason == "retries-exhausted"

    def test_compiled_trace_replays_bit_exactly(self, served_model):
        model, dataset = served_model
        init.seed(0)
        gateway = self._gateway(model, default_slo=10)
        engine = gateway.engine

        async def main():
            tasks = []
            for i in range(7):
                tasks.append(
                    asyncio.create_task(gateway.submit(dataset.images[i], f"r{i:03d}"))
                )
                if i % 3 == 2:  # spread arrivals across ticks
                    await asyncio.sleep(0)
                    gateway.pump()
            await asyncio.sleep(0)
            await gateway.drain()
            await asyncio.gather(*tasks)

        asyncio.run(main())
        trace = gateway.compiled_trace()
        ids = gateway.accepted_ids
        assert trace.deadlines is not None and len(trace.ticks) == 7

        init.seed(0)
        replay = _engine(model, continuous=True, policy="latency-aware")
        outputs = replay.run_trace(dataset.images[:7], trace, ids=ids)
        assert set(outputs) == set(ids)
        for rid in ids:
            assert np.array_equal(outputs[rid], engine.completed[rid].output)
        assert replay.assignments() == engine.assignments()
        assert replay.telemetry.slo_met == engine.telemetry.slo_met
        assert replay.telemetry.slo_violations == engine.telemetry.slo_violations

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GatewayConfig(max_queue=0)
        with pytest.raises(ValueError):
            GatewayConfig(default_slo=0)
        with pytest.raises(ValueError):
            GatewayConfig(tick_seconds=-1.0)


class TestSloTelemetry:
    def test_slo_section_round_trips(self, served_model):
        model, dataset = served_model
        engine = _engine(model, max_wait=0)
        engine.submit(dataset.images[0], "ok", deadline=5)
        engine.drain()
        report = engine.telemetry.report()["slo"]
        assert report["met"] == 1 and report["violations"] == 0
        assert report["attainment"] == 1.0
        assert report["series"][-1]["met"] == 1
        assert "slo:" in engine.telemetry.format()

    def test_violation_series_is_monotone(self, served_model):
        model, dataset = served_model
        engine = _engine(model)
        engine.step(3)
        for i in range(3):
            engine.submit(dataset.images[i], f"late{i}", deadline=1)
        series = engine.telemetry.slo_series
        assert [v for _, _, v in series] == [1, 2, 3]
