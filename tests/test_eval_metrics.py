"""Tests for eval metrics: top-k accuracy and the extended AverageMeter."""

import numpy as np
import pytest

from repro.eval.metrics import AverageMeter, top1_accuracy, topk_accuracy


class TestTopkAccuracy:
    def test_k1_matches_top1(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(40, 7))
        targets = rng.integers(0, 7, size=40)
        assert topk_accuracy(logits, targets, k=1) == top1_accuracy(logits, targets)

    def test_k_widens_monotonically(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(60, 10))
        targets = rng.integers(0, 10, size=60)
        accs = [topk_accuracy(logits, targets, k=k) for k in (1, 3, 5, 10)]
        assert accs == sorted(accs)
        assert accs[-1] == 1.0  # k == num_classes catches everything

    def test_exact_membership(self):
        logits = np.array([[0.1, 0.9, 0.5], [0.9, 0.1, 0.5]])
        targets = np.array([2, 2])
        assert topk_accuracy(logits, targets, k=1) == 0.0
        assert topk_accuracy(logits, targets, k=2) == 1.0

    def test_k_clamped_beyond_classes(self):
        logits = np.array([[0.2, 0.8]])
        assert topk_accuracy(logits, np.array([0]), k=99) == 1.0

    def test_single_row_input(self):
        assert topk_accuracy(np.array([0.1, 0.9]), np.array([1]), k=1) == 1.0

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            topk_accuracy(np.zeros((2, 3)), np.zeros(2, dtype=int), k=0)


class TestAverageMeterTails:
    def test_mean_unchanged_semantics(self):
        meter = AverageMeter()
        meter.update(1.0)
        meter.update(3.0)
        assert meter.mean == 2.0
        assert meter.total == 4.0
        assert meter.count == 2

    def test_weighted_mean(self):
        meter = AverageMeter()
        meter.update(1.0, weight=3)
        meter.update(5.0, weight=1)
        assert meter.mean == 2.0

    def test_min_max_track_extremes(self):
        meter = AverageMeter()
        for value in (4.0, -2.0, 10.0, 3.0):
            meter.update(value)
        assert meter.min == -2.0
        assert meter.max == 10.0

    def test_std_matches_numpy(self):
        values = [1.0, 2.0, 5.0, 9.0, 2.5]
        meter = AverageMeter()
        for value in values:
            meter.update(value)
        assert meter.std == pytest.approx(np.std(values))

    def test_weighted_std(self):
        meter = AverageMeter()
        meter.update(1.0, weight=2)
        meter.update(4.0, weight=1)
        expected = np.std([1.0, 1.0, 4.0])
        assert meter.std == pytest.approx(expected)

    def test_empty_meter_defaults(self):
        meter = AverageMeter()
        assert meter.mean == 0.0
        assert meter.min == 0.0
        assert meter.max == 0.0
        assert meter.std == 0.0

    def test_constant_stream_has_zero_std(self):
        meter = AverageMeter()
        for _ in range(5):
            meter.update(3.3)
        assert meter.std == pytest.approx(0.0, abs=1e-12)

    def test_repr_mentions_tails(self):
        meter = AverageMeter()
        meter.update(2.0)
        text = repr(meter)
        assert "min" in text and "max" in text and "std" in text
