"""Optimizers, schedules, QAVAT trainer mechanics, baseline pipelines."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.datasets import batch_source
from repro.datasets.synthetic import ArrayDataset
from repro.nn import functional as F
from repro.quant import QConfig, convert_to_quantized, calibrate_model, quantized_layers
from repro.training import SGD, Adam, ConstantLR, CosineLR, QavatTrainer, StepLR
from repro.training.baselines import FloatVatTrainer, train_ptq_vat, train_qat, train_qavat
from repro.training.loop import evaluate_model, train_epoch
from repro.training.optim import clip_grad_norm
from repro.variability import VariabilityInjector, VariabilitySpec, WeightProportionalVariance


def quadratic_param():
    from repro.nn.module import Parameter

    return Parameter(np.array([5.0, -3.0]))


class TestOptimizers:
    def test_sgd_minimizes_quadratic(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1, momentum=0.0)
        for _ in range(200):
            p.grad = 2 * p.data
            opt.step()
        assert np.allclose(p.data, 0.0, atol=1e-6)

    def test_momentum_accelerates(self):
        trajectories = {}
        for momentum in (0.0, 0.9):
            p = quadratic_param()
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                p.grad = 2 * p.data
                opt.step()
            trajectories[momentum] = np.abs(p.data).max()
        assert trajectories[0.9] < trajectories[0.0]

    def test_weight_decay_shrinks(self):
        p = quadratic_param()
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=1.0)
        p.grad = np.zeros(2)
        opt.step()
        assert np.all(np.abs(p.data) < np.abs([5.0, -3.0]))

    def test_adam_minimizes_quadratic(self):
        p = quadratic_param()
        opt = Adam([p], lr=0.1)
        for _ in range(500):
            p.grad = 2 * p.data
            opt.step()
        assert np.allclose(p.data, 0.0, atol=1e-4)

    def test_skips_parameters_without_grad(self):
        p = quadratic_param()
        before = p.data.copy()
        SGD([p], lr=0.1).step()
        assert np.array_equal(p.data, before)

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_zero_grad(self):
        p = quadratic_param()
        p.grad = np.ones(2)
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = quadratic_param()
        p.grad = np.array([0.3, 0.4])  # norm 0.5
        norm = clip_grad_norm([p], 1.0)
        assert norm == pytest.approx(0.5)
        assert np.allclose(p.grad, [0.3, 0.4])

    def test_clips_above_threshold(self):
        p = quadratic_param()
        p.grad = np.array([3.0, 4.0])  # norm 5
        clip_grad_norm([p], 1.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_zeroes_nonfinite(self):
        p = quadratic_param()
        p.grad = np.array([np.inf, 1.0])
        clip_grad_norm([p], 10.0)
        assert np.all(np.isfinite(p.grad))


class TestSchedules:
    def _opt(self):
        return SGD([quadratic_param()], lr=1.0)

    def test_constant(self):
        sched = ConstantLR(self._opt())
        sched.step()
        assert sched.optimizer.lr == 1.0

    def test_step_decay(self):
        opt = self._opt()
        sched = StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == pytest.approx(1.0)
        sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_cosine_endpoints(self):
        opt = self._opt()
        sched = CosineLR(opt, total_epochs=10, min_lr=0.0)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-12)


def tiny_quant_model(dataset, qconfig=None):
    model = nn.Sequential(
        nn.Conv2d(1, 4, 3, padding=1),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(4 * 6 * 6, 5),
    )
    convert_to_quantized(model, qconfig or QConfig(activation_bits=8, weight_bits=4))
    batches = [(dataset.images[:16], dataset.labels[:16])]
    calibrate_model(model, batches)
    return model


class TestQavatTrainer:
    def test_single_step_reduces_loss_on_batch(self, tiny_dataset):
        model = tiny_quant_model(tiny_dataset)
        spec = VariabilitySpec.within_only(0.1, WeightProportionalVariance())
        trainer = QavatTrainer(
            model,
            SGD(model.parameters(), lr=0.05),
            VariabilityInjector(spec, seed=0),
        )
        x, y = tiny_dataset.images[:32], tiny_dataset.labels[:32]
        losses = [trainer.train_step(x, y) for _ in range(30)]
        assert losses[-1] < losses[0]

    def test_multi_sample_accumulates_average(self, tiny_dataset):
        # With a null spec all samples are identical, so n=3 must produce
        # exactly the same update as n=1.
        results = {}
        for n in (1, 3):
            from repro.nn import init

            init.seed(0)
            model = tiny_quant_model(tiny_dataset)
            trainer = QavatTrainer(
                model,
                SGD(model.parameters(), lr=0.05, momentum=0.0),
                VariabilityInjector(VariabilitySpec.null(), seed=0),
                n_variation_samples=n,
            )
            trainer.train_step(tiny_dataset.images[:8], tiny_dataset.labels[:8])
            results[n] = model.state_dict()
        for key in results[1]:
            assert np.allclose(results[1][key], results[3][key], atol=1e-12), key

    def test_variation_cleared_after_step(self, tiny_dataset):
        model = tiny_quant_model(tiny_dataset)
        spec = VariabilitySpec.within_only(0.3, WeightProportionalVariance())
        trainer = QavatTrainer(
            model, SGD(model.parameters(), lr=0.01), VariabilityInjector(spec, seed=0)
        )
        trainer.train_step(tiny_dataset.images[:8], tiny_dataset.labels[:8])
        assert all(not layer.has_variation for _, layer in quantized_layers(model))

    def test_rejects_bad_sample_count(self, tiny_dataset):
        model = tiny_quant_model(tiny_dataset)
        with pytest.raises(ValueError):
            QavatTrainer(
                model,
                SGD(model.parameters(), lr=0.1),
                VariabilityInjector(VariabilitySpec.null()),
                n_variation_samples=0,
            )

    def test_weight_scale_refresh(self, tiny_dataset):
        qc = QConfig(activation_bits=8, weight_bits=4, weight_scale_refresh=1)
        model = tiny_quant_model(tiny_dataset, qc)
        layer = next(iter(quantized_layers(model)))[1]
        layer.weight.data *= 4.0  # make the stale scale obviously wrong
        stale = float(layer.weight_scale)
        trainer = QavatTrainer(
            model,
            SGD(model.parameters(), lr=1e-6),
            VariabilityInjector(VariabilitySpec.null()),
        )
        trainer.train_step(tiny_dataset.images[:8], tiny_dataset.labels[:8])
        assert float(layer.weight_scale) != stale

    def test_fit_returns_history(self, tiny_dataset):
        model = tiny_quant_model(tiny_dataset)
        trainer = QavatTrainer(
            model,
            SGD(model.parameters(), lr=0.02),
            VariabilityInjector(VariabilitySpec.null()),
        )
        source = batch_source(tiny_dataset, 16, seed=0)
        history = trainer.fit(source, epochs=3)
        assert len(history) == 3


class TestFloatVat:
    def test_weights_restored_after_step(self, tiny_dataset):
        model = nn.Sequential(nn.Flatten(), nn.Linear(144, 5))
        spec = VariabilitySpec.within_only(0.3, WeightProportionalVariance())
        trainer = FloatVatTrainer(model, SGD(model.parameters(), lr=0.0, momentum=0.0), spec)
        before = model.state_dict()
        trainer.train_step(tiny_dataset.images[:8], tiny_dataset.labels[:8])
        after = model.state_dict()
        # lr=0: any weight change could only come from unrestored noise.
        for key in before:
            assert np.allclose(before[key], after[key], atol=1e-12), key

    def test_null_spec_is_plain_training(self, tiny_dataset):
        model = nn.Sequential(nn.Flatten(), nn.Linear(144, 5))
        trainer = FloatVatTrainer(
            model, SGD(model.parameters(), lr=0.05), VariabilitySpec.null()
        )
        losses = [
            trainer.train_epoch([(tiny_dataset.images[:32], tiny_dataset.labels[:32])])
            for _ in range(20)
        ]
        assert losses[-1] < losses[0]


class TestPipelines:
    def test_train_qat_produces_calibrated_quant_model(self, tiny_dataset):
        model = nn.Sequential(nn.Flatten(), nn.Linear(144, 5))
        source = batch_source(tiny_dataset, 16, seed=0)
        train_qat(model, source, QConfig(), epochs=1, float_pretrain_epochs=1)
        layers = list(quantized_layers(model))
        assert layers
        assert all(float(layer.act_scale) > 0 for _, layer in layers)

    def test_train_qavat_runs_with_injection(self, tiny_dataset):
        model = nn.Sequential(nn.Flatten(), nn.Linear(144, 5))
        source = batch_source(tiny_dataset, 16, seed=0)
        spec = VariabilitySpec.within_only(0.2, WeightProportionalVariance())
        train_qavat(model, source, QConfig(), spec, epochs=1, float_pretrain_epochs=1)
        assert list(quantized_layers(model))

    def test_train_ptq_vat_quantizes_after(self, tiny_dataset):
        model = nn.Sequential(nn.Flatten(), nn.Linear(144, 5))
        source = batch_source(tiny_dataset, 16, seed=0)
        spec = VariabilitySpec.within_only(0.2, WeightProportionalVariance())
        train_ptq_vat(model, source, QConfig(), spec, epochs=2)
        assert list(quantized_layers(model))


class TestPlainLoop:
    def test_train_epoch_and_evaluate(self, tiny_dataset):
        model = nn.Sequential(nn.Flatten(), nn.Linear(144, 5))
        opt = SGD(model.parameters(), lr=0.05)
        batches = [(tiny_dataset.images[:64], tiny_dataset.labels[:64])]
        first = train_epoch(model, batches, opt)
        for _ in range(30):
            last = train_epoch(model, batches, opt)
        assert last < first
        acc = evaluate_model(model, batches)
        assert acc > 0.5
