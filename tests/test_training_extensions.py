"""Tests for AdamW, Nesterov SGD, warmup schedules, EMA, distillation,
checkpointing."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.datasets import make_dataset
from repro.datasets.loaders import batch_iterator
from repro.models import build_model
from repro.nn import Linear, Sequential
from repro.nn.module import Parameter
from repro.quant import QConfig, calibrate_model, convert_to_quantized
from repro.training import (
    Adam,
    AdamW,
    ModelEMA,
    SGD,
    WarmupCosineLR,
    distillation_loss,
    load_checkpoint,
    save_checkpoint,
    train_distilled,
)
from repro.training.distill import DistillationTrainer
from repro.variability.injection import VariabilityInjector
from repro.variability.models import WeightProportionalVariance
from repro.variability.sampler import VariabilitySpec


def _quadratic_problem(seed=0):
    """A parameter + closure minimizing ||p - target||^2."""
    rng = np.random.default_rng(seed)
    parameter = Parameter(rng.normal(size=8))
    target = rng.normal(size=8)

    def loss_and_grad():
        diff = parameter.data - target
        parameter.grad = 2.0 * diff
        return float((diff**2).sum())

    return parameter, target, loss_and_grad


# ----------------------------------------------------------------------
# Optimizers
# ----------------------------------------------------------------------
class TestNesterovSGD:
    def test_converges(self):
        parameter, target, loss_and_grad = _quadratic_problem()
        optimizer = SGD([parameter], lr=0.05, momentum=0.9, nesterov=True)
        for _ in range(200):
            loss_and_grad()
            optimizer.step()
        assert np.allclose(parameter.data, target, atol=1e-4)

    def test_nesterov_requires_momentum(self):
        parameter, _, _ = _quadratic_problem()
        with pytest.raises(ValueError):
            SGD([parameter], lr=0.1, momentum=0.0, nesterov=True)

    def test_differs_from_classical(self):
        p1, _, g1 = _quadratic_problem()
        p2, _, g2 = _quadratic_problem()
        classical = SGD([p1], lr=0.05, momentum=0.9)
        nesterov = SGD([p2], lr=0.05, momentum=0.9, nesterov=True)
        for _ in range(3):
            g1()
            classical.step()
            g2()
            nesterov.step()
        assert not np.allclose(p1.data, p2.data)


class TestAdamW:
    def test_converges(self):
        parameter, target, loss_and_grad = _quadratic_problem()
        optimizer = AdamW([parameter], lr=0.1)
        for _ in range(500):
            loss_and_grad()
            optimizer.step()
        assert np.allclose(parameter.data, target, atol=1e-3)

    def test_decoupled_decay_shrinks_weights(self):
        """With zero gradient, AdamW decay is a pure multiplicative shrink."""
        parameter = Parameter(np.ones(4))
        optimizer = AdamW([parameter], lr=0.1, weight_decay=0.5)
        parameter.grad = np.zeros(4)
        optimizer.step()
        assert np.allclose(parameter.data, 1.0 - 0.1 * 0.5)

    def test_adam_couples_decay_through_moments(self):
        """Coupled Adam runs decay through the adaptive scaling, so one step
        with zero task gradient moves weights by ~lr (sign step), not
        lr * wd * w."""
        parameter = Parameter(np.ones(4))
        optimizer = Adam([parameter], lr=0.1, weight_decay=0.5)
        parameter.grad = np.zeros(4)
        optimizer.step()
        assert not np.allclose(parameter.data, 1.0 - 0.1 * 0.5)

    def test_state_dict_round_trip(self):
        parameter, _, loss_and_grad = _quadratic_problem()
        optimizer = Adam([parameter], lr=0.1)
        for _ in range(5):
            loss_and_grad()
            optimizer.step()
        state = optimizer.state_dict()
        snapshot = parameter.data.copy()
        loss_and_grad()
        optimizer.step()
        after_one_more = parameter.data.copy()
        # Restore and replay: identical trajectory.
        parameter.data = snapshot.copy()
        optimizer.load_state_dict(state)
        optimizer._step_count = state["step_count"]
        loss_and_grad()
        optimizer.step()
        assert np.allclose(parameter.data, after_one_more)


class TestWarmupCosine:
    def _schedule(self, **kwargs):
        parameter, _, _ = _quadratic_problem()
        optimizer = SGD([parameter], lr=1.0, momentum=0.0)
        return WarmupCosineLR(optimizer, **kwargs)

    def test_warmup_ramps_up(self):
        schedule = self._schedule(total_epochs=10, warmup_epochs=4, warmup_start=0.1)
        lrs = [schedule.lr_at(epoch) for epoch in range(4)]
        assert lrs[0] == pytest.approx(0.1)
        assert all(b > a for a, b in zip(lrs, lrs[1:]))

    def test_peak_at_end_of_warmup(self):
        schedule = self._schedule(total_epochs=10, warmup_epochs=4)
        assert schedule.lr_at(4) == pytest.approx(1.0)

    def test_cosine_decay_after_warmup(self):
        schedule = self._schedule(total_epochs=10, warmup_epochs=2, min_lr=0.01)
        assert schedule.lr_at(10) == pytest.approx(0.01)
        assert schedule.lr_at(6) < schedule.lr_at(4)

    def test_no_warmup_is_plain_cosine(self):
        schedule = self._schedule(total_epochs=8, warmup_epochs=0)
        assert schedule.lr_at(0) == pytest.approx(1.0)
        assert schedule.lr_at(8) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            self._schedule(total_epochs=5, warmup_epochs=6)


# ----------------------------------------------------------------------
# EMA
# ----------------------------------------------------------------------
class TestModelEMA:
    def _model(self):
        return Sequential(Linear(4, 3))

    def test_shadow_tracks_constant_weights(self):
        model = self._model()
        ema = ModelEMA(model, decay=0.9)
        for _ in range(50):
            ema.update()
        for name, parameter in model.named_parameters():
            assert np.allclose(ema._shadow[name], parameter.data)

    def test_apply_and_restore(self):
        model = self._model()
        ema = ModelEMA(model, decay=0.5)
        original = {n: p.data.copy() for n, p in model.named_parameters()}
        # Move weights, update EMA, apply shadow.
        for _, parameter in model.named_parameters():
            parameter.data = parameter.data + 1.0
        ema.update()
        ema.apply_shadow()
        assert ema.applied
        ema.restore()
        for name, parameter in model.named_parameters():
            assert np.allclose(parameter.data, original[name] + 1.0)

    def test_shadow_is_average_not_live(self):
        model = self._model()
        ema = ModelEMA(model, decay=0.99)
        live = {n: p.data.copy() for n, p in model.named_parameters()}
        for _, parameter in model.named_parameters():
            parameter.data = parameter.data + 10.0
        ema.update()
        ema.apply_shadow()
        for name, parameter in model.named_parameters():
            # The averaged value lies strictly between old and new.
            assert np.all(parameter.data > live[name])
            assert np.all(parameter.data < live[name] + 10.0)
        ema.restore()

    def test_double_apply_raises(self):
        ema = ModelEMA(self._model())
        ema.apply_shadow()
        with pytest.raises(RuntimeError):
            ema.apply_shadow()

    def test_restore_without_apply_raises(self):
        with pytest.raises(RuntimeError):
            ModelEMA(self._model()).restore()

    def test_update_while_applied_raises(self):
        ema = ModelEMA(self._model())
        ema.apply_shadow()
        with pytest.raises(RuntimeError):
            ema.update()

    def test_rejects_bad_decay(self):
        with pytest.raises(ValueError):
            ModelEMA(self._model(), decay=1.0)


# ----------------------------------------------------------------------
# Distillation
# ----------------------------------------------------------------------
class TestDistillationLoss:
    def test_alpha_zero_is_plain_ce(self):
        rng = np.random.default_rng(0)
        logits = Tensor(rng.normal(size=(8, 5)), requires_grad=True)
        teacher = rng.normal(size=(8, 5))
        targets = rng.integers(0, 5, size=8)
        from repro.nn import functional as F

        kd = distillation_loss(logits, teacher, targets, alpha=0.0)
        ce = F.cross_entropy(logits, targets)
        assert float(kd.data) == pytest.approx(float(ce.data))

    def test_matching_teacher_gives_zero_soft_term(self):
        """When the student equals the teacher, KL is zero, so the loss is
        (1 - alpha) * CE."""
        rng = np.random.default_rng(1)
        logits_data = rng.normal(size=(8, 5))
        logits = Tensor(logits_data, requires_grad=True)
        targets = rng.integers(0, 5, size=8)
        from repro.nn import functional as F

        kd = distillation_loss(logits, logits_data, targets, temperature=2.0, alpha=0.5)
        ce = F.cross_entropy(logits, targets)
        assert float(kd.data) == pytest.approx(0.5 * float(ce.data), abs=1e-9)

    def test_soft_term_nonnegative(self):
        rng = np.random.default_rng(2)
        logits = Tensor(rng.normal(size=(8, 5)), requires_grad=True)
        teacher = rng.normal(size=(8, 5))
        targets = rng.integers(0, 5, size=8)
        full = distillation_loss(logits, teacher, targets, alpha=1.0)
        assert float(full.data) >= -1e-9  # pure KL term is >= 0

    def test_gradient_flows(self):
        rng = np.random.default_rng(3)
        logits = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        loss = distillation_loss(
            logits, rng.normal(size=(4, 3)), rng.integers(0, 3, size=4), alpha=0.7
        )
        loss.backward()
        assert logits.grad is not None
        assert np.any(logits.grad != 0)

    def test_validation(self):
        logits = Tensor(np.zeros((2, 3)), requires_grad=True)
        with pytest.raises(ValueError):
            distillation_loss(logits, np.zeros((2, 3)), np.zeros(2, dtype=int), alpha=1.5)
        with pytest.raises(ValueError):
            distillation_loss(
                logits, np.zeros((2, 3)), np.zeros(2, dtype=int), temperature=0.0
            )


@pytest.mark.slow
class TestDistillationPipeline:
    def test_distilled_student_learns(self):
        train, test = make_dataset("mnist-mini", train_size=320, test_size=160, seed=0)
        teacher = build_model("lenet5-mini")
        from repro.training import SGD as Sgd, train_epoch

        optimizer = Sgd(teacher.parameters(), lr=0.02)
        for _ in range(10):
            train_epoch(teacher, batch_iterator(train, 32), optimizer)
        student = build_model("lenet5-mini")
        spec = VariabilitySpec.within_only(0.2, WeightProportionalVariance())

        from repro.datasets import batch_source

        batches = batch_source(train, 32, seed=1)

        student = train_distilled(
            student, teacher, batches, QConfig.from_notation("A4W2"), spec,
            epochs=6, lr=0.02,
        )
        from repro.eval import evaluate_clean

        assert evaluate_clean(student, test) > 0.5  # far above the 10% floor


# ----------------------------------------------------------------------
# Checkpointing
# ----------------------------------------------------------------------
class TestCheckpoint:
    def test_model_round_trip(self, tmp_path):
        model = build_model("lenet5-mini")
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, model, metadata={"epoch": 3})
        fresh = build_model("lenet5-mini")
        metadata = load_checkpoint(path, fresh)
        assert metadata["epoch"] == 3
        for (_, a), (_, b) in zip(model.named_parameters(), fresh.named_parameters()):
            assert np.array_equal(a.data, b.data)

    def test_quantized_model_round_trip(self, tmp_path):
        rng = np.random.default_rng(0)
        model = convert_to_quantized(build_model("lenet5-mini"), QConfig())
        calibrate_model(model, [rng.normal(size=(8, 1, 28, 28))])
        path = str(tmp_path / "q.npz")
        save_checkpoint(path, model)
        fresh = convert_to_quantized(build_model("lenet5-mini"), QConfig())
        load_checkpoint(path, fresh)
        # Buffers (scales) restored: forward runs without recalibration.
        with no_grad():
            out = fresh(Tensor(rng.normal(size=(2, 1, 28, 28))))
        assert out.shape == (2, 10)

    def test_optimizer_state_round_trip(self, tmp_path):
        model = Sequential(Linear(4, 2))
        optimizer = Adam(model.parameters(), lr=0.01)
        rng = np.random.default_rng(1)
        for _ in range(3):
            optimizer.zero_grad()
            loss = (model(Tensor(rng.normal(size=(8, 4)))) ** 2).mean()
            loss.backward()
            optimizer.step()
        path = str(tmp_path / "opt.npz")
        save_checkpoint(path, model, optimizer)
        fresh_model = Sequential(Linear(4, 2))
        fresh_optimizer = Adam(fresh_model.parameters(), lr=0.01)
        load_checkpoint(path, fresh_model, fresh_optimizer)
        assert fresh_optimizer._step_count == optimizer._step_count
        for a, b in zip(optimizer._m, fresh_optimizer._m):
            assert np.array_equal(a, b)

    def test_missing_parameter_raises(self, tmp_path):
        model = build_model("lenet5-mini")
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(path, model)
        other = build_model("vgg11-mini")
        # Architecture mismatch surfaces as a missing key or a shape error,
        # depending on whether parameter names happen to overlap.
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(path, other)
