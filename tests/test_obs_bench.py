"""Tests for the BENCH-trajectory regression gate (:mod:`repro.obs.bench`)."""

import json

import pytest

from repro.obs import BenchRecorder
from repro.obs.bench import (
    BenchCheck,
    baseline_for,
    compare_latest,
    load_runs,
    main,
    scale_key,
)

SCALE_A = {"backend": "fake-quant", "num_chips": 2, "fused": True}
SCALE_B = {"backend": "circuit", "num_chips": 2, "fused": True}


def _run(sps, scale):
    return {"metrics": {"throughput_sps": sps}, "scale": dict(scale)}


class TestComparator:
    def test_no_baseline_passes(self):
        checks = compare_latest([_run(100.0, SCALE_A)])
        assert len(checks) == 1
        assert checks[0].baseline is None
        assert not checks[0].regressed

    def test_within_threshold_passes(self):
        runs = [_run(100.0, SCALE_A), _run(85.0, SCALE_A)]
        (check,) = compare_latest(runs)
        assert check.baseline == 100.0
        assert check.ratio == pytest.approx(0.85)
        assert not check.regressed

    def test_regression_beyond_threshold_fails(self):
        runs = [_run(100.0, SCALE_A), _run(79.0, SCALE_A)]
        (check,) = compare_latest(runs)
        assert check.regressed

    def test_improvement_passes(self):
        runs = [_run(100.0, SCALE_A), _run(150.0, SCALE_A)]
        (check,) = compare_latest(runs)
        assert not check.regressed

    def test_baseline_must_match_whole_scale_dict(self):
        """A run at a different scale is a different experiment, never a
        baseline — even when only one key (here the backend) differs."""
        runs = [_run(100.0, SCALE_A), _run(10.0, SCALE_B)]
        (check,) = compare_latest(runs)
        assert check.baseline is None
        assert not check.regressed

    def test_baseline_skips_interleaved_other_scales(self):
        runs = [
            _run(100.0, SCALE_A),
            _run(40.0, SCALE_B),
            _run(98.0, SCALE_A),
        ]
        (check,) = compare_latest(runs)
        assert check.baseline == 100.0

    def test_check_last_gates_multiple_runs(self):
        runs = [
            _run(100.0, SCALE_A),
            _run(50.0, SCALE_B),
            _run(99.0, SCALE_A),
            _run(49.0, SCALE_B),
        ]
        checks = compare_latest(runs, check_last=2)
        assert [c.index for c in checks] == [2, 3]
        assert not any(c.regressed for c in checks)

    def test_baseline_is_most_recent_same_scale(self):
        runs = [_run(200.0, SCALE_A), _run(100.0, SCALE_A), _run(85.0, SCALE_A)]
        (check,) = compare_latest(runs)
        assert check.baseline == 100.0  # not the older 200

    def test_missing_metric_skipped(self):
        runs = [_run(100.0, SCALE_A), {"metrics": {"goodput": 1.0}, "scale": SCALE_A}]
        assert compare_latest(runs, check_last=1) == []

    def test_custom_metric_and_threshold(self):
        runs = [
            {"metrics": {"goodput": 1.0}, "scale": SCALE_A},
            {"metrics": {"goodput": 0.94}, "scale": SCALE_A},
        ]
        (check,) = compare_latest(runs, metric="goodput", threshold=0.05)
        assert check.regressed

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            compare_latest([_run(1.0, SCALE_A)], threshold=1.5)

    def test_scale_key_is_order_insensitive(self):
        assert scale_key({"a": 1, "b": 2}) == scale_key({"b": 2, "a": 1})

    def test_baseline_for_direct(self):
        runs = [_run(100.0, SCALE_A), _run(90.0, SCALE_A)]
        assert baseline_for(runs, 1, "throughput_sps") == 100.0
        assert baseline_for(runs, 0, "throughput_sps") is None

    def test_describe_mentions_verdict(self):
        check = BenchCheck(
            index=0, metric="throughput_sps", current=79.0, baseline=100.0,
            threshold=0.2, scale=SCALE_A,
        )
        assert check.describe().startswith("FAIL")


class TestFileAndCli:
    def _record(self, path, sps, scale):
        BenchRecorder(path, bench="serving").record(
            {"throughput_sps": sps}, scale=scale
        )

    def test_load_runs_roundtrip(self, tmp_path):
        path = tmp_path / "BENCH_serving.json"
        self._record(path, 100.0, SCALE_A)
        self._record(path, 99.0, SCALE_A)
        runs = load_runs(str(path))
        assert [run["metrics"]["throughput_sps"] for run in runs] == [100.0, 99.0]

    def test_load_runs_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "BENCH_serving.json"
        path.write_text(json.dumps({"schema": "other/v9", "runs": []}))
        with pytest.raises(ValueError, match="bench file"):
            load_runs(str(path))

    def test_cli_passes_on_healthy_trajectory(self, tmp_path, capsys):
        path = tmp_path / "BENCH_serving.json"
        self._record(path, 100.0, SCALE_A)
        self._record(path, 95.0, SCALE_A)
        assert main([str(path), "--check-last", "1"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_cli_fails_on_regression(self, tmp_path, capsys):
        path = tmp_path / "BENCH_serving.json"
        self._record(path, 100.0, SCALE_A)
        self._record(path, 70.0, SCALE_A)
        assert main([str(path), "--check-last", "1"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_cli_check_last_spans_both_lineages(self, tmp_path):
        """The canary appends one fused and one unfused record per run;
        --check-last 2 gates both against their own lineages."""
        path = tmp_path / "BENCH_serving.json"
        self._record(path, 100.0, SCALE_A)
        self._record(path, 50.0, SCALE_B)
        self._record(path, 98.0, SCALE_A)
        self._record(path, 30.0, SCALE_B)  # 40% drop on the B lineage
        assert main([str(path), "--check-last", "2"]) == 1

    def test_cli_no_gated_runs(self, tmp_path, capsys):
        path = tmp_path / "BENCH_serving.json"
        BenchRecorder(path, bench="serving").record({"goodput": 1.0}, scale=SCALE_A)
        assert main([str(path)]) == 0
        assert "no runs" in capsys.readouterr().out
